// dopereport — incident post-mortems from flight-recorder bundles.
//
// Reads one dope_incident_bundle JSON document (written by
// `dopesim_cli --incidents-out`, `dopesweep --incidents-out` entries,
// or the fuzz harness) and renders either a human-facing markdown
// post-mortem or a compact JSON digest. Pure text transformation: the
// same bundle renders byte-identically everywhere.
//
//   $ ./dopereport incidents.json                 # markdown to stdout
//   $ ./dopereport --json incidents.json          # digest JSON
//   $ ./dopereport incidents.json -o postmortem.md
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

void print_help() {
  std::cout <<
      R"(dopereport — render flight-recorder incident bundles

usage: dopereport [options] BUNDLE.json

  --json               emit the machine-readable digest instead of the
                       markdown post-mortem
  -o, --out FILE       write to FILE instead of stdout
  --help               this text

BUNDLE.json is a dope_incident_bundle document (see
docs/OBSERVABILITY.md); "-" reads it from stdin.
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "dopereport: " << message << " (see --help)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_path, out_path;
  bool want_json = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) fail("missing value for " + flag);
      return args[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_help();
      return 0;
    } else if (flag == "--json") {
      want_json = true;
    } else if (flag == "-o" || flag == "--out") {
      out_path = next();
    } else if (!flag.empty() && flag[0] == '-' && flag != "-") {
      fail("unknown flag: " + flag);
    } else if (bundle_path.empty()) {
      bundle_path = flag;
    } else {
      fail("only one bundle per invocation (got " + bundle_path +
           " and " + flag + ")");
    }
  }
  if (bundle_path.empty()) fail("missing bundle path");

  std::ostringstream buffer;
  if (bundle_path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(bundle_path);
    if (!in) fail("cannot read " + bundle_path);
    buffer << in.rdbuf();
  }

  std::ostringstream rendered;
  try {
    if (want_json) {
      dope::obs::write_postmortem_json(rendered, buffer.str());
    } else {
      dope::obs::write_postmortem_markdown(rendered, buffer.str());
    }
  } catch (const std::exception& e) {
    fail(e.what());
  }

  if (out_path.empty()) {
    std::cout << rendered.str();
  } else {
    std::ofstream out(out_path);
    if (!out) fail("cannot write " + out_path);
    out << rendered.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
