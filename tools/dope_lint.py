#!/usr/bin/env python3
"""dope_lint — simulator-specific determinism and hygiene linter.

Tier 2 of the correctness stack (see docs/ANALYSIS.md): fast regex /
AST-lite checks for hazards clang-tidy cannot express because they are
properties of *this* simulator's contract, not of C++:

  wall-clock      Wall-clock time sources (system_clock, time(), rand())
                  outside the simulation clock. All simulator time must
                  come from sim::Engine::now() or results stop being
                  reproducible.
  banned-rng      Standard-library RNG engines / random_device / static
                  or thread_local Rng instances. Every stochastic
                  component must take an explicit per-run dope::Rng.
  unordered-iter  Range-for iteration over a std::unordered_map/set.
                  Hash order is implementation- and run-dependent, so
                  any export, report, serialization, log, or trace fed
                  from such a loop is nondeterministic. Iterate a sorted
                  materialization instead, or suppress with a reason
                  when the loop body is provably order-independent
                  (pure commutative aggregation).
  float-eq        == / != on floating-point power/energy expressions
                  (watts, joules, SoC, budgets) or float literals.
                  Compare with a tolerance, or restate as <=/>= against
                  zero. Not applied under tests/, where exact equality
                  is how byte-identical determinism is asserted, nor to
                  sizeof(...) comparisons, which are integral.
  raw-physical-double
                  A `double` declaration in a header whose name carries
                  an explicit unit suffix (_w, _watts, _j, _joules, _wh,
                  _ghz). A unit in the name is a dimension the type
                  system can carry instead: use dope::Watts / Joules /
                  WattHours / GHz from common/units.hpp so mixed-unit
                  arithmetic is rejected at compile time (docs/ANALYSIS.md
                  Tier 0). Raw doubles are fine at serialization
                  boundaries — unwrap with .value() in the .cpp, or
                  suppress with a reason where a header must interop
                  with an external schema.
  include-hygiene #pragma once in headers, each .cpp includes its own
                  header first, quoted include blocks sorted (mirrors
                  clang-format's SortIncludes), no parent-relative
                  ("../") include paths.
  hot-path-std-function
                  std::function (or an #include <functional>) in the
                  per-event hot path (src/sim, src/server, src/workload,
                  src/net). std::function heap-allocates for captures
                  beyond its small buffer and indirects every call; the
                  event core contract (docs/ENGINE.md) is zero
                  steady-state allocation, so hot-path callbacks must
                  use common::InlineFunction / common::FunctionRef.
                  Suppress only for cold-path configuration plumbing.
  stage-plane     A control stage (src/schemes, src/antidope) reaching
                  past the plane interfaces: `cluster.X` / `cluster_->X`
                  where X is not one of the plane accessors (data, power,
                  control), the composition-root facts stages may read
                  (engine, catalog, config, ladder, zone), or detach.
                  Stages are guests of the control plane (docs/MODEL.md);
                  touching Cluster internals directly couples them to
                  the god-object this refactor dismantled. Go through
                  cluster.data()/.power()/.control(), or suppress with a
                  reason where a stage legitimately needs a wider view.

Suppressions:
  // dope-lint: allow(rule[, rule...]) — reason      (this or next line)
  // dope-lint: allow-file(rule[, rule...]) — reason (whole file)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

CXX_SUFFIXES = (".cpp", ".hpp", ".h", ".cc")
DEFAULT_DIRS = ("src", "bench", "examples", "tests")

RULES = {
    "wall-clock": "wall-clock time source outside the sim clock",
    "banned-rng": "non-deterministic or thread-shared RNG",
    "unordered-iter": "iteration over unordered container",
    "float-eq": "exact floating-point comparison on power/energy",
    "raw-physical-double": "raw double with a unit-suffixed name in a header",
    "include-hygiene": "include hygiene violation",
    "hot-path-std-function": "std::function in the per-event hot path",
    "stage-plane": "control stage bypassing the Cluster plane interfaces",
}

# Directories whose code runs once per simulated event/request; callbacks
# there must be inline-stored (common::InlineFunction / FunctionRef).
HOT_PATH_DIRS = ("src/sim", "src/server", "src/workload", "src/net")

# Directories that hold control stages (PowerScheme implementations and
# the Anti-DOPE pipeline). Code here runs *inside* the control plane and
# must see the cluster only through its plane interfaces.
STAGE_PLANE_DIRS = ("src/schemes", "src/antidope")

# The members a control stage may call on a Cluster: the three plane
# accessors, the composition-root facts (engine/catalog/config), the
# cross-plane conveniences Cluster re-exports for stages (ladder), the
# zone identity, and the stage's own lifecycle hook.
STAGE_PLANE_ALLOWED = frozenset({
    "data", "power", "control", "engine", "catalog", "config",
    "ladder", "zone", "detach",
})

SUPPRESS_RE = re.compile(r"dope-lint:\s*allow\(([^)]*)\)")
SUPPRESS_FILE_RE = re.compile(r"dope-lint:\s*allow-file\(([^)]*)\)")

WALL_CLOCK_RE = re.compile(
    r"""(?x)
    \bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b
    | (?<!\w)(system_clock|steady_clock|high_resolution_clock)::now\b
    | \bgettimeofday\b | \bclock_gettime\b
    | \b(localtime|gmtime|mktime|ctime|asctime)\s*\(
    | (?<![\w:.])time\s*\(\s*(NULL|nullptr|0|&)
    """
)

BANNED_RNG_RE = re.compile(
    r"""(?x)
    \bstd::(rand|srand)\b
    | (?<![\w:.])(rand|srand)\s*\(
    | \b(std::)?random_device\b
    | \bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b
    | \b(static|thread_local)\s+(dope::)?Rng\b
    """
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s+(\w+)\s*[;={(]"
)

FLOAT_KEYWORD = (
    r"(?:power|watts|joules|energy|soc|budget|demand|overshoot|"
    r"deficit|headroom|allowance|capacity|stored|heat|freq|ghz|[a-z0-9]+_w)"
)
FLOAT_LITERAL = r"(?:\d+\.\d*(?:e[-+]?\d+)?[fF]?|\.\d+)"
_OPERAND = r"[\w.\->:\[\]()]+"
FLOAT_EQ_RE = re.compile(
    r"(?ix)(?P<lhs>%s)\s*(?:==|!=)\s*(?P<rhs>%s)" % (_OPERAND, _OPERAND)
)
FLOAT_SIDE_RE = re.compile(
    r"(?ix)^(?:%s)$|\b%s\b" % (FLOAT_LITERAL, FLOAT_KEYWORD)
)

# A double whose declared name spells out a unit. `double power_w` in a
# header is a Quantity (dope::Watts) the author wrote by hand.
RAW_PHYS_DOUBLE_RE = re.compile(
    r"""(?x)
    \bdouble\s+(?P<name>
        \w+_(?:w|watts|j|joules|wh|watt_hours|ghz)
      | watts | joules | ghz | watt_hours
    )\b
    """
)

STD_FUNCTION_RE = re.compile(
    r"\bstd\s*::\s*function\b|^\s*#\s*include\s*<functional>"
)

# A member access through a variable named `cluster` / `cluster_` (or a
# `cluster()` accessor). `(?<![\w:])` keeps `cluster::Cluster` (namespace
# qualification) and `my_cluster_config` out of scope.
STAGE_PLANE_RE = re.compile(
    r"(?<![\w:])cluster_?(?:\(\))?\s*(?:->|\.)\s*(\w+)"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"' + r"|'(?:\\.|[^'\\])*'")
LINE_COMMENT_RE = re.compile(r"//.*$")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_rules(spec: str) -> set[str]:
    return {r.strip() for r in spec.split(",") if r.strip()}


def strip_code(lines: list[str]) -> list[str]:
    """Returns lines with string literals and comments blanked out, so
    rule regexes only see code. Handles // and /* */ (incl. multiline)."""
    out = []
    in_block = False
    for raw in lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2 :]
            in_block = False
        line = STRING_RE.sub('""', line)
        line = LINE_COMMENT_RE.sub("", line)
        # Remove any /* ... */ runs that open (and maybe close) here.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]
        out.append(line)
    return out


class FileCheck:
    """One file's raw lines, stripped lines, and suppression state."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.raw = text.splitlines()
        self.code = strip_code(self.raw)
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}
        for i, line in enumerate(self.raw, start=1):
            m = SUPPRESS_FILE_RE.search(line)
            if m:
                self.file_allows |= parse_rules(m.group(1))
            m = SUPPRESS_RE.search(line)
            if m:
                allowed = parse_rules(m.group(1))
                # A trailing comment covers its own line; a standalone
                # comment line covers the next code line (skipping the
                # rest of the comment it belongs to).
                self.line_allows.setdefault(i, set()).update(allowed)
                j = i  # 0-based index of the suppression line in code[]
                while (j < len(self.code) and
                       not self.code[j].strip()):
                    j += 1
                self.line_allows.setdefault(j + 1, set()).update(allowed)

    def allowed(self, rule: str, line: int) -> bool:
        if rule in self.file_allows:
            return True
        return rule in self.line_allows.get(line, set())


def collect_unordered_names(files: list[FileCheck]) -> set[str]:
    """Cross-file pass: every identifier declared anywhere in the tree as
    a std::unordered_{map,set,...} variable or member."""
    names: set[str] = set()
    for f in files:
        for line in f.code:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
    return names


def check_pattern_rule(f: FileCheck, rule: str, pattern: re.Pattern,
                       message: str, findings: list[Finding]) -> None:
    for i, line in enumerate(f.code, start=1):
        if pattern.search(line) and not f.allowed(rule, i):
            findings.append(Finding(f.path, i, rule, message))


def check_unordered_iter(f: FileCheck, unordered_names: set[str],
                         findings: list[Finding]) -> None:
    if not unordered_names:
        return
    # Range-for over a bare name, member (obj.name / obj->name), or a
    # *this-qualified member of a known unordered container.
    tail = r"(?:\w+(?:\.|->))*(%s)\s*\)" % "|".join(
        re.escape(n) for n in sorted(unordered_names)
    )
    loop_re = re.compile(r"for\s*\(.*:\s*" + tail)
    for i, line in enumerate(f.code, start=1):
        m = loop_re.search(line)
        if m and not f.allowed("unordered-iter", i):
            findings.append(Finding(
                f.path, i, "unordered-iter",
                f"range-for over unordered container '{m.group(1)}' — "
                "hash order is nondeterministic; iterate a sorted "
                "materialization (or suppress with a reason if the body "
                "is a pure commutative aggregation)"))


def check_float_eq(f: FileCheck, findings: list[Finding]) -> None:
    if f.path.split(os.sep)[0] == "tests" or f.path.endswith("_test.cpp"):
        return  # exact comparison is how tests assert determinism
    for i, line in enumerate(f.code, start=1):
        for m in FLOAT_EQ_RE.finditer(line):
            lhs, rhs = m.group("lhs"), m.group("rhs")
            if lhs.startswith("sizeof(") or rhs.startswith("sizeof("):
                continue  # sizeof is integral, not a float comparison
            if FLOAT_SIDE_RE.search(lhs) or FLOAT_SIDE_RE.search(rhs):
                if not f.allowed("float-eq", i):
                    findings.append(Finding(
                        f.path, i, "float-eq",
                        f"exact floating-point comparison '{m.group(0)}' "
                        "on a power/energy value — use a tolerance or "
                        "an inequality"))
                break  # one finding per line is enough


def check_raw_physical_double(f: FileCheck,
                              findings: list[Finding]) -> None:
    if not f.path.endswith((".hpp", ".h")):
        return  # .cpp internals may unwrap to double freely
    for i, line in enumerate(f.code, start=1):
        m = RAW_PHYS_DOUBLE_RE.search(line)
        if m and not f.allowed("raw-physical-double", i):
            findings.append(Finding(
                f.path, i, "raw-physical-double",
                f"raw double '{m.group('name')}' carries a unit in its "
                "name — use dope::Watts / Joules / WattHours / GHz "
                "(common/units.hpp) so the dimension is checked at "
                "compile time (see docs/ANALYSIS.md, Tier 0)"))


def check_hot_path_std_function(f: FileCheck,
                                findings: list[Finding]) -> None:
    norm = f.path.replace(os.sep, "/")
    if not any(norm.startswith(d + "/") for d in HOT_PATH_DIRS):
        return
    check_pattern_rule(
        f, "hot-path-std-function", STD_FUNCTION_RE,
        "std::function in the per-event hot path — it heap-allocates for "
        "captures beyond its small buffer; use common::InlineFunction "
        "(owning) or common::FunctionRef (borrowing) instead "
        "(see docs/ENGINE.md)", findings)


def check_stage_plane(f: FileCheck, findings: list[Finding]) -> None:
    norm = f.path.replace(os.sep, "/")
    if not any(norm.startswith(d + "/") for d in STAGE_PLANE_DIRS):
        return
    for i, line in enumerate(f.code, start=1):
        for m in STAGE_PLANE_RE.finditer(line):
            member = m.group(1)
            if member in STAGE_PLANE_ALLOWED:
                continue
            if not f.allowed("stage-plane", i):
                findings.append(Finding(
                    f.path, i, "stage-plane",
                    f"control stage touches Cluster member '{member}' "
                    "directly — stages must reach state through the "
                    "plane interfaces (data()/power()/control(); see "
                    "docs/MODEL.md) or suppress with a reason"))
            break  # one finding per line is enough


def check_include_hygiene(f: FileCheck, findings: list[Finding]) -> None:
    def report(line: int, msg: str) -> None:
        if not f.allowed("include-hygiene", line):
            findings.append(Finding(f.path, line, "include-hygiene", msg))

    is_header = f.path.endswith((".hpp", ".h"))
    if is_header and not any(
            re.match(r"\s*#\s*pragma\s+once", l) for l in f.raw):
        report(1, "header is missing #pragma once")

    quoted: list[tuple[int, str]] = []
    for i, line in enumerate(f.raw, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            quoted.append((i, m.group(1)))
            if ".." in m.group(1).split("/"):
                report(i, f'parent-relative include "{m.group(1)}"')

    if f.path.endswith(".cpp") and quoted:
        stem = os.path.splitext(os.path.basename(f.path))[0]
        own = {f"{stem}.hpp", f"{stem}.h"}
        has_own = any(os.path.basename(inc) in own for _, inc in quoted)
        first = os.path.basename(quoted[0][1])
        if has_own and first not in own:
            report(quoted[0][0],
                   f"a .cpp file must include its own header first "
                   f'(expected "{stem}.hpp", found "{quoted[0][1]}")')

    # Sorted order within each contiguous quoted-include block (mirrors
    # clang-format SortIncludes with IncludeBlocks: Preserve).
    block: list[tuple[int, str]] = []
    skip_first = (f.path.endswith(".cpp") and quoted and
                  os.path.basename(quoted[0][1]).startswith(
                      os.path.splitext(os.path.basename(f.path))[0] + "."))

    def flush(block: list[tuple[int, str]]) -> None:
        names = [inc for _, inc in block]
        if names != sorted(names):
            report(block[0][0],
                   "quoted include block is not sorted: " + ", ".join(names))

    last_line = None
    for i, inc in quoted[1 if skip_first else 0:]:
        if last_line is not None and i != last_line + 1:
            if len(block) > 1:
                flush(block)
            block = []
        block.append((i, inc))
        last_line = i
    if len(block) > 1:
        flush(block)


def lint_tree(root: str, paths: list[str]) -> list[Finding]:
    files: list[FileCheck] = []
    for base in paths:
        base_abs = os.path.join(root, base)
        if os.path.isfile(base_abs):
            candidates = [base_abs]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(base_abs):
                dirnames[:] = [d for d in dirnames
                               if d not in ("build", ".git")]
                for name in sorted(filenames):
                    candidates.append(os.path.join(dirpath, name))
        for path in sorted(candidates):
            if not path.endswith(CXX_SUFFIXES):
                continue
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as fh:
                files.append(FileCheck(rel, fh.read()))

    unordered_names = collect_unordered_names(files)
    findings: list[Finding] = []
    for f in files:
        check_pattern_rule(
            f, "wall-clock", WALL_CLOCK_RE,
            "wall-clock time source — simulator code must derive all time "
            "from sim::Engine::now() (suppress only for telemetry that "
            "never reaches a report)", findings)
        check_pattern_rule(
            f, "banned-rng", BANNED_RNG_RE,
            "nondeterministic or thread-shared RNG — use an explicit "
            "per-run dope::Rng seeded from the scenario", findings)
        check_unordered_iter(f, unordered_names, findings)
        check_float_eq(f, findings)
        check_raw_physical_double(f, findings)
        check_hot_path_std_function(f, findings)
        check_stage_plane(f, findings)
        check_include_hygiene(f, findings)
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dope_lint",
        description="simulator-specific determinism/hygiene linter")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("paths", nargs="*", default=[],
                        help=f"files/dirs relative to --root "
                             f"(default: {' '.join(DEFAULT_DIRS)})")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:16} {desc}")
        return 0

    root = os.path.abspath(args.root)
    paths = args.paths or [d for d in DEFAULT_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    for p in paths:
        if not os.path.exists(os.path.join(root, p)):
            print(f"dope_lint: no such path: {p}", file=sys.stderr)
            return 2

    findings = lint_tree(root, paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"dope_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
