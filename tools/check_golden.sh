#!/usr/bin/env bash
# check_golden — byte-compare dopesim_cli exports against tests/golden/.
#
# Runs the CI golden scenario (Anti-DOPE, Low budget, 400 rps flood,
# 2-minute battery, seed 42 — the same configuration as
# tests/determinism_test.cpp) and cmp's every export surface against the
# pre-refactor captures in tests/golden/. Any refactor that claims
# "performance/typing changes, results do not" (the event-core rewrite,
# the Quantity<Dim> units migration) must keep this green: a single
# changed byte means the arithmetic — not just the types — changed.
#
# Usage: tools/check_golden.sh [path/to/dopesim_cli]
#        (default: build/examples/dopesim_cli relative to the repo root)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
cli=${1:-"$root/build/examples/dopesim_cli"}
golden="$root/tests/golden"

if [[ ! -x "$cli" ]]; then
  echo "check_golden: no such executable: $cli" >&2
  echo "  build it with: cmake --build build --target dopesim_cli" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$cli" --scheme antidope --budget low --attack-rps 400 --duration-s 60 \
  --seed 42 --battery-min 2 \
  --csv "$tmp/out.csv" --power-csv "$tmp/out-power.csv" \
  --soc-csv "$tmp/out-soc.csv" --metrics-out "$tmp/out-metrics.json" \
  --trace-out "$tmp/out-trace.jsonl"

gunzip -c "$golden/engine_refactor_trace.jsonl.gz" > "$tmp/golden-trace.jsonl"

status=0
compare() {
  if ! cmp "$1" "$2"; then
    echo "check_golden: MISMATCH: $(basename "$2")" >&2
    status=1
  fi
}
compare "$tmp/out.csv" "$golden/engine_refactor.csv"
compare "$tmp/out-power.csv" "$golden/engine_refactor_power.csv"
compare "$tmp/out-soc.csv" "$golden/engine_refactor_soc.csv"
compare "$tmp/out-metrics.json" "$golden/engine_refactor_metrics.json"
compare "$tmp/out-trace.jsonl" "$tmp/golden-trace.jsonl"

# Zero-cost-when-attached: the same scenario with the flight recorder
# and time-series store running (--incidents-out implies both) must
# still produce byte-identical bytes on every golden surface — the
# recorder observes, it never perturbs.
"$cli" --scheme antidope --budget low --attack-rps 400 --duration-s 60 \
  --seed 42 --battery-min 2 \
  --csv "$tmp/att.csv" --power-csv "$tmp/att-power.csv" \
  --soc-csv "$tmp/att-soc.csv" --metrics-out "$tmp/att-metrics.json" \
  --incidents-out "$tmp/att-incidents.json"

compare "$tmp/att.csv" "$golden/engine_refactor.csv"
compare "$tmp/att-power.csv" "$golden/engine_refactor_power.csv"
compare "$tmp/att-soc.csv" "$golden/engine_refactor_soc.csv"
compare "$tmp/att-metrics.json" "$golden/engine_refactor_metrics.json"

if [[ "$status" -ne 0 ]]; then
  echo "check_golden: exports drifted from tests/golden/ captures" >&2
  exit 1
fi
echo "check_golden: all 5 export surfaces byte-identical" \
  "(detached and with the flight recorder attached)"
