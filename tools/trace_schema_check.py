#!/usr/bin/env python3
"""Validate a dope JSONL trace export against the documented schema.

The JSONL trace (docs/OBSERVABILITY.md) is the machine-readable contract
between the simulator and downstream tooling; this checker keeps it
honest.  It verifies, line by line:

  * every record is a single JSON object;
  * data records carry the reserved keys t_us / t_s / type / source
    (the TraceTruncated / SpanTruncated trailers carry dropped / cap
    instead);
  * the type is one of the known event or span record types;
  * type-specific payload fields are present (FirewallBan has
    source_id + rate_rps, BudgetViolation has demand_w + budget_w +
    overshoot_w, SpanBegin has span_id + parent + kind, ...);
  * the optional `zone` field — present on every record a zoned
    cluster emits inside a multi-zone site (docs/SITE.md), absent for
    standalone clusters — is a non-negative integer when it appears;
  * t_us never decreases across the file;
  * every SpanEnd matches an open SpanBegin with the same span_id and
    does not end before it began.  Re-begins of the same span id are
    legal (the PDF router's innocent->suspect fallback re-picks), as
    are spans still open when the export was cut.

Beyond the JSONL trace, the checker also validates flight-recorder
incident bundles (`dopesim_cli --incidents-out`): schema version, run
envelope, monotone raw sample indices per series, tier-bucket
consistency (fan-in caps, min <= mean <= max, aligned first indices),
sequential incident ids with non-decreasing slot indices, known trigger
types, and the IncidentTruncated trailer accounting.

Input modes:

  --cli PATH     build a fresh export: run `PATH` (dopesim_cli) with the
                 golden attack scenario plus --spans in a temp dir and
                 validate the JSONL it writes;
  --cli-site PATH
                 same, but the multi-zone variant: two zones with the
                 attack concentrated on zone 0; additionally requires
                 zone-labelled records to actually appear;
  --cli-incident PATH
                 run the golden attack scenario with a 550 W breaker and
                 --incidents-out, validate the incident bundle it writes
                 (at least one incident required); with --report
                 DOPEREPORT also render the bundle through the
                 post-mortem CLI and require a non-empty document;
  --bundle FILE  validate an existing incident-bundle JSON file;
  --gunzip FILE  validate a gzip-compressed golden trace (no compiler
                 or simulator needed — used by the static CI job);
  FILE           validate an uncompressed JSONL file.

Exit status is 0 when the input is clean, 1 with one line per violation
otherwise.
"""

import argparse
import gzip
import json
import subprocess
import sys
import tempfile
from pathlib import Path

EVENT_TYPES = {
    "RequestForwarded",
    "RequestDropped",
    "BudgetViolation",
    "LevelViolation",
    "ThrottleApplied",
    "BatteryDischarge",
    "BatteryCharge",
    "BreakerTrip",
    "OutageEnd",
    "FirewallBan",
    "AttackPhase",
    "AlertRaised",
    "AlertCleared",
}
SPAN_TYPES = {"SpanBegin", "SpanEnd"}
TRAILER_TYPES = {"TraceTruncated", "SpanTruncated"}
SPAN_KINDS = {"request", "firewall", "lb_pick", "queue", "service"}

RESERVED_KEYS = ("t_us", "t_s", "type", "source")

# Required payload fields per record type.  Types absent from this map
# only need the reserved keys.
REQUIRED_FIELDS = {
    "FirewallBan": ("source_id", "rate_rps"),
    "BudgetViolation": ("demand_w", "budget_w", "overshoot_w"),
    "AlertRaised": ("value", "threshold", "windows", "rule", "signal"),
    "AlertCleared": ("value", "rule"),
    "SpanBegin": ("span_id", "parent", "kind", "source_id", "url_class"),
    "SpanEnd": ("span_id", "kind", "outcome"),
}

# Per-kind extras on SpanBegin beyond the common required fields.
SPAN_BEGIN_KIND_FIELDS = {
    "queue": ("server",),
    "service": ("server", "slot", "power_w"),
}


class Checker:
    def __init__(self):
        self.errors = []
        self.records = 0
        self.span_records = 0
        self.zoned_records = 0
        self.zones_seen = set()
        self.open_spans = {}  # span_id -> begin t_us
        self.last_t = None
        self.saw_trailer = False

    def error(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}")

    def check_line(self, lineno, line):
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            self.error(lineno, f"not valid JSON: {e}")
            return
        if not isinstance(record, dict):
            self.error(lineno, "record is not a JSON object")
            return
        self.records += 1

        rtype = record.get("type")
        if rtype in TRAILER_TYPES:
            self.saw_trailer = True
            for key in ("dropped", "cap"):
                if key not in record:
                    self.error(lineno, f"{rtype} trailer missing '{key}'")
            return
        if self.saw_trailer:
            self.error(lineno, "data record after truncation trailer")

        for key in RESERVED_KEYS:
            if key not in record:
                self.error(lineno, f"missing reserved key '{key}'")
                return
        if rtype not in EVENT_TYPES and rtype not in SPAN_TYPES:
            self.error(lineno, f"unknown record type '{rtype}'")
            return

        t = record["t_us"]
        if not isinstance(t, int):
            self.error(lineno, f"t_us is not an integer: {t!r}")
            return
        if self.last_t is not None and t < self.last_t:
            self.error(
                lineno, f"t_us decreases: {t} after {self.last_t}")
        self.last_t = t

        for field in REQUIRED_FIELDS.get(rtype, ()):
            if field not in record:
                self.error(lineno, f"{rtype} missing '{field}'")

        if "zone" in record:
            zone = record["zone"]
            if not isinstance(zone, int) or isinstance(zone, bool) \
                    or zone < 0:
                self.error(
                    lineno, f"zone is not a non-negative integer: {zone!r}")
            else:
                self.zoned_records += 1
                self.zones_seen.add(zone)

        if rtype == "SpanBegin":
            self.span_records += 1
            kind = record.get("kind")
            if kind not in SPAN_KINDS:
                self.error(lineno, f"unknown span kind '{kind}'")
            for field in SPAN_BEGIN_KIND_FIELDS.get(kind, ()):
                if field not in record:
                    self.error(
                        lineno, f"SpanBegin kind={kind} missing '{field}'")
            # Re-begin of a live id is legal (router fallback re-picks);
            # the later begin supersedes the earlier one.
            self.open_spans[record.get("span_id")] = t
        elif rtype == "SpanEnd":
            self.span_records += 1
            if record.get("kind") not in SPAN_KINDS:
                self.error(
                    lineno, f"unknown span kind '{record.get('kind')}'")
            span_id = record.get("span_id")
            begin_t = self.open_spans.pop(span_id, None)
            if begin_t is None:
                self.error(
                    lineno, f"SpanEnd for span_id {span_id} with no "
                    "matching SpanBegin")
            elif t < begin_t:
                self.error(
                    lineno,
                    f"span {span_id} ends at {t} before begin {begin_t}")


def check_stream(lines):
    checker = Checker()
    for lineno, line in enumerate(lines, start=1):
        checker.check_line(lineno, line)
    if checker.records == 0:
        checker.errors.append("trace is empty")
    return checker


# --------------------------------------------------------------------
# Incident-bundle validation (docs/OBSERVABILITY.md, "Incident bundles")

TRIGGER_TYPES = {
    "BreakerTrip",
    "BudgetViolation",
    "AlertRaised",
    "AuditFailure",
    "ManualDump",
}

SERIES_KEYS = ("samples", "sum", "min", "max", "last",
               "raw", "tier10", "tier100")
TIER_FAN_IN = {"tier10": 10, "tier100": 100}


class BundleChecker:
    """Structural validator for one dope_incident_bundle document."""

    def __init__(self):
        self.errors = []
        self.incidents = 0
        self.series_checked = 0

    def error(self, where, message):
        self.errors.append(f"{where}: {message}")

    def check_series(self, where, name, series):
        self.series_checked += 1
        where = f"{where} series '{name}'"
        if not isinstance(series, dict):
            self.error(where, "not a JSON object")
            return
        for key in SERIES_KEYS:
            if key not in series:
                self.error(where, f"missing '{key}'")
                return
        raw = series["raw"]
        samples = series["samples"]
        if not isinstance(raw, list):
            self.error(where, "'raw' is not a list")
            return
        if not isinstance(samples, int) or samples < len(raw):
            self.error(
                where,
                f"samples={samples!r} below raw ring size {len(raw)}")
        prev_i = None
        for k, sample in enumerate(raw):
            i = sample.get("i")
            if not isinstance(i, int):
                self.error(where, f"raw[{k}] index is not an int: {i!r}")
                return
            # Raw indices must be *consecutive*: the ring evicts from
            # the front only, so any gap means samples were lost.
            if prev_i is not None and i != prev_i + 1:
                self.error(
                    where,
                    f"raw indices not consecutive: {i} after {prev_i}")
            prev_i = i
        if raw and samples != raw[-1]["i"] + 1:
            self.error(
                where,
                f"last raw index {raw[-1]['i']} inconsistent with "
                f"samples={samples}")
        for tier, fan_in in TIER_FAN_IN.items():
            prev_first = None
            buckets = series[tier]
            if not isinstance(buckets, list):
                self.error(where, f"'{tier}' is not a list")
                continue
            for k, bucket in enumerate(buckets):
                tag = f"{tier}[{k}]"
                n = bucket.get("n")
                if not isinstance(n, int) or not 0 < n <= fan_in:
                    self.error(
                        where,
                        f"{tag} count {n!r} outside (0, {fan_in}]")
                first = bucket.get("i")
                if not isinstance(first, int) or first % fan_in != 0:
                    self.error(
                        where,
                        f"{tag} first index {first!r} not aligned to "
                        f"the {fan_in}-sample fan-in")
                elif prev_first is not None and first <= prev_first:
                    self.error(
                        where,
                        f"{tag} first index {first} not increasing "
                        f"after {prev_first}")
                else:
                    prev_first = first
                lo, mid, hi = (bucket.get("min"), bucket.get("mean"),
                               bucket.get("max"))
                if not all(isinstance(v, (int, float))
                           for v in (lo, mid, hi)):
                    self.error(tag, "min/mean/max not all numeric")
                elif not lo <= mid <= hi:
                    self.error(
                        where,
                        f"{tag} violates min <= mean <= max: "
                        f"{lo} / {mid} / {hi}")

    def check_incident(self, incident, position, expected_id):
        where = f"incident[{position}]"
        if incident.get("type") == "IncidentTruncated":
            self.error(where, "IncidentTruncated before the last entry")
            return
        self.incidents += 1
        for key in ("id", "t_us", "t_s", "slot_index", "trigger",
                    "detail", "zone", "series", "trace_tail",
                    "open_spans", "open_span_count", "forensics"):
            if key not in incident:
                self.error(where, f"missing '{key}'")
                return
        if incident["id"] != expected_id:
            self.error(
                where,
                f"id {incident['id']} != expected {expected_id}")
        if incident["trigger"] not in TRIGGER_TYPES:
            self.error(
                where, f"unknown trigger '{incident['trigger']}'")
        zone = incident["zone"]
        if not isinstance(zone, int) or zone < -1:
            self.error(where, f"zone {zone!r} below -1")
        series = incident["series"]
        if not isinstance(series, dict):
            self.error(where, "'series' is not an object")
        else:
            for name in series:
                self.check_series(where, name, series[name])
        for k, record in enumerate(incident["trace_tail"]):
            rtype = record.get("type")
            if rtype not in EVENT_TYPES and rtype not in TRAILER_TYPES:
                self.error(
                    where, f"trace_tail[{k}] unknown type '{rtype}'")
        if incident["open_span_count"] < len(incident["open_spans"]):
            self.error(
                where,
                f"open_span_count {incident['open_span_count']} below "
                f"the {len(incident['open_spans'])} spans listed")
        forensics = incident["forensics"]
        if forensics is not None:
            prev_joules = None
            for k, suspect in enumerate(forensics.get("suspects", [])):
                joules = suspect.get("joules")
                if not isinstance(joules, (int, float)):
                    self.error(
                        where, f"suspects[{k}] joules not numeric")
                elif prev_joules is not None and joules > prev_joules:
                    self.error(
                        where,
                        f"suspects[{k}] joules {joules} above previous "
                        f"{prev_joules} (ranking must be descending)")
                else:
                    prev_joules = joules

    def check(self, doc):
        if not isinstance(doc, dict):
            self.error("bundle", "document is not a JSON object")
            return self
        if doc.get("dope_incident_bundle") != 1:
            self.error(
                "bundle",
                f"unsupported schema version "
                f"{doc.get('dope_incident_bundle')!r}")
            return self
        run = doc.get("run")
        if not isinstance(run, dict):
            self.error("run", "missing or not an object")
        else:
            seed = run.get("seed")
            # Seeds are decimal strings (uint64 survives every reader).
            if not isinstance(seed, str) or not seed.isdigit():
                self.error(
                    "run", f"seed {seed!r} is not a decimal string")
            if not isinstance(run.get("slot_us"), int) \
                    or run["slot_us"] <= 0:
                self.error(
                    "run",
                    f"slot_us {run.get('slot_us')!r} not a positive int")
        counters = {}
        for key in ("triggers", "deduped", "dropped"):
            value = doc.get(key)
            if not isinstance(value, int) or value < 0:
                self.error(
                    "bundle", f"'{key}' {value!r} not a counter")
                return self
            counters[key] = value
        incidents = doc.get("incidents")
        if not isinstance(incidents, list):
            self.error("bundle", "'incidents' missing or not a list")
            return self
        trailer = None
        prev_slot = None
        prev_t = None
        for position, incident in enumerate(incidents):
            if not isinstance(incident, dict):
                self.error(f"incident[{position}]", "not an object")
                continue
            if position == len(incidents) - 1 \
                    and incident.get("type") == "IncidentTruncated":
                trailer = incident
                continue
            self.check_incident(incident, position, self.incidents + 1)
            slot = incident.get("slot_index")
            t = incident.get("t_us")
            if isinstance(slot, int):
                if prev_slot is not None and slot <= prev_slot:
                    self.error(
                        f"incident[{position}]",
                        f"slot_index {slot} not increasing "
                        f"after {prev_slot}")
                prev_slot = slot
            if isinstance(t, int):
                if prev_t is not None and t < prev_t:
                    self.error(
                        f"incident[{position}]",
                        f"t_us decreases: {t} after {prev_t}")
                prev_t = t
        if counters["dropped"] > 0 and trailer is None:
            self.error(
                "bundle",
                f"dropped={counters['dropped']} without an "
                "IncidentTruncated trailer")
        if trailer is not None:
            if trailer.get("dropped") != counters["dropped"]:
                self.error(
                    "trailer",
                    f"dropped {trailer.get('dropped')!r} != bundle "
                    f"counter {counters['dropped']}")
            if counters["dropped"] == 0:
                self.error("trailer", "present with dropped=0")
        if self.incidents + counters["dropped"] != counters["triggers"]:
            self.error(
                "bundle",
                f"{self.incidents} incident(s) + "
                f"{counters['dropped']} dropped != "
                f"{counters['triggers']} trigger(s)")
        return self


def check_bundle_text(text):
    checker = BundleChecker()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        checker.error("bundle", f"not valid JSON: {e}")
        return checker
    return checker.check(doc)


def run_cli(cli_path, site=False):
    """Run the golden attack scenario with spans and return the JSONL.

    With site=True the run is the two-zone variant with the flood
    concentrated on zone 0 — the zone-concentrated DOPE shape — so every
    span and power event must carry a zone label.
    """
    with tempfile.TemporaryDirectory(prefix="dope-schema-") as tmp:
        trace = Path(tmp) / "trace.jsonl"
        cmd = [
            cli_path, "--scheme", "antidope", "--budget", "low",
            "--attack-rps", "400", "--duration-s", "30", "--seed", "42",
            "--battery-min", "2", "--spans", "--alerts",
            "--trace-out", str(trace),
        ]
        if site:
            cmd += ["--zones", "2", "--attack-zone", "0"]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        return trace.read_text().splitlines()


def run_cli_incident(cli_path, report_path=None):
    """Golden attack scenario + breaker + flight recorder.

    Returns (bundle_text, render_error): the incident bundle the run
    wrote, and None or a message if the optional dopereport render
    failed or produced no post-mortem.
    """
    with tempfile.TemporaryDirectory(prefix="dope-schema-") as tmp:
        bundle = Path(tmp) / "incidents.json"
        cmd = [
            cli_path, "--scheme", "antidope", "--budget", "low",
            "--attack-rps", "400", "--duration-s", "60", "--seed", "42",
            "--battery-min", "2", "--breaker-watts", "550", "--alerts",
            "--incidents-out", str(bundle),
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        text = bundle.read_text()
        render_error = None
        if report_path:
            render = subprocess.run(
                [report_path, str(bundle)], capture_output=True,
                text=True)
            if render.returncode != 0:
                render_error = (
                    f"dopereport exited {render.returncode}: "
                    f"{render.stderr.strip()}")
            elif "# DOPE incident post-mortem" not in render.stdout:
                render_error = (
                    "dopereport output is missing the post-mortem "
                    "header")
        return text, render_error


def main():
    parser = argparse.ArgumentParser(
        description="validate a dope JSONL trace export")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--cli", metavar="DOPESIM_CLI",
        help="run this dopesim_cli on the golden attack scenario with "
        "--spans and validate its JSONL export")
    source.add_argument(
        "--cli-site", metavar="DOPESIM_CLI",
        help="run the two-zone site variant (--zones 2 --attack-zone 0) "
        "and additionally require zone-labelled records")
    source.add_argument(
        "--cli-incident", metavar="DOPESIM_CLI",
        help="run the golden attack scenario with a breaker and "
        "--incidents-out, then validate the incident bundle")
    source.add_argument(
        "--bundle", metavar="FILE",
        help="validate an existing incident-bundle JSON file")
    source.add_argument(
        "--gunzip", metavar="FILE_GZ",
        help="validate a gzip-compressed JSONL trace")
    source.add_argument(
        "trace", nargs="?", metavar="FILE",
        help="validate an uncompressed JSONL trace")
    parser.add_argument(
        "--report", metavar="DOPEREPORT",
        help="with --cli-incident: also render the bundle through this "
        "dopereport binary and require a post-mortem document")
    args = parser.parse_args()

    if args.report and not args.cli_incident:
        parser.error("--report only applies to --cli-incident")

    if args.cli_incident or args.bundle:
        if args.cli_incident:
            text, render_error = run_cli_incident(
                args.cli_incident, args.report)
            label = f"{args.cli_incident} (golden attack + breaker)"
        else:
            text, render_error = Path(args.bundle).read_text(), None
            label = args.bundle
        checker = check_bundle_text(text)
        if args.cli_incident and checker.incidents == 0:
            checker.errors.append(
                "golden attack + breaker run captured no incident")
        if render_error:
            checker.errors.append(render_error)
        for message in checker.errors:
            print(f"trace_schema_check: {label}: {message}",
                  file=sys.stderr)
        if checker.errors:
            print(
                f"trace_schema_check: FAIL — {len(checker.errors)} "
                f"violation(s) in {checker.incidents} incident(s)",
                file=sys.stderr)
            return 1
        rendered = ", post-mortem rendered" if args.report else ""
        print(
            f"trace_schema_check: OK — {checker.incidents} incident(s), "
            f"{checker.series_checked} series snapshot(s)"
            f"{rendered}")
        return 0

    if args.cli:
        lines = run_cli(args.cli)
        label = f"{args.cli} (golden attack scenario)"
    elif args.cli_site:
        lines = run_cli(args.cli_site, site=True)
        label = f"{args.cli_site} (two-zone site attack scenario)"
    elif args.gunzip:
        with gzip.open(args.gunzip, "rt") as f:
            lines = f.read().splitlines()
        label = args.gunzip
    else:
        lines = Path(args.trace).read_text().splitlines()
        label = args.trace

    checker = check_stream(lines)
    if args.cli_site:
        if checker.zoned_records == 0:
            checker.errors.append(
                "site run produced no zone-labelled records")
        elif len(checker.zones_seen) < 2:
            checker.errors.append(
                f"site run with 2 zones labelled only "
                f"zone(s) {sorted(checker.zones_seen)}")
    for message in checker.errors:
        print(f"trace_schema_check: {label}: {message}", file=sys.stderr)
    if checker.errors:
        print(
            f"trace_schema_check: FAIL — {len(checker.errors)} "
            f"violation(s) in {checker.records} record(s)",
            file=sys.stderr)
        return 1
    open_spans = len(checker.open_spans)
    print(
        f"trace_schema_check: OK — {checker.records} record(s), "
        f"{checker.span_records} span record(s), "
        f"{checker.zoned_records} zone-labelled, "
        f"{open_spans} span(s) left open")
    return 0


if __name__ == "__main__":
    sys.exit(main())
