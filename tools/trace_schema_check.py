#!/usr/bin/env python3
"""Validate a dope JSONL trace export against the documented schema.

The JSONL trace (docs/OBSERVABILITY.md) is the machine-readable contract
between the simulator and downstream tooling; this checker keeps it
honest.  It verifies, line by line:

  * every record is a single JSON object;
  * data records carry the reserved keys t_us / t_s / type / source
    (the TraceTruncated / SpanTruncated trailers carry dropped / cap
    instead);
  * the type is one of the known event or span record types;
  * type-specific payload fields are present (FirewallBan has
    source_id + rate_rps, BudgetViolation has demand_w + budget_w +
    overshoot_w, SpanBegin has span_id + parent + kind, ...);
  * the optional `zone` field — present on every record a zoned
    cluster emits inside a multi-zone site (docs/SITE.md), absent for
    standalone clusters — is a non-negative integer when it appears;
  * t_us never decreases across the file;
  * every SpanEnd matches an open SpanBegin with the same span_id and
    does not end before it began.  Re-begins of the same span id are
    legal (the PDF router's innocent->suspect fallback re-picks), as
    are spans still open when the export was cut.

Two input modes:

  --cli PATH     build a fresh export: run `PATH` (dopesim_cli) with the
                 golden attack scenario plus --spans in a temp dir and
                 validate the JSONL it writes;
  --cli-site PATH
                 same, but the multi-zone variant: two zones with the
                 attack concentrated on zone 0; additionally requires
                 zone-labelled records to actually appear;
  --gunzip FILE  validate a gzip-compressed golden trace (no compiler
                 or simulator needed — used by the static CI job);
  FILE           validate an uncompressed JSONL file.

Exit status is 0 when the trace is clean, 1 with one line per violation
otherwise.
"""

import argparse
import gzip
import json
import subprocess
import sys
import tempfile
from pathlib import Path

EVENT_TYPES = {
    "RequestForwarded",
    "RequestDropped",
    "BudgetViolation",
    "LevelViolation",
    "ThrottleApplied",
    "BatteryDischarge",
    "BatteryCharge",
    "BreakerTrip",
    "OutageEnd",
    "FirewallBan",
    "AttackPhase",
    "AlertRaised",
    "AlertCleared",
}
SPAN_TYPES = {"SpanBegin", "SpanEnd"}
TRAILER_TYPES = {"TraceTruncated", "SpanTruncated"}
SPAN_KINDS = {"request", "firewall", "lb_pick", "queue", "service"}

RESERVED_KEYS = ("t_us", "t_s", "type", "source")

# Required payload fields per record type.  Types absent from this map
# only need the reserved keys.
REQUIRED_FIELDS = {
    "FirewallBan": ("source_id", "rate_rps"),
    "BudgetViolation": ("demand_w", "budget_w", "overshoot_w"),
    "AlertRaised": ("value", "threshold", "windows", "rule", "signal"),
    "AlertCleared": ("value", "rule"),
    "SpanBegin": ("span_id", "parent", "kind", "source_id", "url_class"),
    "SpanEnd": ("span_id", "kind", "outcome"),
}

# Per-kind extras on SpanBegin beyond the common required fields.
SPAN_BEGIN_KIND_FIELDS = {
    "queue": ("server",),
    "service": ("server", "slot", "power_w"),
}


class Checker:
    def __init__(self):
        self.errors = []
        self.records = 0
        self.span_records = 0
        self.zoned_records = 0
        self.zones_seen = set()
        self.open_spans = {}  # span_id -> begin t_us
        self.last_t = None
        self.saw_trailer = False

    def error(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}")

    def check_line(self, lineno, line):
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            self.error(lineno, f"not valid JSON: {e}")
            return
        if not isinstance(record, dict):
            self.error(lineno, "record is not a JSON object")
            return
        self.records += 1

        rtype = record.get("type")
        if rtype in TRAILER_TYPES:
            self.saw_trailer = True
            for key in ("dropped", "cap"):
                if key not in record:
                    self.error(lineno, f"{rtype} trailer missing '{key}'")
            return
        if self.saw_trailer:
            self.error(lineno, "data record after truncation trailer")

        for key in RESERVED_KEYS:
            if key not in record:
                self.error(lineno, f"missing reserved key '{key}'")
                return
        if rtype not in EVENT_TYPES and rtype not in SPAN_TYPES:
            self.error(lineno, f"unknown record type '{rtype}'")
            return

        t = record["t_us"]
        if not isinstance(t, int):
            self.error(lineno, f"t_us is not an integer: {t!r}")
            return
        if self.last_t is not None and t < self.last_t:
            self.error(
                lineno, f"t_us decreases: {t} after {self.last_t}")
        self.last_t = t

        for field in REQUIRED_FIELDS.get(rtype, ()):
            if field not in record:
                self.error(lineno, f"{rtype} missing '{field}'")

        if "zone" in record:
            zone = record["zone"]
            if not isinstance(zone, int) or isinstance(zone, bool) \
                    or zone < 0:
                self.error(
                    lineno, f"zone is not a non-negative integer: {zone!r}")
            else:
                self.zoned_records += 1
                self.zones_seen.add(zone)

        if rtype == "SpanBegin":
            self.span_records += 1
            kind = record.get("kind")
            if kind not in SPAN_KINDS:
                self.error(lineno, f"unknown span kind '{kind}'")
            for field in SPAN_BEGIN_KIND_FIELDS.get(kind, ()):
                if field not in record:
                    self.error(
                        lineno, f"SpanBegin kind={kind} missing '{field}'")
            # Re-begin of a live id is legal (router fallback re-picks);
            # the later begin supersedes the earlier one.
            self.open_spans[record.get("span_id")] = t
        elif rtype == "SpanEnd":
            self.span_records += 1
            if record.get("kind") not in SPAN_KINDS:
                self.error(
                    lineno, f"unknown span kind '{record.get('kind')}'")
            span_id = record.get("span_id")
            begin_t = self.open_spans.pop(span_id, None)
            if begin_t is None:
                self.error(
                    lineno, f"SpanEnd for span_id {span_id} with no "
                    "matching SpanBegin")
            elif t < begin_t:
                self.error(
                    lineno,
                    f"span {span_id} ends at {t} before begin {begin_t}")


def check_stream(lines):
    checker = Checker()
    for lineno, line in enumerate(lines, start=1):
        checker.check_line(lineno, line)
    if checker.records == 0:
        checker.errors.append("trace is empty")
    return checker


def run_cli(cli_path, site=False):
    """Run the golden attack scenario with spans and return the JSONL.

    With site=True the run is the two-zone variant with the flood
    concentrated on zone 0 — the zone-concentrated DOPE shape — so every
    span and power event must carry a zone label.
    """
    with tempfile.TemporaryDirectory(prefix="dope-schema-") as tmp:
        trace = Path(tmp) / "trace.jsonl"
        cmd = [
            cli_path, "--scheme", "antidope", "--budget", "low",
            "--attack-rps", "400", "--duration-s", "30", "--seed", "42",
            "--battery-min", "2", "--spans", "--alerts",
            "--trace-out", str(trace),
        ]
        if site:
            cmd += ["--zones", "2", "--attack-zone", "0"]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        return trace.read_text().splitlines()


def main():
    parser = argparse.ArgumentParser(
        description="validate a dope JSONL trace export")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--cli", metavar="DOPESIM_CLI",
        help="run this dopesim_cli on the golden attack scenario with "
        "--spans and validate its JSONL export")
    source.add_argument(
        "--cli-site", metavar="DOPESIM_CLI",
        help="run the two-zone site variant (--zones 2 --attack-zone 0) "
        "and additionally require zone-labelled records")
    source.add_argument(
        "--gunzip", metavar="FILE_GZ",
        help="validate a gzip-compressed JSONL trace")
    source.add_argument(
        "trace", nargs="?", metavar="FILE",
        help="validate an uncompressed JSONL trace")
    args = parser.parse_args()

    if args.cli:
        lines = run_cli(args.cli)
        label = f"{args.cli} (golden attack scenario)"
    elif args.cli_site:
        lines = run_cli(args.cli_site, site=True)
        label = f"{args.cli_site} (two-zone site attack scenario)"
    elif args.gunzip:
        with gzip.open(args.gunzip, "rt") as f:
            lines = f.read().splitlines()
        label = args.gunzip
    else:
        lines = Path(args.trace).read_text().splitlines()
        label = args.trace

    checker = check_stream(lines)
    if args.cli_site:
        if checker.zoned_records == 0:
            checker.errors.append(
                "site run produced no zone-labelled records")
        elif len(checker.zones_seen) < 2:
            checker.errors.append(
                f"site run with 2 zones labelled only "
                f"zone(s) {sorted(checker.zones_seen)}")
    for message in checker.errors:
        print(f"trace_schema_check: {label}: {message}", file=sys.stderr)
    if checker.errors:
        print(
            f"trace_schema_check: FAIL — {len(checker.errors)} "
            f"violation(s) in {checker.records} record(s)",
            file=sys.stderr)
        return 1
    open_spans = len(checker.open_spans)
    print(
        f"trace_schema_check: OK — {checker.records} record(s), "
        f"{checker.span_records} span record(s), "
        f"{checker.zoned_records} zone-labelled, "
        f"{open_spans} span(s) left open")
    return 0


if __name__ == "__main__":
    sys.exit(main())
