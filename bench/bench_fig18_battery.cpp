// Figure 18: batteries' behaviour under different power management
// schemes when facing cyber-attacks.
//
// Paper: conventional shave-first designs heavily discharge under DOPE —
// a long high peak exhausts the (2-minute) battery; Anti-DOPE uses the
// battery only as a transition medium: it discharges when the attack
// changes and recharges as soon as the V/F settings are reconfigured.
// The figure's dark line is an attack that switches between the three
// DOPE types every 2 minutes.
#include <iostream>

#include "bench/bench_util.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

namespace {

/// SoC timeline for a scheme under a steady heavy-blend DOPE.
std::vector<metrics::Sample> steady_soc(scenario::SchemeKind scheme,
                                        Duration duration) {
  auto config = bench::eval_scenario(scheme, power::BudgetLevel::kLow);
  config.duration = duration;
  return scenario::run_scenario(config).battery_soc_timeline;
}

double soc_at(const std::vector<metrics::Sample>& soc, Time t) {
  double last = 1.0;
  for (const auto& s : soc) {
    if (s.t > t) break;
    last = s.value;
  }
  return last;
}

}  // namespace

int main() {
  bench::figure_header("Figure 18",
                       "Battery behaviour per scheme under attack");

  const Duration window = 15 * kMinute;
  const auto shaving = steady_soc(scenario::SchemeKind::kShaving, window);
  const auto antidope = steady_soc(scenario::SchemeKind::kAntiDope, window);
  const auto capping = steady_soc(scenario::SchemeKind::kCapping, window);

  std::cout << "\nbattery state of charge, steady 400 rps heavy DOPE, "
               "Low-PB, 2-minute battery\n";
  TextTable table({"t (s)", "Shaving", "Capping", "Anti-DOPE"});
  for (int b = 0; b <= 15; ++b) {
    const Time t = b * kMinute;
    table.row(b * 60, soc_at(shaving, t), soc_at(capping, t),
              soc_at(antidope, t));
  }
  table.print(std::cout);

  // ---- the attack-switching case (the figure's dark line) ----
  // Rebuild the Anti-DOPE scenario by hand so the attack can rotate
  // between the three DOPE types every 2 minutes.
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.budget_override = Watts{8 * 100.0 * 0.55};  // deficit when confined
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(
      scenario::make_scheme(scenario::SchemeKind::kAntiDope));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  // Rotate the DOPE type every 2 minutes.
  const workload::RequestTypeId rotation[] = {
      Catalog::kKMeans, Catalog::kWordCount, Catalog::kCollaFilt};
  for (int i = 0; i < 7; ++i) {
    engine.schedule_at((i + 1) * 2 * kMinute, [&attack_gen, &rotation, i] {
      attack_gen.set_mixture(
          workload::Mixture::single(rotation[i % 3]));
    });
  }
  metrics::TimelineRecorder soc_probe(
      engine, kSecond, [&cluster] { return cluster.battery()->soc(); });
  engine.run_until(window);

  std::cout << "\nAnti-DOPE with the attack type switching every 2 min\n";
  TextTable sw({"t (s)", "SoC"});
  for (int b = 0; b <= 15; ++b) {
    sw.row(b * 60, soc_at(soc_probe.samples(), b * kMinute));
  }
  sw.print(std::cout);
  std::cout << "battery discharge events: "
            << cluster.battery()->discharge_events() << "\n";

  // ---- shape checks ----
  bench::shape(
      "Shaving heavily discharges and exhausts the battery under the "
      "long DOPE peak",
      soc_at(shaving, 14 * kMinute) < 0.15);
  bench::shape("Capping never touches the battery",
               soc_at(capping, 14 * kMinute) > 0.999);
  bench::shape(
      "Anti-DOPE keeps the battery nearly full under a steady attack",
      soc_at(antidope, 14 * kMinute) > 0.85);
  bench::shape(
      "with switching attacks the battery discharges at transitions and "
      "recharges after V/F reconfiguration",
      cluster.battery()->discharge_events() > 0 &&
          soc_at(soc_probe.samples(), window - kMinute) > 0.5);
  return 0;
}
