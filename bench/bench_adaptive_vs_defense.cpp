// Closing experiment: the adaptive DOPE attacker (Fig. 12) against each
// defense (Table 2).
//
// The attacker only sees its own requests' fates, so two questions split:
//   1. does the attacker *believe* it caused a power emergency (it holds
//      once its observed latency degrades past the target)?
//   2. did legitimate users actually get hurt?
//
// Against conventional capping both answers are yes. Against Anti-DOPE
// something subtle happens: the attacker's requests land on the isolated
// suspect pool, queue behind each other, and look exactly like a
// successful attack — the attacker holds, satisfied — while normal users
// barely notice. Isolation doubles as deception.
#include <iostream>
#include <memory>

#include "attack/dope_attacker.hpp"
#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

using namespace dope;

namespace {

struct Outcome {
  bool attacker_believes_success = false;
  double final_rate = 0.0;
  std::uint64_t firewall_bans = 0;
  double normal_p90 = 0.0;
  double attack_mean_ms = 0.0;
  std::uint64_t violation_slots = 0;
};

Outcome run(scenario::SchemeKind scheme) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  net::FirewallConfig firewall;
  firewall.threshold_rps = 150.0;
  firewall.check_interval = 5 * kSecond;
  cc.firewall = firewall;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(scenario::make_scheme(scheme));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  normal.seed = 23;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  attack::DopeAttackerConfig config;
  config.mixture = bench::heavy_blend();
  config.num_agents = 64;
  attack::DopeAttacker attacker(engine, catalog, config,
                                cluster.edge_sink());
  cluster.add_record_listener(attacker.feedback_sink());

  engine.run_until(10 * kMinute);

  Outcome out;
  out.attacker_believes_success = attacker.emergency_achieved();
  out.final_rate = attacker.current_rate();
  out.firewall_bans = cluster.firewall()->total_bans();
  out.normal_p90 =
      cluster.request_metrics().normal_latency_ms().percentile(90);
  out.attack_mean_ms =
      cluster.request_metrics().attack_latency_ms().mean();
  out.violation_slots = cluster.slot_stats().violation_slots;
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "Adaptive attack vs. defenses",
      "Does the Fig. 12 attacker succeed — and does it know?");

  TextTable table({"defense", "attacker holds?", "final rate (rps)",
                   "fw bans", "attacker sees (ms)", "normal p90 (ms)"});
  Outcome capping, antidope;
  for (const auto scheme :
       {scenario::SchemeKind::kCapping, scenario::SchemeKind::kShaving,
        scenario::SchemeKind::kToken, scenario::SchemeKind::kAntiDope}) {
    const auto out = run(scheme);
    table.row(scenario::scheme_name(scheme),
              out.attacker_believes_success ? "yes" : "no",
              out.final_rate, static_cast<long long>(out.firewall_bans),
              out.attack_mean_ms, out.normal_p90);
    if (scheme == scenario::SchemeKind::kCapping) capping = out;
    if (scheme == scenario::SchemeKind::kAntiDope) antidope = out;
  }
  table.print(std::cout);

  bench::shape(
      "against Capping the adaptive attacker finds a real emergency "
      "(believes success AND normal users suffer)",
      capping.attacker_believes_success && capping.normal_p90 > 500.0);
  bench::shape(
      "the attacker always stays under the firewall's radar",
      capping.firewall_bans == 0 && antidope.firewall_bans == 0);
  bench::shape(
      "against Anti-DOPE the attacker is deceived: it sees its own "
      "requests crawl and holds, yet normal users are fine",
      antidope.attacker_believes_success &&
          antidope.attack_mean_ms > 500.0 && antidope.normal_p90 < 50.0);
  return 0;
}
