// Figure 10: CDF of power usage with and without firewalls.
//
// The attacker floods at 1000 rps from a handful of sources. Without a
// firewall the node power rides high; with a DDoS-deflate-style firewall
// (150 rps per-source threshold) the sources get banned — but only after
// the poll interval, so partial high-power spikes still appear early
// ("initiating delay of the defense method").
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct FirewallRun {
  Percentiles power;
  double early_mean = 0.0;  // mean power in the first firewall window
  double late_mean = 0.0;   // mean power after detection settled
  std::uint64_t bans = 0;
};

FirewallRun run(workload::RequestTypeId type, bool with_firewall) {
  auto config = bench::testbed_scenario();
  config.attack_rps = 1'000.0;
  config.attack_mixture = workload::Mixture::single(type);
  config.attack_agents = 4;  // few, hot sources: 250 rps each
  config.duration = 5 * kMinute;
  if (with_firewall) {
    net::FirewallConfig firewall;
    firewall.threshold_rps = 150.0;
    firewall.check_interval = 5 * kSecond;
    firewall.ban_duration = kHour;
    config.firewall = firewall;
  }
  const auto result = scenario::run_scenario(config);
  FirewallRun out;
  for (double v : result.power_samples_normalized) out.power.add(v);
  double early_sum = 0, late_sum = 0;
  std::size_t early_n = 0, late_n = 0;
  for (const auto& s : result.power_timeline) {
    if (s.t < 5 * kSecond) {
      early_sum += s.value;
      ++early_n;
    } else if (s.t > 30 * kSecond) {
      late_sum += s.value;
      ++late_n;
    }
  }
  out.early_mean = early_n ? early_sum / static_cast<double>(early_n) : 0;
  out.late_mean = late_n ? late_sum / static_cast<double>(late_n) : 0;
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "Figure 10", "CDF of power with and without firewalls (1000 rps)");

  const std::vector<workload::RequestTypeId> types = {
      Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
      Catalog::kTextCont};
  const auto catalog = workload::Catalog::standard();

  TextTable table({"type", "p50 no-fw", "p95 no-fw", "p50 fw", "p95 fw",
                   "fw early mean (W)", "fw late mean (W)"});
  std::vector<FirewallRun> without(types.size()), with(types.size());
  for (std::size_t t = 0; t < types.size(); ++t) {
    without[t] = run(types[t], false);
    with[t] = run(types[t], true);
    table.row(catalog.type(types[t]).name, without[t].power.percentile(50),
              without[t].power.percentile(95), with[t].power.percentile(50),
              with[t].power.percentile(95), with[t].early_mean,
              with[t].late_mean);
  }
  table.print(std::cout);

  bool firewall_cuts_power = true;
  bool early_spikes = true;
  for (std::size_t t = 0; t < types.size() - 1; ++t) {  // heavy types
    if (with[t].power.percentile(50) >=
        without[t].power.percentile(50) - 0.02) {
      firewall_cuts_power = false;
    }
    // Early window (pre-detection) runs hot relative to post-detection.
    if (with[t].early_mean < with[t].late_mean + 20.0) early_spikes = false;
  }
  bench::shape("the firewall eventually suppresses the high-power flood",
               firewall_cuts_power);
  bench::shape(
      "partial high-power spikes appear before the firewall reacts "
      "(initiating delay)",
      early_spikes);
  bench::shape(
      "without the firewall the flood rides near nameplate",
      without[0].power.percentile(95) > 0.9);
  return 0;
}
