// Figure 5: power caused by different traffic types at rate 100 rps.
//
//  (a) CDF of normalised power per traffic type (plus normal AliOS
//      users): abnormal traffic is higher and more stable than normal;
//      Colla-Filt's curve is right-most and sub-vertical (it saturates
//      node power);
//  (b) average power *per request* by type: K-means consumes the most
//      power per request; volume-based traffic consumes much less.
#include <iostream>

#include "antidope/profiler.hpp"
#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

namespace {

Percentiles power_cdf(std::optional<workload::RequestTypeId> type,
                      double rate = 100.0) {
  auto config = bench::testbed_scenario();
  if (type.has_value()) {
    // Attack traffic at the figure's rate, on top of normal users.
    config.attack_rps = rate;
    config.attack_mixture = workload::Mixture::single(*type);
  }
  const auto result = scenario::run_scenario(config);
  Percentiles dist;
  for (double v : result.power_samples_normalized) dist.add(v);
  return dist;
}

}  // namespace

int main() {
  bench::figure_header(
      "Figure 5",
      "Power of different traffic types (volume-based DoS is low-power)");

  // ---- (a) per-type power CDFs at 100 rps ----
  std::cout << "\n(a) CDF of power (normalised to nameplate) at 100 rps\n";
  const auto colla = power_cdf(Catalog::kCollaFilt);
  const auto kmeans = power_cdf(Catalog::kKMeans);
  const auto wordcount = power_cdf(Catalog::kWordCount);
  const auto textcont = power_cdf(Catalog::kTextCont);
  const auto normal_only = power_cdf(std::nullopt);

  TextTable a({"percentile", "Colla-Filt", "K-means", "Word-Count",
               "Text-Cont", "normal only"});
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    a.row(p, colla.percentile(p), kmeans.percentile(p),
          wordcount.percentile(p), textcont.percentile(p),
          normal_only.percentile(p));
  }
  a.print(std::cout);

  // ---- (b) measured average power per request (offline profiler) ----
  std::cout << "\n(b) measured average power per request (W)\n";
  const auto catalog = workload::Catalog::standard();
  antidope::ProfilerConfig profiler_config;
  profiler_config.duration = 30 * kSecond;
  const auto profiles = antidope::profile_catalog(
      catalog, {}, power::DvfsLadder::make(), profiler_config);
  TextTable b({"type", "power/request (W)", "saturated node (W)",
               "base latency (ms)"});
  for (const auto& p : profiles) {
    b.row(catalog.type(p.type).name, p.per_request_power.value(),
          p.saturated_node_power.value(), p.base_latency_ms);
  }
  b.print(std::cout);

  // ---- shape checks ----
  bench::shape(
      "abnormal (heavy) traffic power is higher than normal users'",
      colla.percentile(50) > normal_only.percentile(50) + 0.05 &&
          kmeans.percentile(50) > normal_only.percentile(50));
  bench::shape("Colla-Filt's CDF is right-most",
               colla.percentile(50) >= kmeans.percentile(50) &&
                   colla.percentile(50) >= wordcount.percentile(50));
  // Sub-verticality appears once Colla-Filt expends the maximum power
  // resource across all servers (saturating rate for our scaled model).
  const auto colla_sat = power_cdf(Catalog::kCollaFilt, 300.0);
  const double sat_spread =
      colla_sat.percentile(95) - colla_sat.percentile(5);
  bench::shape(
      "saturating Colla-Filt's CDF is sub-vertical near nameplate",
      sat_spread < 0.05 && colla_sat.percentile(50) > 0.9);
  const auto& per_req = profiles;
  double kmeans_w = 0, volume_max = 0;
  for (const auto& p : per_req) {
    if (p.type == Catalog::kKMeans) kmeans_w = p.per_request_power.value();
    if (p.type == Catalog::kSynPacket || p.type == Catalog::kUdpPacket) {
      volume_max = std::max(volume_max, p.per_request_power.value());
    }
  }
  bool kmeans_highest = true;
  for (const auto& p : per_req) {
    if (p.per_request_power.value() > kmeans_w + 1e-9) {
      kmeans_highest = false;
    }
  }
  bench::shape("K-means consumes the most power per request",
               kmeans_highest);
  bench::shape("volume-based traffic consumes much less power per request",
               volume_max < 0.1 * kmeans_w);
  return 0;
}
