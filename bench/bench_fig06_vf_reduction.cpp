// Figure 6: effect of HTTP DoS attack on power capping (V/F scaling).
//
//  (a) applied V/F vs. traffic rate under Medium-PB with DVFS capping:
//      Colla-Filt triggers V/F reduction at the lowest rate (highest
//      power intensity) and the level plateaus once capping saturates;
//  (b) V/F level per request type at 1000 rps: K-means forces the
//      deepest reduction because its power barely responds to frequency.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

namespace {

/// Runs the testbed under Capping and returns the mean applied frequency
/// at the end of the run plus the deepest level seen.
scenario::ScenarioResult run_capped(workload::RequestTypeId type,
                                    double rate) {
  auto config = bench::testbed_scenario(scenario::SchemeKind::kCapping,
                                        power::BudgetLevel::kMedium);
  config.attack_rps = rate;
  config.attack_mixture = workload::Mixture::single(type);
  config.duration = 5 * kMinute;
  return scenario::run_scenario(config);
}

}  // namespace

int main() {
  bench::figure_header("Figure 6",
                       "Effect of HTTP DoS on power capping (V/F)");
  const auto ladder = power::DvfsLadder::make();

  // ---- (a) deepest V/F level vs rate, Medium-PB ----
  std::cout << "\n(a) deepest applied frequency (GHz) vs. traffic rate "
               "(Medium-PB, Capping)\n";
  const std::vector<double> rates = {10, 25, 50, 100, 250, 500, 1000};
  const std::vector<workload::RequestTypeId> types = {
      Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
      Catalog::kTextCont};
  std::vector<std::vector<double>> min_freq(
      types.size(), std::vector<double>(rates.size(), 0.0));
  for (std::size_t t = 0; t < types.size(); ++t) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const auto result = run_capped(types[t], rates[r]);
      min_freq[t][r] = ladder.frequency(result.min_level_seen).value();
    }
  }
  TextTable a({"rate (rps)", "Colla-Filt", "K-means", "Word-Count",
               "Text-Cont"});
  for (std::size_t r = 0; r < rates.size(); ++r) {
    a.row(rates[r], min_freq[0][r], min_freq[1][r], min_freq[2][r],
          min_freq[3][r]);
  }
  a.print(std::cout);

  // ---- (b) V/F per type at 1000 rps ----
  std::cout << "\n(b) frequency under a 1000 rps flood, by request type\n";
  TextTable b({"type", "deepest f (GHz)", "final mean f (GHz)"});
  std::vector<double> deepest(types.size());
  for (std::size_t t = 0; t < types.size(); ++t) {
    const auto result = run_capped(types[t], 1'000.0);
    deepest[t] = ladder.frequency(result.min_level_seen).value();
    const auto catalog = workload::Catalog::standard();
    b.row(catalog.type(types[t]).name, deepest[t],
          result.final_mean_frequency.value());
  }
  b.print(std::cout);

  // ---- shape checks ----
  // First rate at which each type forces any V/F reduction.
  const auto first_reduction = [&](std::size_t t) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      if (min_freq[t][r] < ladder.max_frequency().value() - 1e-9) {
        return rates[r];
      }
    }
    return 1e18;
  };
  bench::shape(
      "Colla-Filt incurs V/F reduction at the lowest traffic rate",
      first_reduction(0) <= first_reduction(1) &&
          first_reduction(0) <= first_reduction(2) &&
          first_reduction(0) < first_reduction(3));
  bench::shape(
      "V/F plateaus once the traffic rate exceeds a threshold",
      min_freq[0][rates.size() - 1] == min_freq[0][rates.size() - 2]);
  bench::shape(
      "K-means induces the deepest V/F reduction at 1000 rps "
      "(power insensitive to frequency)",
      deepest[1] <= deepest[0] && deepest[1] <= deepest[2] &&
          deepest[1] <= deepest[3]);
  bench::shape("light Text-Cont traffic never forces deep throttling",
               min_freq[3][rates.size() - 1] >= deepest[1]);
  return 0;
}
