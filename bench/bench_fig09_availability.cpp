// Figure 9: service availability under aggressive power oversubscription.
//
// Paper: aggressive oversubscription causes severe decline in service
// availability under attack — the power reduction compromises service
// state (requests time out / are rejected).
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;

int main() {
  bench::figure_header(
      "Figure 9", "Service availability under aggressive oversubscription");

  // Budget fractions from generous to aggressive.
  const std::vector<double> fractions = {1.00, 0.90, 0.85, 0.80, 0.75,
                                         0.70};
  const std::vector<double> rates = {0.0, 150.0, 300.0};

  TextTable table({"budget (% nameplate)", "no attack", "150 rps DOPE",
                   "300 rps DOPE"});
  // availability[rate index][fraction index]
  std::vector<std::vector<double>> avail(
      rates.size(), std::vector<double>(fractions.size(), 0.0));
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    for (std::size_t a = 0; a < rates.size(); ++a) {
      auto config = bench::testbed_scenario(scenario::SchemeKind::kCapping);
      config.budget_override = Watts{4 * 100.0 * fractions[f]};
      config.attack_rps = rates[a];
      if (rates[a] > 0) config.attack_mixture = bench::heavy_blend();
      config.duration = 5 * kMinute;
      const auto r = scenario::run_scenario(config);
      avail[a][f] = r.availability;
    }
    table.row(fractions[f] * 100.0, avail[0][f], avail[1][f], avail[2][f]);
  }
  table.print(std::cout);

  bench::shape("availability is perfect without an attack",
               *std::min_element(avail[0].begin(), avail[0].end()) > 0.999);
  bench::shape(
      "under attack, availability declines as oversubscription deepens",
      avail[2].back() < avail[2].front() - 0.05);
  bench::shape("a stronger flood hurts availability more",
               avail[2].back() <= avail[1].back() + 1e-9);
  return 0;
}
