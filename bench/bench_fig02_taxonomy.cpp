// Figure 2 companion: the attack taxonomy, measured.
//
// The paper's Fig. 2 sketches three attack surfaces: internal VM power
// attacks (out of scope for an Internet adversary), classic DoS through
// the network, and the new external power attack (DOPE). This bench runs
// one representative of each *external* class against the same rack and
// shows which resource each one actually exhausts:
//
//   volume flood (UDP)  -> connectivity: switch drops packets; power low
//   app-layer flood     -> server compute: queues/timeouts; power high,
//                          but detectable (few hot sources)
//   DOPE                -> the power envelope: no network loss, no
//                          detection, budget violated
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct Row {
  std::string name;
  double switch_drop = 0.0;       // network-layer loss (all traffic)
  double normal_timeout = 0.0;    // compute-layer loss for normal users
  Watts mean_power{0.0};
  std::uint64_t violations = 0;
  std::uint64_t bans = 0;
};

Row run(const std::string& name, workload::Mixture mixture, double rate,
        unsigned agents) {
  auto config = bench::testbed_scenario();
  config.attack_rps = rate;
  config.attack_mixture = std::move(mixture);
  config.attack_agents = agents;
  config.duration = 5 * kMinute;
  config.budget = power::BudgetLevel::kLow;

  // Full edge: switch + firewall.
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = config.num_servers;
  cc.budget_level = config.budget;
  cc.network_switch = net::SwitchConfig{.capacity_pps = 10'000.0,
                                        .buffer_packets = 128.0};
  net::FirewallConfig firewall;
  firewall.threshold_rps = 150.0;
  firewall.check_interval = 5 * kSecond;
  cc.firewall = firewall;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(
      scenario::make_scheme(scenario::SchemeKind::kNone));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = config.normal_rps;
  normal.num_sources = 128;
  normal.seed = 17;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = config.attack_mixture.value();
  attack.rate_rps = config.attack_rps;
  attack.num_sources = config.attack_agents;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.seed = 18;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());

  metrics::TimelineRecorder power_probe(
      engine, kSecond,
      [&cluster] { return cluster.total_power().value(); });
  engine.run_until(config.duration);

  Row row;
  row.name = name;
  row.switch_drop = cluster.network_switch()->drop_rate();
  const auto& n = cluster.request_metrics().normal_counts();
  row.normal_timeout =
      n.terminal() == 0
          ? 0.0
          : static_cast<double>(n.timed_out + n.rejected_queue_full) /
                static_cast<double>(n.terminal());
  row.mean_power = Watts{power_probe.stats().mean()};
  row.violations = cluster.slot_stats().violation_slots;
  row.bans = cluster.firewall()->total_bans();
  return row;
}

}  // namespace

int main() {
  bench::figure_header("Figure 2 companion",
                       "Which resource does each attack class exhaust?");

  const auto volume =
      run("UDP volume flood (50k pps, 8 hot bots)",
          workload::Mixture::single(Catalog::kUdpPacket), 50'000.0, 8);
  const auto applayer =
      run("app-layer flood (1000 rps, 4 hot bots)",
          workload::Mixture::single(Catalog::kCollaFilt), 1'000.0, 4);
  const auto dope = run("DOPE (300 rps, 64 stealth bots)",
                        bench::heavy_blend(), 300.0, 64);

  TextTable table({"attack", "switch drop %", "normal loss %",
                   "mean power (W)", "budget violations", "fw bans"});
  for (const auto& row : {volume, applayer, dope}) {
    table.row(row.name, row.switch_drop * 100.0,
              row.normal_timeout * 100.0, row.mean_power.value(),
              static_cast<long long>(row.violations),
              static_cast<long long>(row.bans));
  }
  table.print(std::cout);

  bench::shape(
      "the volume flood exhausts connectivity (switch drops) at low power",
      volume.switch_drop > 0.5 && volume.mean_power < Watts{250.0});
  bench::shape(
      "the hot app-layer flood draws high power but gets firewalled",
      applayer.bans > 0);
  bench::shape(
      "DOPE exhausts only the power envelope: no switch loss, no bans, "
      "sustained budget violations",
      dope.switch_drop < 0.01 && dope.bans == 0 && dope.violations > 100);
  return 0;
}
