// Figure 8: service time of the four observed traffic types under
// power capping.
//
// Paper: Colla-Filt and K-means floods arouse the most serious
// degradation of (normal users') service quality.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

int main() {
  bench::figure_header("Figure 8",
                       "Service time per traffic type under capping");

  const std::vector<workload::RequestTypeId> types = {
      Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
      Catalog::kTextCont};
  const auto catalog = workload::Catalog::standard();

  TextTable table({"flood type", "normal mean RT (ms)", "normal p90 (ms)",
                   "availability"});
  std::vector<double> mean_ms(types.size());
  for (std::size_t t = 0; t < types.size(); ++t) {
    auto config = bench::testbed_scenario(scenario::SchemeKind::kCapping,
                                          power::BudgetLevel::kLow);
    config.attack_rps = 300.0;
    config.attack_mixture = workload::Mixture::single(types[t]);
    config.duration = 5 * kMinute;
    const auto r = scenario::run_scenario(config);
    mean_ms[t] = r.mean_ms;
    table.row(catalog.type(types[t]).name, r.mean_ms, r.p90_ms,
              r.availability);
  }
  table.print(std::cout);

  bench::shape(
      "Colla-Filt and K-means floods degrade service quality the most",
      std::min(mean_ms[0], mean_ms[1]) >
          std::max(mean_ms[2], mean_ms[3]));
  bench::shape("a light Text-Cont flood is the least damaging",
               mean_ms[3] <= mean_ms[0] && mean_ms[3] <= mean_ms[1] &&
                   mean_ms[3] <= mean_ms[2]);
  return 0;
}
