// Figure 15: Anti-DOPE allocates power with slight degradation for
// normal users.
//
//  (a) power timeline: low-utilisation EC service, DOPE onset at t=120 s;
//      Anti-DOPE confines/throttles the surge back inside the supply;
//  (b) normal users' response-time statistics under Anti-DOPE with and
//      without the attack (min / mean / p90 / p95 / p99 / max).
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;

namespace {

sweep::GridSpec antidope_grid() {
  sweep::GridSpec grid;
  grid.base = bench::eval_scenario(scenario::SchemeKind::kAntiDope,
                                   power::BudgetLevel::kMedium);
  // A tight explicit budget: the confined attack still causes a deficit
  // that RPM must actively throttle away (the paper's Fig. 15a shows the
  // controller visibly pulling power down).
  grid.base.budget_override = Watts{8 * 100.0 * 0.55};
  grid.base.duration = 10 * kMinute;
  // Attack axis: the DOPE flood arriving at t=120 s, and no attack.
  auto dope = sweep::AttackProfile::dope(400.0);
  dope.start = 120 * kSecond;
  grid.attacks = {dope, sweep::AttackProfile::none()};
  return grid;
}

}  // namespace

int main() {
  bench::figure_header(
      "Figure 15",
      "Anti-DOPE: power control with slight normal-user degradation");

  const auto runs = bench::run_grid(antidope_grid());
  const auto& attacked = runs[0];
  const auto& baseline = runs[1];
  bench::result_metrics("attacked", attacked);
  bench::result_metrics("baseline", baseline);

  // ---- (a) power timeline around the attack onset ----
  std::cout << "\n(a) cluster power (W), DOPE onset at t=120 s, budget = "
            << attacked.budget.value() << " W\n";
  TextTable a({"t (s)", "power w/ DOPE", "power no attack"});
  const auto mean_between = [](const scenario::ScenarioResult& r, Time lo,
                               Time hi) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : r.power_timeline) {
      if (s.t >= lo && s.t < hi) {
        sum += s.value;
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  for (int b = 0; b < 20; ++b) {
    const Time lo = b * 30 * kSecond;
    const Time hi = lo + 30 * kSecond;
    a.row(b * 30, mean_between(attacked, lo, hi),
          mean_between(baseline, lo, hi));
  }
  a.print(std::cout);

  // ---- (b) normal users' response-time profile ----
  std::cout << "\n(b) normal users' response time (ms) under Anti-DOPE\n";
  TextTable b({"statistic", "no attack", "under DOPE"});
  b.row("min", baseline.min_ms, attacked.min_ms);
  b.row("mean", baseline.mean_ms, attacked.mean_ms);
  b.row("p90", baseline.p90_ms, attacked.p90_ms);
  b.row("p95", baseline.p95_ms, attacked.p95_ms);
  b.row("p99", baseline.p99_ms, attacked.p99_ms);
  b.row("max", baseline.max_ms, attacked.max_ms);
  b.print(std::cout);
  std::cout << "availability under DOPE: " << attacked.availability << "\n";

  // ---- shape checks ----
  const double before = mean_between(attacked, 0, 120 * kSecond);
  const double spike = mean_between(attacked, 120 * kSecond,
                                    150 * kSecond);
  const double settled =
      mean_between(attacked, 5 * kMinute, 10 * kMinute);
  bench::shape("DOPE onset produces a sharp increase in total power",
               spike > before + 50.0);
  bench::shape("Anti-DOPE settles power back to the supply budget",
               settled <= attacked.budget.value() * 1.05);
  bench::shape(
      "normal users' p90/p95 are only slightly worse than the baseline",
      attacked.p90_ms < 3.0 * baseline.p90_ms + 10.0 &&
          attacked.p95_ms < 3.0 * baseline.p95_ms + 20.0);
  bench::shape("availability of normal users stays high",
               attacked.availability > 0.9);
  return 0;
}
