// Ablation: auto-scaling as a DOPE amplifier.
//
// The paper's Section 1 argues that the reflexes data centers rely on for
// availability — load balancing and auto-scaling — are exactly what lets
// hostile requests "generate the maximum possible load on their targeted
// servers". This bench quantifies that: the same DOPE flood against a
// statically provisioned fleet vs. an auto-scaled fleet, with and without
// the attack.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct Outcome {
  Watts calm_power{0.0};
  Watts attacked_power{0.0};
  std::size_t calm_serving = 0;
  std::size_t attacked_serving = 0;
  Joules energy{0.0};
};

Outcome run(bool autoscale) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cluster::Cluster cluster(engine, catalog, cc);
  std::unique_ptr<cluster::AutoScaler> scaler;
  if (autoscale) {
    cluster::AutoScalerConfig config;
    config.min_active = 2;
    config.step = 2;
    scaler = std::make_unique<cluster::AutoScaler>(cluster, config);
  }

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 60.0;  // light diurnal trough
  normal.num_sources = 64;
  normal.seed = 5;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  // Calm phase.
  engine.run_until(4 * kMinute);
  Outcome out;
  out.calm_power = cluster.total_power();
  out.calm_serving =
      scaler ? scaler->serving_count() : cluster.num_servers();

  // DOPE flood.
  workload::GeneratorConfig attack;
  attack.mixture = bench::heavy_blend();
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.start = engine.now();
  attack.seed = 6;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  engine.run_until(10 * kMinute);
  out.attacked_power = cluster.total_power();
  out.attacked_serving =
      scaler ? scaler->serving_count() : cluster.num_servers();
  out.energy = cluster.total_energy();
  return out;
}

}  // namespace

int main() {
  bench::figure_header("Ablation",
                       "Auto-scaling amplifies DOPE's power leverage");

  const auto fixed = run(false);
  const auto scaled = run(true);

  TextTable table({"fleet", "calm W", "calm serving", "under-DOPE W",
                   "under-DOPE serving", "total energy (J)"});
  table.row("static (8 nodes)", fixed.calm_power.value(),
            static_cast<int>(fixed.calm_serving),
            fixed.attacked_power.value(),
            static_cast<int>(fixed.attacked_serving),
            fixed.energy.value());
  table.row("auto-scaled", scaled.calm_power.value(),
            static_cast<int>(scaled.calm_serving),
            scaled.attacked_power.value(),
            static_cast<int>(scaled.attacked_serving),
            scaled.energy.value());
  table.print(std::cout);

  const double fixed_swing = fixed.attacked_power / fixed.calm_power;
  const double scaled_swing = scaled.attacked_power / scaled.calm_power;
  std::cout << "\npower swing caused by the attack: static " << fixed_swing
            << "x, auto-scaled " << scaled_swing << "x\n";

  bench::shape("auto-scaling saves power while calm",
               scaled.calm_power < 0.6 * fixed.calm_power);
  bench::shape(
      "the attack makes the auto-scaler wake the whole fleet for the "
      "adversary",
      scaled.attacked_serving == 8);
  bench::shape(
      "auto-scaling widens the attacker-controllable power swing",
      scaled_swing > 1.5 * fixed_swing);
  return 0;
}
