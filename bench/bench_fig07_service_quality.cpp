// Figure 7: service quality vs. traffic rate in an aggressively
// power-insufficient data center.
//
// The paper: "DoS-driven power surges show 7.4X longer mean response time
// and increase 8.9X 90th percentile tail latency after the request number
// exceeds about 100" — i.e. there is a knee where the flood starts
// tripping the power cap, and past it DVFS throttling compounds queueing.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

int main() {
  bench::figure_header(
      "Figure 7", "Service quality vs. traffic rate (power-insufficient)");

  // Aggressively power-insufficient: well below Low-PB.
  const Watts kTightBudget{4 * 100.0 * 0.72};

  const std::vector<double> rates = {10, 25, 50, 75, 100, 150, 250, 400};
  TextTable table({"attack rate (rps)", "mean RT (ms)", "p90 (ms)",
                   "availability", "deepest f (GHz)"});
  std::vector<double> mean_ms(rates.size()), p90_ms(rates.size());
  const auto ladder = power::DvfsLadder::make();
  for (std::size_t i = 0; i < rates.size(); ++i) {
    auto config = bench::testbed_scenario(scenario::SchemeKind::kCapping);
    config.budget_override = kTightBudget;
    config.attack_rps = rates[i];
    config.attack_mixture = bench::heavy_blend();
    config.duration = 5 * kMinute;
    const auto r = scenario::run_scenario(config);
    mean_ms[i] = r.mean_ms;
    p90_ms[i] = r.p90_ms;
    table.row(rates[i], r.mean_ms, r.p90_ms, r.availability,
              ladder.frequency(r.min_level_seen).value());
  }
  table.print(std::cout);

  // Reference: the lowest observed (pre-knee) service quality.
  const double base_mean = mean_ms[0];
  const double base_p90 = p90_ms[0];
  const double worst_mean = *std::max_element(mean_ms.begin(), mean_ms.end());
  const double worst_p90 = *std::max_element(p90_ms.begin(), p90_ms.end());
  std::cout << "\nmean RT degradation: " << worst_mean / base_mean
            << "x (paper: 7.4x)\n";
  std::cout << "p90 degradation:     " << worst_p90 / base_p90
            << "x (paper: 8.9x)\n";

  // Find the knee: the first rate where the mean jumps by > 2x over the
  // previous point.
  double knee = -1;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    if (mean_ms[i] > 2.0 * mean_ms[i - 1]) {
      knee = rates[i];
      break;
    }
  }
  std::cout << "knee located at ~" << knee << " rps (paper: ~100 rps)\n";

  bench::shape("mean response time degrades by >= 7x past the knee",
               worst_mean >= 7.0 * base_mean);
  bench::shape("p90 tail latency degrades by >= 8x past the knee",
               worst_p90 >= 8.0 * base_p90);
  bench::shape("a knee exists in the 50-250 rps band",
               knee >= 50.0 && knee <= 250.0);
  bench::shape("service quality is monotonically worse past the knee",
               mean_ms.back() >= mean_ms[rates.size() - 2] * 0.8);
  return 0;
}
