// Figure 1 companion: DoS-induced unplanned power outages.
//
// The paper's motivation (Fig. 1) is survey data — DoS among the top
// root causes of unplanned data-center outages, with escalating cost.
// This bench closes the loop mechanistically: a DOPE flood against an
// oversubscribed feed protected only by a breaker produces real outages
// (tripped breaker, dark servers, lost in-flight work), while any
// budget-respecting power-management scheme keeps the breaker closed.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct Outcome {
  std::uint64_t outages = 0;
  double downtime_s = 0.0;
  std::uint64_t lost_requests = 0;
  double availability = 0.0;
};

Outcome run(scenario::SchemeKind scheme_kind) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  cc.breaker = power::BreakerSpec{.rated = Watts{640.0},
                                  .instant_trip_multiple = 2.0,
                                  .thermal_capacity = 20.0,
                                  .cooling_rate = 0.1};
  cc.outage_recovery = 30 * kSecond;
  cc.reboot_time = 10 * kSecond;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(scenario::make_scheme(scheme_kind));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  normal.seed = 11;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = bench::heavy_blend();
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.seed = 12;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  engine.run_until(10 * kMinute);

  Outcome out;
  out.outages = cluster.slot_stats().outages;
  out.downtime_s = to_seconds(cluster.slot_stats().downtime);
  out.lost_requests =
      cluster.request_metrics().normal_counts().failed_outage;
  out.availability = cluster.request_metrics().availability();
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "Figure 1 companion",
      "Unplanned outages: DOPE vs. a breaker-protected feed");
  std::cout << "(Low-PB feed behind a 640 W breaker with a 20 s thermal "
               "capacity; 400 rps\n heavy-URL DOPE for 10 minutes)\n\n";

  TextTable table({"scheme", "outages", "downtime (s)",
                   "in-flight requests lost", "availability"});
  Outcome none, capping, antidope;
  for (const auto scheme :
       {scenario::SchemeKind::kNone, scenario::SchemeKind::kCapping,
        scenario::SchemeKind::kShaving, scenario::SchemeKind::kAntiDope}) {
    const auto out = run(scheme);
    table.row(scenario::scheme_name(scheme),
              static_cast<long long>(out.outages), out.downtime_s,
              static_cast<long long>(out.lost_requests), out.availability);
    if (scheme == scenario::SchemeKind::kNone) none = out;
    if (scheme == scenario::SchemeKind::kCapping) capping = out;
    if (scheme == scenario::SchemeKind::kAntiDope) antidope = out;
  }
  table.print(std::cout);

  bench::shape(
      "without power management, DOPE causes repeated unplanned outages",
      none.outages >= 2 && none.lost_requests > 0);
  bench::shape("every power-management scheme keeps the breaker closed",
               capping.outages == 0 && antidope.outages == 0);
  bench::shape(
      "outages destroy availability far beyond what throttling costs",
      none.availability < antidope.availability);
  return 0;
}
