// Figure 17: 90th-percentile tail latency while using different power
// schemes to handle DOPE.
//
// Paper: tail latency reaches hundreds of ms under reduced budgets for
// conventional capping; Anti-DOPE sustains normal users' tails
// "regardless of the supplied power" (68.1% better p90); Shaving's
// battery does not function well against a long-duration peak; Token
// yields good tails only by discarding traffic.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;

int main() {
  bench::figure_header("Figure 17", "p90 tail latency per scheme/budget");

  const std::vector<power::BudgetLevel> budgets = {
      power::BudgetLevel::kNormal, power::BudgetLevel::kHigh,
      power::BudgetLevel::kMedium, power::BudgetLevel::kLow};

  std::cout << "\np90 / p95 tail latency of normal users (ms), DOPE at "
               "400 rps, 10-minute window\n";
  TextTable table({"budget", "Capping p90", "Shaving p90", "Token p90",
                   "Anti-DOPE p90", "Anti-DOPE p95"});
  // results[budget][scheme] via dope::sweep, with a long window: it
  // outlives the 2-minute battery, exposing Shaving.
  const auto results =
      bench::eval_grid(budgets, 400.0, [](scenario::ScenarioConfig& c) {
        c.duration = 15 * kMinute;
      });
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const auto& r = results[b];
    table.row(power::budget_name(budgets[b]), r[0].p90_ms, r[1].p90_ms,
              r[2].p90_ms, r[3].p90_ms, r[3].p95_ms);
  }
  table.print(std::cout);

  const auto& normal = results[0];
  const auto& medium = results[2];
  const auto& low = results[3];
  const double improvement =
      1.0 - medium[3].p90_ms / medium[0].p90_ms;
  std::cout << "\nAnti-DOPE p90 improvement vs Capping at Medium-PB: "
            << improvement * 100.0 << "% (paper: 68.1%)\n";

  bench::shape("with adequate power (Normal-PB) DOPE only slightly "
               "prolongs the tail for power schemes",
               normal[0].p90_ms < 100.0 && normal[1].p90_ms < 100.0);
  bench::shape(
      "Anti-DOPE improves p90 by >= 68.1% vs Capping under reduced budgets",
      improvement >= 0.681 &&
          (1.0 - low[3].p90_ms / low[0].p90_ms) >= 0.681);
  bench::shape(
      "batteries do not function well against the long-duration peak "
      "(Shaving tail degrades at low budgets)",
      low[1].p90_ms > 2.0 * normal[1].p90_ms);
  bench::shape("Token yields a good tail by abandoning requests",
               low[2].p90_ms < low[0].p90_ms &&
                   low[2].drop_fraction > 0.10);
  bench::shape(
      "Anti-DOPE sustains the tail regardless of the supplied power",
      low[3].p90_ms < 2.0 * normal[3].p90_ms + 10.0);
  return 0;
}
