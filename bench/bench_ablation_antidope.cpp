// Ablations of Anti-DOPE's design choices:
//
//  (a) suspect pool sizing — the fraction of servers sacrificed to
//      isolation trades legitimate heavy-tail latency against how much
//      firepower the attack can pin down;
//  (b) suspect power threshold — where the URL classifier draws the line
//      between heavy and light services;
//  (c) management slot length — control-loop responsiveness vs. actuation
//      churn and battery usage;
//  (d) classification quality — Anti-DOPE's URL heuristic vs. the
//      perfect-knowledge Oracle (upper bound) vs. uniform and per-node
//      capping (no isolation at all).
#include <iostream>

#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "schemes/oracle.hpp"
#include "schemes/rapl_capping.hpp"
#include "workload/generator.hpp"

using namespace dope;

namespace {

scenario::ScenarioConfig base() {
  auto config = bench::eval_scenario(scenario::SchemeKind::kAntiDope,
                                     power::BudgetLevel::kLow);
  config.duration = 5 * kMinute;
  return config;
}

/// Runs a hand-assembled cluster with an arbitrary scheme (for schemes
/// outside the ScenarioConfig enum: Oracle, RAPL-Capping).
struct ManualResult {
  double mean_ms = 0.0;
  double p90_ms = 0.0;
  double availability = 0.0;
};

ManualResult run_manual(std::unique_ptr<cluster::PowerScheme> scheme) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(std::move(scheme));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  normal.seed = 85;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = bench::heavy_blend();
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.seed = 86;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  engine.run_until(5 * kMinute);

  ManualResult result;
  const auto& m = cluster.request_metrics();
  result.mean_ms = m.normal_latency_ms().mean();
  result.p90_ms = m.normal_latency_ms().percentile(90);
  result.availability = m.availability();
  return result;
}

}  // namespace

int main() {
  bench::figure_header("Ablation", "Anti-DOPE design choices");

  // ---- (a) suspect pool fraction ----
  // Each config knob becomes a named variant on a sweep grid, so the
  // section's runs share the multicore pool instead of a serial loop.
  std::cout << "\n(a) suspect pool fraction (Low-PB, 400 rps attack)\n";
  TextTable a({"fraction", "pool size", "mean (ms)", "p90 (ms)",
               "availability"});
  const std::vector<double> fractions = {0.125, 0.25, 0.375, 0.5};
  sweep::GridSpec grid_a;
  grid_a.base = base();
  for (const double fraction : fractions) {
    grid_a.variants.push_back(
        {"pool-" + std::to_string(fraction),
         [fraction](scenario::ScenarioConfig& c) {
           c.antidope.suspect_pool_fraction = fraction;
         }});
  }
  const auto runs_a = bench::run_grid(grid_a);
  std::vector<double> avail_by_fraction;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const auto& r = runs_a[i];
    a.row(fractions[i], static_cast<int>(8 * fractions[i] + 0.5),
          r.mean_ms, r.p90_ms, r.availability);
    avail_by_fraction.push_back(r.availability);
  }
  a.print(std::cout);
  bench::shape(
      "a larger suspect pool improves availability (more capacity for "
      "the co-located legitimate heavy tail)",
      avail_by_fraction.back() > avail_by_fraction.front());

  // ---- (b) suspect power threshold ----
  std::cout << "\n(b) suspect power threshold\n";
  TextTable b({"threshold (W)", "suspect types", "mean (ms)", "p90 (ms)",
               "availability"});
  const auto catalog = workload::Catalog::standard();
  const std::vector<double> thresholds = {5.0, 10.0, 16.0, 20.0};
  sweep::GridSpec grid_b;
  grid_b.base = base();
  for (const double threshold : thresholds) {
    grid_b.variants.push_back(
        {"threshold-" + std::to_string(threshold),
         [threshold](scenario::ScenarioConfig& c) {
           c.antidope.suspect_power_threshold = Watts{threshold};
         }});
  }
  const auto runs_b = bench::run_grid(grid_b);
  double p90_mid = 0.0, p90_loose = 0.0, avail_low = 1.0;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double threshold = thresholds[i];
    const auto list =
        antidope::SuspectList::from_catalog(catalog, Watts{threshold});
    const auto& r = runs_b[i];
    b.row(threshold, static_cast<int>(list.suspect_count()), r.mean_ms,
          r.p90_ms, r.availability);
    if (threshold == 5.0) avail_low = r.availability;
    if (threshold == 10.0) p90_mid = r.p90_ms;
    if (threshold == 20.0) p90_loose = r.p90_ms;
  }
  b.print(std::cout);
  bench::shape(
      "too low a threshold misroutes normal traffic into the suspect "
      "pool (availability collapses)",
      avail_low < 0.5);
  bench::shape(
      "too high a threshold lets heavy attack URLs into the innocent "
      "pool (tail degrades vs. the calibrated 10 W)",
      p90_loose > 5.0 * p90_mid);

  // ---- (c) management slot length ----
  std::cout << "\n(c) management slot length\n";
  TextTable c({"slot (ms)", "mean (ms)", "p90 (ms)",
               "demand violations", "battery used (J)"});
  const std::vector<Duration> slots = {250 * kMillisecond, kSecond,
                                       4 * kSecond};
  sweep::GridSpec grid_c;
  grid_c.base = base();
  grid_c.base.budget_override = Watts{8 * 100.0 * 0.55};  // active control
  for (const Duration slot : slots) {
    grid_c.variants.push_back(
        {"slot-" + std::to_string(to_millis(slot)) + "ms",
         [slot](scenario::ScenarioConfig& cfg) { cfg.slot = slot; }});
  }
  const auto runs_c = bench::run_grid(grid_c);
  std::vector<std::uint64_t> violations;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Duration slot = slots[i];
    const auto& r = runs_c[i];
    c.row(to_millis(slot), r.mean_ms, r.p90_ms,
          static_cast<long long>(r.slot_stats.violation_slots),
          r.battery_discharged.value());
    violations.push_back(r.slot_stats.violation_slots *
                         static_cast<std::uint64_t>(to_millis(slot)));
  }
  c.print(std::cout);
  bench::shape(
      "a slower control loop leaves more violation-time uncorrected",
      violations.back() >= violations.front());

  // ---- (d) classification quality ----
  std::cout << "\n(d) isolation quality: uniform vs per-node capping vs "
               "Anti-DOPE vs Oracle\n";
  const auto uniform =
      run_manual(scenario::make_scheme(scenario::SchemeKind::kCapping));
  const auto per_node = run_manual(
      std::make_unique<schemes::RaplCappingScheme>());
  const auto antidope =
      run_manual(scenario::make_scheme(scenario::SchemeKind::kAntiDope));
  const auto oracle = run_manual(std::make_unique<schemes::OracleScheme>());
  TextTable d({"scheme", "mean (ms)", "p90 (ms)", "availability"});
  d.row("Capping (uniform)", uniform.mean_ms, uniform.p90_ms,
        uniform.availability);
  d.row("RAPL-Capping (per-node)", per_node.mean_ms, per_node.p90_ms,
        per_node.availability);
  d.row("Anti-DOPE (URL classes)", antidope.mean_ms, antidope.p90_ms,
        antidope.availability);
  d.row("Oracle (ground truth)", oracle.mean_ms, oracle.p90_ms,
        oracle.availability);
  d.print(std::cout);

  bench::shape("isolation beats both capping variants on p90",
               antidope.p90_ms < uniform.p90_ms &&
                   antidope.p90_ms < per_node.p90_ms);
  bench::shape(
      "the Oracle's only edge over Anti-DOPE is the legitimate heavy "
      "tail (better mean/availability, similar p90)",
      oracle.mean_ms <= antidope.mean_ms &&
          oracle.availability >= antidope.availability &&
          oracle.p90_ms < 2.0 * antidope.p90_ms + 10.0);

  // ---- (e) uniform vs per-node DPM throttling ----
  std::cout << "\n(e) Algorithm 1 throttling search: uniform level vs "
               "per-node TL(p,q)\n";
  sweep::GridSpec grid_e;
  grid_e.base = base();
  grid_e.base.budget_override = Watts{8 * 100.0 * 0.55};  // active throttle
  grid_e.variants = {
      {"uniform", {}},
      {"per-node", [](scenario::ScenarioConfig& cfg) {
         cfg.antidope.per_node_throttling = true;
       }}};
  const auto runs_e = bench::run_grid(grid_e);
  const auto& uniform_dpm = runs_e[0];
  const auto& per_node_dpm = runs_e[1];
  TextTable e({"DPM search", "mean (ms)", "p90 (ms)", "availability",
               "violation slots"});
  e.row("uniform level", uniform_dpm.mean_ms, uniform_dpm.p90_ms,
        uniform_dpm.availability,
        static_cast<long long>(uniform_dpm.slot_stats.violation_slots));
  e.row("per-node TL(p,q)", per_node_dpm.mean_ms, per_node_dpm.p90_ms,
        per_node_dpm.availability,
        static_cast<long long>(per_node_dpm.slot_stats.violation_slots));
  e.print(std::cout);
  bench::shape(
      "per-node DPM enforces the budget at least as well as uniform "
      "while serving normal users no worse",
      per_node_dpm.slot_stats.violation_slots <=
              uniform_dpm.slot_stats.violation_slots + 30 &&
          per_node_dpm.p90_ms < 2.0 * uniform_dpm.p90_ms + 10.0);
  return 0;
}
