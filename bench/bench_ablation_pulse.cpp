// Ablation: pulsating DOPE vs. steady DOPE.
//
// The Fig. 12 attacker "repeatedly adjusts its request number" — so which
// schedule hurts most per request sent? A plausible guess is a *pulse*
// (strike, let the victim's slow V/F recovery crawl, strike again).
// Measured answer: against a capping defense the *steady* flood is the
// more efficient weapon, because the damage mechanism is a queueing
// collapse that compounds super-linearly with sustained pressure; every
// quiet half-minute lets the backlog drain and resets the spiral. The
// pulse does halve the attacker's cost and still wrecks the tail, but
// watt-for-watt the steady flood wins; Anti-DOPE is indifferent to
// either schedule.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;

namespace {

struct Outcome {
  double mean_ms = 0.0;
  double p90_ms = 0.0;
  std::uint64_t attack_sent = 0;
};

Outcome outcome_of(const scenario::ScenarioResult& r) {
  Outcome out;
  out.mean_ms = r.mean_ms;
  out.p90_ms = r.p90_ms;
  out.attack_sent = r.attack_counts.terminal();
  return out;
}

}  // namespace

int main() {
  bench::figure_header("Ablation",
                       "Pulsating vs. steady DOPE (attack efficiency)");

  // scheme × attack-schedule grid through dope::sweep.
  sweep::GridSpec grid;
  grid.base = bench::eval_scenario(scenario::SchemeKind::kCapping,
                                   power::BudgetLevel::kLow);
  grid.base.duration = 10 * kMinute;
  grid.schemes = {scenario::SchemeKind::kCapping,
                  scenario::SchemeKind::kAntiDope};
  auto steady = sweep::AttackProfile::dope(400.0);
  steady.name = "steady-400";
  auto pulse = sweep::AttackProfile::dope(400.0);
  pulse.name = "pulse-30s-30s";
  // 30 s on / 30 s off.
  for (Time t = 0; t < grid.base.duration; t += kMinute) {
    pulse.rate_plan.push_back({t, 400.0});
    pulse.rate_plan.push_back({t + 30 * kSecond, 0.0});
  }
  grid.attacks = {steady, pulse};
  const auto runs = bench::run_grid(grid);

  const auto capping_steady = outcome_of(runs[0]);
  const auto capping_pulse = outcome_of(runs[1]);
  const auto antidope_steady = outcome_of(runs[2]);
  const auto antidope_pulse = outcome_of(runs[3]);

  TextTable table({"defense", "attack", "normal mean (ms)",
                   "normal p90 (ms)", "attack requests",
                   "damage/request (ms)"});
  const auto damage = [](const Outcome& o) {
    return o.attack_sent == 0
               ? 0.0
               : o.mean_ms / static_cast<double>(o.attack_sent) * 1e3;
  };
  table.row("Capping", "steady 400 rps", capping_steady.mean_ms,
            capping_steady.p90_ms,
            static_cast<long long>(capping_steady.attack_sent),
            damage(capping_steady));
  table.row("Capping", "pulse 30s/30s", capping_pulse.mean_ms,
            capping_pulse.p90_ms,
            static_cast<long long>(capping_pulse.attack_sent),
            damage(capping_pulse));
  table.row("Anti-DOPE", "steady 400 rps", antidope_steady.mean_ms,
            antidope_steady.p90_ms,
            static_cast<long long>(antidope_steady.attack_sent),
            damage(antidope_steady));
  table.row("Anti-DOPE", "pulse 30s/30s", antidope_pulse.mean_ms,
            antidope_pulse.p90_ms,
            static_cast<long long>(antidope_pulse.attack_sent),
            damage(antidope_pulse));
  table.print(std::cout);

  bench::shape(
      "the pulse costs the attacker about half the requests",
      capping_pulse.attack_sent < 0.6 * capping_steady.attack_sent);
  bench::shape(
      "against Capping, sustained pressure compounds: the steady flood "
      "buys more damage per request than the pulse (queues drain during "
      "off phases)",
      damage(capping_steady) > damage(capping_pulse));
  bench::shape(
      "even the half-cost pulse still degrades Capping's tail by an "
      "order of magnitude",
      capping_pulse.p90_ms > 10.0 * antidope_steady.p90_ms);
  bench::shape(
      "Anti-DOPE is insensitive to the attack schedule",
      antidope_pulse.p90_ms < 2.0 * antidope_steady.p90_ms + 10.0);
  return 0;
}
