// Ablation: flat vs. hierarchy-aware capping under a concentrated flood.
//
// Oversubscription is practised at every level of the power-delivery
// tree (Fig. 2a). A flood that source-affinity routing concentrates onto
// one rack can overload that rack's PDU while the cluster total stays
// under the facility feed — flat capping (one number) is blind to it;
// hierarchy-aware capping throttles exactly the hot rack.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "schemes/baselines.hpp"
#include "schemes/hierarchical.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct Outcome {
  std::uint64_t pdu_violation_slots = 0;
  Watts worst_pdu_overload{0.0};
  double normal_p90 = 0.0;
  bool cold_rack_throttled = false;
};

Outcome run(bool hierarchical) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kNormal;
  cc.lb_policy = net::LbPolicy::kSourceHash;
  cluster::Cluster cluster(engine, catalog, cc);
  auto topology =
      power::PowerTopology::uniform(8, 4, Watts{100.0}, 0.85, 1.00);
  const auto topology_copy = topology;
  if (hierarchical) {
    cluster.install_scheme(
        std::make_unique<schemes::HierarchicalCappingScheme>(
            std::move(topology)));
  } else {
    cluster.install_scheme(std::make_unique<schemes::CappingScheme>());
  }

  // Hot flows pinned (by source hash) onto rack 0's four servers.
  std::vector<std::unique_ptr<workload::TrafficGenerator>> generators;
  std::vector<bool> covered(4, false);
  unsigned made = 0;
  for (workload::SourceId s = 0; made < 4; ++s) {
    std::uint64_t h = s;
    const auto start = static_cast<std::size_t>(splitmix64(h) % 8);
    if (start < 4 && !covered[start]) {
      covered[start] = true;
      workload::GeneratorConfig attack;
      attack.mixture = workload::Mixture::single(Catalog::kCollaFilt);
      attack.rate_rps = 75.0;
      attack.num_sources = 1;
      attack.source_base = s;
      attack.ground_truth_attack = true;
      attack.seed = 40 + made;
      generators.push_back(std::make_unique<workload::TrafficGenerator>(
          engine, catalog, attack, cluster.edge_sink()));
      ++made;
    }
  }
  // Normal users spread over many sources (and therefore both racks).
  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 200.0;
  normal.num_sources = 256;
  normal.seed = 44;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  // Sample PDU loads each second against the same topology.
  Outcome out;
  auto probe = engine.every(kSecond, [&] {
    std::vector<Watts> per_server;
    for (auto* node : cluster.servers()) {
      per_server.push_back(node->current_power());
    }
    const auto load = power::evaluate_hierarchy(topology_copy, per_server);
    for (const auto& pdu : load.pdus) {
      if (pdu.violated()) {
        ++out.pdu_violation_slots;
        out.worst_pdu_overload =
            std::max(out.worst_pdu_overload, pdu.load - pdu.rating);
      }
    }
  });
  engine.run_until(5 * kMinute);
  probe.stop();

  out.normal_p90 =
      cluster.request_metrics().normal_latency_ms().percentile(90);
  for (std::size_t s = 4; s < 8; ++s) {
    if (cluster.server(s).level() < cluster.ladder().max_level()) {
      out.cold_rack_throttled = true;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "Ablation", "Flat vs. hierarchy-aware capping (rack hotspot)");
  std::cout << "(4 hot Colla-Filt flows pinned on rack 0; PDUs rated at "
               "85% of rack nameplate;\n facility feed at 100% — the "
               "cluster total never violates)\n\n";

  const auto flat = run(false);
  const auto hier = run(true);

  TextTable table({"scheme", "PDU-violation slot-samples",
                   "worst PDU overload (W)", "normal p90 (ms)",
                   "cold rack throttled?"});
  table.row("Capping (flat)", static_cast<long long>(flat.pdu_violation_slots),
            flat.worst_pdu_overload.value(), flat.normal_p90,
            flat.cold_rack_throttled ? "yes" : "no");
  table.row("Hier-Capping", static_cast<long long>(hier.pdu_violation_slots),
            hier.worst_pdu_overload.value(), hier.normal_p90,
            hier.cold_rack_throttled ? "yes" : "no");
  table.print(std::cout);

  bench::shape(
      "flat capping is blind to the rack-local violation (PDU overloads "
      "persist)",
      flat.pdu_violation_slots > 10 * std::max<std::uint64_t>(
                                          hier.pdu_violation_slots, 1));
  bench::shape("hierarchy-aware capping clears the PDU violation",
               hier.pdu_violation_slots < 30);
  bench::shape("the cold rack is never throttled by either scheme",
               !flat.cold_rack_throttled && !hier.cold_rack_throttled);
  return 0;
}
