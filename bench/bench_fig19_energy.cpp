// Figure 19: energy consumption for different power management schemes
// at different power provision levels, normalised to the utility supply
// of the no-attack baseline.
//
// Paper: in the baseline all schemes consume the same; under DOPE,
// Capping consumes the least (it blindly slows everything down, at the
// service-time cost of Figs. 16/17); Anti-DOPE uses less energy than
// Shaving because it depends less on (round-trip-lossy) batteries.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;

int main() {
  bench::figure_header("Figure 19", "Energy consumption per scheme/budget");

  // The normalisation reference: Normal-PB, no attack, no enforcement.
  auto base_config = bench::eval_scenario(scenario::SchemeKind::kNone,
                                          power::BudgetLevel::kNormal,
                                          /*attack_rps=*/0.0);
  const auto baseline = scenario::run_scenario(base_config);
  const Joules reference = baseline.energy.utility_total();
  std::cout << "\nreference energy (Normal-PB, no attack): "
            << reference.value() << " J over 10 min\n";

  const std::vector<power::BudgetLevel> budgets = {
      power::BudgetLevel::kNormal, power::BudgetLevel::kHigh,
      power::BudgetLevel::kMedium, power::BudgetLevel::kLow};

  std::cout << "\nnormalised utility energy under DOPE (400 rps)\n";
  TextTable table({"budget", "Capping", "Shaving", "Token", "Anti-DOPE"});
  std::vector<std::vector<double>> normalized;
  for (const auto budget : budgets) {
    std::vector<double> row;
    for (const auto scheme : scenario::kEvaluatedSchemes) {
      const auto r =
          scenario::run_scenario(bench::eval_scenario(scheme, budget));
      row.push_back(r.energy.utility_total() / reference);
    }
    normalized.push_back(row);
    table.row(power::budget_name(budget), normalized.back()[0],
              normalized.back()[1], normalized.back()[2],
              normalized.back()[3]);
  }
  table.print(std::cout);

  // No-attack sanity: all schemes equal.
  std::cout << "\nno-attack case (Normal-PB): ";
  std::vector<double> no_attack;
  for (const auto scheme : scenario::kEvaluatedSchemes) {
    auto config = bench::eval_scenario(scheme, power::BudgetLevel::kNormal,
                                       /*attack_rps=*/0.0);
    no_attack.push_back(
        scenario::run_scenario(config).energy.utility_total() / reference);
    std::cout << no_attack.back() << " ";
  }
  std::cout << "\n";

  const auto& low = normalized[3];
  bench::shape(
      "different schemes consume the same energy in the baseline case",
      *std::max_element(no_attack.begin(), no_attack.end()) -
              *std::min_element(no_attack.begin(), no_attack.end()) <
          0.02);
  bench::shape(
      "under sustained DOPE the conventional schemes all draw close to "
      "the budget envelope (within 10% of each other)",
      std::abs(low[0] - low[1]) < 0.10 * low[1] &&
          std::abs(low[2] - low[1]) < 0.10 * low[1]);
  bench::shape("Anti-DOPE consumes the least energy under DOPE",
               low[3] <= low[0] && low[3] <= low[1] && low[3] <= low[2]);
  // Deviation from the paper (documented in EXPERIMENTS.md): in our model
  // Anti-DOPE is *more* frugal than Capping, not slightly less — the
  // saturated suspect pool sheds excess attack work at the queue, while
  // the paper's testbed kept serving it slowly.
  std::cout << "ordering under DOPE at Low-PB: Anti-DOPE=" << low[3]
            << "  Capping=" << low[0] << "  Token=" << low[2]
            << "  Shaving=" << low[1] << "\n";
  bench::shape(
      "Anti-DOPE uses less energy than Shaving (less battery dependency)",
      low[3] < normalized[3][1] + 1e-9);
  bench::shape("energy under DOPE never exceeds the supplied budget's "
               "10-minute envelope",
               low[0] * reference.value() <=
                   0.80 * 800.0 * 600.0 * 1.05);
  return 0;
}
