// Shared helpers for the figure-reproduction bench binaries.
//
// Every binary prints (a) the rows/series of one paper figure and (b) one
// or more "SHAPE" lines asserting the qualitative property the paper
// claims (who wins, where the knee is). Shape lines print PASS/CHECK so a
// full bench run can be eyeballed or grepped.
#pragma once

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "scenario/scenario.hpp"
#include "workload/catalog.hpp"

namespace dope::bench {

/// The paper's injected malicious blend (Colla-Filt + K-means +
/// Word-Count service attacks, Section 6.1).
inline workload::Mixture heavy_blend() {
  using workload::Catalog;
  return workload::Mixture(
      {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount},
      {1.0, 1.0, 1.0});
}

/// The standard evaluation cluster: 8 leaf nodes, 2-minute battery,
/// AliOS-style normal traffic at 300 rps, optional DOPE attack.
inline scenario::ScenarioConfig eval_scenario(
    scenario::SchemeKind scheme, power::BudgetLevel budget,
    double attack_rps = 400.0) {
  scenario::ScenarioConfig config;
  config.scheme = scheme;
  config.budget = budget;
  config.normal_rps = 300.0;
  config.attack_rps = attack_rps;
  if (attack_rps > 0) config.attack_mixture = heavy_blend();
  config.duration = 10 * kMinute;  // the paper's observation window
  config.seed = 42;
  return config;
}

/// The paper's Section 3 scaled-down testing environment: a mini rack of
/// four 100 W leaf nodes behind one switch, with light normal EC traffic.
inline scenario::ScenarioConfig testbed_scenario(
    scenario::SchemeKind scheme = scenario::SchemeKind::kNone,
    power::BudgetLevel budget = power::BudgetLevel::kNormal) {
  scenario::ScenarioConfig config;
  config.num_servers = 4;
  config.scheme = scheme;
  config.budget = budget;
  config.normal_rps = 150.0;
  config.duration = 10 * kMinute;
  config.seed = 42;
  return config;
}

/// Prints one qualitative shape check.
inline void shape(const std::string& claim, bool holds) {
  std::cout << "SHAPE [" << (holds ? "PASS" : "CHECK") << "] " << claim
            << "\n";
}

inline void figure_header(const std::string& id, const std::string& title) {
  std::cout << "\n==================================================\n"
            << id << ": " << title << "\n"
            << "==================================================\n";
}

}  // namespace dope::bench
