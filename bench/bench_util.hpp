// Shared helpers for the figure-reproduction bench binaries.
//
// Every binary prints (a) the rows/series of one paper figure and (b) one
// or more "SHAPE" lines asserting the qualitative property the paper
// claims (who wins, where the knee is). Shape lines print PASS/CHECK so a
// full bench run can be eyeballed or grepped.
// Besides the console output, every bench binary also leaves a
// machine-readable mirror behind: `figure_header` opens a JSON report,
// `shape`/`metric` append to it, and `BENCH_<figure id>.json` is written
// at process exit (into $DOPE_BENCH_JSON_DIR when set, else the working
// directory) for dashboards and regression diffing.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/json.hpp"
#include "scenario/scenario.hpp"
#include "sweep/sweep.hpp"
#include "workload/catalog.hpp"

namespace dope::bench {

/// Collects one bench run's figures, shape checks, and named metrics;
/// flushed as JSON when the process exits. Access via the free helpers
/// below rather than directly.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  void begin_figure(const std::string& id, const std::string& title) {
    if (id_.empty()) id_ = id;  // the first figure names the file
    figures_.emplace_back(id, title);
  }
  void add_shape(const std::string& claim, bool holds) {
    shapes_.emplace_back(claim, holds);
  }
  void add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// `BENCH_<sanitized id>.json`, honoring $DOPE_BENCH_JSON_DIR.
  std::string path() const {
    std::string name = "BENCH_";
    for (const char c : id_) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
      name += ok ? c : '_';
    }
    name += ".json";
    if (const char* dir = std::getenv("DOPE_BENCH_JSON_DIR")) {
      return std::string(dir) + "/" + name;
    }
    return name;
  }

 private:
  JsonReport() = default;
  ~JsonReport() { flush(); }

  void flush() const {
    if (id_.empty()) return;  // no figure_header — nothing to report
    std::ofstream out(path());
    if (!out) return;
    out << "{\n  \"figures\": [";
    for (std::size_t i = 0; i < figures_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ") << "{\"id\": ";
      obs::write_json_string(out, figures_[i].first);
      out << ", \"title\": ";
      obs::write_json_string(out, figures_[i].second);
      out << "}";
    }
    out << "\n  ],\n  \"shapes\": [";
    for (std::size_t i = 0; i < shapes_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ") << "{\"claim\": ";
      obs::write_json_string(out, shapes_[i].first);
      out << ", \"pass\": " << (shapes_[i].second ? "true" : "false")
          << "}";
    }
    out << "\n  ],\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ");
      obs::write_json_string(out, metrics_[i].first);
      out << ": ";
      obs::write_json_number(out, metrics_[i].second);
    }
    out << "\n  }\n}\n";
  }

  std::string id_;
  std::vector<std::pair<std::string, std::string>> figures_;
  std::vector<std::pair<std::string, bool>> shapes_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// The paper's injected malicious blend (Colla-Filt + K-means +
/// Word-Count service attacks, Section 6.1).
inline workload::Mixture heavy_blend() {
  using workload::Catalog;
  return workload::Mixture(
      {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount},
      {1.0, 1.0, 1.0});
}

/// The standard evaluation cluster: 8 leaf nodes, 2-minute battery,
/// AliOS-style normal traffic at 300 rps, optional DOPE attack.
inline scenario::ScenarioConfig eval_scenario(
    scenario::SchemeKind scheme, power::BudgetLevel budget,
    double attack_rps = 400.0) {
  scenario::ScenarioConfig config;
  config.scheme = scheme;
  config.budget = budget;
  config.normal_rps = 300.0;
  config.attack_rps = attack_rps;
  if (attack_rps > 0) config.attack_mixture = heavy_blend();
  config.duration = 10 * kMinute;  // the paper's observation window
  config.seed = 42;
  return config;
}

/// The paper's Section 3 scaled-down testing environment: a mini rack of
/// four 100 W leaf nodes behind one switch, with light normal EC traffic.
inline scenario::ScenarioConfig testbed_scenario(
    scenario::SchemeKind scheme = scenario::SchemeKind::kNone,
    power::BudgetLevel budget = power::BudgetLevel::kNormal) {
  scenario::ScenarioConfig config;
  config.num_servers = 4;
  config.scheme = scheme;
  config.budget = budget;
  config.normal_rps = 150.0;
  config.duration = 10 * kMinute;
  config.seed = 42;
  return config;
}

/// Prints one qualitative shape check (also captured in the JSON report).
inline void shape(const std::string& claim, bool holds) {
  std::cout << "SHAPE [" << (holds ? "PASS" : "CHECK") << "] " << claim
            << "\n";
  JsonReport::instance().add_shape(claim, holds);
}

inline void figure_header(const std::string& id, const std::string& title) {
  std::cout << "\n==================================================\n"
            << id << ": " << title << "\n"
            << "==================================================\n";
  JsonReport::instance().begin_figure(id, title);
}

/// Records one named scalar into the bench's JSON report.
inline void metric(const std::string& key, double value) {
  JsonReport::instance().add_metric(key, value);
}

/// Worker threads for bench sweep grids: $DOPE_BENCH_THREADS when set,
/// else 0 (hardware concurrency). The thread count never changes the
/// results — grids merge deterministically in grid order.
inline std::size_t bench_threads() {
  if (const char* env = std::getenv("DOPE_BENCH_THREADS")) {
    return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

/// Runs a sweep grid multicore; a failed run aborts the bench with the
/// run's label and error (benches have no use for partial figures).
inline std::vector<scenario::ScenarioResult> run_grid(
    const sweep::GridSpec& grid) {
  return sweep::run_grid(grid, bench_threads());
}

/// The paper's standard budget × scheme evaluation grid (budget-major,
/// matching the tables): returns results[budget_i][scheme_i] for the
/// four Table 2 schemes. `tweak` adjusts the base `eval_scenario`
/// config (duration, slot, ...) before the axes are applied.
inline std::vector<std::vector<scenario::ScenarioResult>> eval_grid(
    const std::vector<power::BudgetLevel>& budgets,
    double attack_rps = 400.0,
    const std::function<void(scenario::ScenarioConfig&)>& tweak = {}) {
  sweep::GridSpec grid;
  grid.base = eval_scenario(scenario::SchemeKind::kCapping,
                            power::BudgetLevel::kNormal, attack_rps);
  if (tweak) tweak(grid.base);
  grid.budgets = budgets;
  grid.schemes.assign(std::begin(scenario::kEvaluatedSchemes),
                      std::end(scenario::kEvaluatedSchemes));
  // Qualified: ADL would also find sweep::run_grid for a GridSpec.
  const auto flat = bench::run_grid(grid);
  std::vector<std::vector<scenario::ScenarioResult>> rows;
  rows.reserve(budgets.size());
  const std::size_t ns = grid.schemes.size();
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    rows.emplace_back(
        flat.begin() + static_cast<std::ptrdiff_t>(b * ns),
        flat.begin() + static_cast<std::ptrdiff_t>((b + 1) * ns));
  }
  return rows;
}

/// Records a scenario result's headline numbers under `prefix.`.
inline void result_metrics(const std::string& prefix,
                           const scenario::ScenarioResult& r) {
  metric(prefix + ".mean_ms", r.mean_ms);
  metric(prefix + ".p90_ms", r.p90_ms);
  metric(prefix + ".p99_ms", r.p99_ms);
  metric(prefix + ".availability", r.availability);
  metric(prefix + ".mean_power_w", r.mean_power.value());
  metric(prefix + ".peak_power_w", r.peak_power.value());
  metric(prefix + ".violation_slots",
         static_cast<double>(r.slot_stats.violation_slots));
  metric(prefix + ".outages", static_cast<double>(r.slot_stats.outages));
}

}  // namespace dope::bench
