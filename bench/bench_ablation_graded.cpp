// Ablation: binary suspect list vs. graded (n-level) classification.
//
// The binary list lumps every heavy URL into one pool: a Word-Count
// flood therefore also swamps legitimate Colla-Filt users. The graded
// variant (Section 5.3's ⟨q₀…qₙ⟩ made structural) gives each power class
// its own pool, so the flood occupies only its own class. This bench measures
// what legitimate *heavy-URL* users experience under a mid-class flood
// with each design.
#include <iostream>
#include <memory>

#include "antidope/antidope.hpp"
#include "antidope/graded.hpp"
#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct Outcome {
  double legit_heavy_p90 = 0.0;
  double legit_heavy_mean = 0.0;
  double availability = 0.0;
};

Outcome run(bool graded) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 10;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);
  if (graded) {
    cluster.install_scheme(
        std::make_unique<antidope::GradedAntiDopeScheme>());
  } else {
    antidope::AntiDopeConfig config;
    config.suspect_pool_fraction = 0.4;  // match the graded 2+2 share
    cluster.install_scheme(
        std::make_unique<antidope::AntiDopeScheme>(config));
  }

  // The attack floods Word-Count (the middle class).
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kWordCount);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.seed = 51;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  // Legitimate heavy users: Colla-Filt at a modest rate.
  workload::GeneratorConfig legit;
  legit.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  legit.rate_rps = 20.0;
  legit.num_sources = 32;
  legit.seed = 52;
  workload::TrafficGenerator legit_gen(engine, catalog, legit,
                                       cluster.edge_sink());
  // Background light users.
  workload::GeneratorConfig light;
  light.mixture = workload::Mixture::single(Catalog::kTextCont);
  light.rate_rps = 300.0;
  light.num_sources = 256;
  light.seed = 53;
  workload::TrafficGenerator light_gen(engine, catalog, light,
                                       cluster.edge_sink());

  engine.run_until(5 * kMinute);

  Outcome out;
  const auto& latency = cluster.request_metrics().normal_latency_ms();
  // Normal latency blends light (8 ms) and heavy (80 ms) users; the
  // p99.5 region is dominated by the legitimate heavy tail, but for a
  // clean read we rely on the mean + p90 split: light users are fast in
  // both designs, so differences come from the heavy users.
  out.legit_heavy_p90 = latency.percentile(99);
  out.legit_heavy_mean = latency.mean();
  out.availability = cluster.request_metrics().availability();
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "Ablation",
      "Binary suspect list vs. graded power classes (mid-class flood)");
  std::cout << "(Word-Count flood at 400 rps; legitimate Colla-Filt users "
               "at 20 rps;\n do the legit heavy users share the attack's "
               "fate?)\n\n";

  const auto binary = run(false);
  const auto graded = run(true);

  TextTable table({"design", "normal mean (ms)", "normal p99 (ms)",
                   "availability"});
  table.row("binary suspect list", binary.legit_heavy_mean,
            binary.legit_heavy_p90, binary.availability);
  table.row("graded (3 classes)", graded.legit_heavy_mean,
            graded.legit_heavy_p90, graded.availability);
  table.print(std::cout);

  bench::shape(
      "graded pools shield legitimate heavy users from a mid-class flood "
      "(p99 collapses vs. the binary design)",
      graded.legit_heavy_p90 < 0.25 * binary.legit_heavy_p90);
  bench::shape("graded classification also improves availability",
               graded.availability >= binary.availability - 0.005);
  return 0;
}
