// Figure 4: peak power manipulation vs. traffic rate.
//
//  (a) mean power vs. request rate for each EC service type — more
//      requests per second produce higher power, and the heavy types
//      (Colla-Filt, K-means, Word-Count) elevate power at LOW rates;
//  (b) CDF of (nameplate-normalised) power at several traffic rates —
//      higher volume shifts the CDF right and reduces its variance.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

namespace {

scenario::ScenarioResult run_at(workload::RequestTypeId type, double rate) {
  auto config = bench::testbed_scenario();
  config.attack_rps = rate;
  config.attack_mixture = workload::Mixture::single(type);
  return scenario::run_scenario(config);
}

}  // namespace

int main() {
  bench::figure_header("Figure 4",
                       "Higher traffic rate tends to cause higher power");

  const std::vector<double> rates = {1, 5, 10, 25, 50, 100, 250, 500, 1000};
  const std::vector<workload::RequestTypeId> types = {
      Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
      Catalog::kTextCont};
  const auto catalog = workload::Catalog::standard();

  // ---- (a) mean power vs rate per type ----
  std::cout << "\n(a) mean cluster power (W) vs. attack request rate\n";
  TextTable a({"rate (rps)", "Colla-Filt", "K-means", "Word-Count",
               "Text-Cont"});
  // results[type][rate index]
  std::vector<std::vector<double>> mean_power(
      types.size(), std::vector<double>(rates.size(), 0.0));
  std::vector<std::vector<double>> samples_at_100(types.size());
  std::vector<std::vector<std::vector<double>>> cdf_samples(rates.size());

  for (std::size_t t = 0; t < types.size(); ++t) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const auto result = run_at(types[t], rates[r]);
      mean_power[t][r] = result.mean_power.value();
    }
  }
  for (std::size_t r = 0; r < rates.size(); ++r) {
    a.row(rates[r], mean_power[0][r], mean_power[1][r], mean_power[2][r],
          mean_power[3][r]);
  }
  a.print(std::cout);

  // ---- (b) CDF of normalised power at several rates (Colla-Filt) ----
  std::cout << "\n(b) CDF of power (normalised to nameplate), Colla-Filt "
               "traffic at multiple rates\n";
  const std::vector<double> cdf_rates = {10, 50, 100, 500, 1000};
  std::vector<Percentiles> dists(cdf_rates.size());
  for (std::size_t r = 0; r < cdf_rates.size(); ++r) {
    const auto result = run_at(Catalog::kCollaFilt, cdf_rates[r]);
    for (double v : result.power_samples_normalized) dists[r].add(v);
  }
  TextTable b({"percentile", "10rps", "50rps", "100rps", "500rps",
               "1000rps"});
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    b.row(p, dists[0].percentile(p), dists[1].percentile(p),
          dists[2].percentile(p), dists[3].percentile(p),
          dists[4].percentile(p));
  }
  b.print(std::cout);

  // ---- shape checks ----
  bool monotone = true;
  for (std::size_t t = 0; t < types.size(); ++t) {
    for (std::size_t r = 1; r < rates.size(); ++r) {
      if (mean_power[t][r] + 2.0 < mean_power[t][r - 1]) monotone = false;
    }
  }
  bench::shape("sending more requests per second produces higher power",
               monotone);

  // Heavy types elevate power at low rates: at 50 rps, Colla-Filt adds far
  // more power over the idle+normal baseline than Text-Cont does.
  const double baseline = mean_power[3][0];
  bench::shape(
      "Colla-Filt/K-means/Word-Count elevate power at a low traffic rate",
      mean_power[0][4] - baseline > 3.0 * (mean_power[3][4] - baseline) &&
          mean_power[1][4] > mean_power[3][4] &&
          mean_power[2][4] > mean_power[3][4]);

  const double spread_low = dists[0].percentile(95) - dists[0].percentile(5);
  const double spread_high =
      dists[4].percentile(95) - dists[4].percentile(5);
  bench::shape("higher network volume shows lower variance in power usage",
               spread_high < spread_low);
  bench::shape("power CDF shifts right as the rate grows",
               dists[4].percentile(50) > dists[0].percentile(50));
  (void)catalog;
  return 0;
}
