// Figure 12: the adaptive DOPE attack algorithm.
//
// Runs the closed-loop attacker (probe -> ramp -> hold, backing off on
// detection) against a firewalled, capping-managed cluster and prints its
// decision trace: the rate converges to an effective DOPE below the
// firewall's radar.
#include <iostream>

#include "attack/dope_attacker.hpp"
#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "schemes/baselines.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

int main() {
  bench::figure_header("Figure 12", "DOPE attack algorithm convergence");

  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();

  cluster::ClusterConfig cc;
  cc.num_servers = 4;
  cc.budget_level = power::BudgetLevel::kLow;
  net::FirewallConfig firewall;
  firewall.threshold_rps = 150.0;
  firewall.check_interval = 5 * kSecond;
  cc.firewall = firewall;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(std::make_unique<schemes::CappingScheme>());

  // Normal background load.
  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 150.0;
  normal.num_sources = 128;
  normal.seed = 3;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  attack::DopeAttackerConfig config;
  config.mixture = bench::heavy_blend();
  config.num_agents = 32;
  config.epoch = 5 * kSecond;
  attack::DopeAttacker attacker(engine, catalog, config,
                                cluster.edge_sink());
  cluster.add_record_listener(attacker.feedback_sink());

  engine.run_until(8 * kMinute);

  TextTable trace({"t (s)", "phase", "rate (rps)", "rate/agent",
                   "block frac", "latency ratio"});
  for (const auto& d : attacker.decisions()) {
    trace.row(to_seconds(d.at), attack::phase_name(d.phase), d.rate_rps,
              d.rate_rps / config.num_agents, d.observed_block_fraction,
              d.observed_latency_ratio);
  }
  trace.print(std::cout);

  std::cout << "\nfinal phase: " << attack::phase_name(attacker.phase())
            << ", final rate: " << attacker.current_rate() << " rps ("
            << attacker.current_rate() / config.num_agents
            << " rps/agent vs " << firewall.threshold_rps
            << " rps threshold)\n";
  std::cout << "firewall bans during the whole campaign: "
            << cluster.firewall()->total_bans() << "\n";
  std::cout << "victim cluster throttled down to level "
            << cluster.server(0).level() << " (of "
            << cluster.ladder().max_level() << ")\n";

  bench::shape("the attacker converges to a holding (emergency) state",
               attacker.emergency_achieved());
  bench::shape("the per-agent rate stays under the firewall threshold",
               attacker.current_rate() / config.num_agents <
                   firewall.threshold_rps);
  bench::shape("the firewall never detects the attack",
               cluster.firewall()->total_bans() == 0);
  bench::shape("the victim was forced to throttle (power emergency)",
               cluster.server(0).level() < cluster.ladder().max_level() ||
                   cluster.server(3).level() < cluster.ladder().max_level());
  return 0;
}
