// Ablation: offline-only vs. online-learning suspect classification.
//
// Scenario: the attacker floods a heavy URL the operator never profiled
// (the offline suspect list knows nothing). With offline-only Anti-DOPE,
// the unknown URL routes to the innocent pool and the defense degenerates
// to plain capping. With the online classifier, per-URL power is learned
// from node telemetry within seconds and the flood is pulled into the
// suspect pool — the paper's "extend by changing the monitored
// statistical features" direction, realised.
#include <iostream>
#include <memory>

#include "antidope/antidope.hpp"
#include "bench/bench_util.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

using namespace dope;
using workload::Catalog;

namespace {

struct Outcome {
  double mean_ms = 0.0;
  double p90_ms = 0.0;
  double availability = 0.0;
  std::size_t reclassifications = 0;
  bool learned = false;
};

Outcome run(bool online_learning) {
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);

  antidope::AntiDopeConfig config;
  // Nothing was profiled: every URL starts innocent.
  config.suspect_list = antidope::SuspectList(
      std::vector<bool>(catalog.size(), false));
  config.online_learning = online_learning;
  auto scheme_ptr = std::make_unique<antidope::AntiDopeScheme>(config);
  auto* scheme = scheme_ptr.get();
  cluster.install_scheme(std::move(scheme_ptr));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  normal.seed = 61;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kKMeans);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.seed = 62;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());

  engine.run_until(10 * kMinute);

  Outcome out;
  const auto& m = cluster.request_metrics();
  out.mean_ms = m.normal_latency_ms().mean();
  out.p90_ms = m.normal_latency_ms().percentile(90);
  out.availability = m.availability();
  if (scheme->classifier() != nullptr) {
    out.reclassifications = scheme->classifier()->reclassifications();
    out.learned = scheme->classifier()->suspicious(Catalog::kKMeans);
  }
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "Ablation", "Offline vs. online suspect classification "
                  "(unprofiled attack URL)");

  const auto offline = run(false);
  const auto online = run(true);

  TextTable table({"classifier", "normal mean (ms)", "normal p90 (ms)",
                   "availability", "reclassifications"});
  table.row("offline only (blind)", offline.mean_ms, offline.p90_ms,
            offline.availability,
            static_cast<long long>(offline.reclassifications));
  table.row("online learning", online.mean_ms, online.p90_ms,
            online.availability,
            static_cast<long long>(online.reclassifications));
  table.print(std::cout);

  bench::shape("the online classifier flags the unprofiled attack URL",
               online.learned && online.reclassifications >= 1);
  bench::shape(
      "online learning restores the isolation benefit (p90 much better "
      "than the blind configuration)",
      online.p90_ms < 0.5 * offline.p90_ms);
  return 0;
}
