// Figure 11: the DOPE attack region.
//
// Sweeps the (request rate, traffic type) plane and marks, for each
// point, whether (a) the aggregate power violates an oversubscribed
// budget and (b) the per-source rate would trip a DDoS-detecting
// firewall. DOPE lives where (a) holds and (b) does not: request numbers
// close to normal, far below the DoS-detection capacity, yet enough to
// break the power envelope.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;
using workload::Catalog;

int main() {
  bench::figure_header("Figure 11", "The DOPE attack region");

  const Watts budget{4 * 100.0 * 0.80};  // Low-PB on the mini rack
  const double firewall_threshold = 150.0;  // per source
  const unsigned agents = 16;

  const std::vector<double> rates = {25,  50,  100, 200, 400,
                                     800, 1600, 3200};
  const std::vector<workload::RequestTypeId> types = {
      Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
      Catalog::kTextCont, Catalog::kSynPacket};
  const auto catalog = workload::Catalog::standard();

  std::cout << "budget = " << budget.value()
            << " W (Low-PB), firewall = "
            << firewall_threshold << " rps/source, botnet of " << agents
            << " agents\n\n";
  std::cout << "cell legend:  D = DOPE region (power violated, "
               "undetected)\n              d = detected by firewall, "
               "p = power violated AND detected,\n              . = "
               "harmless\n\n";

  TextTable grid({"rate (rps)", "Colla-Filt", "K-means", "Word-Count",
                  "Text-Cont", "SYN"});
  // For the shape checks.
  bool dope_region_exists = false;
  bool volume_never_dope = true;
  double lowest_dope_rate = 1e18;
  for (double rate : rates) {
    std::vector<std::string> row;
    row.push_back(TextTable::format_cell(rate));
    for (const auto type : types) {
      auto config = bench::testbed_scenario();
      config.attack_rps = rate;
      config.attack_mixture = workload::Mixture::single(type);
      config.attack_agents = agents;
      config.duration = 3 * kMinute;
      const auto r = scenario::run_scenario(config);
      const bool violates =
          r.peak_power > budget && r.mean_power > 0.95 * budget;
      const bool detected = rate / agents > firewall_threshold;
      std::string cell = ".";
      if (violates && !detected) {
        cell = "D";
        dope_region_exists = true;
        if (type != Catalog::kSynPacket && rate < lowest_dope_rate) {
          lowest_dope_rate = rate;
        }
        if (type == Catalog::kSynPacket) volume_never_dope = false;
      } else if (violates && detected) {
        cell = "p";
      } else if (detected) {
        cell = "d";
      }
      row.push_back(cell);
    }
    grid.add_row(std::move(row));
  }
  grid.print(std::cout);

  std::cout << "\nlowest DOPE-capable rate (heavy URL): "
            << lowest_dope_rate << " rps — close to normal traffic and "
            << "far below the " << firewall_threshold * agents
            << " rps aggregate detection capacity\n";

  bench::shape("a DOPE region exists (power violated without detection)",
               dope_region_exists);
  bench::shape("volume packets (SYN) never reach the DOPE region",
               volume_never_dope);
  bench::shape(
      "heavy URLs reach the DOPE region at near-normal request numbers",
      lowest_dope_rate <= 400.0);
  (void)catalog;
  return 0;
}
