// Figure 16 (+ Table 2): mean response time while using different power
// schemes to handle DOPE, across the four provisioning levels.
//
// Paper headline: Anti-DOPE guarantees the minimum mean service time of
// the power-management schemes (44% shorter than the alternatives);
// Token looks even faster only because it abandons a large share of the
// packets.
#include <iostream>

#include "bench/bench_util.hpp"

using namespace dope;

int main() {
  bench::figure_header("Figure 16",
                       "Mean response time per scheme and budget");

  // Table 2: the evaluated schemes.
  std::cout << "\nTable 2: evaluated power management schemes\n";
  TextTable t2({"scheme", "feature"});
  t2.row("Capping", "performance (DVFS) scaling only");
  t2.row("Shaving", "UPS-based peak shaving, DVFS when drained");
  t2.row("Token", "power-based token bucket at the NLB");
  t2.row("Anti-DOPE", "request-aware two-step defense (PDF + RPM)");
  t2.print(std::cout);

  const std::vector<power::BudgetLevel> budgets = {
      power::BudgetLevel::kNormal, power::BudgetLevel::kHigh,
      power::BudgetLevel::kMedium, power::BudgetLevel::kLow};

  std::cout << "\nmean response time of normal users (ms), DOPE at 400 rps\n";
  TextTable table({"budget", "Capping", "Shaving", "Token", "Anti-DOPE",
                   "Token drop %"});
  // results[budget][scheme], evaluated multicore through dope::sweep.
  const auto results = bench::eval_grid(budgets);
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const auto& r = results[b];
    table.row(power::budget_name(budgets[b]), r[0].mean_ms, r[1].mean_ms,
              r[2].mean_ms, r[3].mean_ms, r[2].drop_fraction * 100.0);
  }
  table.print(std::cout);

  // ---- shape checks ----
  const auto& medium = results[2];
  const auto& low = results[3];
  const double improvement_medium =
      1.0 - medium[3].mean_ms / medium[0].mean_ms;
  const double improvement_low = 1.0 - low[3].mean_ms / low[0].mean_ms;
  std::cout << "\nAnti-DOPE mean RT improvement vs Capping: "
            << improvement_medium * 100.0 << "% (Medium-PB), "
            << improvement_low * 100.0 << "% (Low-PB) — paper: 44%\n";

  bench::shape(
      "under reduced budgets every scheme's mean RT exceeds the "
      "Normal-PB case",
      low[0].mean_ms > results[0][0].mean_ms &&
          low[1].mean_ms >= results[0][1].mean_ms * 0.9);
  bench::shape(
      "Anti-DOPE achieves >= 44% shorter mean RT than Capping under "
      "reduced budgets",
      improvement_medium >= 0.44 && improvement_low >= 0.44);
  bench::shape(
      "Token shows deceptively short service time by abandoning packets",
      low[2].mean_ms < low[0].mean_ms &&
          low[2].drop_fraction > 0.10);
  bench::shape(
      "Anti-DOPE's mean RT is insensitive to the supplied power",
      std::abs(low[3].mean_ms - results[0][3].mean_ms) <
          0.5 * results[0][3].mean_ms + 20.0);
  return 0;
}
