// Figure 3: power profile of typical cyber-attacks over a 600 s window.
//
// Launches each canned attack (Table 1 tools / Section 3.1) at maximum
// force against the uncapped EC cluster and reports the power trace. The
// paper's observation: application-layer floods (HTTP, DNS) produce high
// power peaks; volume floods (SYN, UDP) and Slowloris barely move power.
#include <iostream>
#include <map>

#include "attack/profiles.hpp"
#include "bench/bench_util.hpp"

using namespace dope;

namespace {

struct TraceResult {
  attack::AttackKind kind;
  double mean_power = 0.0;
  double peak_power = 0.0;
  std::vector<metrics::Sample> timeline;
};

TraceResult run_attack(attack::AttackKind kind) {
  scenario::ScenarioConfig config = bench::testbed_scenario();
  config.duration = 600 * kSecond;  // the paper's observation window
  // "Maximum force": volume attacks send far more packets than
  // app-layer floods can.
  switch (kind) {
    case attack::AttackKind::kSynFlood:
    case attack::AttackKind::kUdpFlood:
      config.attack_rps = 20'000.0;  // volume floods move packets
      break;
    case attack::AttackKind::kDnsFlood:
      config.attack_rps = 5'000.0;  // DNS floods are high-rate queries
      break;
    case attack::AttackKind::kSlowloris:
      config.attack_rps = 50.0;  // few held-open connections
      break;
    default:
      config.attack_rps = 500.0;  // HTTP GET flood
      break;
  }
  config.attack_mixture = attack::attack_mixture(kind);
  config.attack_agents = 128;

  TraceResult result;
  result.kind = kind;
  const auto r = scenario::run_scenario(config);
  result.mean_power = r.mean_power.value();
  result.peak_power = r.peak_power.value();
  result.timeline = r.power_timeline;
  return result;
}

}  // namespace

int main() {
  bench::figure_header("Figure 3", "Power profile of typical cyber-attacks");
  std::cout << "(workload catalog: Table 1; mini rack: 4x100 W leaf nodes, "
               "150 rps normal EC traffic, uncapped)\n";

  std::map<attack::AttackKind, TraceResult> results;
  for (const auto kind : {attack::AttackKind::kHttpFlood,
                          attack::AttackKind::kDnsFlood,
                          attack::AttackKind::kSynFlood,
                          attack::AttackKind::kUdpFlood,
                          attack::AttackKind::kSlowloris}) {
    results[kind] = run_attack(kind);
  }

  // Power trace, 60 s buckets (the figure's time axis).
  TextTable trace({"t(s)", "HTTP", "DNS", "SYN", "UDP", "Slowloris"});
  const auto bucket_mean = [](const TraceResult& r, Time lo, Time hi) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : r.timeline) {
      if (s.t >= lo && s.t < hi) {
        sum += s.value;
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  for (int b = 0; b < 10; ++b) {
    const Time lo = b * 60 * kSecond;
    const Time hi = lo + 60 * kSecond;
    trace.row(b * 60,
              bucket_mean(results[attack::AttackKind::kHttpFlood], lo, hi),
              bucket_mean(results[attack::AttackKind::kDnsFlood], lo, hi),
              bucket_mean(results[attack::AttackKind::kSynFlood], lo, hi),
              bucket_mean(results[attack::AttackKind::kUdpFlood], lo, hi),
              bucket_mean(results[attack::AttackKind::kSlowloris], lo, hi));
  }
  trace.print(std::cout);

  TextTable summary({"attack", "mean power (W)", "peak power (W)",
                     "power class"});
  for (const auto& [kind, r] : results) {
    const char* cls = r.peak_power > 350   ? "high"
                      : r.peak_power > 250 ? "medium"
                                           : "low";
    summary.row(attack::attack_name(kind), r.mean_power, r.peak_power, cls);
  }
  std::cout << "\n";
  summary.print(std::cout);

  const auto& http = results[attack::AttackKind::kHttpFlood];
  const auto& dns = results[attack::AttackKind::kDnsFlood];
  const auto& syn = results[attack::AttackKind::kSynFlood];
  const auto& udp = results[attack::AttackKind::kUdpFlood];
  const auto& slow = results[attack::AttackKind::kSlowloris];
  bench::shape("application-layer HTTP flood draws the highest power",
               http.mean_power > dns.mean_power &&
                   http.mean_power > syn.mean_power);
  bench::shape("volume floods (SYN/UDP) stay in the low-power class",
               syn.peak_power < 0.75 * http.peak_power &&
                   udp.peak_power < 0.75 * http.peak_power);
  bench::shape("slowloris power is negligible",
               slow.mean_power < 0.7 * http.mean_power);
  return 0;
}
