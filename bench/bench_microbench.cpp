// Google-benchmark microbenchmarks of the simulator's hot paths: event
// engine throughput, server queueing, generator arrival scheduling, and
// end-to-end scenario cost. These bound how large a cluster/window the
// harness can sweep.
#include <benchmark/benchmark.h>

#include "scenario/scenario.hpp"
#include "server/node.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dope;

void BM_EngineScheduleExecute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<Time>(i % 1'000), [] {});
    }
    engine.run_all();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EngineScheduleExecute)->Arg(1'000)->Arg(100'000);

void BM_EngineScheduleCancelFire(benchmark::State& state) {
  // The mix every simulation layer generates: most scheduled events fire,
  // but a steady fraction (superseded DVFS actuations, retimed
  // completions, satisfied patience timers) is cancelled first.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    std::vector<sim::EventId> victims;
    victims.reserve(n / 4 + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const auto t = static_cast<Time>(i % 1'024);
      if (i % 4 == 3) {
        victims.push_back(engine.schedule_at(t, [] {}));
      } else {
        engine.schedule_at(t, [&fired] { ++fired; });
      }
    }
    for (const auto id : victims) engine.cancel(id);
    engine.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EngineScheduleCancelFire)->Arg(1'000)->Arg(100'000);

void BM_EngineCompletionChains(benchmark::State& state) {
  // Steady-state schedule->fire churn: 64 concurrent chains where every
  // firing schedules its successor, the shape of server-completion and
  // generator-arrival traffic. The callback captures 24 bytes, past the
  // small-buffer threshold of libstdc++'s std::function, so this bench
  // exposes per-event heap traffic in the event core.
  constexpr std::uint64_t kChains = 64;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  struct Chain {
    sim::Engine* engine;
    std::uint64_t* remaining;
    void operator()() const {
      if (*remaining == 0) return;
      --*remaining;
      engine->schedule_after(100, Chain{engine, remaining});
    }
  };
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t remaining = n;
    for (std::uint64_t c = 0; c < kChains; ++c) {
      engine.schedule_after(static_cast<Duration>(c + 1),
                            Chain{&engine, &remaining});
    }
    engine.run_all();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EngineCompletionChains)->Arg(100'000);

void BM_EnginePeriodicTick(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t ticks = 0;
    auto handle = engine.every(kMillisecond, [&ticks] { ++ticks; });
    engine.run_until(kSecond);
    handle.stop();
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(1'000 * state.iterations());
}
BENCHMARK(BM_EnginePeriodicTick);

void BM_ServerSaturatedChurn(benchmark::State& state) {
  const auto catalog = workload::Catalog::standard();
  const auto ladder = power::DvfsLadder::make();
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t done = 0;
    server::ServerNode node(
        engine, 0, catalog, power::ServerPowerModel({}, ladder),
        {.queue_capacity = 10'000, .queue_deadline = 0},
        [&done](const workload::RequestRecord&) { ++done; });
    workload::GeneratorConfig gen_config;
    gen_config.mixture =
        workload::Mixture::single(workload::Catalog::kTextCont);
    gen_config.rate_rps = 800.0;  // saturating for one node
    workload::TrafficGenerator gen(
        engine, catalog, gen_config,
        [&node](workload::Request&& r) { node.submit(std::move(r)); });
    engine.run_until(10 * kSecond);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_ServerSaturatedChurn);

void BM_DvfsRetiming(benchmark::State& state) {
  // Cost of re-timing a full active set on every level change.
  const auto catalog = workload::Catalog::standard();
  const auto ladder = power::DvfsLadder::make();
  sim::Engine engine;
  server::ServerNode node(
      engine, 0, catalog, power::ServerPowerModel({}, ladder),
      {.queue_capacity = 64, .queue_deadline = 0, .dvfs_latency = 0},
      [](const workload::RequestRecord&) {});
  for (int i = 0; i < 4; ++i) {
    workload::Request r;
    r.type = workload::Catalog::kCollaFilt;
    r.size_factor = 1e6;  // effectively never finishes
    node.submit(std::move(r));
  }
  power::DvfsLevel level = 0;
  for (auto _ : state) {
    node.force_level(level);
    level = (level + 1) % ladder.levels();
    benchmark::DoNotOptimize(node.current_power());
  }
}
BENCHMARK(BM_DvfsRetiming);

void BM_ScenarioMinute(benchmark::State& state) {
  // End-to-end cost of one simulated minute of the evaluation cluster.
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.scheme = scenario::SchemeKind::kAntiDope;
    config.budget = power::BudgetLevel::kLow;
    config.normal_rps = 300.0;
    config.attack_rps = 400.0;
    config.duration = kMinute;
    const auto r = scenario::run_scenario(config);
    benchmark::DoNotOptimize(r.mean_ms);
  }
}
BENCHMARK(BM_ScenarioMinute)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
