// Tests for closed-loop client sessions and the self-backoff asymmetry
// that makes open-loop power attacks so effective.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "schemes/baselines.hpp"
#include "workload/closed_loop.hpp"
#include "workload/generator.hpp"

namespace dope::workload {
namespace {

struct LoopRig {
  sim::Engine engine;
  Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<ClosedLoopClients> clients;

  explicit LoopRig(std::size_t num_users = 50,
                   Duration think = 2 * kSecond) {
    cluster::ClusterConfig cc;
    cc.num_servers = 4;
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
    ClosedLoopConfig config;
    config.num_users = num_users;
    config.mean_think = think;
    config.mixture = Mixture::single(Catalog::kTextCont);
    config.source_base = 500;
    clients = std::make_unique<ClosedLoopClients>(
        engine, catalog, config, cluster->edge_sink());
    cluster->add_record_listener(clients->feedback_sink());
  }
};

TEST(ClosedLoop, ThroughputFollowsLittlesLaw) {
  // 50 users, 2 s think, ~10 ms response: rate ≈ 50 / 2.01 ≈ 24.9 rps.
  LoopRig rig;
  rig.cluster->run_for(2 * kMinute);
  EXPECT_NEAR(rig.clients->effective_rate(), 50.0 / 2.01, 3.0);
  EXPECT_EQ(rig.clients->abandoned_cycles(), 0u);
}

TEST(ClosedLoop, AtMostOneOutstandingRequestPerUser) {
  LoopRig rig(10, 100 * kMillisecond);
  rig.cluster->run_for(30 * kSecond);
  // Sent counts equal completed + abandoned + currently-in-flight.
  EXPECT_LE(rig.clients->sent(),
            rig.clients->completed_cycles() +
                rig.clients->abandoned_cycles() + 10);
  EXPECT_GE(rig.clients->sent(), rig.clients->completed_cycles());
}

TEST(ClosedLoop, PatienceAbandonsUnansweredRequests) {
  // A cluster with every node refusing traffic: responses never come;
  // every cycle must end in abandonment, and the users keep retrying.
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 2;
  cluster::Cluster cluster(engine, catalog, cc);
  for (std::size_t i = 0; i < 2; ++i) {
    cluster.server(i).power_off();
  }
  ClosedLoopConfig config;
  config.num_users = 5;
  config.mean_think = kSecond;
  config.patience = 2 * kSecond;
  config.mixture = Mixture::single(Catalog::kTextCont);
  ClosedLoopClients clients(engine, catalog, config, cluster.edge_sink());
  cluster.add_record_listener(clients.feedback_sink());
  engine.run_until(kMinute);
  EXPECT_EQ(clients.completed_cycles(), 0u);
  EXPECT_GT(clients.abandoned_cycles(), 20u);
  EXPECT_GT(clients.sent(), 20u);
}

TEST(ClosedLoop, SelfBackoffUnderThrottling) {
  // The asymmetry at the heart of DOPE: when the victim is throttled,
  // closed-loop users slow *themselves* down (longer cycles -> lower
  // rate), while an open-loop attacker keeps its rate.
  const auto run = [](bool throttled) {
    sim::Engine engine;
    const auto catalog = Catalog::standard();
    cluster::ClusterConfig cc;
    cc.num_servers = 4;
    cluster::Cluster cluster(engine, catalog, cc);
    if (throttled) {
      for (auto* node : cluster.servers()) node->force_level(0);
    }
    ClosedLoopConfig config;
    config.num_users = 60;
    config.mean_think = 200 * kMillisecond;
    config.mixture = Mixture::single(Catalog::kCollaFilt);  // heavy
    ClosedLoopClients clients(engine, catalog, config,
                              cluster.edge_sink());
    cluster.add_record_listener(clients.feedback_sink());
    engine.run_until(2 * kMinute);
    return clients.effective_rate();
  };
  const double fast = run(false);
  const double slow = run(true);
  EXPECT_LT(slow, 0.8 * fast);
  EXPECT_GT(slow, 0.0);
}

TEST(ClosedLoop, StopHaltsSending) {
  LoopRig rig(5, 100 * kMillisecond);
  rig.cluster->run_for(10 * kSecond);
  rig.clients->stop();
  const auto sent = rig.clients->sent();
  rig.cluster->run_for(30 * kSecond);
  EXPECT_EQ(rig.clients->sent(), sent);
}

TEST(ClosedLoop, ValidatesConfig) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  ClosedLoopConfig config;  // empty mixture
  EXPECT_THROW(
      ClosedLoopClients(engine, catalog, config, [](Request&&) {}),
      std::invalid_argument);
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.num_users = 0;
  EXPECT_THROW(
      ClosedLoopClients(engine, catalog, config, [](Request&&) {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace dope::workload
