// Unit tests for metrics: request populations, timelines, energy account.
#include <gtest/gtest.h>

#include "metrics/energy.hpp"
#include "metrics/request_metrics.hpp"
#include "metrics/timeline.hpp"
#include "sim/engine.hpp"

namespace dope::metrics {
namespace {

using workload::RequestOutcome;
using workload::RequestRecord;

RequestRecord record_of(bool attack, RequestOutcome outcome,
                        Duration latency = millis(10.0)) {
  RequestRecord r;
  r.request.ground_truth_attack = attack;
  r.outcome = outcome;
  r.latency = latency;
  return r;
}

TEST(RequestMetrics, SplitsPopulationsByGroundTruth) {
  RequestMetrics m;
  m.record(record_of(false, RequestOutcome::kCompleted));
  m.record(record_of(true, RequestOutcome::kCompleted));
  m.record(record_of(true, RequestOutcome::kCompleted));
  EXPECT_EQ(m.normal_counts().completed, 1u);
  EXPECT_EQ(m.attack_counts().completed, 2u);
  EXPECT_EQ(m.normal_latency_ms().count(), 1u);
  EXPECT_EQ(m.attack_latency_ms().count(), 2u);
}

TEST(RequestMetrics, CountsEveryOutcomeKind) {
  RequestMetrics m;
  m.record(record_of(false, RequestOutcome::kCompleted));
  m.record(record_of(false, RequestOutcome::kDroppedByLimit));
  m.record(record_of(false, RequestOutcome::kBlockedByFirewall));
  m.record(record_of(false, RequestOutcome::kRejectedQueueFull));
  m.record(record_of(false, RequestOutcome::kTimedOut));
  const auto& c = m.normal_counts();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.dropped_by_limit, 1u);
  EXPECT_EQ(c.blocked_by_firewall, 1u);
  EXPECT_EQ(c.rejected_queue_full, 1u);
  EXPECT_EQ(c.timed_out, 1u);
  EXPECT_EQ(c.terminal(), 5u);
  EXPECT_EQ(c.lost(), 4u);
}

TEST(RequestMetrics, OnlyCompletionsContributeLatency) {
  RequestMetrics m;
  m.record(record_of(false, RequestOutcome::kTimedOut, millis(500.0)));
  m.record(record_of(false, RequestOutcome::kCompleted, millis(20.0)));
  EXPECT_EQ(m.normal_latency_ms().count(), 1u);
  EXPECT_DOUBLE_EQ(m.normal_latency_ms().mean(), 20.0);
}

TEST(RequestMetrics, AvailabilityIsNormalCompletionFraction) {
  RequestMetrics m;
  EXPECT_DOUBLE_EQ(m.availability(), 1.0);  // vacuous before traffic
  m.record(record_of(false, RequestOutcome::kCompleted));
  m.record(record_of(false, RequestOutcome::kTimedOut));
  m.record(record_of(true, RequestOutcome::kTimedOut));  // attacker ignored
  EXPECT_DOUBLE_EQ(m.availability(), 0.5);
}

TEST(RequestMetrics, DropFractionSpansBothPopulations) {
  RequestMetrics m;
  m.record(record_of(false, RequestOutcome::kCompleted));
  m.record(record_of(true, RequestOutcome::kDroppedByLimit));
  m.record(record_of(true, RequestOutcome::kDroppedByLimit));
  m.record(record_of(true, RequestOutcome::kCompleted));
  EXPECT_DOUBLE_EQ(m.drop_fraction(), 0.5);
}

TEST(RequestMetrics, SinkAdapterForwards) {
  RequestMetrics m;
  auto sink = m.sink();
  sink(record_of(false, RequestOutcome::kCompleted));
  EXPECT_EQ(m.normal_counts().completed, 1u);
}

// ---------------------------------------------------------------- timeline

TEST(TimelineRecorder, SamplesAtFixedInterval) {
  sim::Engine engine;
  double value = 1.0;
  TimelineRecorder recorder(engine, kSecond, [&value] { return value; });
  engine.run_until(3 * kSecond + kSecond / 2);
  ASSERT_EQ(recorder.samples().size(), 3u);
  EXPECT_EQ(recorder.samples()[0].t, kSecond);
  EXPECT_EQ(recorder.samples()[2].t, 3 * kSecond);
}

TEST(TimelineRecorder, TracksChangingSignal) {
  sim::Engine engine;
  TimelineRecorder recorder(engine, kSecond, [&engine] {
    return static_cast<double>(engine.now() / kSecond);
  });
  engine.run_until(10 * kSecond);
  EXPECT_EQ(recorder.samples().size(), 10u);
  EXPECT_DOUBLE_EQ(recorder.stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(recorder.stats().max(), 10.0);
  EXPECT_DOUBLE_EQ(recorder.stats().mean(), 5.5);
}

TEST(TimelineRecorder, StopHaltsSampling) {
  sim::Engine engine;
  TimelineRecorder recorder(engine, kSecond, [] { return 1.0; });
  engine.run_until(2 * kSecond);
  recorder.stop();
  engine.run_until(10 * kSecond);
  EXPECT_EQ(recorder.samples().size(), 2u);
}

TEST(TimelineRecorder, MeanBetweenWindows) {
  sim::Engine engine;
  TimelineRecorder recorder(engine, kSecond, [&engine] {
    return engine.now() <= 5 * kSecond ? 10.0 : 20.0;
  });
  engine.run_until(10 * kSecond);
  EXPECT_DOUBLE_EQ(recorder.mean_between(0, 5 * kSecond + 1), 10.0);
  EXPECT_DOUBLE_EQ(recorder.mean_between(6 * kSecond, 11 * kSecond), 20.0);
  EXPECT_DOUBLE_EQ(recorder.mean_between(50 * kSecond, 60 * kSecond), 0.0);
}

TEST(TimelineRecorder, ValidatesArguments) {
  sim::Engine engine;
  EXPECT_THROW(TimelineRecorder(engine, 0, [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(TimelineRecorder(engine, kSecond, nullptr),
               std::invalid_argument);
}

// ------------------------------------------------------------------ energy

TEST(EnergyAccount, SlotAccumulationBySource) {
  EnergyAccount account;
  account.add_slot(Watts{300.0}, Watts{50.0}, Watts{20.0}, kSecond);
  account.add_slot(Watts{300.0}, Watts{0.0}, Watts{0.0}, kSecond);
  EXPECT_DOUBLE_EQ(account.utility.value(), 600.0);
  EXPECT_DOUBLE_EQ(account.battery.value(), 50.0);
  EXPECT_DOUBLE_EQ(account.recharge.value(), 20.0);
  EXPECT_DOUBLE_EQ(account.load_total().value(), 650.0);
  EXPECT_DOUBLE_EQ(account.utility_total().value(), 620.0);
}

TEST(EnergyAccount, JouleAccumulation) {
  EnergyAccount account;
  account.add_joules(Joules{100.0}, Joules{10.0}, Joules{5.0});
  account.add_joules(Joules{1.0}, Joules{2.0}, Joules{3.0});
  EXPECT_DOUBLE_EQ(account.utility.value(), 101.0);
  EXPECT_DOUBLE_EQ(account.battery.value(), 12.0);
  EXPECT_DOUBLE_EQ(account.recharge.value(), 8.0);
}

}  // namespace
}  // namespace dope::metrics
