// Tests for the circuit breaker, server power-off semantics, and the
// cluster-level unplanned-outage path (the paper's Fig. 1 failure mode).
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "power/breaker.hpp"
#include "scenario/scenario.hpp"
#include "schemes/baselines.hpp"
#include "workload/generator.hpp"

namespace dope {
namespace {

using workload::Catalog;

// ----------------------------------------------------------------- breaker

TEST(CircuitBreaker, StaysClosedUnderRatedLoad) {
  power::CircuitBreaker breaker({.rated = Watts{100.0}});
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_FALSE(breaker.observe(Watts{100.0}, kSecond));
  }
  EXPECT_FALSE(breaker.tripped());
  EXPECT_DOUBLE_EQ(breaker.heat(), 0.0);
}

TEST(CircuitBreaker, MagneticTripIsImmediate) {
  power::CircuitBreaker breaker(
      {.rated = Watts{100.0}, .instant_trip_multiple = 2.0});
  EXPECT_TRUE(breaker.observe(Watts{200.0}, kMillisecond));
  EXPECT_TRUE(breaker.tripped());
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, ThermalTripFollowsInverseTimeCurve) {
  // heat rate = ratio^2 - 1. At 141% load: rate ~1/s -> ~30 s to trip.
  // At 120%: rate 0.44/s -> ~68 s. Deeper overload trips sooner.
  const auto time_to_trip = [](Watts load) {
    power::CircuitBreaker breaker({.rated = Watts{100.0},
                                   .instant_trip_multiple = 3.0,
                                   .thermal_capacity = 30.0});
    int seconds = 0;
    while (!breaker.tripped() && seconds < 10'000) {
      breaker.observe(load, kSecond);
      ++seconds;
    }
    return seconds;
  };
  const int at_141 = time_to_trip(Watts{141.4});
  const int at_120 = time_to_trip(Watts{120.0});
  EXPECT_NEAR(at_141, 30, 2);
  EXPECT_NEAR(at_120, 68, 4);
  EXPECT_LT(at_141, at_120);
}

TEST(CircuitBreaker, CoolsWhenLoadSubsides) {
  power::CircuitBreaker breaker({.rated = Watts{100.0},
                                 .thermal_capacity = 30.0,
                                 .cooling_rate = 0.5});
  // Build up some heat, then cool.
  for (int i = 0; i < 10; ++i) breaker.observe(Watts{141.4}, kSecond);
  const double hot = breaker.heat();
  ASSERT_GT(hot, 5.0);
  for (int i = 0; i < 30; ++i) breaker.observe(Watts{50.0}, kSecond);
  EXPECT_LT(breaker.heat(), hot);
  EXPECT_FALSE(breaker.tripped());
}

TEST(CircuitBreaker, ShortSpikesRideThrough) {
  // A 2 s spike at 150% must NOT trip a 30 s-capacity breaker — this is
  // the thermal tolerance oversubscription relies on.
  power::CircuitBreaker breaker(
      {.rated = Watts{100.0}, .thermal_capacity = 30.0});
  breaker.observe(Watts{150.0}, 2 * kSecond);
  EXPECT_FALSE(breaker.tripped());
}

TEST(CircuitBreaker, ResetClearsStateButKeepsTripCount) {
  power::CircuitBreaker breaker(
      {.rated = Watts{100.0}, .instant_trip_multiple = 1.5});
  ASSERT_TRUE(breaker.observe(Watts{200.0}, kSecond));
  breaker.reset();
  EXPECT_FALSE(breaker.tripped());
  EXPECT_DOUBLE_EQ(breaker.heat(), 0.0);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, ValidatesSpec) {
  EXPECT_THROW(power::CircuitBreaker({.rated = Watts{0.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      power::CircuitBreaker(
          {.rated = Watts{10.0}, .instant_trip_multiple = 1.0}),
      std::invalid_argument);
}

// --------------------------------------------------------- node power-off

TEST(PowerOff, LosesInFlightWorkAndDropsToZeroPower) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  std::vector<workload::RequestRecord> records;
  server::ServerNode node(
      engine, 0, catalog,
      power::ServerPowerModel({}, power::DvfsLadder::make()), {},
      [&records](const workload::RequestRecord& r) {
        records.push_back(r);
      });
  for (int i = 0; i < 6; ++i) {
    workload::Request r;
    r.type = Catalog::kCollaFilt;
    node.submit(std::move(r));
  }
  ASSERT_EQ(node.active_count(), 4u);
  ASSERT_EQ(node.queue_length(), 2u);
  node.power_off();
  EXPECT_TRUE(node.powered_off());
  EXPECT_FALSE(node.accepting());
  EXPECT_DOUBLE_EQ(node.current_power().value(), 0.0);
  EXPECT_EQ(node.active_count(), 0u);
  EXPECT_EQ(node.queue_length(), 0u);
  ASSERT_EQ(records.size(), 6u);
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, workload::RequestOutcome::kFailedOutage);
  }
  // No zombie completions later.
  engine.run_until(10 * kSecond);
  EXPECT_EQ(records.size(), 6u);
}

TEST(PowerOff, PowerOnRebootsAfterDelay) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  server::ServerNode node(
      engine, 0, catalog,
      power::ServerPowerModel({}, power::DvfsLadder::make()), {},
      [](const workload::RequestRecord&) {});
  node.power_off();
  engine.run_until(kSecond);
  node.power_on(5 * kSecond);
  EXPECT_FALSE(node.powered_off());
  EXPECT_TRUE(node.waking());
  EXPECT_FALSE(node.accepting());
  engine.run_until(10 * kSecond);
  EXPECT_TRUE(node.accepting());
}

TEST(PowerOff, EnergyIsZeroWhileDark) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  server::ServerNode node(
      engine, 0, catalog,
      power::ServerPowerModel({}, power::DvfsLadder::make()), {},
      [](const workload::RequestRecord&) {});
  engine.run_until(kSecond);  // 38 J of idle
  node.power_off();
  engine.run_until(11 * kSecond);  // 10 s dark
  EXPECT_NEAR(node.energy().value(), 38.0, 0.1);
}

// ------------------------------------------------------- cluster outages

cluster::ClusterConfig breaker_cluster(scenario::SchemeKind) {
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.breaker = power::BreakerSpec{.rated = Watts{640.0},
                                  .instant_trip_multiple = 2.0,
                                  .thermal_capacity = 10.0,
                                  .cooling_rate = 0.1};
  return cc;
}

TEST(ClusterOutage, UnmanagedDopeTripsTheBreaker) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::Cluster cluster(engine, catalog,
                           breaker_cluster(scenario::SchemeKind::kNone));
  cluster.install_scheme(std::make_unique<schemes::NoScheme>());

  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture(
      {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount},
      {1.0, 1.0, 1.0});
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 128;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  engine.run_until(5 * kMinute);
  EXPECT_GT(cluster.slot_stats().outages, 0u);
  EXPECT_GT(cluster.slot_stats().downtime, 0);
  // Outage losses show up in the metrics.
  EXPECT_GT(cluster.request_metrics().normal_counts().failed_outage, 0u);
}

TEST(ClusterOutage, ServiceRecoversAfterTheOutage) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  auto cc = breaker_cluster(scenario::SchemeKind::kNone);
  cc.outage_recovery = 10 * kSecond;
  cc.reboot_time = 5 * kSecond;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(std::make_unique<schemes::NoScheme>());

  // A burst that trips the breaker, then calm traffic.
  workload::GeneratorConfig burst;
  burst.mixture = workload::Mixture::single(Catalog::kKMeans);
  burst.rate_rps = 600.0;
  burst.stop = kMinute;
  workload::TrafficGenerator burst_gen(engine, catalog, burst,
                                       cluster.edge_sink());
  engine.run_until(2 * kMinute);
  ASSERT_GT(cluster.slot_stats().outages, 0u);
  EXPECT_FALSE(cluster.in_outage());

  // After recovery the cluster serves again.
  const auto completed_before =
      cluster.request_metrics().normal_counts().completed;
  workload::GeneratorConfig calm;
  calm.mixture = workload::Mixture::single(Catalog::kTextCont);
  calm.rate_rps = 50.0;
  calm.start = engine.now();
  workload::TrafficGenerator calm_gen(engine, catalog, calm,
                                      cluster.edge_sink());
  engine.run_until(engine.now() + kMinute);
  EXPECT_GT(cluster.request_metrics().normal_counts().completed,
            completed_before);
}

TEST(ClusterOutage, CappingPreventsTheTrip) {
  // A budget-respecting scheme keeps the feed below the rating, so the
  // breaker never trips — the whole point of peak power management.
  // (Note: a *pure K-means* flood defeats DVFS entirely here — even the
  // ladder floor exceeds Low-PB because K-means power barely responds to
  // frequency. Colla-Filt is cappable, hence used for this test; the
  // K-means pathology is covered by the Fig. 6 bench.)
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::Cluster cluster(
      engine, catalog, breaker_cluster(scenario::SchemeKind::kCapping));
  cluster.install_scheme(std::make_unique<schemes::CappingScheme>());

  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  engine.run_until(5 * kMinute);
  EXPECT_EQ(cluster.slot_stats().outages, 0u);
}

}  // namespace
}  // namespace dope
