// Unit tests for the compute-node model: queueing, DVFS-aware service,
// power/energy integration, timeouts, and rejection.
#include <gtest/gtest.h>

#include <vector>

#include "power/power_model.hpp"
#include "server/node.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"

namespace dope::server {
namespace {

using workload::Catalog;
using workload::Request;
using workload::RequestOutcome;
using workload::RequestRecord;

class ServerNodeTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Catalog catalog_ = Catalog::standard();
  power::DvfsLadder ladder_ = power::DvfsLadder::make();
  std::vector<RequestRecord> records_;

  std::unique_ptr<ServerNode> make_node(ServerConfig config = {}) {
    return std::make_unique<ServerNode>(
        engine_, 0, catalog_, power::ServerPowerModel({}, ladder_), config,
        [this](const RequestRecord& r) { records_.push_back(r); });
  }

  Request request(workload::RequestTypeId type, double size = 1.0) {
    Request r;
    r.id = static_cast<std::uint64_t>(records_.size()) + 1'000;
    r.type = type;
    r.arrival = engine_.now();
    r.size_factor = size;
    return r;
  }
};

TEST_F(ServerNodeTest, StartsIdleAtMaxFrequency) {
  auto node = make_node();
  EXPECT_EQ(node->level(), ladder_.max_level());
  EXPECT_EQ(node->active_count(), 0u);
  EXPECT_EQ(node->queue_length(), 0u);
  EXPECT_DOUBLE_EQ(node->current_power().value(), 38.0);  // idle at f_max
  EXPECT_TRUE(node->accepting());
}

TEST_F(ServerNodeTest, ServesOneRequestWithModelLatency) {
  auto node = make_node();
  node->submit(request(Catalog::kTextCont));
  EXPECT_EQ(node->active_count(), 1u);
  engine_.run_until(kSecond);
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].outcome, RequestOutcome::kCompleted);
  // Unloaded latency == service time at f_max (8 ms for Text-Cont).
  EXPECT_NEAR(to_millis(records_[0].latency), 8.0, 0.1);
  EXPECT_EQ(records_[0].server,
            (workload::ServerRef{workload::ServerRef::kNoZone, 0}));
  EXPECT_TRUE(records_[0].server.valid());
  EXPECT_EQ(node->counters().completed, 1u);
}

TEST_F(ServerNodeTest, PowerRisesWithActiveRequests) {
  auto node = make_node();
  const Watts idle = node->current_power();
  node->submit(request(Catalog::kCollaFilt));
  const Watts one = node->current_power();
  node->submit(request(Catalog::kCollaFilt));
  const Watts two = node->current_power();
  EXPECT_NEAR((one - idle).value(), 19.0, 1e-9);
  EXPECT_NEAR((two - one).value(), 19.0, 1e-9);
}

TEST_F(ServerNodeTest, PowerClampedAtNameplate) {
  auto node = make_node();
  for (int i = 0; i < 4; ++i) node->submit(request(Catalog::kKMeans));
  // 38 idle + 4*21 = 122, clamped to the 100 W nameplate.
  EXPECT_DOUBLE_EQ(node->current_power().value(), 100.0);
}

TEST_F(ServerNodeTest, QueueingBeyondCoresIsFcfs) {
  auto node = make_node();
  for (int i = 0; i < 6; ++i) node->submit(request(Catalog::kTextCont));
  EXPECT_EQ(node->active_count(), 4u);
  EXPECT_EQ(node->queue_length(), 2u);
  EXPECT_EQ(node->load(), 6u);
  engine_.run_until(kSecond);
  EXPECT_EQ(records_.size(), 6u);
  // FCFS: completion order matches submission order for equal sizes.
  for (std::size_t i = 1; i < records_.size(); ++i) {
    EXPECT_GE(records_[i].finish, records_[i - 1].finish);
  }
}

TEST_F(ServerNodeTest, RejectsWhenQueueFull) {
  ServerConfig config;
  config.queue_capacity = 2;
  auto node = make_node(config);
  for (int i = 0; i < 8; ++i) node->submit(request(Catalog::kCollaFilt));
  // 4 serving + 2 queued + 2 rejected.
  EXPECT_EQ(node->counters().rejected_queue_full, 2u);
  int rejected = 0;
  for (const auto& r : records_) {
    if (r.outcome == RequestOutcome::kRejectedQueueFull) ++rejected;
  }
  EXPECT_EQ(rejected, 2);
}

TEST_F(ServerNodeTest, QueuedRequestsTimeOut) {
  ServerConfig config;
  config.queue_deadline = millis(50.0);
  auto node = make_node(config);
  // Colla-Filt takes 80 ms; the 5th+ request waits > 50 ms.
  for (int i = 0; i < 8; ++i) {
    node->submit(request(Catalog::kCollaFilt, /*size=*/1.0));
  }
  engine_.run_until(2 * kSecond);
  EXPECT_GT(node->counters().timed_out, 0u);
  EXPECT_EQ(node->counters().completed + node->counters().timed_out, 8u);
}

TEST_F(ServerNodeTest, ThrottlingStretchesServiceTime) {
  auto node = make_node();
  node->force_level(0);  // 1.2 GHz
  node->submit(request(Catalog::kCollaFilt));
  engine_.run_until(kSecond);
  ASSERT_EQ(records_.size(), 1u);
  // alpha=0.9 at rel=0.5: slowdown 1.9 -> 80 ms * 1.9 = 152 ms.
  EXPECT_NEAR(to_millis(records_[0].latency), 152.0, 1.0);
}

TEST_F(ServerNodeTest, MidFlightFrequencyChangeIsWorkConserving) {
  ServerConfig config;
  config.dvfs_latency = 0;
  auto node = make_node(config);
  node->submit(request(Catalog::kCollaFilt));
  // Half the work done at full speed (40 ms of the 80 ms job)...
  engine_.run_until(millis(40.0));
  node->request_level(0);
  engine_.run_until(2 * kSecond);
  ASSERT_EQ(records_.size(), 1u);
  // ...then the remaining 40 ms of work at slowdown 1.9: 40+76 = 116 ms.
  EXPECT_NEAR(to_millis(records_[0].latency), 116.0, 2.0);
}

TEST_F(ServerNodeTest, DvfsActuationLatencyDelaysTheChange) {
  ServerConfig config;
  config.dvfs_latency = millis(100.0);
  auto node = make_node(config);
  node->request_level(0);
  EXPECT_EQ(node->level(), ladder_.max_level());  // not yet applied
  EXPECT_EQ(node->target_level(), 0u);
  engine_.run_until(millis(50.0));
  EXPECT_EQ(node->level(), ladder_.max_level());
  engine_.run_until(millis(150.0));
  EXPECT_EQ(node->level(), 0u);
}

TEST_F(ServerNodeTest, SupersededActuationAppliesNewestTarget) {
  ServerConfig config;
  config.dvfs_latency = millis(10.0);
  auto node = make_node(config);
  node->request_level(0);
  node->request_level(5);  // supersedes before the first lands
  engine_.run_until(millis(100.0));
  EXPECT_EQ(node->level(), 5u);
}

TEST_F(ServerNodeTest, EnergyIntegratesIdlePowerExactly) {
  auto node = make_node();
  engine_.run_until(10 * kSecond);
  EXPECT_NEAR(node->energy().value(), 38.0 * 10.0, 1e-6);
}

TEST_F(ServerNodeTest, EnergyAccountsForServiceWork) {
  auto node = make_node();
  node->submit(request(Catalog::kCollaFilt));  // 19 W for 80 ms
  engine_.run_until(kSecond);
  const Joules expected{38.0 * 1.0 + 19.0 * 0.080};
  EXPECT_NEAR(node->energy().value(), expected.value(), 0.05);
}

TEST_F(ServerNodeTest, EstimatePowerAtMatchesCurrentLevel) {
  auto node = make_node();
  node->submit(request(Catalog::kKMeans));
  EXPECT_DOUBLE_EQ(node->estimate_power_at(node->level()).value(),
                   node->current_power().value());
  // Lower levels estimate lower (or equal, given clamping) power.
  Watts prev{-1.0};
  for (power::DvfsLevel l = 0; l < ladder_.levels(); ++l) {
    const Watts p = node->estimate_power_at(l);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST_F(ServerNodeTest, ThrottledKMeansPowerBarelyDrops) {
  // The Fig. 6b effect at node level.
  auto node = make_node();
  node->submit(request(Catalog::kKMeans));
  const Watts at_max = node->estimate_power_at(ladder_.max_level());
  const Watts at_min = node->estimate_power_at(0);
  const double kmeans_drop = (at_max - at_min) / at_max;
  EXPECT_LT(kmeans_drop, 0.35);
}

TEST_F(ServerNodeTest, NonAcceptingNodeRefusesSubmit) {
  auto node = make_node();
  node->set_accepting(false);
  EXPECT_FALSE(node->accepting());
  EXPECT_THROW(node->submit(request(Catalog::kTextCont)),
               std::invalid_argument);
}

TEST_F(ServerNodeTest, ManyRequestsAllTerminate) {
  auto node = make_node();
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    engine_.schedule_at(i * millis(2.0), [this, &node] {
      node->submit(request(Catalog::kTextCont));
    });
  }
  engine_.run_until(30 * kSecond);
  EXPECT_EQ(records_.size(), static_cast<std::size_t>(n));
  for (const auto& r : records_) {
    EXPECT_EQ(r.outcome, RequestOutcome::kCompleted);
  }
}

TEST_F(ServerNodeTest, UtilizationDrivesThroughputAtCapacity) {
  // Offered load beyond capacity: throughput ~= cores / service_time.
  auto node = make_node({.queue_capacity = 10'000, .queue_deadline = 0});
  const int n = 3'000;
  for (int i = 0; i < n; ++i) {
    engine_.schedule_at(i * millis(1.0), [this, &node] {
      node->submit(request(Catalog::kCollaFilt));
    });
  }
  engine_.run_until(10 * kSecond);
  // Capacity = 4 cores / 80 ms = 50 rps; in 10 s ≈ 500 completions.
  EXPECT_NEAR(static_cast<double>(node->counters().completed), 500.0, 50.0);
}

}  // namespace
}  // namespace dope::server
