// Tests for the flight-recorder pillar: time-series downsampling edge
// cases (ring wrap at tier boundaries, runs shorter than one tier,
// zero-sample export), trigger dedup and the IncidentTruncated cap,
// and the end-to-end acceptance properties from docs/OBSERVABILITY.md —
// a breaker trip yields a schema-valid bundle whose pre-trigger power
// series reconciles with the energy account and whose suspect ranking
// matches obs::Forensics, and dopereport renders it.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/forensics.hpp"
#include "obs/hub.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "power/breaker.hpp"
#include "scenario/scenario.hpp"

namespace dope::obs {
namespace {

// ------------------------------------------------ downsampling tiers

TEST(TimeSeries, TierBucketsFoldMinMeanMax) {
  TimeSeriesConfig config;
  Series series("s", config);
  // Values 0..24: bucket 0 folds 0..9, bucket 1 folds 10..19; 20..24
  // are still accumulating and must not appear in tier1 yet.
  for (int i = 0; i < 25; ++i) {
    series.sample(i * kSecond, static_cast<double>(i));
  }
  const auto tier1 = series.tier1();
  ASSERT_EQ(tier1.size(), 2u);
  EXPECT_EQ(tier1[0].first_index, 0u);
  EXPECT_EQ(tier1[0].count, kTier1FanIn);
  EXPECT_EQ(tier1[0].min, 0.0);
  EXPECT_EQ(tier1[0].max, 9.0);
  EXPECT_DOUBLE_EQ(tier1[0].mean(), 4.5);
  EXPECT_EQ(tier1[1].first_index, 10u);
  EXPECT_EQ(tier1[1].min, 10.0);
  EXPECT_EQ(tier1[1].max, 19.0);
  EXPECT_DOUBLE_EQ(tier1[1].mean(), 14.5);
  EXPECT_TRUE(series.tier2().empty());  // needs 100 samples
  EXPECT_EQ(series.total_samples(), 25u);
  EXPECT_EQ(series.last_value(), 24.0);
}

TEST(TimeSeries, RawRingWrapKeepsTierBoundariesAligned) {
  // Raw ring shorter than one tier-1 bucket: eviction crosses every
  // bucket boundary, yet the folded aggregates must stay exact because
  // folding happens at sample time, not from the ring.
  TimeSeriesConfig config;
  config.raw_capacity = 7;
  Series series("s", config);
  for (int i = 0; i < 35; ++i) {
    series.sample(i * kSecond, static_cast<double>(i));
  }
  const auto raw = series.raw();
  ASSERT_EQ(raw.size(), 7u);
  // Oldest-first, indices monotone and surviving eviction: 28..34.
  for (std::size_t k = 0; k < raw.size(); ++k) {
    EXPECT_EQ(raw[k].index, 28u + k);
    EXPECT_EQ(raw[k].value, static_cast<double>(28 + k));
    if (k > 0) {
      EXPECT_GT(raw[k].index, raw[k - 1].index);
    }
  }
  const auto tier1 = series.tier1();
  ASSERT_EQ(tier1.size(), 3u);
  for (std::size_t b = 0; b < tier1.size(); ++b) {
    EXPECT_EQ(tier1[b].first_index, b * kTier1FanIn);
    EXPECT_EQ(tier1[b].count, kTier1FanIn);
    const double lo = static_cast<double>(b * kTier1FanIn);
    EXPECT_EQ(tier1[b].min, lo);
    EXPECT_EQ(tier1[b].max, lo + 9.0);
    EXPECT_DOUBLE_EQ(tier1[b].mean(), lo + 4.5);
    EXPECT_LE(tier1[b].min, tier1[b].mean());
    EXPECT_LE(tier1[b].mean(), tier1[b].max);
  }
  // Whole-run totals ignore eviction entirely.
  EXPECT_EQ(series.total_samples(), 35u);
  EXPECT_DOUBLE_EQ(series.total_sum(), 35.0 * 34.0 / 2.0);
  EXPECT_EQ(series.seen_min(), 0.0);
  EXPECT_EQ(series.seen_max(), 34.0);
}

TEST(TimeSeries, TierRingsThemselvesWrap) {
  TimeSeriesConfig config;
  config.raw_capacity = 5;
  config.tier1_capacity = 3;
  Series series("s", config);
  // 60 samples = 6 tier-1 buckets; only the last 3 survive.
  for (int i = 0; i < 60; ++i) {
    series.sample(i * kSecond, static_cast<double>(i));
  }
  const auto tier1 = series.tier1();
  ASSERT_EQ(tier1.size(), 3u);
  EXPECT_EQ(tier1[0].first_index, 30u);
  EXPECT_EQ(tier1[1].first_index, 40u);
  EXPECT_EQ(tier1[2].first_index, 50u);
}

TEST(TimeSeries, RunShorterThanOneTier) {
  TimeSeriesConfig config;
  Series series("s", config);
  for (int i = 0; i < 4; ++i) {
    series.sample(i * kSecond, 2.0 * i);
  }
  EXPECT_EQ(series.raw().size(), 4u);
  EXPECT_TRUE(series.tier1().empty());
  EXPECT_TRUE(series.tier2().empty());
  std::ostringstream out;
  series.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"samples\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"tier10\": []"), std::string::npos);
  EXPECT_NE(json.find("\"tier100\": []"), std::string::npos);
}

TEST(TimeSeries, ZeroSampleExport) {
  TimeSeriesConfig config;
  Series series("empty", config);
  EXPECT_EQ(series.total_samples(), 0u);
  EXPECT_EQ(series.seen_min(), 0.0);
  EXPECT_EQ(series.seen_max(), 0.0);
  EXPECT_TRUE(series.raw().empty());
  std::ostringstream out;
  series.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"samples\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"raw\": []"), std::string::npos);
}

TEST(TimeSeriesStore, ExportIsNameSorted) {
  TimeSeriesStore store;
  store.series("zeta").sample(0, 1.0);
  store.series("alpha").sample(0, 2.0);
  std::ostringstream out;
  store.write_json(out);
  const std::string json = out.str();
  const auto alpha = json.find("\"alpha\"");
  const auto zeta = json.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);
  // Same handle on re-lookup.
  EXPECT_EQ(&store.series("alpha"), &store.series("alpha"));
  EXPECT_EQ(store.size(), 2u);
}

// ------------------------------------------------ trigger handling

TraceEvent breaker_trip(Time t) {
  TraceEvent e;
  e.t = t;
  e.type = EventType::kBreakerTrip;
  e.source = "breaker";
  e.num = {{"utility_w", 700.0}, {"rated_w", 550.0}, {"trips", 1.0}};
  return e;
}

TraceEvent budget_violation(Time t, int zone = -1) {
  TraceEvent e;
  e.t = t;
  e.type = EventType::kBudgetViolation;
  e.source = "cluster";
  e.num = {{"overshoot_w", 42.0}};
  if (zone >= 0) e.num.emplace_back("zone", static_cast<double>(zone));
  return e;
}

struct Rig {
  TraceRecorder trace;
  FlightRecorder flight;

  explicit Rig(FlightConfig config = {})
      : flight(config, nullptr, &trace, nullptr) {
    FlightRunContext context;
    context.seed = 42;
    context.scheme = "none";
    context.slot = 1 * kSecond;
    context.duration = 60 * kSecond;
    flight.set_run_context(context);
  }
};

TEST(FlightRecorder, SameSlotTriggersProduceOneIncident) {
  Rig rig;
  // Two triggers inside management slot 3 (t in [3 s, 4 s)).
  rig.flight.on_trace_event(breaker_trip(3 * kSecond));
  rig.flight.on_trace_event(
      budget_violation(3 * kSecond + 500 * kMillisecond));
  EXPECT_EQ(rig.flight.incident_count(), 1u);
  EXPECT_EQ(rig.flight.triggers(), 1u);
  EXPECT_EQ(rig.flight.deduped(), 1u);
  // A trigger in the next slot is a fresh incident.
  rig.flight.on_trace_event(breaker_trip(4 * kSecond));
  EXPECT_EQ(rig.flight.incident_count(), 2u);
  EXPECT_EQ(rig.flight.deduped(), 1u);
}

TEST(FlightRecorder, BudgetViolationOnsetOnly) {
  Rig rig;
  // Slots 1-2-3 are one continuing violation; slot 10 is a new onset.
  rig.flight.on_trace_event(budget_violation(1 * kSecond));
  rig.flight.on_trace_event(budget_violation(2 * kSecond));
  rig.flight.on_trace_event(budget_violation(3 * kSecond));
  rig.flight.on_trace_event(budget_violation(10 * kSecond));
  EXPECT_EQ(rig.flight.incident_count(), 2u);
  EXPECT_EQ(rig.flight.deduped(), 0u);
}

TEST(FlightRecorder, ViolationOnsetsTrackedPerZone) {
  Rig rig;
  rig.flight.on_trace_event(budget_violation(1 * kSecond, 0));
  // Same slot, other zone: a distinct onset, deduped into the incident.
  rig.flight.on_trace_event(budget_violation(1 * kSecond, 1));
  // Zone 1 continues; zone 0 re-onsets after its gap.
  rig.flight.on_trace_event(budget_violation(2 * kSecond, 1));
  rig.flight.on_trace_event(budget_violation(5 * kSecond, 0));
  EXPECT_EQ(rig.flight.triggers(), 2u);
  EXPECT_EQ(rig.flight.deduped(), 1u);
}

TEST(FlightRecorder, CapEmitsIncidentTruncatedTrailer) {
  FlightConfig config;
  config.max_incidents = 2;
  Rig rig(config);
  for (int s = 0; s < 5; ++s) {
    rig.flight.on_trace_event(breaker_trip(s * kSecond));
  }
  EXPECT_EQ(rig.flight.incident_count(), 2u);
  EXPECT_EQ(rig.flight.triggers(), 5u);
  EXPECT_EQ(rig.flight.dropped(), 3u);
  std::ostringstream out;
  rig.flight.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"IncidentTruncated\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"cap\": 2"), std::string::npos);
}

TEST(FlightRecorder, ManualDumpAndAuditTriggersCapture) {
  Rig rig;
  rig.flight.dump_now(7 * kSecond, "operator");
  rig.flight.on_audit_failure(9 * kSecond, "battery_soc",
                              "soc below floor");
  EXPECT_EQ(rig.flight.incident_count(), 2u);
  std::ostringstream out;
  rig.flight.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ManualDump\""), std::string::npos);
  EXPECT_NE(json.find("\"AuditFailure\""), std::string::npos);
  EXPECT_NE(json.find("battery_soc: soc below floor"),
            std::string::npos);
}

TEST(FlightRecorder, BundleEnvelopeCarriesRunContext) {
  Rig rig;
  rig.flight.on_trace_event(breaker_trip(3 * kSecond));
  std::ostringstream out;
  rig.flight.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dope_incident_bundle\": 1"), std::string::npos);
  // Seed serialized as a string so >2^53 seeds survive JSON readers.
  EXPECT_NE(json.find("\"seed\": \"42\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"none\""), std::string::npos);
  EXPECT_NE(json.find("\"trigger\": \"BreakerTrip\""),
            std::string::npos);
  EXPECT_NE(json.find("utility_w=700"), std::string::npos);
}

// ------------------------------------------------ end-to-end bundle

scenario::ScenarioConfig breaker_trip_scenario() {
  scenario::ScenarioConfig config;
  // Undefended on purpose: Anti-DOPE caps the draw below any sane
  // breaker rating, which is the paper's point — the trip only happens
  // when nothing defends.
  config.scheme = scenario::SchemeKind::kNone;
  config.budget = power::BudgetLevel::kLow;
  config.num_servers = 4;
  config.normal_rps = 100.0;
  config.attack_rps = 400.0;
  config.duration = 60 * kSecond;
  config.seed = 42;
  power::BreakerSpec breaker;
  breaker.rated = Watts{300.0};
  config.breaker = breaker;
  return config;
}

Hub make_flight_hub() {
  HubConfig config;
  config.enable_spans = true;
  config.enable_timeseries = true;
  config.enable_flight = true;
  return Hub(config);
}

/// Extracts the first `"key": <integer>` occurrence after `from`.
std::int64_t find_int(const std::string& json, const std::string& key,
                      std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle, from);
  if (pos == std::string::npos) {
    throw std::runtime_error("key not found: " + key);
  }
  return std::stoll(json.substr(pos + needle.size()));
}

TEST(FlightScenario, BreakerTripYieldsSchemaValidBundle) {
  Hub hub = make_flight_hub();
  auto config = breaker_trip_scenario();
  config.obs = &hub;
  config.default_alert_rules = false;  // isolate the breaker trigger
  scenario::run_scenario(config);

  ASSERT_NE(hub.flight(), nullptr);
  ASSERT_GE(hub.flight()->incident_count(), 1u);
  std::ostringstream out;
  hub.flight()->write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dope_incident_bundle\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"trigger\": \"BreakerTrip\""),
            std::string::npos);
  // The triggering slot's samples are already in the snapshot: the
  // incident's slot_index appears in the demand series raw ring.
  const std::int64_t slot_index = find_int(json, "slot_index");
  EXPECT_GT(slot_index, 0);
  EXPECT_NE(json.find("\"cluster.slot_demand_w\""), std::string::npos);
  EXPECT_NE(json.find("\"breaker.heat\""), std::string::npos);
}

TEST(FlightScenario, PowerSeriesReconcilesWithEnergyAccount) {
  Hub hub = make_flight_hub();
  auto config = breaker_trip_scenario();
  config.obs = &hub;
  const auto result = scenario::run_scenario(config);

  ASSERT_NE(hub.timeseries(), nullptr);
  const Series* demand = hub.timeseries()->find("cluster.slot_demand_w");
  const Series* energy = hub.timeseries()->find("cluster.load_energy_j");
  ASSERT_NE(demand, nullptr);
  ASSERT_NE(energy, nullptr);
  // Σ(per-slot demand) × slot must reconcile with both the cumulative
  // energy series and the scenario's own energy account.
  const double slot_s = to_seconds(config.slot);
  const double from_series = demand->total_sum() * slot_s;
  const double account = result.energy.load_total().value();
  ASSERT_GT(account, 0.0);
  EXPECT_NEAR(from_series / account, 1.0, 1e-3);
  EXPECT_NEAR(energy->last_value() / account, 1.0, 1e-3);
}

TEST(FlightScenario, SuspectRankingMatchesForensics) {
  Hub hub = make_flight_hub();
  auto config = breaker_trip_scenario();
  config.breaker.reset();  // only the explicit end-of-run dump captures
  config.obs = &hub;
  config.default_alert_rules = false;
  scenario::run_scenario(config);
  hub.flight()->dump_now(config.duration, "test");

  ASSERT_GE(hub.flight()->incident_count(), 1u);
  std::ostringstream out;
  hub.flight()->write_json(out);
  const std::string json = out.str();

  // Rebuild the ranking over the same span log at the same horizon; the
  // end-of-run dump's suspect list must match it exactly, in order.
  const Forensics forensics =
      Forensics::build(*hub.spans(), hub.trace(), config.duration);
  const auto top = forensics.top_by_joules(5);
  ASSERT_FALSE(top.empty());
  const auto dump_pos = json.find("\"ManualDump\"");
  ASSERT_NE(dump_pos, std::string::npos);
  const auto forensics_pos = json.find("\"forensics\"", dump_pos);
  ASSERT_NE(forensics_pos, std::string::npos);
  std::size_t cursor = forensics_pos;
  for (const SourceStats& s : top) {
    // Jump to this entry's start so every field read stays inside it.
    cursor = json.find("\"source_id\"", cursor);
    ASSERT_NE(cursor, std::string::npos);
    EXPECT_EQ(find_int(json, "source_id", cursor),
              static_cast<std::int64_t>(s.source_id));
    EXPECT_EQ(find_int(json, "requests", cursor),
              static_cast<std::int64_t>(s.requests));
    EXPECT_EQ(find_int(json, "violation_overlaps", cursor),
              static_cast<std::int64_t>(s.violation_overlaps));
    ++cursor;
  }
}

TEST(FlightScenario, AttachedRecorderDoesNotPerturbResults) {
  const auto plain = scenario::run_scenario(breaker_trip_scenario());

  Hub hub = make_flight_hub();
  auto config = breaker_trip_scenario();
  config.obs = &hub;
  config.default_alert_rules = true;
  const auto traced = scenario::run_scenario(config);

  EXPECT_EQ(plain.mean_ms, traced.mean_ms);
  EXPECT_EQ(plain.p99_ms, traced.p99_ms);
  EXPECT_EQ(plain.availability, traced.availability);
  EXPECT_EQ(plain.mean_power, traced.mean_power);
  EXPECT_EQ(plain.peak_power, traced.peak_power);
  EXPECT_EQ(plain.energy.utility, traced.energy.utility);
  EXPECT_EQ(plain.energy.battery, traced.energy.battery);
  EXPECT_EQ(plain.slot_stats.violation_slots,
            traced.slot_stats.violation_slots);
}

// ------------------------------------------------ post-mortem render

std::string scenario_bundle() {
  Hub hub = make_flight_hub();
  auto config = breaker_trip_scenario();
  config.obs = &hub;
  config.default_alert_rules = true;
  scenario::run_scenario(config);
  std::ostringstream out;
  hub.flight()->write_json(out);
  return out.str();
}

TEST(Report, MarkdownRendersTimelineAndSloBurn) {
  const std::string bundle = scenario_bundle();
  std::ostringstream out;
  write_postmortem_markdown(out, bundle);
  const std::string md = out.str();
  EXPECT_NE(md.find("# DOPE incident post-mortem"), std::string::npos);
  EXPECT_NE(md.find("## SLO"), std::string::npos);
  EXPECT_NE(md.find("### Timeline"), std::string::npos);
  EXPECT_NE(md.find("### Pre-trigger signals"), std::string::npos);
  EXPECT_NE(md.find("### Attack attribution"), std::string::npos);
  EXPECT_NE(md.find("cluster.slot_demand_w"), std::string::npos);
  // Rendering is pure: same bundle, same bytes.
  std::ostringstream again;
  write_postmortem_markdown(again, bundle);
  EXPECT_EQ(md, again.str());
}

TEST(Report, JsonDigestRenders) {
  const std::string bundle = scenario_bundle();
  std::ostringstream out;
  write_postmortem_json(out, bundle);
  const std::string digest = out.str();
  EXPECT_NE(digest.find("\"dope_postmortem\""), std::string::npos);
  EXPECT_NE(digest.find("\"incidents\""), std::string::npos);
}

TEST(Report, MalformedBundleThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_postmortem_markdown(out, "not json"),
               std::runtime_error);
  EXPECT_THROW(write_postmortem_json(out, "{\"wrong\": 1}"),
               std::runtime_error);
}

}  // namespace
}  // namespace dope::obs
