// Unit tests for DVFS ladder, power models, and provisioning levels.
#include <gtest/gtest.h>

#include <stdexcept>

#include "power/dvfs.hpp"
#include "power/power_model.hpp"
#include "power/provisioning.hpp"

namespace dope::power {
namespace {

// ------------------------------------------------------------------ dvfs

TEST(DvfsLadder, DefaultMatchesPaperTestbed) {
  const auto ladder = DvfsLadder::make();
  EXPECT_EQ(ladder.levels(), 13u);  // 1.2 .. 2.4 GHz at 0.1 steps
  EXPECT_DOUBLE_EQ(ladder.min_frequency().value(), 1.2);
  EXPECT_DOUBLE_EQ(ladder.max_frequency().value(), 2.4);
  EXPECT_NEAR((ladder.frequency(1) - ladder.frequency(0)).value(),
              0.1, 1e-9);
}

TEST(DvfsLadder, FrequenciesAscend) {
  const auto ladder = DvfsLadder::make();
  for (DvfsLevel l = 1; l < ladder.levels(); ++l) {
    EXPECT_GT(ladder.frequency(l), ladder.frequency(l - 1));
  }
}

TEST(DvfsLadder, LevelForClampsAndRoundsDown) {
  const auto ladder = DvfsLadder::make();
  EXPECT_EQ(ladder.level_for(GHz{0.5}), 0u);
  EXPECT_EQ(ladder.level_for(GHz{99.0}), ladder.max_level());
  // 1.25 GHz is not an operating point; the highest point <= f is 1.2.
  EXPECT_EQ(ladder.level_for(GHz{1.25}), 0u);
  EXPECT_EQ(ladder.level_for(GHz{2.4}), ladder.max_level());
}

TEST(DvfsLadder, RelativeIsFractionOfMax) {
  const auto ladder = DvfsLadder::make();
  EXPECT_DOUBLE_EQ(ladder.relative(ladder.max_level()), 1.0);
  EXPECT_NEAR(ladder.relative(0), 1.2 / 2.4, 1e-12);
}

TEST(DvfsLadder, ClampedHandlesNegativeAndOverflow) {
  const auto ladder = DvfsLadder::make();
  EXPECT_EQ(ladder.clamped(-5), 0u);
  EXPECT_EQ(ladder.clamped(100), ladder.max_level());
  EXPECT_EQ(ladder.clamped(3), 3u);
}

TEST(DvfsLadder, ExplicitListValidated) {
  EXPECT_THROW(DvfsLadder({}), std::invalid_argument);
  EXPECT_THROW(DvfsLadder({GHz{2.0}, GHz{1.0}}),
               std::invalid_argument);
  const DvfsLadder single({GHz{1.0}});
  EXPECT_EQ(single.levels(), 1u);
  EXPECT_EQ(single.max_level(), 0u);
}

TEST(DvfsLadder, RejectsBadMakeParameters) {
  EXPECT_THROW(DvfsLadder::make(GHz{0.0}, GHz{1.0}, GHz{0.1}),
               std::invalid_argument);
  EXPECT_THROW(DvfsLadder::make(GHz{2.0}, GHz{1.0}, GHz{0.1}),
               std::invalid_argument);
  EXPECT_THROW(DvfsLadder::make(GHz{1.0}, GHz{2.0}, GHz{0.0}),
               std::invalid_argument);
}

// ----------------------------------------------------------- power model

TEST(ActivePower, FullSensitivityFollowsCubicLaw) {
  const RequestPowerProfile profile{Watts{16.0}, 1.0};
  EXPECT_DOUBLE_EQ(active_power(profile, 1.0).value(), 16.0);
  EXPECT_NEAR(active_power(profile, 0.5).value(), 16.0 * 0.125,
              1e-9);
}

TEST(ActivePower, ZeroSensitivityIsFlat) {
  const RequestPowerProfile profile{Watts{18.0}, 0.0};
  EXPECT_DOUBLE_EQ(active_power(profile, 1.0).value(), 18.0);
  EXPECT_DOUBLE_EQ(active_power(profile, 0.5).value(), 18.0);
}

TEST(ActivePower, PartialSensitivityInterpolates) {
  const RequestPowerProfile profile{Watts{10.0}, 0.4};
  const double at_half = active_power(profile, 0.5).value();
  EXPECT_NEAR(at_half, 10.0 * (0.4 * 0.125 + 0.6), 1e-9);
  EXPECT_LT(at_half, 10.0);
  EXPECT_GT(at_half, 10.0 * 0.125);
}

TEST(ActivePower, RejectsOutOfRangeFrequency) {
  const RequestPowerProfile profile{Watts{10.0}, 0.5};
  EXPECT_THROW(active_power(profile, 0.0), std::invalid_argument);
  EXPECT_THROW(active_power(profile, 1.1), std::invalid_argument);
}

class ServerPowerModelTest : public ::testing::Test {
 protected:
  DvfsLadder ladder_ = DvfsLadder::make();
  ServerPowerSpec spec_{};  // 100 W, 25+10 idle, 4 cores
  ServerPowerModel model_{spec_, ladder_};
};

TEST_F(ServerPowerModelTest, IdlePowerAtExtremes) {
  EXPECT_DOUBLE_EQ(model_.idle_power(ladder_.max_level()).value(),
                   38.0);
  const double rel = 1.2 / 2.4;
  EXPECT_NEAR(model_.idle_power(0).value(),
              30.0 + 8.0 * rel * rel * rel, 1e-9);
}

TEST_F(ServerPowerModelTest, IdlePowerMonotoneInLevel) {
  for (DvfsLevel l = 1; l < ladder_.levels(); ++l) {
    EXPECT_GE(model_.idle_power(l), model_.idle_power(l - 1));
  }
}

TEST_F(ServerPowerModelTest, ClampRespectsNameplate) {
  EXPECT_DOUBLE_EQ(model_.clamp(Watts{150.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(model_.clamp(Watts{80.0}).value(), 80.0);
}

TEST_F(ServerPowerModelTest, SaturatedPowerNearNameplateForHeavyType) {
  // 15 W/request, 4 cores -> 38 + 60 = 98 W, just under nameplate.
  const RequestPowerProfile heavy{Watts{15.0}, 0.8};
  EXPECT_NEAR(model_.saturated_power(heavy, ladder_.max_level()).value(),
              98.0, 1e-9);
}

TEST_F(ServerPowerModelTest, SaturatedPowerClampedForSuperHeavyType) {
  const RequestPowerProfile monster{Watts{30.0}, 0.8};
  EXPECT_DOUBLE_EQ(
      model_.saturated_power(monster, ladder_.max_level()).value(),
      100.0);
}

TEST_F(ServerPowerModelTest, LowSensitivityTypeResistsThrottling) {
  // The K-means effect (Fig. 6b): power barely falls with frequency.
  const RequestPowerProfile kmeans{Watts{18.0}, 0.35};
  const RequestPowerProfile collafilt{Watts{16.0}, 0.80};
  const Watts kmeans_drop =
      model_.request_power(kmeans, ladder_.max_level()) -
      model_.request_power(kmeans, 0);
  const Watts colla_drop =
      model_.request_power(collafilt, ladder_.max_level()) -
      model_.request_power(collafilt, 0);
  EXPECT_LT(kmeans_drop, colla_drop);
}

TEST_F(ServerPowerModelTest, RejectsInvalidSpec) {
  ServerPowerSpec bad = spec_;
  bad.nameplate = Watts{0.0};
  EXPECT_THROW(ServerPowerModel(bad, ladder_), std::invalid_argument);
  bad = spec_;
  bad.cores = 0;
  EXPECT_THROW(ServerPowerModel(bad, ladder_), std::invalid_argument);
}

// ----------------------------------------------------------- provisioning

TEST(Provisioning, FractionsMatchPaper) {
  EXPECT_DOUBLE_EQ(budget_fraction(BudgetLevel::kNormal), 1.00);
  EXPECT_DOUBLE_EQ(budget_fraction(BudgetLevel::kHigh), 0.90);
  EXPECT_DOUBLE_EQ(budget_fraction(BudgetLevel::kMedium), 0.85);
  EXPECT_DOUBLE_EQ(budget_fraction(BudgetLevel::kLow), 0.80);
}

TEST(Provisioning, NamesMatchPaper) {
  EXPECT_EQ(budget_name(BudgetLevel::kNormal), "Normal-PB");
  EXPECT_EQ(budget_name(BudgetLevel::kLow), "Low-PB");
}

TEST(Provisioning, BudgetScalesWithNameplate) {
  const auto b = PowerBudget::for_level(BudgetLevel::kMedium, Watts{800.0});
  EXPECT_DOUBLE_EQ(b.supply.value(), 680.0);
  EXPECT_THROW(PowerBudget::for_level(BudgetLevel::kLow, Watts{0.0}),
               std::invalid_argument);
}

TEST(Provisioning, LevelsAreOrderedBySupply) {
  double prev = 2.0;
  for (const auto level : kAllBudgetLevels) {
    EXPECT_LT(budget_fraction(level), prev);
    prev = budget_fraction(level);
  }
}

}  // namespace
}  // namespace dope::power
