// Tests for the n-level power classifier (Section 5.3) and the graded
// multi-pool Anti-DOPE variant.
#include <gtest/gtest.h>

#include <memory>

#include "antidope/graded.hpp"
#include "antidope/power_classes.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

namespace dope::antidope {
namespace {

using workload::Catalog;

// ------------------------------------------------------- power classifier

TEST(PowerClassifier, OrdersClassesByPower) {
  const auto catalog = Catalog::standard();
  const auto classifier = PowerClassifier::from_catalog(catalog, 3);
  EXPECT_EQ(classifier.num_classes(), 3u);
  // Heaviest types land in the top class, volume packets in the bottom.
  EXPECT_EQ(classifier.class_of(Catalog::kKMeans), 2u);
  EXPECT_EQ(classifier.class_of(Catalog::kCollaFilt), 2u);
  EXPECT_EQ(classifier.class_of(Catalog::kSynPacket), 0u);
  EXPECT_EQ(classifier.class_of(Catalog::kUdpPacket), 0u);
  EXPECT_LT(classifier.class_of(Catalog::kTextCont),
            classifier.class_of(Catalog::kWordCount));
}

TEST(PowerClassifier, ClassCeilingsAscend) {
  const auto catalog = Catalog::standard();
  const auto classifier = PowerClassifier::from_catalog(catalog, 3);
  EXPECT_LT(classifier.class_ceiling(0), classifier.class_ceiling(1));
  EXPECT_LT(classifier.class_ceiling(1), classifier.class_ceiling(2));
  EXPECT_DOUBLE_EQ(classifier.class_ceiling(2).value(), 21.0);  // K-means
}

TEST(PowerClassifier, MembersPartitionTheCatalog) {
  const auto catalog = Catalog::standard();
  const auto classifier = PowerClassifier::from_catalog(catalog, 3);
  std::size_t total = 0;
  for (std::size_t c = 0; c < classifier.num_classes(); ++c) {
    total += classifier.members(c).size();
  }
  EXPECT_EQ(total, catalog.size());
}

TEST(PowerClassifier, EqualPowersShareAClass) {
  const PowerClassifier classifier(
      {Watts{5.0}, Watts{5.0}, Watts{5.0}, Watts{20.0}}, 2);
  EXPECT_EQ(classifier.class_of(0), classifier.class_of(1));
  EXPECT_EQ(classifier.class_of(1), classifier.class_of(2));
  EXPECT_NE(classifier.class_of(0), classifier.class_of(3));
}

TEST(PowerClassifier, DecomposeCountsPerClass) {
  const auto catalog = Catalog::standard();
  const auto classifier = PowerClassifier::from_catalog(catalog, 3);
  const auto q = classifier.decompose(
      {Catalog::kKMeans, Catalog::kKMeans, Catalog::kTextCont,
       Catalog::kSynPacket});
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[2], 2u);
  EXPECT_EQ(q[0] + q[1], 2u);
}

TEST(PowerClassifier, FitsBudgetImplementsEq1) {
  const auto catalog = Catalog::standard();
  const auto classifier = PowerClassifier::from_catalog(catalog, 3);
  // 10 K-means-class requests at full frequency: 10 * 21 W = 210 W.
  std::vector<std::size_t> q(3, 0);
  q[2] = 10;
  EXPECT_TRUE(classifier.fits_budget(q, 1.0, Watts{215.0}, catalog));
  EXPECT_FALSE(classifier.fits_budget(q, 1.0, Watts{205.0}, catalog));
  // Throttling helps, but K-means' low beta limits the saving: at
  // rel = 0.5 each request still draws 21·(0.35·0.125 + 0.65) ≈ 14.6 W.
  EXPECT_FALSE(classifier.fits_budget(q, 0.5, Watts{140.0}, catalog));
  EXPECT_TRUE(classifier.fits_budget(q, 0.5, Watts{150.0}, catalog));
}

TEST(PowerClassifier, Validates) {
  EXPECT_THROW(PowerClassifier({}, 1), std::invalid_argument);
  EXPECT_THROW(PowerClassifier({Watts{1.0}}, 2), std::invalid_argument);
  EXPECT_THROW(PowerClassifier({Watts{1.0}, Watts{-1.0}}, 1),
               std::invalid_argument);
  const PowerClassifier ok({Watts{1.0}, Watts{2.0}}, 2);
  EXPECT_THROW(ok.class_of(9), std::invalid_argument);
  EXPECT_THROW(ok.class_ceiling(5), std::invalid_argument);
}

// ------------------------------------------------------------- the scheme

struct GradedRig {
  sim::Engine engine;
  workload::Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  GradedAntiDopeScheme* scheme = nullptr;

  explicit GradedRig(Watts budget_override = Watts{0.0}) {
    cluster::ClusterConfig cc;
    cc.num_servers = 10;
    cc.budget_level = power::BudgetLevel::kLow;
    cc.budget_override = budget_override;
    cc.battery_runtime = 2 * kMinute;
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
    auto s = std::make_unique<GradedAntiDopeScheme>();
    scheme = s.get();
    cluster->install_scheme(std::move(s));
  }
};

TEST(GradedAntiDope, BuildsOnePoolPerClass) {
  GradedRig rig;
  // 10 servers, 20% per heavy class: pools of 2 + 2, remainder 6.
  EXPECT_EQ(rig.scheme->pool_size(0), 6u);
  EXPECT_EQ(rig.scheme->pool_size(1), 2u);
  EXPECT_EQ(rig.scheme->pool_size(2), 2u);
}

TEST(GradedAntiDope, RoutesEachClassToItsPool) {
  GradedRig rig;
  // Class 2 (K-means) lands on the top-class pool (highest indices).
  workload::Request heavy;
  heavy.type = Catalog::kKMeans;
  rig.cluster->ingest(std::move(heavy));
  // Class 0 (Text-Cont) lands on the big light pool (low indices).
  workload::Request light;
  light.type = Catalog::kTextCont;
  rig.cluster->ingest(std::move(light));
  std::size_t light_pool_load = 0, heavy_pool_load = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    light_pool_load += rig.cluster->server(i).load();
  }
  for (std::size_t i = 8; i < 10; ++i) {
    heavy_pool_load += rig.cluster->server(i).load();
  }
  EXPECT_EQ(light_pool_load, 1u);
  EXPECT_EQ(heavy_pool_load, 1u);
}

TEST(GradedAntiDope, MidClassFloodSparesTopClassUsers) {
  // The graded variant's raison d'etre: a Word-Count (class 1) flood
  // must not degrade legitimate Colla-Filt (class 2) users, who own a
  // separate pool. Under the binary suspect list they would share.
  GradedRig rig;
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kWordCount);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(rig.engine, rig.catalog, attack,
                                        rig.cluster->edge_sink());
  workload::GeneratorConfig legit;
  legit.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  legit.rate_rps = 20.0;  // well within the class-2 pool's capacity
  legit.num_sources = 16;
  legit.seed = 29;
  workload::TrafficGenerator legit_gen(rig.engine, rig.catalog, legit,
                                       rig.cluster->edge_sink());
  rig.cluster->run_for(2 * kMinute);
  const auto& latency = rig.cluster->request_metrics().normal_latency_ms();
  ASSERT_GT(latency.count(), 500u);
  // Colla-Filt completions stay near their unloaded 80 ms service time.
  EXPECT_LT(latency.percentile(90), 200.0);
}

TEST(GradedAntiDope, ThrottlesHeaviestPoolFirstUnderDeficit) {
  GradedRig rig(/*budget_override=*/Watts{470.0});
  // Saturate the top-class pool.
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  attack.rate_rps = 300.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(rig.engine, rig.catalog, attack,
                                        rig.cluster->edge_sink());
  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 400.0;
  normal.num_sources = 128;
  workload::TrafficGenerator normal_gen(rig.engine, rig.catalog, normal,
                                        rig.cluster->edge_sink());
  rig.cluster->run_for(kMinute);
  // Top class throttled; light pool untouched.
  EXPECT_LT(rig.scheme->pool_level(2), rig.cluster->ladder().max_level());
  EXPECT_EQ(rig.scheme->pool_level(0), rig.cluster->ladder().max_level());
}

TEST(GradedAntiDope, ValidatesConfig) {
  GradedConfig bad;
  bad.num_classes = 1;
  EXPECT_THROW(GradedAntiDopeScheme{bad}, std::invalid_argument);
  bad = {};
  bad.num_classes = 6;
  bad.pool_fraction_per_class = 0.2;  // 5 * 0.2 leaves nothing
  EXPECT_THROW(GradedAntiDopeScheme{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace dope::antidope
