// Tests for the logging facility and miscellaneous uncovered edges.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace dope {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Log::level()) {}
  ~LogLevelGuard() { Log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelGatingEnablesAndDisables) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
}

TEST(Log, MacroShortCircuitsWhenDisabled) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  DOPE_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  Log::set_level(LogLevel::kDebug);
  DOPE_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, WriteBelowLevelIsDropped) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kError);
  // Nothing observable to assert on stderr here beyond "does not crash";
  // the gating itself is covered above.
  Log::write(LogLevel::kInfo, "dropped");
  Log::write(LogLevel::kError, "emitted");
  SUCCEED();
}

TEST(Units, DurationArithmeticIsExact) {
  // Integer microseconds: no drift across large sums.
  Duration total = 0;
  for (int i = 0; i < 1'000'000; ++i) total += kMillisecond;
  EXPECT_EQ(total, 1'000 * kSecond);
}

TEST(Rng, ReseedReproducesStream) {
  Rng rng(1);
  const auto a1 = rng();
  const auto a2 = rng();
  rng.reseed(1);
  EXPECT_EQ(rng(), a1);
  EXPECT_EQ(rng(), a2);
}

TEST(Splitmix, IsDeterministicAndMixing) {
  std::uint64_t s1 = 42, s2 = 42, s3 = 43;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  std::uint64_t t1 = 42, t2 = 43;
  EXPECT_NE(splitmix64(t1), splitmix64(t2));
  (void)s3;
}

}  // namespace
}  // namespace dope
