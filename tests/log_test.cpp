// Tests for the logging facility and miscellaneous uncovered edges.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace dope {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Log::level()) {}
  ~LogLevelGuard() { Log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelGatingEnablesAndDisables) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
}

TEST(Log, MacroShortCircuitsWhenDisabled) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  DOPE_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  Log::set_level(LogLevel::kDebug);
  DOPE_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, WriteBelowLevelIsDropped) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kError);
  LogCapture capture;
  Log::write(LogLevel::kInfo, "dropped");
  Log::write(LogLevel::kError, "emitted");
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].level, LogLevel::kError);
  EXPECT_TRUE(capture.contains("emitted"));
  EXPECT_FALSE(capture.contains("dropped"));
}

TEST(Log, CaptureSinkSeesMacroOutput) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kDebug);
  LogCapture capture;
  DOPE_LOG_WARN << "breaker " << 42 << " hot";
  DOPE_LOG_DEBUG << "fine detail";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0].level, LogLevel::kWarn);
  EXPECT_EQ(capture.lines()[0].text, "breaker 42 hot");
  EXPECT_TRUE(capture.contains("fine detail"));
}

TEST(Log, CaptureRestoresPreviousSinkOnDestruction) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kInfo);
  std::vector<std::string> outer;
  Log::set_sink([&outer](LogLevel, const std::string& line) {
    outer.push_back(line);
  });
  {
    LogCapture capture;
    Log::write(LogLevel::kInfo, "inner");
    EXPECT_TRUE(capture.contains("inner"));
  }
  Log::write(LogLevel::kInfo, "outer");
  Log::set_sink(nullptr);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0], "outer");
}

TEST(Log, TimeSourcePrefixesSimTime) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kInfo);
  Time now = 12 * kSecond + 345 * kMillisecond;
  Log::set_time_source([&now] { return now; });
  LogCapture capture;
  Log::write(LogLevel::kInfo, "with clock");
  Log::set_time_source(nullptr);
  Log::write(LogLevel::kInfo, "without clock");
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_TRUE(capture.lines()[0].text.find("[t=12.345s]") !=
              std::string::npos)
      << capture.lines()[0].text;
  EXPECT_EQ(capture.lines()[1].text, "without clock");
}

TEST(Units, DurationArithmeticIsExact) {
  // Integer microseconds: no drift across large sums.
  Duration total = 0;
  for (int i = 0; i < 1'000'000; ++i) total += kMillisecond;
  EXPECT_EQ(total, 1'000 * kSecond);
}

TEST(Rng, ReseedReproducesStream) {
  Rng rng(1);
  const auto a1 = rng();
  const auto a2 = rng();
  rng.reseed(1);
  EXPECT_EQ(rng(), a1);
  EXPECT_EQ(rng(), a2);
}

TEST(Splitmix, IsDeterministicAndMixing) {
  std::uint64_t s1 = 42, s2 = 42, s3 = 43;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  std::uint64_t t1 = 42, t2 = 43;
  EXPECT_NE(splitmix64(t1), splitmix64(t2));
  (void)s3;
}

}  // namespace
}  // namespace dope
