// dope::fuzz — sampler validity, differential oracle, shrinking, and
// repro round-trips.
//
// The load-bearing assertions: (1) sampled cases are always valid and a
// pure function of their seed; (2) a clean campaign over the real
// simulator reports zero oracle violations and merges byte-identically
// for any thread count; (3) a deliberately injected invariant bug — a
// test fixture that relaxes the power cap behind the oracle's back — is
// caught, shrunk to a small reproduction, and survives a repro-file
// round-trip.

#include "fuzz/fuzzer.hpp"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "fuzz/repro.hpp"
#include "obs/live.hpp"

namespace dope {
namespace {

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_level(LogLevel::kOff);  // injected-bug logs are expected
  }
  void TearDown() override { Log::set_level(LogLevel::kWarn); }
};

/// A fast, always-interesting hand-built case: oversubscribed budget,
/// a flood heavy enough to saturate the uncapped cluster (so a relaxed
/// cap visibly escapes the budget envelope), battery, Anti-DOPE.
fuzz::FuzzCase golden_case() {
  fuzz::FuzzCase fuzz_case;
  fuzz_case.case_seed = 42;
  fuzz_case.scheme = scenario::SchemeKind::kAntiDope;
  auto& config = fuzz_case.config;
  config.scheme = scenario::SchemeKind::kNone;
  config.num_servers = 4;
  config.budget = power::BudgetLevel::kLow;
  config.battery_runtime = 2 * kMinute;
  config.normal_rps = 120.0;
  config.attack_rps = 900.0;
  config.duration = 20 * kSecond;
  config.seed = 42;
  return fuzz_case;
}

/// The injected bug: the "operator" silently provisions ten times the
/// budget for the scheme under test. The oracle computes its expectation
/// independently, so both the provisioning math check and the budget
/// envelope must notice.
void relax_cap(scenario::ScenarioConfig& config) {
  config.budget_override = 10.0 * fuzz::expected_budget(config);
}

TEST_F(FuzzTest, SamplerIsAPureFunctionOfTheSeed) {
  const fuzz::ScenarioSampler sampler;
  const auto a = sampler.sample(0xfeedULL);
  const auto b = sampler.sample(0xfeedULL);
  EXPECT_EQ(a.case_seed, b.case_seed);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.label(), b.label());
  std::ostringstream ja, jb;
  fuzz::write_repro(ja, {a, {}});
  fuzz::write_repro(jb, {b, {}});
  EXPECT_EQ(ja.str(), jb.str());  // every field, byte-compared
  // Different seeds draw different cases (overwhelmingly).
  const auto c = sampler.sample(0xbeefULL);
  std::ostringstream jc;
  fuzz::write_repro(jc, {c, {}});
  EXPECT_NE(ja.str(), jc.str());
}

TEST_F(FuzzTest, SampledCasesRespectTheDomain) {
  const fuzz::Domain domain;
  const fuzz::ScenarioSampler sampler(domain);
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const auto fuzz_case =
        sampler.sample(fuzz::ScenarioSampler::derive_case_seed(5, seed));
    const auto& config = fuzz_case.config;
    EXPECT_GE(config.num_servers, domain.min_servers);
    EXPECT_LE(config.num_servers, domain.max_servers);
    EXPECT_GE(config.duration, domain.min_duration);
    EXPECT_LE(config.duration, domain.max_duration);
    EXPECT_EQ(config.scheme, scenario::SchemeKind::kNone);
    EXPECT_EQ(config.seed, fuzz_case.case_seed);
    if (fuzz_case.scheme == scenario::SchemeKind::kShaving) {
      EXPECT_GT(config.battery_runtime, 0) << "Shaving requires a battery";
    }
    EXPECT_GE(config.attack_start, 0);
    EXPECT_LT(config.attack_start, config.duration);
    for (const auto& outage : config.node_outages) {
      EXPECT_LT(outage.server, config.num_servers);
      EXPECT_GT(outage.down, 0);
      EXPECT_LT(outage.at, config.duration);
    }
    for (const auto& step : config.normal_rate_plan) {
      EXPECT_GT(step.at, 0);
      EXPECT_LT(step.at, config.duration);
      EXPECT_GE(step.rate_rps, 0.0);
    }
  }
}

TEST_F(FuzzTest, CaseSeedDerivationIsStable) {
  // Pinned: repro commands printed by old campaigns must keep meaning
  // the same case in newer builds.
  const auto s0 = fuzz::ScenarioSampler::derive_case_seed(1, 0);
  const auto s1 = fuzz::ScenarioSampler::derive_case_seed(1, 1);
  EXPECT_EQ(s0, fuzz::ScenarioSampler::derive_case_seed(1, 0));
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, fuzz::ScenarioSampler::derive_case_seed(2, 0));
}

TEST_F(FuzzTest, OracleIsCleanOnTheGoldenCase) {
  const auto report = fuzz::run_oracle(golden_case());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.runs, 3u);  // reference + scheme + determinism rerun
}

TEST_F(FuzzTest, OracleCatchesARelaxedCap) {
  fuzz::OracleOptions options;
  options.check_determinism = false;
  options.mutate = relax_cap;
  // Capping, not Anti-DOPE: Anti-DOPE's firewall suppresses the flood
  // on its own, so only a pure power-capper visibly runs away when its
  // cap is relaxed.
  fuzz::FuzzCase fuzz_case = golden_case();
  fuzz_case.scheme = scenario::SchemeKind::kCapping;
  const auto report = fuzz::run_oracle(fuzz_case, options);
  ASSERT_FALSE(report.ok());
  // The cluster's reported budget no longer matches the provisioning
  // math, and the utility feed escapes the independent envelope.
  EXPECT_TRUE(report.has_check("budget_mismatch")) << report.summary();
  EXPECT_TRUE(report.has_check("budget_envelope")) << report.summary();
}

TEST_F(FuzzTest, ShrinkMinimizesTheInjectedBug) {
  fuzz::OracleOptions oracle;
  oracle.check_determinism = false;
  oracle.mutate = relax_cap;

  // Start from a deliberately bloated failing case.
  fuzz::FuzzCase bloated = golden_case();
  bloated.scheme = scenario::SchemeKind::kCapping;
  bloated.config.duration = 90 * kSecond;
  bloated.config.num_servers = 10;
  bloated.config.node_outages.push_back({1, 12 * kSecond, 5 * kSecond});
  bloated.config.normal_rate_plan.push_back({9 * kSecond, 200.0});
  const auto original = fuzz::run_oracle(bloated, oracle);
  ASSERT_FALSE(original.ok());

  fuzz::ShrinkOptions options;
  options.oracle = oracle;
  const auto shrunk = fuzz::shrink(bloated, original, options);
  EXPECT_GT(shrunk.steps, 0u);
  EXPECT_LE(shrunk.minimized.config.duration, 60 * kSecond);
  EXPECT_LT(shrunk.minimized.config.num_servers,
            bloated.config.num_servers);
  EXPECT_TRUE(shrunk.minimized.config.node_outages.empty());
  ASSERT_FALSE(shrunk.report.ok());

  // Same-bug criterion: the minimized case still trips an original
  // check, and re-judging it fresh reproduces exactly.
  const auto replay = fuzz::run_oracle(shrunk.minimized, oracle);
  bool shares = false;
  for (const auto& violation : original.violations) {
    shares = shares || replay.has_check(violation.check);
  }
  EXPECT_TRUE(shares) << replay.summary();
}

TEST_F(FuzzTest, ShrinkRejectsHealthyInput) {
  fuzz::OracleReport healthy;
  EXPECT_THROW(fuzz::shrink(golden_case(), healthy, {}),
               std::invalid_argument);
}

TEST_F(FuzzTest, ReproRoundTripsByteExactly) {
  const fuzz::ScenarioSampler sampler;
  // A seed with the works: mixtures, rate plans, chaos all appear across
  // this small sweep; round-trip each of them.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    fuzz::Repro repro;
    repro.fuzz_case =
        sampler.sample(fuzz::ScenarioSampler::derive_case_seed(3, seed));
    repro.checks = {"budget_envelope", "nondeterminism"};
    std::ostringstream first;
    fuzz::write_repro(first, repro);
    std::istringstream stored(first.str());
    const fuzz::Repro loaded = fuzz::read_repro(stored);
    EXPECT_EQ(loaded.fuzz_case.case_seed, repro.fuzz_case.case_seed);
    EXPECT_EQ(loaded.fuzz_case.scheme, repro.fuzz_case.scheme);
    EXPECT_EQ(loaded.checks, repro.checks);
    std::ostringstream second;
    fuzz::write_repro(second, loaded);
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

TEST_F(FuzzTest, SiteCasesSampleValidAndRoundTripByteExactly) {
  fuzz::Domain domain;
  domain.p_site = 1.0;  // every case is a multi-zone site
  const fuzz::ScenarioSampler sampler(domain);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const fuzz::FuzzCase fuzz_case =
        sampler.sample(fuzz::ScenarioSampler::derive_case_seed(9, seed));
    const auto& config = fuzz_case.config;
    ASSERT_GE(config.num_zones, 2u);
    ASSERT_LE(config.num_zones, domain.max_zones);
    if (!config.zone_weights.empty()) {
      EXPECT_EQ(config.zone_weights.size(), config.num_zones);
    }
    if (config.attack_zone >= 0) {
      EXPECT_LT(config.attack_zone, static_cast<int>(config.num_zones));
      EXPECT_GT(config.attack_rps, 0.0);
    }

    // The site block must survive the repro round trip byte-exactly.
    fuzz::Repro repro{fuzz_case, {"zone_range"}};
    std::ostringstream first;
    fuzz::write_repro(first, repro);
    std::istringstream stored(first.str());
    const fuzz::Repro loaded = fuzz::read_repro(stored);
    EXPECT_EQ(loaded.fuzz_case.config.num_zones, config.num_zones);
    EXPECT_EQ(loaded.fuzz_case.config.glb_policy, config.glb_policy);
    EXPECT_EQ(loaded.fuzz_case.config.site_divider, config.site_divider);
    EXPECT_EQ(loaded.fuzz_case.config.attack_zone, config.attack_zone);
    EXPECT_EQ(loaded.fuzz_case.config.zone_weights, config.zone_weights);
    std::ostringstream second;
    fuzz::write_repro(second, loaded);
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

TEST_F(FuzzTest, PreSiteReproFilesParseAsSingleZone) {
  // Repro files written before multi-zone sites existed carry no "site"
  // object; they must keep loading — as the single-zone cases they are.
  std::ostringstream out;
  fuzz::write_repro(out, {golden_case(), {"budget_envelope"}});
  std::string text = out.str();
  const auto begin = text.find("    \"site\": ");
  ASSERT_NE(begin, std::string::npos);
  const auto end = text.find('\n', begin);
  text.erase(begin, end - begin + 1);
  ASSERT_EQ(text.find("\"site\""), std::string::npos);

  std::istringstream in(text);
  const fuzz::Repro loaded = fuzz::read_repro(in);
  EXPECT_EQ(loaded.fuzz_case.config.num_zones, 1u);
  EXPECT_EQ(loaded.fuzz_case.config.attack_zone, -1);
  EXPECT_TRUE(loaded.fuzz_case.config.zone_weights.empty());
}

TEST_F(FuzzTest, ReproRejectsMalformedDocuments) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return fuzz::read_repro(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("{\"dopefuzz_repro\": 99}"), std::runtime_error);
  EXPECT_THROW(parse("{\"dopefuzz_repro\": 1}"), std::runtime_error);
  EXPECT_THROW(parse("[] trailing"), std::runtime_error);
}

TEST_F(FuzzTest, CleanCampaignMergesByteIdenticallyAcrossThreadCounts) {
  fuzz::CampaignOptions options;
  options.campaign_seed = 11;
  options.cases = 12;

  options.threads = 1;
  const auto serial = fuzz::run_campaign(options);
  EXPECT_TRUE(serial.ok());

  options.threads = 4;
  const auto parallel = fuzz::run_campaign(options);
  std::ostringstream a;
  std::ostringstream b;
  fuzz::write_campaign_json(a, serial);
  fuzz::write_campaign_json(b, parallel);
  EXPECT_EQ(a.str(), b.str());
  ASSERT_EQ(serial.cases.size(), parallel.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].case_seed, parallel.cases[i].case_seed);
    EXPECT_EQ(serial.cases[i].label, parallel.cases[i].label);
  }
}

TEST_F(FuzzTest, CampaignCountsInstrumentsAndPublishesLive) {
  obs::Hub hub;
  obs::LiveTap live;
  fuzz::CampaignOptions options;
  options.campaign_seed = 11;
  options.cases = 6;
  options.threads = 2;
  options.obs = &hub;
  options.live = &live;
  const auto result = fuzz::run_campaign(options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(hub.registry().find_counter("fuzz.cases_total")->value(), 6.0);
  EXPECT_EQ(hub.registry().find_counter("fuzz.cases_completed")->value(),
            6.0);
  EXPECT_EQ(hub.registry().find_counter("fuzz.cases_failed")->value(), 0.0);
  obs::LiveSnapshot snap;
  ASSERT_TRUE(live.latest(snap));
  EXPECT_TRUE(snap.done);
  EXPECT_EQ(snap.runs_total, 6u);
  EXPECT_EQ(snap.runs_completed, 6u);
  EXPECT_EQ(snap.runs_failed, 0u);
}

TEST_F(FuzzTest, CampaignCatchesShrinksAndExportsTheInjectedBug) {
  obs::Hub hub;
  fuzz::CampaignOptions options;
  options.campaign_seed = 21;
  options.cases = 2;
  options.threads = 2;
  options.obs = &hub;
  options.oracle.check_determinism = false;
  options.oracle.mutate = relax_cap;
  const auto result = fuzz::run_campaign(options);
  ASSERT_EQ(result.failures.size(), 2u);  // the bug fires on every case
  EXPECT_EQ(hub.registry().find_counter("fuzz.cases_failed")->value(), 2.0);
  EXPECT_GT(hub.registry().find_counter("fuzz.shrink_steps")->value(), 0.0);

  const auto& failure = result.failures.front();
  EXPECT_LE(failure.minimized.config.duration, 60 * kSecond);
  ASSERT_FALSE(failure.minimized_report.ok());

  // The minimized case survives a repro round-trip and still fails for
  // the same reason when re-judged from the parsed document.
  fuzz::Repro repro;
  repro.fuzz_case = failure.minimized;
  for (const auto& violation : failure.minimized_report.violations) {
    repro.checks.push_back(violation.check);
  }
  std::ostringstream out;
  fuzz::write_repro(out, repro);
  std::istringstream in(out.str());
  const fuzz::Repro loaded = fuzz::read_repro(in);
  const auto replay = fuzz::run_oracle(loaded.fuzz_case, options.oracle);
  bool shares = false;
  for (const auto& check : loaded.checks) {
    shares = shares || replay.has_check(check);
  }
  EXPECT_TRUE(shares) << replay.summary();

  // The failure printout carries the ready-to-paste seed command.
  std::ostringstream failures_text;
  fuzz::print_failures(failures_text, result);
  EXPECT_NE(failures_text.str().find("dopefuzz --case-seed"),
            std::string::npos);
}

}  // namespace
}  // namespace dope
