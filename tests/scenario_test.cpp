// Tests for the scenario runner: scheme factory, config plumbing,
// parallel sweeps, CSV export, and a larger-scale invariant run.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "scenario/scenario.hpp"
#include "sweep/sweep.hpp"

namespace dope::scenario {
namespace {

using workload::Catalog;

TEST(SchemeFactory, NamesMatchTable2) {
  EXPECT_EQ(scheme_name(SchemeKind::kNone), "None");
  EXPECT_EQ(scheme_name(SchemeKind::kCapping), "Capping");
  EXPECT_EQ(scheme_name(SchemeKind::kShaving), "Shaving");
  EXPECT_EQ(scheme_name(SchemeKind::kToken), "Token");
  EXPECT_EQ(scheme_name(SchemeKind::kAntiDope), "Anti-DOPE");
}

TEST(SchemeFactory, MakesEveryScheme) {
  for (const auto kind :
       {SchemeKind::kNone, SchemeKind::kCapping, SchemeKind::kShaving,
        SchemeKind::kToken, SchemeKind::kAntiDope}) {
    const auto scheme = make_scheme(kind);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), scheme_name(kind));
  }
}

TEST(RunScenario, PlumbsBudgetOverride) {
  ScenarioConfig config;
  config.budget_override = Watts{123.0};
  config.duration = kSecond;
  config.normal_rps = 1.0;
  const auto r = run_scenario(config);
  EXPECT_DOUBLE_EQ(r.budget.value(), 123.0);
}

TEST(RunScenario, AttackWindowHonoured) {
  ScenarioConfig config;
  config.scheme = SchemeKind::kNone;
  config.normal_rps = 0.0;
  config.attack_rps = 200.0;
  config.attack_start = 10 * kSecond;
  config.attack_stop = 20 * kSecond;
  config.duration = 60 * kSecond;
  const auto r = run_scenario(config);
  // ~2000 attack requests, only inside the window.
  EXPECT_NEAR(static_cast<double>(r.attack_counts.terminal()), 2'000.0,
              200.0);
  // Power returns to idle after the window: the last samples are near
  // the 8-node idle floor.
  ASSERT_FALSE(r.power_timeline.empty());
  EXPECT_NEAR(r.power_timeline.back().value, 8 * 38.0, 5.0);
}

TEST(RunScenario, RatePlanDrivesNormalTraffic) {
  ScenarioConfig config;
  config.normal_rps = 10.0;
  config.normal_rate_plan = {{10 * kSecond, 500.0}, {20 * kSecond, 0.0}};
  config.duration = 40 * kSecond;
  const auto r = run_scenario(config);
  // Roughly 10*10 + 500*10 + 0*20 = 5100 normal requests.
  EXPECT_NEAR(static_cast<double>(r.normal_counts.terminal()), 5'100.0,
              500.0);
}

TEST(RunScenarios, MatchesSequentialRuns) {
  ScenarioConfig a;
  a.scheme = SchemeKind::kCapping;
  a.budget = power::BudgetLevel::kLow;
  a.normal_rps = 100.0;
  a.attack_rps = 200.0;
  a.duration = kMinute;
  ScenarioConfig b = a;
  b.scheme = SchemeKind::kAntiDope;
  const auto batch = run_scenarios({a, b});
  ASSERT_EQ(batch.size(), 2u);
  const auto ra = run_scenario(a);
  const auto rb = run_scenario(b);
  EXPECT_DOUBLE_EQ(batch[0].mean_ms, ra.mean_ms);
  EXPECT_DOUBLE_EQ(batch[1].mean_ms, rb.mean_ms);
  EXPECT_EQ(batch[0].scheme, "Capping");
  EXPECT_EQ(batch[1].scheme, "Anti-DOPE");
}

TEST(Csv, ResultsRoundTripThroughHeaderedCsv) {
  ScenarioConfig config;
  config.duration = kSecond;
  config.normal_rps = 10.0;
  const auto r = run_scenario(config);
  std::ostringstream out;
  write_results_csv(out, {r});
  std::istringstream in(out.str());
  CsvReader reader(in);
  ASSERT_TRUE(reader.column("scheme").has_value());
  ASSERT_TRUE(reader.column("p90_ms").has_value());
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[*reader.column("scheme")], "None");
  EXPECT_TRUE(
      parse_double(row[*reader.column("mean_power_w")]).has_value());
  EXPECT_FALSE(reader.next(row));
}

TEST(Csv, TimelineExport) {
  std::ostringstream out;
  write_timeline_csv(out, {{kSecond, 1.5}, {2 * kSecond, 2.5}});
  std::istringstream in(out.str());
  CsvReader reader(in);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_DOUBLE_EQ(*parse_double(row[0]), 1.0);
  EXPECT_DOUBLE_EQ(*parse_double(row[1]), 1.5);
}

TEST(Scale, LargeClusterKeepsInvariants) {
  // 64 servers, 2000 rps normal + 800 rps attack for two minutes: the
  // invariants that hold at rack scale must hold here too.
  ScenarioConfig config;
  config.num_servers = 64;
  config.scheme = SchemeKind::kAntiDope;
  config.budget = power::BudgetLevel::kLow;
  config.normal_rps = 2'000.0;
  config.normal_sources = 1'024;
  config.attack_rps = 800.0;
  config.attack_agents = 128;
  config.duration = 2 * kMinute;
  const auto r = run_scenario(config);
  EXPECT_LE(r.peak_power, Watts{64 * 100.0 + 1e-6});
  EXPECT_NEAR(r.energy.load_total().value(),
              (r.energy.utility + r.energy.battery).value(), 1.0);
  EXPECT_GT(r.availability, 0.9);
  EXPECT_LE(r.p90_ms, 100.0);
  EXPECT_GT(r.normal_counts.completed, 100'000u);
}

TEST(RunScenarios, HonoursExplicitThreadCount) {
  ScenarioConfig a;
  a.normal_rps = 20.0;
  a.duration = 10 * kSecond;
  ScenarioConfig b = a;
  b.scheme = SchemeKind::kCapping;
  const auto serial = run_scenarios({a, b}, 1);
  const auto parallel = run_scenarios({a, b}, 8);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_DOUBLE_EQ(serial[0].mean_ms, parallel[0].mean_ms);
  EXPECT_DOUBLE_EQ(serial[1].mean_ms, parallel[1].mean_ms);
}

TEST(CliSweep, ThreadsFlagSmoke) {
  // The grid `dopesim_cli --sweep-schemes capping,antidope
  // --sweep-budgets normal,low --threads 2` builds, shrunk to a 10 s
  // window: the --threads value feeds SweepRunner and must not change
  // the merged results.
  sweep::GridSpec grid;
  grid.base.num_servers = 4;
  grid.base.normal_rps = 50.0;
  grid.base.duration = 10 * kSecond;
  grid.base.seed = 42;
  grid.schemes = sweep::parse_scheme_list("capping,antidope");
  grid.budgets = sweep::parse_budget_list("normal,low");
  const auto threaded = sweep::run_grid(grid, 2);
  const auto serial = sweep::run_grid(grid, 1);
  ASSERT_EQ(threaded.size(), 4u);
  EXPECT_EQ(threaded[0].scheme, "Capping");
  EXPECT_EQ(threaded[1].scheme, "Anti-DOPE");
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(threaded[i].mean_ms, serial[i].mean_ms);
    EXPECT_DOUBLE_EQ(threaded[i].peak_power.value(),
                     serial[i].peak_power.value());
  }
}

TEST(RunScenario, ValidatesDuration) {
  ScenarioConfig config;
  config.duration = 0;
  EXPECT_THROW(run_scenario(config), std::invalid_argument);
}

}  // namespace
}  // namespace dope::scenario
