// Unit tests for the network layer: load balancer, token bucket, firewall.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "net/backend.hpp"
#include "net/firewall.hpp"
#include "net/load_balancer.hpp"
#include "net/switch.hpp"
#include "net/token_bucket.hpp"
#include "obs/hub.hpp"
#include "sim/engine.hpp"

namespace dope::net {
namespace {

using workload::Request;
using workload::SourceId;

/// Minimal backend recording what it received.
class FakeBackend final : public Backend {
 public:
  explicit FakeBackend(int id) : id_(id) {}
  int backend_id() const override { return id_; }
  std::size_t load() const override { return load_; }
  bool accepting() const override { return accepting_; }
  void submit(Request&& r) override {
    received.push_back(std::move(r));
    ++load_;
  }

  void set_load(std::size_t l) { load_ = l; }
  void set_accepting(bool a) { accepting_ = a; }
  std::vector<Request> received;

 private:
  int id_;
  std::size_t load_ = 0;
  bool accepting_ = true;
};

std::vector<std::unique_ptr<FakeBackend>> make_backends(int n) {
  std::vector<std::unique_ptr<FakeBackend>> out;
  for (int i = 0; i < n; ++i) out.push_back(std::make_unique<FakeBackend>(i));
  return out;
}

std::vector<Backend*> pool_of(
    const std::vector<std::unique_ptr<FakeBackend>>& backends) {
  std::vector<Backend*> pool;
  for (const auto& b : backends) pool.push_back(b.get());
  return pool;
}

// ---------------------------------------------------------- load balancer

TEST(LoadBalancer, RoundRobinCyclesThroughPool) {
  auto backends = make_backends(3);
  LoadBalancer lb(LbPolicy::kRoundRobin, pool_of(backends));
  for (int i = 0; i < 9; ++i) {
    Request r;
    r.id = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(lb.dispatch(std::move(r)));
  }
  for (const auto& b : backends) EXPECT_EQ(b->received.size(), 3u);
  EXPECT_EQ(lb.dispatched(), 9u);
}

TEST(LoadBalancer, RoundRobinSkipsNonAccepting) {
  auto backends = make_backends(3);
  backends[1]->set_accepting(false);
  LoadBalancer lb(LbPolicy::kRoundRobin, pool_of(backends));
  for (int i = 0; i < 4; ++i) {
    Request r;
    ASSERT_TRUE(lb.dispatch(std::move(r)));
  }
  EXPECT_EQ(backends[0]->received.size(), 2u);
  EXPECT_EQ(backends[1]->received.size(), 0u);
  EXPECT_EQ(backends[2]->received.size(), 2u);
}

TEST(LoadBalancer, LeastLoadedPicksEmptiest) {
  auto backends = make_backends(3);
  backends[0]->set_load(5);
  backends[1]->set_load(1);
  backends[2]->set_load(3);
  LoadBalancer lb(LbPolicy::kLeastLoaded, pool_of(backends));
  Request r;
  Backend* chosen = lb.select(r);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->backend_id(), 1);
}

TEST(LoadBalancer, LeastLoadedIgnoresNonAccepting) {
  auto backends = make_backends(2);
  backends[0]->set_load(0);
  backends[0]->set_accepting(false);
  backends[1]->set_load(10);
  LoadBalancer lb(LbPolicy::kLeastLoaded, pool_of(backends));
  Request r;
  Backend* chosen = lb.select(r);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->backend_id(), 1);
}

TEST(LoadBalancer, ReturnsNullWhenNobodyAccepts) {
  auto backends = make_backends(2);
  backends[0]->set_accepting(false);
  backends[1]->set_accepting(false);
  for (auto policy : {LbPolicy::kRoundRobin, LbPolicy::kLeastLoaded,
                      LbPolicy::kRandom, LbPolicy::kSourceHash}) {
    LoadBalancer lb(policy, pool_of(backends));
    Request r;
    EXPECT_EQ(lb.select(r), nullptr);
    Request r2;
    EXPECT_FALSE(lb.dispatch(std::move(r2)));
  }
}

TEST(LoadBalancer, SourceHashIsSticky) {
  auto backends = make_backends(4);
  LoadBalancer lb(LbPolicy::kSourceHash, pool_of(backends));
  Request r;
  r.source = 1234;
  Backend* first = lb.select(r);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lb.select(r), first);
  }
  // Different sources should spread across more than one backend.
  std::set<int> chosen;
  for (SourceId s = 0; s < 32; ++s) {
    Request q;
    q.source = s;
    chosen.insert(lb.select(q)->backend_id());
  }
  EXPECT_GT(chosen.size(), 1u);
}

TEST(LoadBalancer, RandomSpreadsRoughlyEvenly) {
  auto backends = make_backends(4);
  LoadBalancer lb(LbPolicy::kRandom, pool_of(backends));
  for (int i = 0; i < 4'000; ++i) {
    Request r;
    lb.dispatch(std::move(r));
  }
  for (const auto& b : backends) {
    EXPECT_NEAR(static_cast<double>(b->received.size()), 1'000.0, 150.0);
  }
}

TEST(LoadBalancer, RejectsEmptyOrNullPool) {
  EXPECT_THROW(LoadBalancer(LbPolicy::kRoundRobin, {}),
               std::invalid_argument);
  std::vector<Backend*> with_null{nullptr};
  EXPECT_THROW(LoadBalancer(LbPolicy::kRoundRobin, with_null),
               std::invalid_argument);
}

// ------------------------------------------------------------ token bucket

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket bucket(100.0, 10.0);
  EXPECT_DOUBLE_EQ(bucket.available(0), 100.0);
  EXPECT_TRUE(bucket.try_consume(60.0, 0));
  EXPECT_DOUBLE_EQ(bucket.available(0), 40.0);
  EXPECT_FALSE(bucket.try_consume(60.0, 0));
  EXPECT_EQ(bucket.admitted(), 1u);
  EXPECT_EQ(bucket.rejected(), 1u);
}

TEST(TokenBucket, RefillsOverTime) {
  TokenBucket bucket(100.0, 10.0);
  ASSERT_TRUE(bucket.try_consume(100.0, 0));
  EXPECT_FALSE(bucket.try_consume(50.0, 0));
  // After 5 seconds, 50 tokens are back.
  EXPECT_TRUE(bucket.try_consume(50.0, 5 * kSecond));
}

TEST(TokenBucket, RefillCapsAtCapacity) {
  TokenBucket bucket(100.0, 10.0);
  bucket.try_consume(10.0, 0);
  EXPECT_DOUBLE_EQ(bucket.available(kHour), 100.0);
}

TEST(TokenBucket, SetRefillRateTakesEffect) {
  TokenBucket bucket(100.0, 10.0);
  ASSERT_TRUE(bucket.try_consume(100.0, 0));
  bucket.set_refill_rate(100.0, 0);
  EXPECT_TRUE(bucket.try_consume(90.0, kSecond));
}

TEST(TokenBucket, ZeroCostAlwaysAdmits) {
  TokenBucket bucket(10.0, 0.0);
  ASSERT_TRUE(bucket.try_consume(10.0, 0));
  EXPECT_TRUE(bucket.try_consume(0.0, 0));
}

TEST(TokenBucket, RejectsTimeTravelAndBadArgs) {
  TokenBucket bucket(10.0, 1.0);
  bucket.try_consume(1.0, kSecond);
  EXPECT_THROW(bucket.try_consume(1.0, 0), std::invalid_argument);
  EXPECT_THROW(bucket.try_consume(-1.0, 2 * kSecond), std::invalid_argument);
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- firewall

Request request_from(SourceId source) {
  Request r;
  r.source = source;
  return r;
}

TEST(Firewall, AdmitsLowRateTraffic) {
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 150.0;
  config.check_interval = 5 * kSecond;
  Firewall firewall(engine, config);
  // 100 rps from one source: under the threshold.
  auto gen = engine.every(millis(10.0), [&] {
    EXPECT_TRUE(firewall.admit(request_from(1)));
  });
  engine.run_until(20 * kSecond);
  gen.stop();
  EXPECT_EQ(firewall.blocked(), 0u);
  EXPECT_EQ(firewall.banned_count(), 0u);
}

TEST(Firewall, BansHighRateSourceAfterPoll) {
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 150.0;
  config.check_interval = 5 * kSecond;
  Firewall firewall(engine, config);
  int admitted = 0, blocked = 0;
  // 500 rps from a single source.
  auto gen = engine.every(millis(2.0), [&] {
    if (firewall.admit(request_from(9))) ++admitted;
    else ++blocked;
  });
  engine.run_until(20 * kSecond);
  gen.stop();
  EXPECT_TRUE(firewall.is_banned(9));
  EXPECT_GT(blocked, 0);
  // Detection lag: everything in the first poll window passed.
  EXPECT_GE(admitted, 2'400);  // ~2500 requests in the first 5 s window
  EXPECT_EQ(firewall.total_bans(), 1u);
}

TEST(Firewall, DetectionLagLetsEarlyFloodThrough) {
  // The Fig. 10 effect: power spikes before the firewall reacts.
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 150.0;
  config.check_interval = 5 * kSecond;
  Firewall firewall(engine, config);
  int first_window = 0;
  auto gen = engine.every(millis(2.0), [&] {
    if (firewall.admit(request_from(3)) && engine.now() < 5 * kSecond) {
      ++first_window;
    }
  });
  engine.run_until(6 * kSecond);
  gen.stop();
  EXPECT_GT(first_window, 2'000);
}

TEST(Firewall, ManyAgentsUnderThresholdStayInvisible) {
  // The DOPE stealth property: aggregate 1000 rps over 32 agents keeps
  // each agent at ~31 rps, far below the 150 rps per-source threshold.
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 150.0;
  config.check_interval = 5 * kSecond;
  Firewall firewall(engine, config);
  SourceId next = 0;
  auto gen = engine.every(kSecond / 1'000, [&] {
    EXPECT_TRUE(firewall.admit(request_from(next % 32)));
    ++next;
  });
  engine.run_until(30 * kSecond);
  gen.stop();
  EXPECT_EQ(firewall.banned_count(), 0u);
  EXPECT_EQ(firewall.blocked(), 0u);
}

TEST(Firewall, BanExpiresAfterDuration) {
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 10.0;
  config.check_interval = kSecond;
  config.ban_duration = 10 * kSecond;
  Firewall firewall(engine, config);
  // Burst over threshold during the first second only.
  for (int i = 0; i < 50; ++i) firewall.admit(request_from(5));
  engine.run_until(2 * kSecond);  // poll happens, ban starts
  EXPECT_TRUE(firewall.is_banned(5));
  engine.run_until(15 * kSecond);
  EXPECT_FALSE(firewall.is_banned(5));
  EXPECT_TRUE(firewall.admit(request_from(5)));
}

TEST(Firewall, MultiStrikeRequiresPersistence) {
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 10.0;
  config.check_interval = kSecond;
  config.required_strikes = 3;
  Firewall firewall(engine, config);
  // One hot window, then quiet: no ban.
  for (int i = 0; i < 100; ++i) firewall.admit(request_from(1));
  engine.run_until(5 * kSecond);
  EXPECT_FALSE(firewall.is_banned(1));
  // Three consecutive hot windows: ban.
  auto gen = engine.every(millis(20.0), [&] {
    firewall.admit(request_from(1));
  });
  engine.run_until(engine.now() + 4 * kSecond);
  gen.stop();
  EXPECT_TRUE(firewall.is_banned(1));
}

TEST(Firewall, BanOrderIsSortedBySourceId) {
  // The poll window is an unordered_map; ban decisions emit log lines
  // and kFirewallBan trace events, so poll() must visit a sorted
  // materialization — hash order would leak allocator-dependent bytes
  // into exports. Flood from ids inserted in a scrambled order and
  // lock in ascending trace order.
  sim::Engine engine;
  obs::Hub hub;
  engine.set_obs(&hub);
  FirewallConfig config;
  config.threshold_rps = 10.0;
  config.check_interval = kSecond;
  Firewall firewall(engine, config);
  for (const SourceId source : {41u, 7u, 23u, 3u, 99u, 58u}) {
    for (int i = 0; i < 50; ++i) firewall.admit(request_from(source));
  }
  engine.run_until(2 * kSecond);
  std::vector<double> banned;
  for (const auto& e : hub.trace().events()) {
    if (e.type == obs::EventType::kFirewallBan) {
      for (const auto& [key, value] : e.num) {
        if (std::string_view(key) == "source_id") banned.push_back(value);
      }
    }
  }
  const std::vector<double> expected = {3, 7, 23, 41, 58, 99};
  EXPECT_EQ(banned, expected);
}

TEST(Firewall, ValidatesConfig) {
  sim::Engine engine;
  FirewallConfig config;
  config.threshold_rps = 0.0;
  EXPECT_THROW(Firewall(engine, config), std::invalid_argument);
  config = {};
  config.required_strikes = 0;
  EXPECT_THROW(Firewall(engine, config), std::invalid_argument);
}


// ------------------------------------------------------------------ switch

TEST(Switch, ForwardsWithinCapacity) {
  Switch sw({.capacity_pps = 1'000.0, .buffer_packets = 100.0});
  // 500 pps offered for 2 seconds: everything fits.
  int dropped = 0;
  for (int i = 0; i < 1'000; ++i) {
    const Time t = i * (2 * kSecond / 1'000);
    if (!sw.forward(t)) ++dropped;
  }
  EXPECT_EQ(dropped, 0);
  EXPECT_DOUBLE_EQ(sw.drop_rate(), 0.0);
}

TEST(Switch, DropsWhenSaturated) {
  Switch sw({.capacity_pps = 1'000.0, .buffer_packets = 50.0});
  // 10x capacity: ~90% must be dropped once the buffer is gone.
  int forwarded = 0;
  const int offered = 20'000;
  for (int i = 0; i < offered; ++i) {
    const Time t = i * (2 * kSecond / offered);
    if (sw.forward(t)) ++forwarded;
  }
  EXPECT_NEAR(static_cast<double>(forwarded), 2'000.0 + 50.0, 60.0);
  EXPECT_GT(sw.drop_rate(), 0.85);
}

TEST(Switch, BufferAbsorbsShortBursts) {
  Switch sw({.capacity_pps = 100.0, .buffer_packets = 64.0});
  // An instantaneous burst of 64 packets rides the buffer.
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(sw.forward(0));
  }
  EXPECT_FALSE(sw.forward(0));
}

TEST(Switch, ValidatesConfig) {
  EXPECT_THROW(Switch({.capacity_pps = 0.0}), std::invalid_argument);
  EXPECT_THROW(Switch({.capacity_pps = 10.0, .buffer_packets = 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dope::net
