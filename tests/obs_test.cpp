// Tests for the observability subsystem: metrics registry, structured
// trace recorder + exports, alert watchdog, and the end-to-end guarantee
// that attaching a hub never perturbs simulation results.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>

#include "obs/forensics.hpp"
#include "obs/hub.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "scenario/scenario.hpp"

namespace dope::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, EncodeKeyCanonicalisesLabelOrder) {
  EXPECT_EQ(encode_key("net.dropped", {}), "net.dropped");
  const std::string ab =
      encode_key("net.dropped", {{"a", "1"}, {"b", "2"}});
  const std::string ba =
      encode_key("net.dropped", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab, "net.dropped{a=\"1\",b=\"2\"}");
}

TEST(Metrics, RegistryReturnsStableDeduplicatedInstruments) {
  Registry reg;
  Counter& a = reg.counter("requests", {{"pool", "suspect"}});
  Counter& b = reg.counter("requests", {{"pool", "suspect"}});
  Counter& c = reg.counter("requests", {{"pool", "innocent"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc();
  a.inc(2.5);
  EXPECT_DOUBLE_EQ(b.value(), 3.5);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, RegistryRejectsKindMismatch) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histo("x"), std::logic_error);
}

TEST(Metrics, FindLooksUpByEncodedKeyWithoutCreating) {
  Registry reg;
  reg.counter("hits", {{"pool", "suspect"}}).inc(7);
  const Counter* found = reg.find_counter("hits{pool=\"suspect\"}");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value(), 7.0);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("hits{pool=\"suspect\"}"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeTracksExtremes) {
  Registry reg;
  Gauge& g = reg.gauge("soc");
  EXPECT_FALSE(g.written());
  g.set(0.5);
  g.set(0.2);
  g.set(0.8);
  EXPECT_TRUE(g.written());
  EXPECT_DOUBLE_EQ(g.value(), 0.8);
  EXPECT_DOUBLE_EQ(g.min_seen(), 0.2);
  EXPECT_DOUBLE_EQ(g.max_seen(), 0.8);
}

TEST(Metrics, HistoSummaryAndPercentiles) {
  Registry reg;
  Histo& h = reg.histo("overshoot_w");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Log2 buckets: percentiles are approximate but must stay inside the
  // observed range, be monotone, and land in the right factor-2 band.
  const double p50 = h.percentile(50);
  const double p99 = h.percentile(99);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST(Metrics, HistoHandlesNonPositiveValues) {
  Histo h;
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(Metrics, WriteJsonEmitsAllSections) {
  Registry reg;
  reg.counter("hits", {{"pool", "suspect"}}).inc(3);
  reg.gauge("soc").set(0.75);
  reg.histo("lat_ms").observe(12.0);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histos\""), std::string::npos);
  EXPECT_NE(json.find("hits{pool=\\\"suspect\\\"}"), std::string::npos);
  EXPECT_NE(json.find("0.75"), std::string::npos);
}

TEST(Metrics, WriteJsonEmitsKeysSorted) {
  // The registry's instrument index is an unordered_map; write_json must
  // emit each section sorted by key so the export bytes never depend on
  // hash/allocator order. Create instruments in a scrambled order and
  // lock in sorted emission.
  Registry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc();
  reg.counter("mid", {{"pool", "suspect"}}).inc();
  reg.gauge("soc").set(0.5);
  reg.gauge("budget_w").set(640.0);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  const auto alpha = json.find("\"alpha\"");
  const auto mid = json.find("\"mid{pool=");
  const auto zeta = json.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
  EXPECT_LT(json.find("\"budget_w\""), json.find("\"soc\""));
}

// ------------------------------------------------------------------ trace

TraceEvent make_event(Time t, EventType type, const char* source) {
  TraceEvent e;
  e.t = t;
  e.type = type;
  e.source = source;
  return e;
}

TEST(Trace, CountsPerTypeAndDistinctTypes) {
  TraceRecorder rec;
  rec.record(make_event(1, EventType::kRequestForwarded, "edge"));
  rec.record(make_event(2, EventType::kRequestForwarded, "edge"));
  rec.record(make_event(3, EventType::kBudgetViolation, "cluster"));
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.count(EventType::kRequestForwarded), 2u);
  EXPECT_EQ(rec.count(EventType::kBudgetViolation), 1u);
  EXPECT_EQ(rec.count(EventType::kBreakerTrip), 0u);
  EXPECT_EQ(rec.distinct_types(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, CapDropsEventsLoudlyNotSilently) {
  TraceRecorder rec(TraceConfig{.max_events = 2});
  for (int i = 0; i < 5; ++i) {
    rec.record(make_event(i, EventType::kRequestForwarded, "edge"));
  }
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  // Dropped events still count toward per-type stats.
  EXPECT_EQ(rec.count(EventType::kRequestForwarded), 5u);
  std::ostringstream out;
  rec.write_jsonl(out);
  EXPECT_NE(out.str().find("TraceTruncated"), std::string::npos);
  EXPECT_NE(out.str().find("\"dropped\": 3"), std::string::npos);
}

TEST(Trace, JsonlRoundTripsPayloadAndEscapes) {
  TraceRecorder rec;
  TraceEvent e = make_event(1'500'000, EventType::kThrottleApplied, "dpm");
  e.num.emplace_back("deficit_w", 42.5);
  e.str.emplace_back("mode", "uniform \"quoted\"");
  rec.record(std::move(e));
  std::ostringstream out;
  rec.write_jsonl(out);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"t_us\": 1500000"), std::string::npos);
  EXPECT_NE(line.find("\"t_s\": 1.5"), std::string::npos);
  EXPECT_NE(line.find("\"type\": \"ThrottleApplied\""), std::string::npos);
  EXPECT_NE(line.find("\"source\": \"dpm\""), std::string::npos);
  EXPECT_NE(line.find("\"deficit_w\": 42.5"), std::string::npos);
  EXPECT_NE(line.find("uniform \\\"quoted\\\""), std::string::npos);
}

TEST(Trace, ChromeExportLabelsOneRowPerSource) {
  TraceRecorder rec;
  rec.record(make_event(10, EventType::kRequestForwarded, "edge"));
  rec.record(make_event(20, EventType::kBatteryDischarge, "battery"));
  std::ostringstream out;
  rec.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"edge\""), std::string::npos);
  EXPECT_NE(json.find("\"battery\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 20"), std::string::npos);
}

TEST(Trace, EveryEventTypeHasAName) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    EXPECT_STRNE(event_type_name(static_cast<EventType>(i)), "?");
  }
}

// --------------------------------------------------------------- watchdog

TEST(Watchdog, RaisesOnlyAfterConsecutiveBreaches) {
  Watchdog dog;
  dog.add_rule({.name = "budget",
                .signal = "demand_w",
                .cmp = AlertCmp::kAbove,
                .threshold = 100.0,
                .consecutive = 3,
                .clear_after = 2});
  dog.observe("demand_w", 1, 150.0);
  dog.observe("demand_w", 2, 150.0);
  EXPECT_FALSE(dog.is_firing("budget"));
  // A clean window resets the streak.
  dog.observe("demand_w", 3, 50.0);
  dog.observe("demand_w", 4, 150.0);
  dog.observe("demand_w", 5, 150.0);
  EXPECT_FALSE(dog.is_firing("budget"));
  dog.observe("demand_w", 6, 150.0);
  EXPECT_TRUE(dog.is_firing("budget"));
  ASSERT_EQ(dog.alerts().size(), 1u);
  EXPECT_EQ(dog.alerts()[0].raised_at, 6);
  EXPECT_DOUBLE_EQ(dog.alerts()[0].value, 150.0);
  EXPECT_EQ(dog.active_count(), 1u);
}

TEST(Watchdog, ClearsAfterCleanStreakAndRearms) {
  Watchdog dog;
  dog.add_rule({.name = "soc-low",
                .signal = "soc",
                .cmp = AlertCmp::kBelow,
                .threshold = 0.25,
                .consecutive = 1,
                .clear_after = 2});
  dog.observe("soc", 1, 0.1);
  EXPECT_TRUE(dog.is_firing("soc-low"));
  dog.observe("soc", 2, 0.5);
  EXPECT_TRUE(dog.is_firing("soc-low"));  // one clean window is not enough
  dog.observe("soc", 3, 0.5);
  EXPECT_FALSE(dog.is_firing("soc-low"));
  EXPECT_EQ(dog.alerts()[0].cleared_at, 3);
  // Re-armed: a fresh breach opens a second alert.
  dog.observe("soc", 4, 0.1);
  EXPECT_TRUE(dog.is_firing("soc-low"));
  EXPECT_EQ(dog.alerts().size(), 2u);
  EXPECT_EQ(dog.active_count(), 1u);
}

TEST(Watchdog, SignalsAreIndependent) {
  Watchdog dog;
  dog.add_rule({.name = "a", .signal = "x", .threshold = 1.0});
  dog.add_rule({.name = "b", .signal = "y", .threshold = 1.0});
  dog.observe("x", 1, 5.0);
  EXPECT_TRUE(dog.is_firing("a"));
  EXPECT_FALSE(dog.is_firing("b"));
  EXPECT_EQ(dog.rule_count(), 2u);
}

TEST(Watchdog, MirrorsTransitionsIntoTrace) {
  TraceRecorder rec;
  Watchdog dog(&rec);
  dog.add_rule({.name = "hot", .signal = "w", .threshold = 10.0});
  dog.observe("w", 1, 20.0);
  dog.observe("w", 2, 5.0);
  EXPECT_EQ(rec.count(EventType::kAlertRaised), 1u);
  EXPECT_EQ(rec.count(EventType::kAlertCleared), 1u);
  std::ostringstream out;
  rec.write_jsonl(out);
  EXPECT_NE(out.str().find("\"rule\": \"hot\""), std::string::npos);
}

// --------------------------------------------------- end-to-end via a Hub

scenario::ScenarioConfig small_attack_scenario() {
  scenario::ScenarioConfig config;
  config.scheme = scenario::SchemeKind::kAntiDope;
  config.budget = power::BudgetLevel::kLow;
  config.num_servers = 4;
  config.normal_rps = 100.0;
  config.attack_rps = 200.0;
  config.duration = 60 * kSecond;
  config.seed = 7;
  return config;
}

TEST(Hub, AttachingObservabilityDoesNotPerturbResults) {
  const auto plain = scenario::run_scenario(small_attack_scenario());

  Hub hub;
  auto traced_config = small_attack_scenario();
  traced_config.obs = &hub;
  traced_config.default_alert_rules = true;
  const auto traced = scenario::run_scenario(traced_config);

  // Byte-identical simulation: every reported number matches exactly.
  EXPECT_EQ(plain.mean_ms, traced.mean_ms);
  EXPECT_EQ(plain.p99_ms, traced.p99_ms);
  EXPECT_EQ(plain.availability, traced.availability);
  EXPECT_EQ(plain.mean_power, traced.mean_power);
  EXPECT_EQ(plain.peak_power, traced.peak_power);
  EXPECT_EQ(plain.slot_stats.violation_slots,
            traced.slot_stats.violation_slots);
  EXPECT_EQ(plain.energy.battery, traced.energy.battery);
  ASSERT_EQ(plain.power_timeline.size(), traced.power_timeline.size());
  for (std::size_t i = 0; i < plain.power_timeline.size(); ++i) {
    EXPECT_EQ(plain.power_timeline[i].value,
              traced.power_timeline[i].value);
  }

  // And the hub actually observed the run.
  EXPECT_GT(hub.trace().recorded(), 0u);
  EXPECT_GT(hub.registry().size(), 0u);
  const Counter* executed =
      hub.registry().find_counter("sim.events_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->value(), 0.0);
}

TEST(Hub, CountersAgreeWithClusterSlotStats) {
  Hub hub;
  auto config = small_attack_scenario();
  config.obs = &hub;
  const auto result = scenario::run_scenario(config);

  const Counter* violations =
      hub.registry().find_counter("cluster.violation_slots");
  ASSERT_NE(violations, nullptr);
  EXPECT_DOUBLE_EQ(
      violations->value(),
      static_cast<double>(result.slot_stats.violation_slots));
  EXPECT_EQ(hub.trace().count(EventType::kBudgetViolation),
            result.slot_stats.violation_slots);
}

// ------------------------------------------------------------------ spans

TEST(Spans, BeginEndPairsAndInstants) {
  SpanTracer tracer;
  Span root;
  root.id = span_id_for(42, SpanKind::kRequest);
  root.begin = 10;
  root.source_id = 7;
  tracer.begin(root);

  Span verdict;
  verdict.id = span_id_for(42, SpanKind::kFirewall);
  verdict.parent = root.id;
  verdict.kind = SpanKind::kFirewall;
  verdict.outcome = "pass";
  tracer.instant(verdict, 10);

  EXPECT_EQ(tracer.open_count(), 1u);
  tracer.end(root.id, 25, "completed");
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.unmatched_ends(), 0u);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& closed_root = tracer.spans()[0];
  EXPECT_EQ(closed_root.begin, 10);
  EXPECT_EQ(closed_root.end, 25);
  EXPECT_STREQ(closed_root.outcome, "completed");
  EXPECT_FALSE(closed_root.open());
  EXPECT_EQ(tracer.spans()[1].begin, tracer.spans()[1].end);
  EXPECT_EQ(tracer.count(SpanKind::kRequest), 1u);
  EXPECT_EQ(tracer.count(SpanKind::kFirewall), 1u);
}

TEST(Spans, UnknownEndsAreCountedNotFatal) {
  SpanTracer tracer;
  tracer.end(99, 5, "ghost");
  Span span;
  span.id = 1;
  tracer.begin(span);
  tracer.end(1, 2, "ok");
  tracer.end(1, 3, "again");  // already closed
  EXPECT_EQ(tracer.unmatched_ends(), 2u);
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(Spans, CapDropsSpansLoudlyNotSilently) {
  SpanTracer tracer(SpanConfig{.max_spans = 2});
  for (std::uint64_t i = 0; i < 5; ++i) {
    Span span;
    span.id = span_id_for(i, SpanKind::kRequest);
    span.begin = static_cast<Time>(i);
    tracer.begin(span);
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  // Ends for spans dropped past the cap are unmatched, not fatal.
  tracer.end(span_id_for(4, SpanKind::kRequest), 9, "late");
  EXPECT_EQ(tracer.unmatched_ends(), 1u);

  std::ostringstream out;
  tracer.write_jsonl(out);
  EXPECT_NE(out.str().find("SpanTruncated"), std::string::npos);
  EXPECT_NE(out.str().find("\"dropped\": 3"), std::string::npos);
}

TEST(Spans, JsonlRecordsCarrySchemaFields) {
  SpanTracer tracer;
  Span span;
  span.id = span_id_for(3, SpanKind::kService);
  span.parent = span_id_for(3, SpanKind::kRequest);
  span.kind = SpanKind::kService;
  span.begin = 100;
  span.source_id = 1'000'001;
  span.url_class = 2;
  span.power_w = Watts{21.0};
  span.server = 1;
  span.slot = 0;
  tracer.begin(span);
  tracer.end(span.id, 250, "completed");

  std::ostringstream out;
  tracer.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\": \"SpanBegin\""), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"SpanEnd\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"service\""), std::string::npos);
  EXPECT_NE(text.find("\"power_w\": 21"), std::string::npos);
  EXPECT_NE(text.find("\"outcome\": \"completed\""), std::string::npos);
}

TEST(Trace, SetMaxEventsTightensCapAtRuntime) {
  TraceRecorder rec;
  rec.set_max_events(3);
  for (int i = 0; i < 4; ++i) {
    rec.record(make_event(i, EventType::kRequestForwarded, "edge"));
  }
  // Exactly at the boundary: the cap-th event is kept, the next dropped.
  EXPECT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.dropped(), 1u);
}

// --------------------------------------------------------------- live tap

TEST(Live, LatestReturnsFalseBeforeFirstPublish) {
  LiveTap tap;
  LiveSnapshot snap;
  EXPECT_FALSE(tap.latest(snap));
  EXPECT_EQ(tap.published(), 0u);
}

TEST(Live, PublishAssignsMonotoneSeqAndRoundTrips) {
  LiveTap tap;
  LiveSnapshot in;
  in.runs_total = 12;
  in.runs_completed = 3;
  in.runs_failed = 1;
  in.wall_ms_sum = 45.5;
  in.wall_ms_min = 10.25;
  in.wall_ms_max = 20.75;
  in.wall_ms_count = 3;
  tap.publish(in);
  in.runs_completed = 4;
  in.done = true;
  tap.publish(in);

  LiveSnapshot out;
  ASSERT_TRUE(tap.latest(out));
  EXPECT_EQ(out.seq, 2u);
  EXPECT_EQ(out.runs_total, 12u);
  EXPECT_EQ(out.runs_completed, 4u);
  EXPECT_EQ(out.runs_failed, 1u);
  EXPECT_EQ(out.wall_ms_sum, 45.5);
  EXPECT_EQ(out.wall_ms_min, 10.25);
  EXPECT_EQ(out.wall_ms_max, 20.75);
  EXPECT_EQ(out.wall_ms_count, 3u);
  EXPECT_TRUE(out.done);
}

TEST(Live, ConcurrentReaderAlwaysSeesConsistentSnapshot) {
  // Seqlock torn-read check (runs under TSan in CI): the reader must
  // only ever observe snapshots where the derived fields agree, even
  // while the producer rewrites slots at full speed.
  LiveTap tap;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    LiveSnapshot snap;
    while (!stop.load(std::memory_order_acquire)) {
      if (!tap.latest(snap)) continue;
      // Invariants the producer maintains on every publish; a torn
      // read would mix words from two different snapshots.
      if (snap.runs_completed != snap.wall_ms_count ||
          snap.wall_ms_sum !=
              static_cast<double>(snap.runs_completed) * 2.5) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  LiveSnapshot snap;
  snap.runs_total = 4096;
  for (std::uint64_t i = 1; i <= 4096; ++i) {
    snap.runs_completed = i;
    snap.wall_ms_count = i;
    snap.wall_ms_sum = static_cast<double>(i) * 2.5;
    tap.publish(snap);
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  LiveSnapshot last;
  ASSERT_TRUE(tap.latest(last));
  EXPECT_EQ(last.runs_completed, 4096u);
}

TEST(Live, JsonAndPrometheusExportsCarryAllFields) {
  LiveSnapshot snap;
  snap.seq = 3;
  snap.runs_total = 8;
  snap.runs_completed = 5;
  snap.runs_failed = 1;
  snap.wall_ms_sum = 50.0;
  snap.wall_ms_min = 5.0;
  snap.wall_ms_max = 15.0;
  snap.wall_ms_count = 5;
  snap.done = false;

  std::ostringstream json;
  write_live_json(json, snap);
  EXPECT_NE(json.str().find("\"runs_completed\": 5"), std::string::npos);
  EXPECT_NE(json.str().find("\"wall_ms_mean\": 10"), std::string::npos);
  EXPECT_NE(json.str().find("\"done\": false"), std::string::npos);

  std::ostringstream prom;
  write_live_prometheus(prom, snap);
  EXPECT_NE(prom.str().find("dope_sweep_runs_total 8"),
            std::string::npos);
  EXPECT_NE(prom.str().find("dope_sweep_runs_failed 1"),
            std::string::npos);
  EXPECT_NE(prom.str().find("dope_sweep_done 0"), std::string::npos);
}

TEST(Live, DrainLoopOverNeverPublishedTapSeesNothing) {
  // A CLI drainer polling a tap whose producer never publishes (e.g. a
  // campaign that fails before its first case) must observe "nothing"
  // every time — no phantom snapshot, no seq movement — and the
  // never-published default snapshot must still export as a well-formed
  // "seq 0" document rather than garbage.
  LiveTap tap;
  LiveSnapshot snap;
  snap.runs_total = 999;  // latest() must not leave stale fields behind
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(tap.latest(snap));
    EXPECT_EQ(tap.published(), 0u);
  }
  std::ostringstream json;
  write_live_json(json, LiveSnapshot{});
  EXPECT_NE(json.str().find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(json.str().find("\"done\": false"), std::string::npos);
  std::ostringstream prom;
  write_live_prometheus(prom, LiveSnapshot{});
  EXPECT_NE(prom.str().find("dope_sweep_runs_total 0"),
            std::string::npos);
}

// --------------------------------------------------------- obs edge cases

TEST(Forensics, ZeroRequestRunProducesEmptyRollup) {
  // Forensics on a run that never saw a request: no sources, no energy,
  // no violations — and the JSON export is still a complete document.
  HubConfig config;
  config.enable_spans = true;
  Hub hub(config);
  auto scenario_config = scenario::ScenarioConfig{};
  scenario_config.num_servers = 2;
  scenario_config.normal_rps = 0.0;
  scenario_config.attack_rps = 0.0;
  scenario_config.duration = 5 * kSecond;
  scenario_config.obs = &hub;
  scenario::run_scenario(scenario_config);

  const auto forensics =
      Forensics::build(*hub.spans(), hub.trace(), scenario_config.duration);
  EXPECT_TRUE(forensics.sources().empty());
  EXPECT_EQ(forensics.total_joules().value(), 0.0);
  EXPECT_TRUE(forensics.top_by_joules(5).empty());
  std::ostringstream json;
  forensics.write_json(json);
  EXPECT_NE(json.str().find("\"total_joules\": 0"), std::string::npos);
  EXPECT_NE(json.str().find("\"sources\": 0"), std::string::npos);
  EXPECT_NE(json.str().find("\"ranking\": ["), std::string::npos);
}

TEST(Hub, TraceCapZeroKeepsTheHubsConfiguredCap) {
  // `ScenarioConfig::trace_cap == 0` means "do not touch the hub": the
  // run must leave whatever retention the caller configured in place.
  TraceConfig trace_config;
  trace_config.max_events = 123;
  HubConfig hub_config;
  hub_config.trace = trace_config;
  Hub hub(hub_config);

  auto config = scenario::ScenarioConfig{};
  config.num_servers = 2;
  config.normal_rps = 20.0;
  config.duration = 5 * kSecond;
  config.obs = &hub;
  config.trace_cap = 0;
  scenario::run_scenario(config);
  EXPECT_EQ(hub.trace().max_events(), 123u);

  // A positive cap overrides for the run (and is loud when it drops).
  Hub tightened;
  config.obs = &tightened;
  config.trace_cap = 1;
  config.default_alert_rules = true;  // guarantees recordable events
  scenario::run_scenario(config);
  EXPECT_EQ(tightened.trace().max_events(), 1u);
  if (tightened.trace().recorded() > 1) {
    EXPECT_GT(tightened.trace().dropped(), 0u);
    std::ostringstream jsonl;
    tightened.trace().write_jsonl(jsonl);
    EXPECT_NE(jsonl.str().find("TraceTruncated"), std::string::npos);
  }
}

}  // namespace
}  // namespace dope::obs
