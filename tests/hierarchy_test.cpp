// Tests for the power-delivery hierarchy and hierarchy-aware capping.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "power/hierarchy.hpp"
#include "schemes/hierarchical.hpp"
#include "workload/generator.hpp"

namespace dope {
namespace {

using workload::Catalog;

// --------------------------------------------------------------- topology

TEST(PowerTopology, UniformBuildsRacksAndRatings) {
  const auto topology =
      power::PowerTopology::uniform(8, 4, Watts{100.0}, 0.85, 0.80);
  ASSERT_EQ(topology.pdus.size(), 2u);
  EXPECT_DOUBLE_EQ(topology.pdus[0].rating.value(), 340.0);
  EXPECT_DOUBLE_EQ(topology.facility_rating.value(), 640.0);
  EXPECT_EQ(topology.pdus[0].servers,
            (std::vector<std::size_t>{0, 1, 2, 3}));
  topology.validate(8);
  EXPECT_EQ(topology.pdu_of(5), 1u);
}

TEST(PowerTopology, UnevenLastRack) {
  const auto topology =
      power::PowerTopology::uniform(10, 4, Watts{100.0}, 0.9, 0.9);
  ASSERT_EQ(topology.pdus.size(), 3u);
  EXPECT_EQ(topology.pdus[2].servers.size(), 2u);
  EXPECT_DOUBLE_EQ(topology.pdus[2].rating.value(), 180.0);
  topology.validate(10);
}

TEST(PowerTopology, ValidateCatchesStructuralErrors) {
  auto topology = power::PowerTopology::uniform(4, 2, Watts{100.0}, 0.9, 0.9);
  EXPECT_THROW(topology.validate(5), std::invalid_argument);  // orphan
  topology.pdus[0].servers.push_back(3);  // fed twice
  EXPECT_THROW(topology.validate(4), std::invalid_argument);
  EXPECT_THROW(power::PowerTopology::uniform(0, 2, Watts{100.0}, 0.9, 0.9),
               std::invalid_argument);
  EXPECT_THROW(power::PowerTopology::uniform(4, 2, Watts{100.0}, 1.5, 0.9),
               std::invalid_argument);
}

TEST(EvaluateHierarchy, AggregatesPerLevel) {
  const auto topology =
      power::PowerTopology::uniform(4, 2, Watts{100.0}, 0.85, 0.80);
  const auto load =
      power::evaluate_hierarchy(
      topology, {Watts{80.0}, Watts{90.0}, Watts{30.0}, Watts{30.0}});
  EXPECT_DOUBLE_EQ(load.facility.load.value(), 230.0);
  EXPECT_DOUBLE_EQ(load.pdus[0].load.value(), 170.0);
  EXPECT_DOUBLE_EQ(load.pdus[1].load.value(), 60.0);
  EXPECT_DOUBLE_EQ(load.pdus[0].rating.value(), 170.0);
  EXPECT_FALSE(load.pdus[0].violated());  // exactly at the rating
  EXPECT_FALSE(load.facility.violated());
  EXPECT_EQ(load.violations(), 0u);
}

TEST(EvaluateHierarchy, DetectsRackOnlyViolation) {
  const auto topology =
      power::PowerTopology::uniform(4, 2, Watts{100.0}, 0.85, 0.80);
  // Rack 0 over its 170 W PDU; facility total (260) under the 320 feed.
  const auto load =
      power::evaluate_hierarchy(
      topology, {Watts{100.0}, Watts{100.0}, Watts{30.0}, Watts{30.0}});
  EXPECT_TRUE(load.pdus[0].violated());
  EXPECT_FALSE(load.facility.violated());
  EXPECT_TRUE(load.rack_only_violation());
  EXPECT_EQ(load.violations(), 1u);
}

// --------------------------------------------------- hierarchical capping

struct HierRig {
  sim::Engine engine;
  workload::Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  schemes::HierarchicalCappingScheme* scheme = nullptr;

  HierRig() {
    cluster::ClusterConfig cc;
    cc.num_servers = 8;
    cc.budget_level = power::BudgetLevel::kNormal;  // feed rarely binds
    cc.lb_policy = net::LbPolicy::kSourceHash;      // concentration!
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
    auto topology =
        power::PowerTopology::uniform(8, 4, Watts{100.0}, 0.85, 1.00);
    auto s = std::make_unique<schemes::HierarchicalCappingScheme>(
        std::move(topology));
    scheme = s.get();
    cluster->install_scheme(std::move(s));
  }
};

TEST(HierarchicalCapping, DetectsAndThrottlesRackLocalHotspot) {
  HierRig rig;
  // Source-hash routing pins each flow to one server. Pick four source
  // IDs that provably hash onto servers 0-3 (rack 0), creating a
  // rack-local hotspot the cluster total cannot see.
  std::vector<workload::SourceId> hot_sources;
  std::vector<bool> covered(4, false);
  for (workload::SourceId s = 0; hot_sources.size() < 4; ++s) {
    std::uint64_t h = s;
    const auto start = static_cast<std::size_t>(splitmix64(h) % 8);
    if (start < 4 && !covered[start]) {
      covered[start] = true;
      hot_sources.push_back(s);
    }
  }
  std::vector<std::unique_ptr<workload::TrafficGenerator>> generators;
  for (std::size_t i = 0; i < hot_sources.size(); ++i) {
    workload::GeneratorConfig attack;
    attack.mixture = workload::Mixture::single(Catalog::kCollaFilt);
    attack.rate_rps = 75.0;  // saturates one Colla-Filt server
    attack.num_sources = 1;
    attack.source_base = hot_sources[i];
    attack.seed = 9 + i;
    generators.push_back(std::make_unique<workload::TrafficGenerator>(
        rig.engine, rig.catalog, attack, rig.cluster->edge_sink()));
  }
  rig.cluster->run_for(2 * kMinute);

  EXPECT_GT(rig.scheme->rack_interventions(), 0u);
  // The hot rack got throttled; check that SOME server is below max and
  // the facility never violated.
  bool any_throttled = false;
  for (auto* node : rig.cluster->servers()) {
    if (node->level() < rig.cluster->ladder().max_level()) {
      any_throttled = true;
    }
  }
  EXPECT_TRUE(any_throttled);
  EXPECT_FALSE(rig.scheme->last_load().facility.violated());
  // Post-throttle, the PDUs respect their ratings.
  for (const auto& pdu : rig.scheme->last_load().pdus) {
    EXPECT_LE(pdu.load, pdu.rating * 1.05) << pdu.name;
  }
}

TEST(HierarchicalCapping, ColdRacksKeepFullFrequency) {
  HierRig rig;
  // Pin heavy work onto rack 0's servers directly.
  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 4; ++i) {
      workload::Request r;
      r.type = Catalog::kCollaFilt;
      r.size_factor = 10'000.0;
      rig.cluster->server(s).submit(std::move(r));
    }
  }
  rig.cluster->run_for(30 * kSecond);
  // Rack 1 (servers 4-7) is idle and must remain at max frequency.
  for (std::size_t s = 4; s < 8; ++s) {
    EXPECT_EQ(rig.cluster->server(s).level(),
              rig.cluster->ladder().max_level());
  }
  // Rack 0 got throttled to its PDU rating.
  bool rack0_throttled = false;
  for (std::size_t s = 0; s < 4; ++s) {
    if (rig.cluster->server(s).level() <
        rig.cluster->ladder().max_level()) {
      rack0_throttled = true;
    }
  }
  EXPECT_TRUE(rack0_throttled);
}

TEST(HierarchicalCapping, RecoversAfterHotspotCools) {
  HierRig rig;
  workload::GeneratorConfig burst;
  burst.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  burst.rate_rps = 300.0;
  burst.num_sources = 2;
  burst.stop = kMinute;
  workload::TrafficGenerator gen(rig.engine, rig.catalog, burst,
                                 rig.cluster->edge_sink());
  rig.cluster->run_for(5 * kMinute);
  for (auto* node : rig.cluster->servers()) {
    EXPECT_EQ(node->level(), rig.cluster->ladder().max_level());
  }
}

TEST(HierarchicalCapping, RejectsMismatchedTopology) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 4;
  cluster::Cluster cluster(engine, catalog, cc);
  auto topology = power::PowerTopology::uniform(8, 4, Watts{100.0}, 0.9, 0.9);
  auto scheme = std::make_unique<schemes::HierarchicalCappingScheme>(
      std::move(topology));
  EXPECT_THROW(cluster.install_scheme(std::move(scheme)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dope
