// Tests for the multi-zone Site: budget dividers, global load-balancer
// policies, zone plumbing and metrics, stacked per-zone control stages,
// and the zone-concentrated DOPE acceptance scenario (docs/SITE.md).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "antidope/antidope.hpp"
#include "scenario/scenario.hpp"
#include "schemes/hierarchical.hpp"
#include "site/site.hpp"

namespace dope::site {
namespace {

using workload::Catalog;
using workload::Request;

Request request_of(workload::RequestTypeId type, Time arrival,
                   workload::SourceId source = 0) {
  Request r;
  r.type = type;
  r.arrival = arrival;
  r.source = source;
  return r;
}

ZoneSignal signal_of(double weight, double demand_w,
                     double nameplate_w = 0.0) {
  ZoneSignal s;
  s.weight = weight;
  s.demand = Watts{demand_w};
  s.nameplate = Watts{nameplate_w};
  return s;
}

// ------------------------------------------------------- divide_budget

TEST(DivideBudget, StaticFollowsWeights) {
  const auto shares = divide_budget(
      DividerKind::kStatic, Watts{400.0},
      {signal_of(3.0, 999.0), signal_of(1.0, 0.0)});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0].value(), 300.0);
  EXPECT_DOUBLE_EQ(shares[1].value(), 100.0);
}

TEST(DivideBudget, DemandProportionalFollowsDemand) {
  const auto shares = divide_budget(
      DividerKind::kDemandProportional, Watts{400.0},
      {signal_of(1.0, 150.0), signal_of(1.0, 50.0)});
  EXPECT_DOUBLE_EQ(shares[0].value(), 300.0);
  EXPECT_DOUBLE_EQ(shares[1].value(), 100.0);
}

TEST(DivideBudget, DemandProportionalFallsBackToWeights) {
  // Before any slot has completed no demand has been measured; the
  // divider must fall back to the static weights instead of dividing by
  // zero.
  const auto shares = divide_budget(
      DividerKind::kDemandProportional, Watts{400.0},
      {signal_of(1.0, 0.0), signal_of(3.0, 0.0)});
  EXPECT_DOUBLE_EQ(shares[0].value(), 100.0);
  EXPECT_DOUBLE_EQ(shares[1].value(), 300.0);
}

TEST(DivideBudget, HeadroomGrantsDemandThenSplitsSlackByHeadroom) {
  // Demands 50 + 150 leave 200 W of slack; headrooms are 150 and 50, so
  // the slack splits 3:1 and both zones land on 200 W.
  const auto shares = divide_budget(
      DividerKind::kHeadroomAware, Watts{400.0},
      {signal_of(1.0, 50.0, 200.0), signal_of(1.0, 150.0, 200.0)});
  EXPECT_DOUBLE_EQ(shares[0].value(), 200.0);
  EXPECT_DOUBLE_EQ(shares[1].value(), 200.0);
}

TEST(DivideBudget, HeadroomScalesDemandWhenOversubscribed) {
  // The facility cannot cover the summed demand: shares scale down
  // proportionally to demand instead of granting it.
  const auto shares = divide_budget(
      DividerKind::kHeadroomAware, Watts{200.0},
      {signal_of(1.0, 300.0, 400.0), signal_of(1.0, 100.0, 400.0)});
  EXPECT_DOUBLE_EQ(shares[0].value(), 150.0);
  EXPECT_DOUBLE_EQ(shares[1].value(), 50.0);
}

TEST(DivideBudget, FloorsStarvedZones) {
  // A zone the divider would starve still receives the minimum share,
  // keeping its power plane's budget valid.
  const auto shares = divide_budget(
      DividerKind::kStatic, Watts{100.0},
      {signal_of(1e6, 0.0), signal_of(1.0, 0.0)});
  EXPECT_DOUBLE_EQ(shares[1].value(), kMinZoneBudget.value());
}

TEST(DivideBudget, ValidatesInput) {
  EXPECT_THROW(divide_budget(DividerKind::kStatic, Watts{100.0}, {}),
               std::invalid_argument);
  EXPECT_THROW(divide_budget(DividerKind::kStatic, Watts{0.0},
                             {signal_of(1.0, 0.0)}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Site

class SiteTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Catalog catalog_ = Catalog::standard();

  SiteConfig two_zones(std::size_t servers_per_zone = 4) {
    SiteConfig config;
    config.zones.resize(2);
    for (auto& zone : config.zones) {
      zone.cluster.num_servers = servers_per_zone;
    }
    return config;
  }

  std::unique_ptr<Site> make_site(SiteConfig config) {
    return std::make_unique<Site>(engine_, catalog_, std::move(config));
  }
};

TEST_F(SiteTest, TagsZonesAndDefaultsFacilityToZoneSum) {
  auto site = make_site(two_zones(4));
  ASSERT_EQ(site->num_zones(), 2u);
  EXPECT_EQ(site->zone(0).zone(), 0);
  EXPECT_EQ(site->zone(1).zone(), 1);
  // Two Normal-PB zones of 4 x 100 W nameplate: 400 W each.
  EXPECT_DOUBLE_EQ(site->facility_budget().value(), 800.0);
  ASSERT_EQ(site->zone_budgets().size(), 2u);
  EXPECT_DOUBLE_EQ(site->zone_budgets()[0].value(), 400.0);
  EXPECT_DOUBLE_EQ(site->zone(0).budget().value(), 400.0);
}

TEST_F(SiteTest, ExplicitFacilityBudgetIsDivided) {
  SiteConfig config = two_zones();
  config.facility_budget = Watts{500.0};
  auto site = make_site(std::move(config));
  EXPECT_DOUBLE_EQ(site->facility_budget().value(), 500.0);
  EXPECT_DOUBLE_EQ(site->zone_budgets()[0].value(), 250.0);
  EXPECT_DOUBLE_EQ(site->zone(1).budget().value(), 250.0);
}

TEST_F(SiteTest, ValidatesConfig) {
  EXPECT_THROW(make_site(SiteConfig{}), std::invalid_argument);

  SiteConfig bad_weight = two_zones();
  bad_weight.zones[1].weight = 0.0;
  EXPECT_THROW(make_site(std::move(bad_weight)), std::invalid_argument);

  SiteConfig bad_period = two_zones();
  bad_period.reapportion_period = 0;
  EXPECT_THROW(make_site(std::move(bad_period)), std::invalid_argument);
}

TEST_F(SiteTest, WeightedRoundRobinInterleavesDeterministically) {
  SiteConfig config = two_zones(1);
  config.zones[0].weight = 2.0;
  config.zones[1].weight = 1.0;
  auto site = make_site(std::move(config));

  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) {
    Request r = request_of(Catalog::kDnsQuery, engine_.now());
    picks.push_back(site->peek_zone(r));  // peek does not advance...
    site->ingest(std::move(r));           // ...ingest does
  }
  // Smooth WRR with weights 2:1 — drift-free 0,1,0 interleaving rather
  // than bursts of the heavy zone.
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 0, 0, 1, 0}));
}

TEST_F(SiteTest, ZoneAffinityKeepsSourcesSticky) {
  SiteConfig config = two_zones(1);
  config.zones.resize(3);
  config.zones[2].cluster.num_servers = 1;
  config.policy = GlobalLbPolicy::kZoneAffinity;
  auto site = make_site(std::move(config));

  for (workload::SourceId source = 0; source < 16; ++source) {
    const Request r = request_of(Catalog::kDnsQuery, engine_.now(), source);
    const std::size_t zone = site->peek_zone(r);
    EXPECT_LT(zone, 3u);
    // Same source, same zone — every time.
    EXPECT_EQ(site->peek_zone(r), zone);
  }
}

TEST_F(SiteTest, LeastLoadedAvoidsTheBusyZone) {
  SiteConfig config = two_zones(2);
  config.policy = GlobalLbPolicy::kLeastLoaded;
  auto site = make_site(std::move(config));

  // Pile work onto zone 0 through its regional front door.
  auto pinned = site->zone_sink(0);
  for (int i = 0; i < 4; ++i) {
    pinned(request_of(Catalog::kCollaFilt, engine_.now()));
  }
  EXPECT_EQ(site->peek_zone(request_of(Catalog::kDnsQuery, engine_.now())),
            1u);
}

TEST_F(SiteTest, ZoneSinkBypassesTheGlobalBalancer) {
  auto site = make_site(two_zones(2));
  auto pinned = site->zone_sink(1);
  for (int i = 0; i < 3; ++i) {
    pinned(request_of(Catalog::kTextCont, engine_.now()));
  }
  site->run_for(2 * kSecond);
  EXPECT_EQ(site->zone(0).request_metrics().normal_counts().completed, 0u);
  EXPECT_EQ(site->zone(1).request_metrics().normal_counts().completed, 3u);
  // Zone records fold into the site-wide recorder, keyed by zone.
  EXPECT_EQ(site->request_metrics().normal_counts().completed, 3u);
  const auto& by_zone = site->request_metrics().completed_by_zone();
  ASSERT_EQ(by_zone.size(), 1u);
  EXPECT_EQ(by_zone.at(1), 3u);

  EXPECT_THROW(site->zone_sink(7), std::invalid_argument);
}

TEST_F(SiteTest, ReapportionsOnItsPeriod) {
  SiteConfig config = two_zones(1);
  config.reapportion_period = 5 * kSecond;
  auto site = make_site(std::move(config));
  EXPECT_EQ(site->reapportion_count(), 1u);  // constructor's first pass
  site->run_for(20 * kSecond);
  EXPECT_EQ(site->reapportion_count(), 5u);
}

TEST_F(SiteTest, DemandDividerShiftsBudgetTowardTheLoadedZone) {
  SiteConfig config = two_zones(2);
  config.divider = DividerKind::kDemandProportional;
  config.reapportion_period = kSecond;
  auto site = make_site(std::move(config));

  // Enough pinned work that zone 0 is still busy when the divider reads
  // the last slot's demand (an idle zone only draws its idle floor).
  auto pinned = site->zone_sink(0);
  for (int i = 0; i < 200; ++i) {
    pinned(request_of(Catalog::kCollaFilt, engine_.now()));
  }
  site->run_for(2 * kSecond);
  EXPECT_GT(site->zone_budgets()[0].value(),
            site->zone_budgets()[1].value());
  EXPECT_GT(site->zone(0).budget().value(), site->zone(1).budget().value());
}

TEST_F(SiteTest, AggregateEnergySumsZoneAccounts) {
  auto site = make_site(two_zones(2));
  auto sink = site->edge_sink();
  for (int i = 0; i < 8; ++i) {
    sink(request_of(Catalog::kTextCont, engine_.now()));
  }
  site->run_for(3 * kSecond);
  const metrics::EnergyAccount total = site->aggregate_energy();
  const Joules zone_sum = site->zone(0).energy_account().load_total() +
                          site->zone(1).energy_account().load_total();
  EXPECT_DOUBLE_EQ(total.load_total().value(), zone_sum.value());
  EXPECT_GT(site->total_energy().value(), 0.0);
}

TEST_F(SiteTest, StacksAntiDopeAndHierCappingInOneZone) {
  // Satellite of the plane refactor: two real schemes ride the same
  // zone's control pipeline — Anti-DOPE routes and throttles its suspect
  // pool, Hier-Capping enforces the rack PDUs behind it.
  SiteConfig config = two_zones(4);
  config.zones[0].cluster.budget_level = power::BudgetLevel::kLow;
  auto site = make_site(std::move(config));

  cluster::Cluster& victim = site->zone(0);
  auto& antidope = victim.control().push_stage(
      std::make_unique<antidope::AntiDopeScheme>());
  victim.control().push_stage(
      std::make_unique<schemes::HierarchicalCappingScheme>(
          power::PowerTopology::uniform(4, 2, Watts{100.0}, 0.9, 0.8)));
  ASSERT_EQ(victim.control().size(), 2u);
  EXPECT_EQ(victim.control().stage(0)->name(), "Anti-DOPE");
  EXPECT_EQ(victim.control().stage(1)->name(), "Hier-Capping");
  EXPECT_GT(static_cast<antidope::AntiDopeScheme&>(antidope)
                .suspect_pool_size(),
            0u);

  auto pinned = site->zone_sink(0);
  for (int i = 0; i < 24; ++i) {
    pinned(request_of(Catalog::kCollaFilt, engine_.now(),
                      static_cast<workload::SourceId>(i)));
  }
  site->run_for(10 * kSecond);

  // Both stages ran against live load: the PDU tree was evaluated and
  // the heavy flood terminated one way or another.
  const auto& hier = static_cast<const schemes::HierarchicalCappingScheme&>(
      *site->zone(0).control().stage(1));
  EXPECT_EQ(hier.last_load().pdus.size(), 2u);
  EXPECT_GT(hier.last_load().facility.rating.value(), 0.0);
  EXPECT_GT(site->zone(0).request_metrics().total_terminal(), 0u);
}

// ------------------------------------------- scenario-level acceptance

TEST(SiteScenario, ZoneConcentratedAttackThrottlesOnlyTheVictim) {
  // The PR's acceptance scenario: a two-zone site under a static divider
  // with the DOPE flood entering through zone 0's front door. Capping
  // must bite in the victim zone while zone 1 keeps full frequency.
  scenario::ScenarioConfig config;
  config.scheme = scenario::SchemeKind::kCapping;
  config.budget = power::BudgetLevel::kLow;
  config.num_zones = 2;
  config.attack_zone = 0;
  config.normal_rps = 50.0;
  config.attack_rps = 400.0;
  config.duration = 30 * kSecond;
  config.seed = 42;
  const auto r = scenario::run_scenario(config);

  ASSERT_EQ(r.zones.size(), 2u);
  const auto& victim = r.zones[0];
  const auto& bystander = r.zones[1];
  EXPECT_GT(victim.violation_slots, 0u);
  EXPECT_EQ(bystander.violation_slots, 0u);
  // The victim was forced down the DVFS ladder; the bystander was not.
  EXPECT_LT(victim.min_level_seen, bystander.min_level_seen);
  EXPECT_LT(victim.final_mean_frequency.value(),
            bystander.final_mean_frequency.value());
  for (const auto& zone : r.zones) {
    EXPECT_GE(zone.availability, 0.0);
    EXPECT_LE(zone.availability, 1.0);
    EXPECT_GT(zone.budget.value(), 0.0);
  }
}

TEST(SiteScenario, ValidatesSiteArguments) {
  scenario::ScenarioConfig config;
  config.duration = 5 * kSecond;
  config.num_zones = 2;
  config.zone_weights = {1.0};  // size must match num_zones
  EXPECT_THROW(scenario::run_scenario(config), std::invalid_argument);

  config.zone_weights.clear();
  config.attack_zone = 5;  // out of range
  EXPECT_THROW(scenario::run_scenario(config), std::invalid_argument);
}

}  // namespace
}  // namespace dope::site
