// Failure-injection tests: partial node failures, mid-run topology
// changes, and defense behaviour around them. The cluster must degrade
// gracefully, never corrupt its accounting, and recover.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "schemes/baselines.hpp"
#include "workload/generator.hpp"

namespace dope {
namespace {

using workload::Catalog;

struct Rig {
  sim::Engine engine;
  workload::Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<workload::TrafficGenerator> traffic;

  explicit Rig(std::size_t servers = 4) {
    cluster::ClusterConfig cc;
    cc.num_servers = servers;
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
  }

  void offer(double rate) {
    workload::GeneratorConfig gen;
    gen.mixture = workload::Mixture::single(Catalog::kTextCont);
    gen.rate_rps = rate;
    gen.num_sources = 32;
    gen.seed = 13;
    traffic = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen, cluster->edge_sink());
  }
};

TEST(Resilience, SingleNodeFailureIsRoutedAround) {
  Rig rig;
  rig.offer(200.0);
  rig.cluster->run_for(10 * kSecond);
  rig.cluster->server(0).power_off();
  rig.cluster->run_for(30 * kSecond);
  // The dead node takes no traffic; the survivors carry everything.
  EXPECT_EQ(rig.cluster->server(0).load(), 0u);
  const auto& counts = rig.cluster->request_metrics().normal_counts();
  // After the failure instant, nothing is rejected: 3 nodes can carry
  // 200 rps of Text-Cont easily.
  EXPECT_EQ(counts.rejected_queue_full, 0u);
  // Only the in-flight requests at the failure instant were lost.
  EXPECT_LE(counts.failed_outage, 8u);
  EXPECT_GT(counts.completed, 5'000u);
}

TEST(Resilience, PowerDropsByTheDeadNodeShare) {
  Rig rig;
  rig.offer(0.0);
  rig.cluster->run_for(kSecond);
  const Watts before = rig.cluster->total_power();
  rig.cluster->server(2).power_off();
  EXPECT_NEAR(rig.cluster->total_power().value(),
              (before - Watts{38.0}).value(), 1e-9);
}

TEST(Resilience, NodeRejoinsAfterRepair) {
  Rig rig;
  rig.offer(300.0);
  rig.cluster->run_for(5 * kSecond);
  rig.cluster->server(0).power_off();
  rig.cluster->run_for(10 * kSecond);
  rig.cluster->server(0).power_on(2 * kSecond);
  rig.cluster->run_for(30 * kSecond);
  EXPECT_TRUE(rig.cluster->server(0).accepting());
  // The repaired node picks work back up (least-loaded balancing).
  EXPECT_GT(rig.cluster->server(0).counters().completed, 0u);
}

TEST(Resilience, AllNodesDownMeansEdgeRejections) {
  Rig rig;
  for (std::size_t i = 0; i < rig.cluster->num_servers(); ++i) {
    rig.cluster->server(i).power_off();
  }
  rig.offer(100.0);
  rig.cluster->run_for(10 * kSecond);
  const auto& counts = rig.cluster->request_metrics().normal_counts();
  EXPECT_EQ(counts.completed, 0u);
  EXPECT_GT(counts.rejected_queue_full, 500u);  // edge has nowhere to go
}

TEST(Resilience, SchemeSurvivesNodeFailureMidEnforcement) {
  // Capping must keep working when the fleet shrinks under its feet.
  Rig rig(8);
  cluster::ClusterConfig cc;
  (void)cc;
  rig.cluster->install_scheme(std::make_unique<schemes::CappingScheme>());
  workload::GeneratorConfig heavy;
  heavy.mixture = workload::Mixture::single(Catalog::kKMeans);
  heavy.rate_rps = 400.0;
  heavy.num_sources = 64;
  workload::TrafficGenerator gen(rig.engine, rig.catalog, heavy,
                                 rig.cluster->edge_sink());
  rig.cluster->run_for(20 * kSecond);
  rig.cluster->server(3).power_off();
  rig.cluster->server(5).power_off();
  rig.cluster->run_for(60 * kSecond);
  // No crash, accounting still consistent, survivors still serving.
  // (The flood is not ground-truth-tagged here, so it counts as normal.)
  const auto& counts = rig.cluster->request_metrics().normal_counts();
  EXPECT_GT(counts.completed, 1'000u);
  EXPECT_NEAR(rig.cluster->energy_account().load_total().value(),
              rig.cluster->total_energy().value(), 1.0);
}

TEST(Resilience, EnergyAccountingSurvivesOutagesAndRecovery) {
  Rig rig;
  rig.offer(100.0);
  rig.cluster->run_for(10 * kSecond);
  rig.cluster->server(0).power_off();
  rig.cluster->run_for(10 * kSecond);
  rig.cluster->server(0).power_on(kSecond);
  rig.cluster->run_for(10 * kSecond);
  EXPECT_NEAR(rig.cluster->energy_account().load_total().value(),
              rig.cluster->total_energy().value(), 1.0);
}

}  // namespace
}  // namespace dope
