// Tests for dope::sweep: grid expansion order, config materialisation,
// per-run failure capture, progress metrics, the golden determinism
// property (identical merged bytes for any thread count), and the
// CLI-facing grid-spec parsers.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/hub.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"

namespace dope::sweep {
namespace {

/// A grid small enough to run in milliseconds but wide enough to
/// exercise every axis: 2 budgets × 2 schemes × 2 seeds over a 10 s
/// window of light traffic.
GridSpec small_grid() {
  GridSpec grid;
  grid.base.num_servers = 4;
  grid.base.normal_rps = 50.0;
  grid.base.duration = 10 * kSecond;
  grid.budgets = {power::BudgetLevel::kNormal, power::BudgetLevel::kLow};
  grid.schemes = {scenario::SchemeKind::kCapping,
                  scenario::SchemeKind::kAntiDope};
  grid.seeds = {7, 8};
  return grid;
}

TEST(Grid, SizeIsAxisProduct) {
  EXPECT_EQ(small_grid().size(), 8u);
  GridSpec empty;
  EXPECT_EQ(empty.size(), 1u);  // every axis inherits the base
}

TEST(Grid, ExpandEnumeratesBudgetMajorGridOrder) {
  const auto points = expand(small_grid());
  ASSERT_EQ(points.size(), 8u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
  // budgets outermost, then schemes, then seeds innermost.
  EXPECT_EQ(points[0].budget, power::BudgetLevel::kNormal);
  EXPECT_EQ(points[0].scheme, scenario::SchemeKind::kCapping);
  EXPECT_EQ(points[0].seed, 7u);
  EXPECT_EQ(points[1].seed, 8u);
  EXPECT_EQ(points[2].scheme, scenario::SchemeKind::kAntiDope);
  EXPECT_EQ(points[4].budget, power::BudgetLevel::kLow);
  EXPECT_EQ(points[7].label(), "Low-PB/Anti-DOPE/base/base/seed-8");
}

TEST(Grid, EmptyAxesInheritBase) {
  GridSpec grid;
  grid.base.scheme = scenario::SchemeKind::kShaving;
  grid.base.budget = power::BudgetLevel::kMedium;
  grid.base.seed = 99;
  const auto points = expand(grid);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].scheme, scenario::SchemeKind::kShaving);
  EXPECT_EQ(points[0].budget, power::BudgetLevel::kMedium);
  EXPECT_EQ(points[0].seed, 99u);
  const auto config = materialize(grid, points[0]);
  EXPECT_EQ(config.scheme, scenario::SchemeKind::kShaving);
  EXPECT_EQ(config.seed, 99u);
}

TEST(Grid, MaterializeAppliesAxesAndVariants) {
  GridSpec grid = small_grid();
  grid.attacks = {AttackProfile::dope(250.0)};
  grid.variants = {{"slot-4s", [](scenario::ScenarioConfig& c) {
                      c.slot = 4 * kSecond;
                    }}};
  const auto points = expand(grid);
  const auto config = materialize(grid, points[5]);
  EXPECT_EQ(config.budget, points[5].budget);
  EXPECT_EQ(config.scheme, points[5].scheme);
  EXPECT_EQ(config.seed, points[5].seed);
  EXPECT_DOUBLE_EQ(config.attack_rps, 250.0);
  ASSERT_TRUE(config.attack_mixture.has_value());
  EXPECT_EQ(config.slot, 4 * kSecond);
}

TEST(Grid, MaterializeNeverLeaksTheCallersHub) {
  obs::Hub hub;
  GridSpec grid = small_grid();
  grid.base.obs = &hub;
  grid.base.default_alert_rules = true;
  const auto config = materialize(grid, expand(grid)[0]);
  EXPECT_EQ(config.obs, nullptr);
  EXPECT_FALSE(config.default_alert_rules);
}

TEST(Runner, GoldenDeterminismAcrossThreadCounts) {
  const GridSpec grid = small_grid();
  std::string merged[3];
  const std::size_t thread_counts[] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    const auto sweep =
        SweepRunner({.threads = thread_counts[t]}).run(grid);
    EXPECT_EQ(sweep.failures, 0u);
    std::ostringstream out;
    write_json(out, grid, sweep);
    merged[t] = out.str();
  }
  // Byte-identical merged reports: same aggregate metrics, same run
  // ordering, regardless of worker count or completion order.
  EXPECT_EQ(merged[0], merged[1]);
  EXPECT_EQ(merged[0], merged[2]);
  EXPECT_NE(merged[0].find("\"failures\": 0"), std::string::npos);
}

TEST(Runner, MatchesSerialRunScenario) {
  const GridSpec grid = small_grid();
  const auto sweep = SweepRunner({.threads = 8}).run(grid);
  ASSERT_EQ(sweep.runs.size(), 8u);
  // Spot-check two grid points against a direct serial evaluation.
  for (const std::size_t i : {0u, 5u}) {
    const auto serial =
        scenario::run_scenario(materialize(grid, sweep.runs[i].point));
    ASSERT_TRUE(sweep.runs[i].ok);
    EXPECT_DOUBLE_EQ(sweep.runs[i].result.mean_ms, serial.mean_ms);
    EXPECT_DOUBLE_EQ(sweep.runs[i].result.mean_power.value(),
                     serial.mean_power.value());
  }
}

TEST(Runner, CapturesThrowingRunsAsFailureRecords) {
  GridSpec grid;
  grid.base.num_servers = 4;
  grid.base.normal_rps = 50.0;
  grid.base.duration = 5 * kSecond;
  grid.variants = {
      {"ok", {}},
      {"broken",
       [](scenario::ScenarioConfig& c) { c.duration = 0; }},  // throws
      {"also-ok", {}}};
  const auto sweep = SweepRunner({.threads = 4}).run(grid);
  ASSERT_EQ(sweep.runs.size(), 3u);
  EXPECT_EQ(sweep.failures, 1u);
  EXPECT_TRUE(sweep.runs[0].ok);
  EXPECT_FALSE(sweep.runs[1].ok);
  EXPECT_NE(sweep.runs[1].error.find("duration"), std::string::npos);
  EXPECT_TRUE(sweep.runs[2].ok);  // the rest of the grid still ran

  EXPECT_THROW(sweep.require_all_ok(), std::runtime_error);
  try {
    sweep.require_all_ok();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
  }

  std::ostringstream out;
  write_json(out, grid, sweep);
  EXPECT_NE(out.str().find("\"ok\": false"), std::string::npos);
  EXPECT_NE(out.str().find("\"failures\": 1"), std::string::npos);
}

TEST(Runner, ReportsProgressThroughTheHub) {
  obs::Hub hub;
  GridSpec grid = small_grid();
  const auto sweep = SweepRunner({.threads = 4, .obs = &hub}).run(grid);
  EXPECT_EQ(sweep.failures, 0u);
  const auto* total = hub.registry().find_counter("sweep.runs_total");
  const auto* completed =
      hub.registry().find_counter("sweep.runs_completed");
  const auto* failed = hub.registry().find_counter("sweep.runs_failed");
  const auto* wall = hub.registry().find_histo("sweep.run_wall_ms");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(completed, nullptr);
  ASSERT_NE(failed, nullptr);
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(total->value(), 8.0);
  EXPECT_DOUBLE_EQ(completed->value(), 8.0);
  EXPECT_DOUBLE_EQ(failed->value(), 0.0);
  EXPECT_EQ(wall->count(), 8u);
  EXPECT_GT(wall->sum(), 0.0);
}

TEST(Runner, RunGridReturnsFlatGridOrderAndThrowsOnFailure) {
  GridSpec grid = small_grid();
  grid.seeds = {7};  // 2 budgets × 2 schemes
  const auto results = run_grid(grid, 2);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].scheme, "Capping");
  EXPECT_EQ(results[1].scheme, "Anti-DOPE");
  EXPECT_EQ(results[2].scheme, "Capping");
  EXPECT_EQ(results[3].scheme, "Anti-DOPE");

  grid.variants = {{"broken", [](scenario::ScenarioConfig& c) {
                      c.duration = 0;
                    }}};
  EXPECT_THROW(run_grid(grid, 2), std::runtime_error);
}

TEST(Report, CsvHasOneRowPerRun) {
  GridSpec grid = small_grid();
  grid.seeds = {7};
  const auto sweep = SweepRunner({.threads = 2}).run(grid);
  std::ostringstream out;
  write_csv(out, sweep);
  std::size_t lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + 4u);  // header + one row per run
  EXPECT_NE(out.str().find("Anti-DOPE"), std::string::npos);
}

TEST(Parse, ListsAndNames) {
  EXPECT_EQ(split_list("a, b ,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_list("").empty());
  EXPECT_EQ(parse_scheme("antidope"), scenario::SchemeKind::kAntiDope);
  EXPECT_EQ(parse_budget("medium"), power::BudgetLevel::kMedium);
  EXPECT_THROW(parse_scheme("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_budget("bogus"), std::invalid_argument);
  EXPECT_EQ(parse_seed_list("1,2,3"),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_THROW(parse_seed_list("x"), std::invalid_argument);
}

TEST(Parse, AttackSpecs) {
  const auto none = parse_attack("none", kMinute);
  EXPECT_EQ(none.name, "none");
  EXPECT_DOUBLE_EQ(none.rps, 0.0);

  const auto dope = parse_attack("dope:400", kMinute);
  EXPECT_DOUBLE_EQ(dope.rps, 400.0);
  ASSERT_TRUE(dope.mixture.has_value());
  EXPECT_TRUE(dope.rate_plan.empty());

  const auto pulse = parse_attack("pulse:200:20", 2 * kMinute);
  EXPECT_DOUBLE_EQ(pulse.rps, 200.0);
  // 20 s period over 120 s: 6 on-steps + 6 off-steps.
  ASSERT_EQ(pulse.rate_plan.size(), 12u);
  EXPECT_EQ(pulse.rate_plan[0].at, 0);
  EXPECT_DOUBLE_EQ(pulse.rate_plan[0].rate_rps, 200.0);
  EXPECT_EQ(pulse.rate_plan[1].at, 10 * kSecond);
  EXPECT_DOUBLE_EQ(pulse.rate_plan[1].rate_rps, 0.0);

  EXPECT_THROW(parse_attack("bogus", kMinute), std::invalid_argument);
  EXPECT_THROW(parse_attack("pulse:200", kMinute), std::invalid_argument);
  EXPECT_THROW(parse_attack("pulse:200:0", kMinute),
               std::invalid_argument);
  EXPECT_THROW(parse_attack("dope:x", kMinute), std::invalid_argument);
}

}  // namespace
}  // namespace dope::sweep
