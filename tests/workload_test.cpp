// Unit tests for the workload catalog, mixtures, and traffic generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"
#include "sim/engine.hpp"
#include "workload/bursty.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace dope::workload {
namespace {

// --------------------------------------------------------------- catalog

TEST(Catalog, StandardContainsPaperWorkloads) {
  const auto catalog = Catalog::standard();
  EXPECT_GE(catalog.size(), 7u);
  EXPECT_EQ(catalog.type(Catalog::kCollaFilt).name, "Colla-Filt");
  EXPECT_EQ(catalog.type(Catalog::kKMeans).name, "K-means");
  EXPECT_EQ(catalog.type(Catalog::kWordCount).name, "Word-Count");
  EXPECT_EQ(catalog.type(Catalog::kTextCont).name, "Text-Cont");
}

TEST(Catalog, IdOfRoundTrips) {
  const auto catalog = Catalog::standard();
  EXPECT_EQ(catalog.id_of("K-means"), Catalog::kKMeans);
  EXPECT_THROW(catalog.id_of("no-such-service"), std::invalid_argument);
}

TEST(Catalog, TypeIdOutOfRangeThrows) {
  const auto catalog = Catalog::standard();
  EXPECT_THROW(catalog.type(static_cast<RequestTypeId>(catalog.size())),
               std::invalid_argument);
}

TEST(Catalog, KMeansHasHighestPerRequestPower) {
  // Paper Fig. 5b: "the query requesting for K-means consumes most power
  // per request".
  const auto catalog = Catalog::standard();
  const Watts kmeans = catalog.type(Catalog::kKMeans).power.p0;
  for (RequestTypeId t = 0; t < catalog.size(); ++t) {
    if (t == Catalog::kKMeans) continue;
    EXPECT_GE(kmeans, catalog.type(t).power.p0);
  }
}

TEST(Catalog, VolumeTypesHaveNegligiblePower) {
  // Paper Fig. 5: volume-based DoS traffic has low power intensity.
  const auto catalog = Catalog::standard();
  EXPECT_LT(catalog.type(Catalog::kSynPacket).power.p0, Watts{2.0});
  EXPECT_LT(catalog.type(Catalog::kUdpPacket).power.p0, Watts{2.0});
  EXPECT_GT(catalog.type(Catalog::kCollaFilt).power.p0, Watts{10.0});
}

TEST(Catalog, ServiceTimeScalesWithFrequencySlowdown) {
  const auto catalog = Catalog::standard();
  const auto& colla = catalog.type(Catalog::kCollaFilt);
  const Duration at_full = colla.service_time(1.0);
  const Duration at_half = colla.service_time(0.5);
  EXPECT_EQ(at_full, colla.base_service_time);
  // alpha = 0.9: slowdown at rel=0.5 is 0.9*2 + 0.1 = 1.9x.
  EXPECT_NEAR(static_cast<double>(at_half),
              1.9 * static_cast<double>(at_full), 2.0);
}

TEST(Catalog, MemoryBoundWorkLessSensitiveToFrequency) {
  const auto catalog = Catalog::standard();
  const auto& colla = catalog.type(Catalog::kCollaFilt);
  const auto& wc = catalog.type(Catalog::kWordCount);
  const double colla_ratio =
      static_cast<double>(colla.service_time(0.5)) /
      static_cast<double>(colla.service_time(1.0));
  const double wc_ratio = static_cast<double>(wc.service_time(0.5)) /
                          static_cast<double>(wc.service_time(1.0));
  EXPECT_GT(colla_ratio, wc_ratio);
}

TEST(Catalog, ServiceTimeScalesWithSize) {
  const auto catalog = Catalog::standard();
  const auto& t = catalog.type(Catalog::kTextCont);
  EXPECT_NEAR(static_cast<double>(t.service_time(1.0, 2.0)),
              2.0 * static_cast<double>(t.service_time(1.0, 1.0)), 2.0);
  EXPECT_THROW(t.service_time(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.service_time(0.0, 1.0), std::invalid_argument);
}

TEST(Catalog, ConstructorValidatesProfiles) {
  RequestTypeProfile bad;
  bad.name = "bad";
  bad.base_service_time = 0;  // invalid
  EXPECT_THROW(Catalog({bad}), std::invalid_argument);
  EXPECT_THROW(Catalog(std::vector<RequestTypeProfile>{}),
               std::invalid_argument);
}

// --------------------------------------------------------------- mixture

TEST(Mixture, SingleAlwaysSamplesSameType) {
  const auto m = Mixture::single(Catalog::kKMeans);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.sample(rng), Catalog::kKMeans);
  }
}

TEST(Mixture, SamplesMatchWeights) {
  const Mixture m({0, 1}, {0.25, 0.75});
  Rng rng(2);
  int ones = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ones += m.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Mixture, AliosNormalIsTextHeavy) {
  const auto m = Mixture::alios_normal();
  Rng rng(3);
  std::map<RequestTypeId, int> counts;
  for (int i = 0; i < 100'000; ++i) counts[m.sample(rng)]++;
  EXPECT_GT(counts[Catalog::kTextCont], counts[Catalog::kCollaFilt]);
  EXPECT_GT(counts[Catalog::kTextCont], 50'000);
}

TEST(Mixture, ValidatesWeights) {
  EXPECT_THROW(Mixture({0, 1}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Mixture({0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(Mixture({0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(Mixture({}, {}), std::invalid_argument);
}

TEST(Mixture, ExpectationWeighsByProbability) {
  const Mixture m({0, 1}, {0.5, 0.5});
  const double e = m.expectation([](RequestTypeId t) {
    return t == 0 ? 10.0 : 20.0;
  });
  EXPECT_NEAR(e, 15.0, 1e-9);
}

// ------------------------------------------------------------- generator

class GeneratorTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Catalog catalog_ = Catalog::standard();
  std::vector<Request> received_;

  RequestSink sink() {
    return [this](Request&& r) { received_.push_back(std::move(r)); };
  }
};

TEST_F(GeneratorTest, ProducesApproximatelyPoissonRate) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 200.0;
  config.seed = 5;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(30 * kSecond);
  const double got = static_cast<double>(received_.size()) / 30.0;
  EXPECT_NEAR(got, 200.0, 10.0);
  EXPECT_EQ(gen.generated(), received_.size());
}

TEST_F(GeneratorTest, ArrivalsAreTimeOrderedAndStamped) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 100.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(5 * kSecond);
  ASSERT_GT(received_.size(), 100u);
  Time prev = -1;
  for (const auto& r : received_) {
    EXPECT_GE(r.arrival, prev);
    prev = r.arrival;
    EXPECT_LE(r.arrival, 5 * kSecond);
  }
}

TEST_F(GeneratorTest, RequestIdsAreUnique) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 500.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(10 * kSecond);
  std::set<std::uint64_t> ids;
  for (const auto& r : received_) ids.insert(r.id);
  EXPECT_EQ(ids.size(), received_.size());
}

TEST_F(GeneratorTest, SourcesSpreadAcrossAgents) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 1'000.0;
  config.num_sources = 16;
  config.source_base = 100;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(10 * kSecond);
  std::set<SourceId> sources;
  for (const auto& r : received_) {
    ASSERT_GE(r.source, 100u);
    ASSERT_LT(r.source, 116u);
    sources.insert(r.source);
  }
  EXPECT_EQ(sources.size(), 16u);
}

TEST_F(GeneratorTest, WindowRespected) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 500.0;
  config.start = 2 * kSecond;
  config.stop = 4 * kSecond;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(10 * kSecond);
  ASSERT_FALSE(received_.empty());
  for (const auto& r : received_) {
    EXPECT_GE(r.arrival, 2 * kSecond);
    EXPECT_LT(r.arrival, 4 * kSecond);
  }
}

TEST_F(GeneratorTest, SetRateChangesThroughput) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 100.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(10 * kSecond);
  const std::size_t at_low = received_.size();
  gen.set_rate(1'000.0);
  engine_.run_until(20 * kSecond);
  const std::size_t at_high = received_.size() - at_low;
  EXPECT_GT(at_high, at_low * 5);
}

TEST_F(GeneratorTest, ZeroRateParksAndResumes) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 0.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(5 * kSecond);
  EXPECT_TRUE(received_.empty());
  gen.set_rate(200.0);
  engine_.run_until(10 * kSecond);
  EXPECT_GT(received_.size(), 500u);
}

TEST_F(GeneratorTest, StopHaltsGeneration) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 100.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(5 * kSecond);
  const std::size_t count = received_.size();
  gen.stop();
  engine_.run_until(20 * kSecond);
  EXPECT_EQ(received_.size(), count);
}

TEST_F(GeneratorTest, GroundTruthFlagPropagates) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kCollaFilt);
  config.rate_rps = 100.0;
  config.ground_truth_attack = true;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(kSecond);
  ASSERT_FALSE(received_.empty());
  for (const auto& r : received_) EXPECT_TRUE(r.ground_truth_attack);
}

TEST_F(GeneratorTest, SizeFactorsHaveMeanOne) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kCollaFilt);  // sigma 0.25
  config.rate_rps = 2'000.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(20 * kSecond);
  OnlineStats sizes;
  for (const auto& r : received_) sizes.add(r.size_factor);
  EXPECT_NEAR(sizes.mean(), 1.0, 0.02);
  EXPECT_GT(sizes.stddev(), 0.1);
}

TEST_F(GeneratorTest, SetMixtureSwitchesTypes) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kCollaFilt);
  config.rate_rps = 200.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  engine_.run_until(5 * kSecond);
  gen.set_mixture(Mixture::single(Catalog::kKMeans));
  const std::size_t split = received_.size();
  engine_.run_until(10 * kSecond);
  for (std::size_t i = 0; i < received_.size(); ++i) {
    EXPECT_EQ(received_[i].type,
              i < split ? Catalog::kCollaFilt : Catalog::kKMeans);
  }
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  const auto run = [this] {
    sim::Engine engine;
    std::vector<Time> arrivals;
    GeneratorConfig config;
    config.mixture = Mixture::alios_normal();
    config.rate_rps = 300.0;
    config.seed = 77;
    TrafficGenerator gen(engine, catalog_, config,
                         [&](Request&& r) { arrivals.push_back(r.arrival); });
    engine.run_until(5 * kSecond);
    return arrivals;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(GeneratorTest, RatePlanModulatesOverTime) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 100.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  apply_rate_plan(engine_, gen,
                  {{5 * kSecond, 1'000.0}, {10 * kSecond, 0.0}});
  engine_.run_until(15 * kSecond);
  std::size_t early = 0, mid = 0, late = 0;
  for (const auto& r : received_) {
    if (r.arrival < 5 * kSecond) ++early;
    else if (r.arrival < 10 * kSecond) ++mid;
    else ++late;
  }
  EXPECT_GT(mid, early * 3);
  EXPECT_LT(late, 10u);  // a couple of stragglers at most
}

TEST_F(GeneratorTest, RejectsInvalidConfig) {
  GeneratorConfig config;  // empty mixture
  config.rate_rps = 10.0;
  EXPECT_THROW(TrafficGenerator(engine_, catalog_, config, sink()),
               std::invalid_argument);
  config.mixture = Mixture::single(0);
  EXPECT_THROW(TrafficGenerator(engine_, catalog_, config, nullptr),
               std::invalid_argument);
}


// ------------------------------------------------------------- burstiness

TEST_F(GeneratorTest, BurstModulatorRaisesRateDuringBursts) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 0.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  BurstConfig burst;
  burst.base_rps = 50.0;
  burst.burst_rps = 1'000.0;
  burst.mean_quiet = 20 * kSecond;
  burst.mean_burst = 5 * kSecond;
  BurstModulator modulator(engine_, gen, burst);
  engine_.run_until(30 * kMinute);
  EXPECT_GT(modulator.bursts_started(), 20u);
  // Long-run arrival rate matches the MMPP mean within sampling noise
  // (dwell-time variance dominates; a 30-minute window tames it).
  const double got = static_cast<double>(received_.size()) / 1'800.0;
  EXPECT_NEAR(got, modulator.expected_mean_rate(),
              0.30 * modulator.expected_mean_rate());
  // The burst state must produce visible concentration: compare the
  // busiest and quietest 10-second windows.
  std::vector<int> buckets(180, 0);
  for (const auto& r : received_) {
    buckets[static_cast<std::size_t>(r.arrival / (10 * kSecond))]++;
  }
  const int hi = *std::max_element(buckets.begin(), buckets.end());
  const int lo = *std::min_element(buckets.begin(), buckets.end());
  EXPECT_GT(hi, 4 * std::max(lo, 1));
}

TEST_F(GeneratorTest, BurstModulatorStopFreezesRate) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 0.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  BurstConfig burst;
  burst.base_rps = 10.0;
  burst.burst_rps = 100.0;
  BurstModulator modulator(engine_, gen, burst);
  modulator.stop();
  engine_.run_until(kMinute);
  EXPECT_EQ(modulator.bursts_started(), 0u);
  EXPECT_DOUBLE_EQ(gen.rate(), 10.0);
}

TEST_F(GeneratorTest, BurstModulatorValidatesConfig) {
  GeneratorConfig config;
  config.mixture = Mixture::single(Catalog::kTextCont);
  config.rate_rps = 10.0;
  TrafficGenerator gen(engine_, catalog_, config, sink());
  BurstConfig bad;
  bad.base_rps = 100.0;
  bad.burst_rps = 50.0;  // burst below base
  EXPECT_THROW(BurstModulator(engine_, gen, bad), std::invalid_argument);
}

TEST_F(GeneratorTest, BurstModulatorDeterministicForSeed) {
  const auto run = [this] {
    sim::Engine engine;
    std::size_t count = 0;
    GeneratorConfig config;
    config.mixture = Mixture::single(Catalog::kTextCont);
    config.rate_rps = 0.0;
    config.seed = 5;
    TrafficGenerator gen(engine, catalog_, config,
                         [&count](Request&&) { ++count; });
    BurstConfig burst;
    BurstModulator modulator(engine, gen, burst);
    engine.run_until(2 * kMinute);
    return count;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dope::workload
