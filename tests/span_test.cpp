// End-to-end tests for request-lifecycle spans and per-source forensics.
//
// These run the golden attack scenario with spans attached and check the
// ISSUE's acceptance properties: span recording never perturbs the
// simulation, span ids are stable across reruns, the forensic ranking
// recovers the ground-truth botnet, attributed energy reconciles with
// the cluster's energy account, and the Chrome export carries paired
// per-slot duration tracks.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "antidope/antidope.hpp"
#include "antidope/suspect_list.hpp"
#include "obs/forensics.hpp"
#include "obs/hub.hpp"
#include "obs/span.hpp"
#include "power/dvfs.hpp"
#include "power/power_model.hpp"
#include "scenario/scenario.hpp"
#include "workload/catalog.hpp"

namespace dope::obs {
namespace {

scenario::ScenarioConfig small_attack_scenario() {
  scenario::ScenarioConfig config;
  config.scheme = scenario::SchemeKind::kAntiDope;
  config.budget = power::BudgetLevel::kLow;
  config.num_servers = 4;
  config.normal_rps = 100.0;
  config.attack_rps = 200.0;
  config.duration = 60 * kSecond;
  config.seed = 7;
  return config;
}

Hub make_span_hub() { return Hub(HubConfig{.enable_spans = true}); }

// ------------------------------------------------ zero-perturbation

TEST(SpanScenario, AttachedSpansDoNotPerturbResults) {
  const auto plain = scenario::run_scenario(small_attack_scenario());

  Hub hub = make_span_hub();
  auto traced_config = small_attack_scenario();
  traced_config.obs = &hub;
  traced_config.default_alert_rules = true;
  const auto traced = scenario::run_scenario(traced_config);

  // Byte-identical simulation: every reported number matches exactly.
  EXPECT_EQ(plain.mean_ms, traced.mean_ms);
  EXPECT_EQ(plain.p50_ms, traced.p50_ms);
  EXPECT_EQ(plain.p99_ms, traced.p99_ms);
  EXPECT_EQ(plain.availability, traced.availability);
  EXPECT_EQ(plain.drop_fraction, traced.drop_fraction);
  EXPECT_EQ(plain.mean_power, traced.mean_power);
  EXPECT_EQ(plain.peak_power, traced.peak_power);
  EXPECT_EQ(plain.energy.utility, traced.energy.utility);
  EXPECT_EQ(plain.energy.battery, traced.energy.battery);
  EXPECT_EQ(plain.slot_stats.violation_slots,
            traced.slot_stats.violation_slots);
  ASSERT_EQ(plain.power_timeline.size(), traced.power_timeline.size());
  for (std::size_t i = 0; i < plain.power_timeline.size(); ++i) {
    EXPECT_EQ(plain.power_timeline[i].value,
              traced.power_timeline[i].value);
  }

  // And the tracer actually saw the run.
  ASSERT_NE(hub.spans(), nullptr);
  EXPECT_GT(hub.spans()->count(SpanKind::kRequest), 0u);
  EXPECT_GT(hub.spans()->count(SpanKind::kService), 0u);
}

TEST(SpanScenario, SpanIdsStableAcrossReruns) {
  Hub first_hub = make_span_hub();
  auto config = small_attack_scenario();
  config.obs = &first_hub;
  scenario::run_scenario(config);

  Hub second_hub = make_span_hub();
  config.obs = &second_hub;
  scenario::run_scenario(config);

  const auto& a = first_hub.spans()->spans();
  const auto& b = second_hub.spans()->spans();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].parent, b[i].parent);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].server, b[i].server);
    EXPECT_EQ(a[i].slot, b[i].slot);
  }
}

TEST(SpanScenario, SpanTreeIsCausallyConsistent) {
  Hub hub = make_span_hub();
  auto config = small_attack_scenario();
  config.obs = &hub;
  scenario::run_scenario(config);

  for (const auto& span : hub.spans()->spans()) {
    // Stage lives in the low id bits; children point at their root.
    EXPECT_EQ(span.id & 7u, static_cast<std::uint64_t>(span.kind));
    if (span.kind == SpanKind::kRequest) {
      EXPECT_EQ(span.parent, 0u);
    } else {
      EXPECT_EQ(span.parent, span.id & ~std::uint64_t{7});
    }
    if (span.kind == SpanKind::kService) {
      EXPECT_GE(span.server, 0);
      EXPECT_GE(span.slot, 0);
      EXPECT_GT(span.power_w, Watts{0.0});
    }
    if (!span.open()) {
      EXPECT_GE(span.end, span.begin);
    }
  }

  // Every terminal request got a root span; only in-flight ones stay
  // open at the horizon.
  EXPECT_GE(hub.spans()->count(SpanKind::kRequest), 1u);
  EXPECT_EQ(hub.spans()->unmatched_ends(), 0u);
}

// ------------------------------------------------ forensics rollup

TEST(SpanForensics, TopSuspectsAreGroundTruthAttackers) {
  Hub hub = make_span_hub();
  auto config = small_attack_scenario();
  config.obs = &hub;
  const auto result = scenario::run_scenario(config);
  (void)result;

  const auto forensics =
      Forensics::build(*hub.spans(), hub.trace(), config.duration);
  const auto top = forensics.top_by_joules(10);
  ASSERT_EQ(top.size(), 10u);

  // The DOPE botnet's sources start at 1'000'000; with the attack at 2x
  // the normal per-source heavy-blend rate, they dominate the energy
  // ranking — and their dominant URL classes are exactly the ones
  // Anti-DOPE's offline suspect list flags.
  const auto catalog = workload::Catalog::standard();
  const auto suspects = antidope::SuspectList::from_catalog(
      catalog, antidope::AntiDopeConfig{}.suspect_power_threshold);
  for (const auto& source : top) {
    EXPECT_GE(source.source_id, 1'000'000u) << source.source_id;
    EXPECT_TRUE(suspects.suspicious(source.dominant_class))
        << "class " << source.dominant_class;
    EXPECT_GT(source.requests, 0u);
    EXPECT_GT(source.joules, Joules{0.0});
    EXPECT_GT(source.occupancy_ms, 0.0);
  }
}

TEST(SpanForensics, TopSuspectOverlapsBudgetViolations) {
  // Without any power scheme the flood drives the cluster over budget,
  // so BudgetViolation instants land while attack requests occupy
  // slots — the forensic join must see those overlaps.
  Hub hub = make_span_hub();
  auto config = small_attack_scenario();
  config.scheme = scenario::SchemeKind::kNone;
  config.obs = &hub;
  const auto result = scenario::run_scenario(config);
  ASSERT_GT(result.slot_stats.violation_slots, 0u);

  const auto forensics =
      Forensics::build(*hub.spans(), hub.trace(), config.duration);
  EXPECT_EQ(forensics.violation_events(),
            result.slot_stats.violation_slots);
  const auto top = forensics.top_by_joules(5);
  ASSERT_FALSE(top.empty());
  EXPECT_GE(top.front().source_id, 1'000'000u);
  EXPECT_GT(top.front().violation_overlaps, 0u);
}

TEST(SpanForensics, JoulesReconcileWithEnergyAccount) {
  // Light normal-only load, no battery, no throttling: the cluster's
  // energy account is exactly idle draw + per-request active energy,
  // and the latter is what forensics attributes to sources.
  Hub hub = make_span_hub();
  scenario::ScenarioConfig config;
  config.scheme = scenario::SchemeKind::kNone;
  config.budget = power::BudgetLevel::kNormal;
  config.num_servers = 4;
  config.normal_rps = 40.0;
  config.attack_rps = 0.0;
  config.duration = 30 * kSecond;
  config.battery_runtime = 0;
  config.seed = 11;
  config.obs = &hub;
  const auto result = scenario::run_scenario(config);

  const auto forensics =
      Forensics::build(*hub.spans(), hub.trace(), config.duration);
  EXPECT_GT(forensics.total_joules(), Joules{0.0});

  const power::ServerPowerModel model(power::ServerPowerSpec{},
                                      power::DvfsLadder::make());
  const Joules idle{static_cast<double>(config.num_servers) *
                    model.idle_power(model.ladder().max_level()).value() *
                    to_seconds(config.duration)};
  const Joules expected = idle + forensics.total_joules();
  EXPECT_NEAR(result.energy.load_total().value(), expected.value(),
              1e-3 * result.energy.load_total().value());
}

// ------------------------------------------------ exports

TEST(SpanExport, ChromeTraceHasPairedSlotTracks) {
  Hub hub = make_span_hub();
  auto config = small_attack_scenario();
  config.obs = &hub;
  scenario::run_scenario(config);

  std::ostringstream out;
  hub.write_chrome_trace(out);
  const std::string trace = out.str();

  // Per-slot duration events on the server-slots process, async request
  // lanes, and the process metadata naming both.
  EXPECT_NE(trace.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(trace.find("server slots"), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"service c"), std::string::npos);
}

TEST(SpanExport, ScenarioTraceCapMarksTruncation) {
  Hub hub = make_span_hub();
  auto config = small_attack_scenario();
  config.obs = &hub;
  config.trace_cap = 64;
  scenario::run_scenario(config);

  EXPECT_EQ(hub.trace().events().size(), 64u);
  EXPECT_GT(hub.trace().dropped(), 0u);
  std::ostringstream out;
  hub.write_trace_jsonl(out);
  EXPECT_NE(out.str().find("\"type\": \"TraceTruncated\""),
            std::string::npos);
}

// ------------------------------------------------ attack-rate watchdog

TEST(SpanWatchdog, DefaultAttackRateRuleFiresDuringFlood) {
  Hub hub;
  auto config = small_attack_scenario();
  config.obs = &hub;
  config.default_alert_rules = true;
  scenario::run_scenario(config);

  bool saw_attack_rate = false;
  for (const auto& alert : hub.watchdog().alerts()) {
    if (alert.rule == "attack-rate") saw_attack_rate = true;
  }
  EXPECT_TRUE(saw_attack_rate);
  EXPECT_GT(hub.trace().count(EventType::kAlertRaised), 0u);
}

}  // namespace
}  // namespace dope::obs
