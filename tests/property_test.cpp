// Property-based and parameterized sweeps over the simulator's invariants.
//
// These are the guardrails that must hold for *every* scheme, budget, and
// load point — conservation laws, monotonicity, determinism, stability —
// exercised via TEST_P grids rather than hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "scenario/scenario.hpp"

namespace dope::scenario {
namespace {

using workload::Catalog;

ScenarioConfig sweep_config(SchemeKind scheme, power::BudgetLevel budget,
                            double attack_rps) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.budget = budget;
  config.normal_rps = 250.0;
  config.attack_rps = attack_rps;
  if (attack_rps > 0) {
    config.attack_mixture = workload::Mixture(
        {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount},
        {1.0, 1.0, 1.0});
  }
  config.duration = 3 * kMinute;
  config.seed = 31;
  return config;
}

// ------------------------------------------------- scheme x budget grid

using GridParam = std::tuple<SchemeKind, power::BudgetLevel, double>;

class SchemeGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  ScenarioResult run() {
    const auto [scheme, budget, rate] = GetParam();
    return run_scenario(sweep_config(scheme, budget, rate));
  }
};

TEST_P(SchemeGrid, EnergyConservation) {
  // Load energy == utility + battery contributions, exactly.
  const auto r = run();
  const Joules total = r.energy.load_total();
  EXPECT_NEAR(total.value(),
              (r.energy.utility + r.energy.battery).value(),
              1e-6 * std::max(1.0, total.value()));
  EXPECT_GE(r.energy.utility, Joules{0.0});
  EXPECT_GE(r.energy.battery, Joules{0.0});
  EXPECT_GE(r.energy.recharge, Joules{0.0});
}

TEST_P(SchemeGrid, MeanPowerMatchesEnergyIntegral) {
  // The sampled power timeline and the exact energy integral must agree
  // closely (sampling at 500 ms vs. event-exact integration).
  const auto r = run();
  const auto [scheme, budget, rate] = GetParam();
  const Watts from_energy =
      r.energy.load_total() /
      sweep_config(scheme, budget, rate).duration;
  EXPECT_NEAR(r.mean_power.value(), from_energy.value(),
              0.05 * std::max(10.0, from_energy.value()));
}

TEST_P(SchemeGrid, PowerNeverExceedsAggregateNameplate) {
  const auto r = run();
  EXPECT_LE(r.peak_power, Watts{8 * 100.0 + 1e-9});
  for (const auto& s : r.power_timeline) {
    ASSERT_GE(s.value, 0.0);
    ASSERT_LE(s.value, 800.0 + 1e-9);
  }
}

TEST_P(SchemeGrid, RequestAccountingIsComplete) {
  // Every terminal request lands in exactly one outcome bucket; counts
  // are internally consistent.
  const auto r = run();
  const auto& n = r.normal_counts;
  EXPECT_EQ(n.terminal(),
            n.completed + n.dropped_by_limit + n.blocked_by_firewall +
                n.rejected_queue_full + n.timed_out);
  EXPECT_GE(r.availability, 0.0);
  EXPECT_LE(r.availability, 1.0);
  EXPECT_GE(r.drop_fraction, 0.0);
  EXPECT_LE(r.drop_fraction, 1.0);
}

TEST_P(SchemeGrid, LatencyPercentilesAreOrdered) {
  const auto r = run();
  EXPECT_LE(r.min_ms, r.p50_ms);
  EXPECT_LE(r.p50_ms, r.p90_ms);
  EXPECT_LE(r.p90_ms, r.p95_ms);
  EXPECT_LE(r.p95_ms, r.p99_ms);
  EXPECT_LE(r.p99_ms, r.max_ms);
  EXPECT_GE(r.min_ms, 0.0);
}

TEST_P(SchemeGrid, BatterySocStaysInRange) {
  const auto r = run();
  for (const auto& s : r.battery_soc_timeline) {
    ASSERT_GE(s.value, -1e-9);
    ASSERT_LE(s.value, 1.0 + 1e-9);
  }
}

TEST_P(SchemeGrid, Deterministic) {
  const auto [scheme, budget, rate] = GetParam();
  const auto a = run_scenario(sweep_config(scheme, budget, rate));
  const auto b = run_scenario(sweep_config(scheme, budget, rate));
  EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(a.mean_power.value(), b.mean_power.value());
  EXPECT_DOUBLE_EQ(a.energy.utility.value(), b.energy.utility.value());
  EXPECT_EQ(a.normal_counts.terminal(), b.normal_counts.terminal());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesBudgetsLoads, SchemeGrid,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kNone, SchemeKind::kCapping,
                          SchemeKind::kShaving, SchemeKind::kToken,
                          SchemeKind::kAntiDope),
        ::testing::Values(power::BudgetLevel::kNormal,
                          power::BudgetLevel::kMedium,
                          power::BudgetLevel::kLow),
        ::testing::Values(0.0, 400.0)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      // NOTE: no structured bindings here — their commas would split the
      // INSTANTIATE_TEST_SUITE_P macro arguments.
      std::string name =
          scheme_name(std::get<0>(info.param)) + "_" +
          power::budget_name(std::get<1>(info.param)) + "_" +
          (std::get<2>(info.param) > 0 ? "attack" : "calm");
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// -------------------------------------------------- rate monotonicity

class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, PowerGrowsWithOfferedLoad) {
  // Mean power at rate r must not be (materially) below mean power at
  // a quarter of that rate — power is monotone in offered load.
  const double rate = GetParam();
  auto hi = sweep_config(SchemeKind::kNone, power::BudgetLevel::kNormal,
                         rate);
  auto lo = hi;
  lo.attack_rps = rate / 4.0;
  const auto r_hi = run_scenario(hi);
  const auto r_lo = run_scenario(lo);
  EXPECT_GE(r_hi.mean_power, r_lo.mean_power - Watts{3.0});
}

TEST_P(RateSweep, ThroughputSaturatesAtCapacity) {
  // Completions per second can never exceed the cluster's service
  // capacity for the attack type blend.
  const double rate = GetParam();
  auto config = sweep_config(SchemeKind::kNone,
                             power::BudgetLevel::kNormal, rate);
  const auto r = run_scenario(config);
  const double seconds = to_seconds(config.duration);
  const double completed_rps =
      static_cast<double>(r.normal_counts.completed +
                          r.attack_counts.completed) /
      seconds;
  // 32 cores; the lightest request is 8 ms => hard ceiling 4000 rps.
  EXPECT_LT(completed_rps, 4'000.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(50.0, 200.0, 800.0));

// ------------------------------------------------ budget monotonicity

TEST(BudgetMonotonicity, CappingLatencyWorsensAsBudgetShrinks) {
  double prev_mean = 0.0;
  for (const auto budget :
       {power::BudgetLevel::kNormal, power::BudgetLevel::kMedium,
        power::BudgetLevel::kLow}) {
    const auto r = run_scenario(
        sweep_config(SchemeKind::kCapping, budget, 400.0));
    EXPECT_GE(r.mean_ms, prev_mean * 0.8);  // allow small noise
    prev_mean = r.mean_ms;
  }
}

TEST(BudgetMonotonicity, UtilityEnergyBoundedByBudgetEnvelope) {
  for (const auto scheme :
       {SchemeKind::kCapping, SchemeKind::kToken, SchemeKind::kAntiDope}) {
    const auto config =
        sweep_config(scheme, power::BudgetLevel::kLow, 400.0);
    const auto r = run_scenario(config);
    EXPECT_LE(r.energy.utility_total(),
              energy_of(r.budget, config.duration) * 1.10)
        << scheme_name(scheme);
  }
}

// ------------------------------------------------------ seed stability

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, HeadlineOrderingRobustAcrossSeeds) {
  // The core result (Anti-DOPE beats Capping under DOPE at Low-PB) must
  // not depend on the random seed.
  auto capping =
      sweep_config(SchemeKind::kCapping, power::BudgetLevel::kLow, 400.0);
  auto antidope =
      sweep_config(SchemeKind::kAntiDope, power::BudgetLevel::kLow, 400.0);
  capping.seed = GetParam();
  antidope.seed = GetParam();
  const auto r_capping = run_scenario(capping);
  const auto r_antidope = run_scenario(antidope);
  EXPECT_LT(r_antidope.p90_ms, r_capping.p90_ms);
  EXPECT_LT(r_antidope.mean_ms, r_capping.mean_ms);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 1234u, 987654321u));

}  // namespace
}  // namespace dope::scenario
