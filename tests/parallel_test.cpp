// Tests for the ThreadPool / parallel_for contracts that every sweep
// relies on: hardware-concurrency fallback, submit-after-shutdown,
// wait_idle with nested submits, and deterministic (lowest-index)
// exception propagation from parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace dope {
namespace {

TEST(ThreadPool, ZeroThreadsFallsBackToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(pool.thread_count(), hw);
  }
}

TEST(ThreadPool, ExplicitThreadCountHonoured) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(count.load(), 1);  // shutdown drains queued work first
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not deadlock or double-join
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, WaitIdleCoversNestedSubmits) {
  ThreadPool pool(2);
  std::atomic<bool> nested_done{false};
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      nested_done.store(true);
    });
  });
  pool.wait_idle();
  EXPECT_TRUE(nested_done.load());
}

TEST(ThreadPool, WaitIdleReturnsImmediatelyWhenEmpty) {
  ThreadPool pool(2);
  pool.wait_idle();  // no submitted work: must not block
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> marks(257);
  parallel_for(marks.size(),
               [&](std::size_t i) { marks[i].fetch_add(1); }, 4);
  for (const auto& m : marks) EXPECT_EQ(m.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  // Index 60 throws instantly; index 5 throws after a delay. A
  // race-order implementation would almost always report 60 — the
  // contract is the lowest failing index, deterministically.
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 5) {
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
              throw std::runtime_error("boom 5");
            }
            if (i == 60) throw std::runtime_error("boom 60");
          },
          8);
      FAIL() << "expected parallel_for to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 5");
    }
  }
}

TEST(ParallelFor, SingleThreadAlsoReportsLowestIndexAndRunsAll) {
  std::vector<int> marks(16, 0);
  try {
    parallel_for(
        marks.size(),
        [&](std::size_t i) {
          marks[i] = 1;
          if (i == 3 || i == 11) {
            throw std::runtime_error("boom " + std::to_string(i));
          }
        },
        1);
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  // Every iteration still ran; one failure does not starve the rest.
  for (const int m : marks) EXPECT_EQ(m, 1);
}

TEST(ParallelFor, NonExceptionIterationsComplete) {
  std::vector<std::atomic<int>> marks(64);
  try {
    parallel_for(
        marks.size(),
        [&](std::size_t i) {
          marks[i].fetch_add(1);
          if (i % 7 == 2) throw std::runtime_error("x");
        },
        8);
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error&) {
  }
  for (const auto& m : marks) EXPECT_EQ(m.load(), 1);
}

}  // namespace
}  // namespace dope
