// Unit tests for Alibaba-style trace parsing and synthetic generation.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/alibaba.hpp"
#include "trace/synthetic.hpp"

namespace dope::trace {
namespace {

// ---------------------------------------------------------------- parser

TEST(Parser, ReadsHeaderlessServerUsage) {
  std::istringstream in(
      "0,1,35.5,60.2,12.0\n"
      "0,2,40.0,55.0,9.0\n"
      "300,1,38.1,61.0,11.5\n");
  const auto records = parse_server_usage(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].timestamp, 0);
  EXPECT_EQ(records[0].machine_id, 1);
  EXPECT_DOUBLE_EQ(records[0].cpu_util, 35.5);
  EXPECT_DOUBLE_EQ(records[2].mem_util, 61.0);
}

TEST(Parser, SkipsOptionalHeaderRow) {
  std::istringstream in(
      "timestamp,machine_id,cpu,mem,disk\n"
      "0,1,10,20,30\n");
  std::size_t bad = 99;
  const auto records = parse_server_usage(in, &bad);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(bad, 0u);  // header is not counted as a bad row
}

TEST(Parser, ToleratesExtraTrailingColumns) {
  // Real v2017 rows carry load1/load5/load15 after disk.
  std::istringstream in("0,7,50,40,30,1.2,1.1,0.9\n");
  const auto records = parse_server_usage(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].disk_util, 30.0);
}

TEST(Parser, CountsMalformedRows) {
  std::istringstream in(
      "0,1,10,20,30\n"
      "junk,row\n"
      "5,abc,1,2,3\n"
      "10,2,11,21,31\n");
  std::size_t bad = 0;
  const auto records = parse_server_usage(in, &bad);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(bad, 2u);
}

TEST(Parser, RoundTripsThroughWriter) {
  const std::vector<UsageRecord> original = {
      {0, 1, 35.5, 60.0, 10.0}, {300, 2, 42.0, 55.5, 12.5}};
  std::ostringstream out;
  write_server_usage(out, original);
  std::istringstream in(out.str());
  const auto parsed = parse_server_usage(in);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].timestamp, original[i].timestamp);
    EXPECT_EQ(parsed[i].machine_id, original[i].machine_id);
    EXPECT_DOUBLE_EQ(parsed[i].cpu_util, original[i].cpu_util);
  }
}

TEST(Summary, ComputesAggregates) {
  const std::vector<UsageRecord> records = {
      {0, 1, 30.0, 0, 0}, {0, 2, 50.0, 0, 0}, {300, 1, 70.0, 0, 0}};
  const auto s = summarize(records);
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.machines, 2u);
  EXPECT_EQ(s.t_begin, 0);
  EXPECT_EQ(s.t_end, 300);
  EXPECT_DOUBLE_EQ(s.mean_cpu, 50.0);
  EXPECT_DOUBLE_EQ(s.max_cpu, 70.0);
}

TEST(Summary, EmptyTraceThrows) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(ClusterUtilization, AveragesPerTimestamp) {
  const std::vector<UsageRecord> records = {
      {300, 1, 20.0, 0, 0}, {0, 1, 30.0, 0, 0},
      {0, 2, 50.0, 0, 0},   {300, 2, 40.0, 0, 0}};
  const auto util = cluster_utilization(records);
  ASSERT_EQ(util.size(), 2u);
  EXPECT_EQ(util[0].timestamp, 0);
  EXPECT_DOUBLE_EQ(util[0].mean_cpu, 40.0);
  EXPECT_EQ(util[1].timestamp, 300);
  EXPECT_DOUBLE_EQ(util[1].mean_cpu, 30.0);
}

TEST(ParserV2018, ReadsMachineUsageSchema) {
  std::istringstream in(
      "m_1,10,35.5,60.2,0,0,1,2,12.5\n"
      "m_2,10,40.0,55.0,0,0,1,2,9.0\n");
  const auto records = parse_machine_usage_v2018(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].machine_id, 1);
  EXPECT_EQ(records[0].timestamp, 10);
  EXPECT_DOUBLE_EQ(records[0].cpu_util, 35.5);
  EXPECT_DOUBLE_EQ(records[0].mem_util, 60.2);
  EXPECT_DOUBLE_EQ(records[0].disk_util, 12.5);
}

TEST(ParserV2018, ToleratesShortRowsAndMissingOptionals) {
  std::istringstream in(
      "m_7,300,50\n"          // only the mandatory columns
      "m_8,300,60,70\n"       // mem but no disk
      "junk\n");
  std::size_t bad = 0;
  const auto records = parse_machine_usage_v2018(in, &bad);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].mem_util, 0.0);
  EXPECT_DOUBLE_EQ(records[1].mem_util, 70.0);
  EXPECT_EQ(bad, 1u);
}

TEST(ParserAny, SniffsSchemaByMachinePrefix) {
  std::istringstream v2017("0,1,35.5,60.2,12.0\n");
  const auto a = parse_any_usage(v2017);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].machine_id, 1);
  EXPECT_EQ(a[0].timestamp, 0);

  std::istringstream v2018("m_1,10,35.5,60.2,0,0,1,2,12.5\n");
  const auto b = parse_any_usage(v2018);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].machine_id, 1);
  EXPECT_EQ(b[0].timestamp, 10);
}

TEST(ParserAny, BothSchemasFeedTheSamePipeline) {
  std::istringstream v2018(
      "m_1,0,30,0,0,0,0,0,0\n"
      "m_2,0,50,0,0,0,0,0,0\n"
      "m_1,300,70,0,0,0,0,0,0\n");
  const auto util = cluster_utilization(parse_any_usage(v2018));
  ASSERT_EQ(util.size(), 2u);
  EXPECT_DOUBLE_EQ(util[0].mean_cpu, 40.0);
  EXPECT_DOUBLE_EQ(util[1].mean_cpu, 70.0);
}

// -------------------------------------------------------------- synthetic

TEST(Synthetic, ProducesRequestedShape) {
  SyntheticTraceConfig config;
  config.machines = 10;
  config.duration_s = 3'600;
  config.interval_s = 300;
  const auto records = generate_server_usage(config);
  EXPECT_EQ(records.size(), 10u * 12u);
  for (const auto& r : records) {
    EXPECT_GE(r.cpu_util, 0.0);
    EXPECT_LE(r.cpu_util, 100.0);
    EXPECT_GE(r.mem_util, 0.0);
    EXPECT_LE(r.mem_util, 100.0);
  }
}

TEST(Synthetic, MeanUtilizationNearTarget) {
  SyntheticTraceConfig config;
  config.machines = 50;
  config.duration_s = 12 * 3'600;
  config.mean_cpu = 35.0;
  const auto records = generate_server_usage(config);
  const auto s = summarize(records);
  EXPECT_NEAR(s.mean_cpu, 35.0, 5.0);
}

TEST(Synthetic, DiurnalSwingVisibleInClusterSeries) {
  SyntheticTraceConfig config;
  config.machines = 100;
  config.duration_s = 24 * 3'600;
  config.noise_sigma = 1.0;
  config.burst_prob = 0.0;
  config.diurnal_amplitude = 20.0;
  const auto util = cluster_utilization(generate_server_usage(config));
  double lo = 1e9, hi = -1e9;
  for (const auto& p : util) {
    lo = std::min(lo, p.mean_cpu);
    hi = std::max(hi, p.mean_cpu);
  }
  EXPECT_GT(hi - lo, 10.0);  // most of the 20-point amplitude survives
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticTraceConfig config;
  config.machines = 5;
  config.duration_s = 3'600;
  const auto a = generate_server_usage(config);
  const auto b = generate_server_usage(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cpu_util, b[i].cpu_util);
  }
  config.seed += 1;
  const auto c = generate_server_usage(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cpu_util != c[i].cpu_util) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ParsesBackThroughAlibabaParser) {
  // The generated records must be consumable by the same pipeline as the
  // real trace — that is the whole point of the substitution.
  SyntheticTraceConfig config;
  config.machines = 4;
  config.duration_s = 1'800;
  const auto records = generate_server_usage(config);
  std::ostringstream out;
  write_server_usage(out, records);
  std::istringstream in(out.str());
  std::size_t bad = 0;
  const auto parsed = parse_server_usage(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.size(), records.size());
}

TEST(Synthetic, ValidatesConfig) {
  SyntheticTraceConfig config;
  config.machines = 0;
  EXPECT_THROW(generate_server_usage(config), std::invalid_argument);
  config = {};
  config.interval_s = 0;
  EXPECT_THROW(generate_server_usage(config), std::invalid_argument);
}

// -------------------------------------------------------------- rate plan

TEST(RatePlan, MapsUtilizationToRates) {
  const std::vector<UtilPoint> util = {{0, 50.0}, {300, 100.0}};
  const auto plan = to_rate_plan(util, 200.0);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].at, 0);
  EXPECT_DOUBLE_EQ(plan[0].rate_rps, 100.0);
  EXPECT_EQ(plan[1].at, 300 * kSecond);
  EXPECT_DOUBLE_EQ(plan[1].rate_rps, 200.0);
}

TEST(RatePlan, TimeCompressionSquashesTimestamps) {
  const std::vector<UtilPoint> util = {{7'200, 50.0}};
  const auto plan = to_rate_plan(util, 100.0, 72.0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].at, 100 * kSecond);  // 7200 s / 72 = 100 s
}

TEST(RatePlan, ValidatesArguments) {
  EXPECT_THROW(to_rate_plan({}, 0.0), std::invalid_argument);
  EXPECT_THROW(to_rate_plan({}, 10.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dope::trace
