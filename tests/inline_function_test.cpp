// Unit tests for the heap-free callable wrappers (common/inline_function.hpp)
// and the engine's zero-steady-state-allocation contract.
//
// This binary replaces the global allocator with a counting one so the
// "no heap traffic" claims are asserted, not assumed. The counter only
// observes `new`/`delete`, which is exactly the traffic the event-core
// contract (docs/ENGINE.md) bans on the schedule->fire path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "common/inline_function.hpp"
#include "sim/engine.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dope {
namespace {

using common::FunctionRef;
using common::InlineFunction;

/// Allocations performed by `fn`, as seen by the replaced global new.
template <typename Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// --- compile-time contract ---

static_assert(sizeof(sim::EventFn) <=
                  common::kInlineFunctionCapacity + 2 * sizeof(void*),
              "EventFn must stay buffer + two function pointers");
static_assert(!std::is_copy_constructible_v<InlineFunction<void()>>);
static_assert(!std::is_copy_assignable_v<InlineFunction<void()>>);
static_assert(std::is_nothrow_move_constructible_v<InlineFunction<void()>>);
static_assert(std::is_trivially_copyable_v<FunctionRef<void()>>);
static_assert(sizeof(FunctionRef<void()>) == 2 * sizeof(void*));
// A capture over the capacity must be rejected at compile time, which we
// can only assert negatively: the converting constructor is selected by
// invocability alone, so it stays "constructible" in SFINAE terms and
// fails inside with a static_assert. Constructibility of a fitting
// callable is the positive half:
static_assert(std::is_constructible_v<InlineFunction<void()>,
                                      decltype([] {})>);

TEST(InlineFunction, EmptyStates) {
  InlineFunction<void()> fn;
  EXPECT_FALSE(fn);
  EXPECT_TRUE(fn == nullptr);
  InlineFunction<void()> null_fn = nullptr;
  EXPECT_FALSE(null_fn);
}

TEST(InlineFunction, InvokesTargetWithArgumentsAndResult) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  ASSERT_TRUE(add);
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, ConstructionAndCallNeverAllocate) {
  int counter = 0;
  const auto allocs = allocations_during([&] {
    InlineFunction<void()> fn = [&counter] { ++counter; };
    fn();
    InlineFunction<void()> moved = std::move(fn);
    moved();
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(counter, 2);
}

TEST(InlineFunction, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  InlineFunction<void()> a = [&calls] { ++calls; };
  InlineFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — asserting the contract
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);

  InlineFunction<void()> c;
  c = std::move(b);
  ASSERT_TRUE(c);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, MoveOnlyTargetsAreSupported) {
  // A move-only capture (e.g. another InlineFunction) must wrap cleanly —
  // std::function would reject this outright. The capture is 64 bytes
  // (48-byte buffer + two pointers), so the outer wrapper needs an
  // explicit Capacity; the default would be a compile error.
  int calls = 0;
  InlineFunction<void()> inner = [&calls] { ++calls; };
  InlineFunction<void(), 64> outer = [inner = std::move(inner)]() mutable {
    inner();
  };
  outer();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFunction, ResetDestroysTarget) {
  int destroyed = 0;
  struct Probe {
    int* destroyed;
    Probe(int* d) : destroyed(d) {}
    Probe(Probe&& other) noexcept : destroyed(other.destroyed) {
      other.destroyed = nullptr;
    }
    ~Probe() {
      if (destroyed != nullptr) ++*destroyed;
    }
    void operator()() const {}
  };
  InlineFunction<void()> fn = Probe{&destroyed};
  EXPECT_EQ(destroyed, 0);
  fn.reset();
  EXPECT_EQ(destroyed, 1);
  EXPECT_FALSE(fn);
  fn.reset();  // idempotent
  EXPECT_EQ(destroyed, 1);
}

TEST(FunctionRef, BindsLambdasAndMutableState) {
  int sum = 0;
  auto accumulate = [&sum](int v) { sum += v; };
  FunctionRef<void(int)> ref = accumulate;
  ref(2);
  ref(3);
  EXPECT_EQ(sum, 5);
}

TEST(FunctionRef, IsCallableThroughConstCopies) {
  int calls = 0;
  auto fn = [&calls] { ++calls; };
  const FunctionRef<void()> ref = fn;
  ref();
  EXPECT_EQ(calls, 1);
}

// --- the engine-level contract the wrappers exist for ---

TEST(EngineAllocation, SteadyStateScheduleFireIsAllocationFree) {
  sim::Engine engine;
  // Warm-up: grow the event pool and heap to their high-water marks.
  for (int i = 0; i < 512; ++i) {
    engine.schedule_after(1 + i, [] {});
  }
  engine.run_all();

  struct Chain {
    sim::Engine* engine;
    int* remaining;
    void operator()() const {
      if (*remaining == 0) return;
      --*remaining;
      engine->schedule_after(10, Chain{engine, remaining});
    }
  };
  int remaining = 100'000;
  const auto allocs = allocations_during([&] {
    engine.schedule_after(1, Chain{&engine, &remaining});
    engine.run_all();
  });
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(allocs, 0u);
}

TEST(EngineAllocation, PeriodicTicksAreAllocationFree) {
  sim::Engine engine;
  std::uint64_t ticks = 0;
  auto task = engine.every(100, [&ticks] { ++ticks; });
  engine.run_until(1'000);  // warm-up
  const auto allocs =
      allocations_during([&] { engine.run_until(1'000'000); });
  task.stop();
  EXPECT_GT(ticks, 9'000u);
  EXPECT_EQ(allocs, 0u);
}

TEST(EngineAllocation, CancelIsAllocationFree) {
  sim::Engine engine;
  for (int i = 0; i < 64; ++i) engine.schedule_after(1 + i, [] {});
  engine.run_all();  // warm-up
  const auto allocs = allocations_during([&] {
    for (int round = 0; round < 1'000; ++round) {
      const auto id = engine.schedule_after(50, [] {});
      engine.cancel(id);
      engine.step();  // drains nothing but exercises skim paths
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace dope
