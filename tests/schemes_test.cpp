// Tests for the baseline power-management schemes: Capping, Shaving, Token
// (plus the scheme utility helpers). Each scenario drives a small cluster
// with an overload and checks the scheme's enforcement invariants.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "schemes/baselines.hpp"
#include "schemes/util.hpp"
#include "workload/generator.hpp"

namespace dope::schemes {
namespace {

using workload::Catalog;

struct Rig {
  sim::Engine engine;
  workload::Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<workload::TrafficGenerator> traffic;

  explicit Rig(cluster::ClusterConfig config = {},
               power::BudgetLevel level = power::BudgetLevel::kLow) {
    config.budget_level = level;
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, config);
  }

  void offer(workload::Mixture mixture, double rate,
             unsigned sources = 64) {
    workload::GeneratorConfig gen;
    gen.mixture = std::move(mixture);
    gen.rate_rps = rate;
    gen.num_sources = sources;
    gen.seed = 11;
    traffic = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen, cluster->edge_sink());
  }
};

// ------------------------------------------------------------------ util

TEST(SchemeUtil, UniformEstimateIsMonotoneInLevel) {
  Rig rig;
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 500.0);
  rig.cluster->run_for(2 * kSecond);
  auto nodes = rig.cluster->servers();
  const auto& ladder = rig.cluster->ladder();
  Watts prev{-1.0};
  for (power::DvfsLevel l = 0; l < ladder.levels(); ++l) {
    const Watts p = estimate_power_at_uniform(nodes, l);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(SchemeUtil, FindUniformLevelRespectsAllowance) {
  Rig rig;
  rig.offer(workload::Mixture::single(Catalog::kCollaFilt), 800.0);
  rig.cluster->run_for(2 * kSecond);
  auto nodes = rig.cluster->servers();
  const auto& ladder = rig.cluster->ladder();
  const Watts full = estimate_power_at_uniform(nodes, ladder.max_level());
  const Watts allowance = full * 0.9;
  const auto level =
      find_uniform_level(nodes, ladder, allowance, ladder.max_level());
  EXPECT_LE(estimate_power_at_uniform(nodes, level), allowance);
  if (level < ladder.max_level()) {
    EXPECT_GT(estimate_power_at_uniform(nodes, level + 1), allowance);
  }
}

TEST(SchemeUtil, FindUniformLevelFloorsAtMin) {
  Rig rig;
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 800.0);
  rig.cluster->run_for(2 * kSecond);
  auto nodes = rig.cluster->servers();
  const auto& ladder = rig.cluster->ladder();
  EXPECT_EQ(find_uniform_level(nodes, ladder, Watts{0.0}, ladder.max_level()),
            ladder.min_level());
}

// --------------------------------------------------------------- NoScheme

TEST(NoScheme, NeverThrottles) {
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<NoScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 600.0);
  rig.cluster->run_for(20 * kSecond);
  for (auto* n : rig.cluster->servers()) {
    EXPECT_EQ(n->level(), rig.cluster->ladder().max_level());
  }
  // Low budget + heavy flood: demand stays above budget every slot.
  EXPECT_GT(rig.cluster->slot_stats().violation_slots, 15u);
}

// ---------------------------------------------------------------- Capping

TEST(Capping, ThrottlesUnderOverload) {
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<CappingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kCollaFilt), 800.0);
  rig.cluster->run_for(30 * kSecond);
  // Servers must have been pulled below max frequency.
  bool any_throttled = false;
  for (auto* n : rig.cluster->servers()) {
    if (n->level() < rig.cluster->ladder().max_level()) any_throttled = true;
  }
  EXPECT_TRUE(any_throttled);
}

TEST(Capping, BringsDemandNearBudget) {
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<CappingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kCollaFilt), 800.0);
  rig.cluster->run_for(60 * kSecond);
  // After convergence, slot demand sits at/below budget (small tolerance
  // for actuation lag at slot boundaries).
  EXPECT_LE(rig.cluster->last_slot_demand(),
            rig.cluster->budget() * 1.05);
}

TEST(Capping, RecoversFrequencyAfterAttackEnds) {
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<CappingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kCollaFilt), 800.0);
  rig.cluster->run_for(30 * kSecond);
  rig.traffic->stop();
  rig.cluster->run_for(120 * kSecond);
  for (auto* n : rig.cluster->servers()) {
    EXPECT_EQ(n->level(), rig.cluster->ladder().max_level());
  }
}

TEST(Capping, HurtsEveryoneUniformly) {
  // The collateral-damage property the paper criticises: normal users are
  // throttled exactly like attackers.
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<CappingScheme>());
  // Normal light traffic + attack flood.
  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 200.0;
  normal.num_sources = 128;
  workload::TrafficGenerator normal_gen(rig.engine, rig.catalog, normal,
                                        rig.cluster->edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kKMeans);
  attack.rate_rps = 500.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(rig.engine, rig.catalog, attack,
                                        rig.cluster->edge_sink());
  rig.cluster->run_for(60 * kSecond);
  const auto& metrics = rig.cluster->request_metrics();
  // All servers are throttled, so normal latency degrades well beyond the
  // unloaded service time.
  EXPECT_GT(metrics.normal_latency_ms().mean(), 10.0);
}

TEST(Capping, ValidatesMargin) {
  EXPECT_THROW(CappingScheme(-0.1), std::invalid_argument);
  EXPECT_THROW(CappingScheme(1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- Shaving

cluster::ClusterConfig battery_config() {
  cluster::ClusterConfig config;
  config.battery_runtime = 2 * kMinute;
  return config;
}

TEST(Shaving, RequiresBattery) {
  Rig rig;  // no battery
  auto scheme = std::make_unique<ShavingScheme>();
  EXPECT_THROW(rig.cluster->install_scheme(std::move(scheme)),
               std::invalid_argument);
}

TEST(Shaving, BatteryAbsorbsPeakBeforeDvfs) {
  Rig rig(battery_config());
  rig.cluster->install_scheme(std::make_unique<ShavingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 700.0);
  rig.cluster->run_for(20 * kSecond);
  // Battery is discharging...
  EXPECT_GT(rig.cluster->battery()->total_discharged(), Joules{0.0});
  // ...and (early in the attack) frequencies are still untouched.
  for (auto* n : rig.cluster->servers()) {
    EXPECT_EQ(n->level(), rig.cluster->ladder().max_level());
  }
}

TEST(Shaving, LongPeakDrainsBatteryThenThrottles) {
  auto config = battery_config();
  // Tight budget: the saturated cluster runs a ~250 W deficit, so the
  // 2-minute battery empties well inside the run.
  config.budget_override = Watts{550.0};
  Rig rig(config);
  rig.cluster->install_scheme(std::make_unique<ShavingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 700.0);
  // A DOPE peak far longer than the battery can carry.
  rig.cluster->run_for(10 * kMinute);
  EXPECT_LT(rig.cluster->battery()->soc(), 0.1);
  bool any_throttled = false;
  for (auto* n : rig.cluster->servers()) {
    if (n->level() < rig.cluster->ladder().max_level()) any_throttled = true;
  }
  EXPECT_TRUE(any_throttled);
}

TEST(Shaving, RechargesWhenHeadroomReturns) {
  Rig rig(battery_config());
  rig.cluster->install_scheme(std::make_unique<ShavingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 700.0);
  rig.cluster->run_for(90 * kSecond);
  rig.traffic->stop();
  const double drained_soc = rig.cluster->battery()->soc();
  ASSERT_LT(drained_soc, 1.0);
  rig.cluster->run_for(20 * kMinute);
  EXPECT_GT(rig.cluster->battery()->soc(), drained_soc);
}

// ------------------------------------------------------------------ Token

TEST(Token, ShedsRequestsUnderOverload) {
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<TokenScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 800.0);
  rig.cluster->run_for(60 * kSecond);
  const auto& metrics = rig.cluster->request_metrics();
  // The paper observes Token dropping >60% of packets under heavy floods.
  EXPECT_GT(metrics.drop_fraction(), 0.4);
  EXPECT_GT(metrics.normal_counts().dropped_by_limit +
                metrics.attack_counts().dropped_by_limit,
            0u);
}

TEST(Token, KeepsPowerNearBudget) {
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<TokenScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 800.0);
  rig.cluster->run_for(60 * kSecond);
  EXPECT_LE(rig.cluster->last_slot_demand(), rig.cluster->budget() * 1.10);
}

TEST(Token, SurvivorsSeeGoodLatency) {
  // Token's deceptive upside: admitted requests are served fast because
  // frequencies never drop.
  Rig rig;
  rig.cluster->install_scheme(std::make_unique<TokenScheme>());
  rig.offer(workload::Mixture::single(Catalog::kTextCont), 2'000.0);
  rig.cluster->run_for(30 * kSecond);
  const auto& latency = rig.cluster->request_metrics().normal_latency_ms();
  if (!latency.empty()) {
    EXPECT_LT(latency.percentile(90), 50.0);
  }
  for (auto* n : rig.cluster->servers()) {
    EXPECT_EQ(n->level(), rig.cluster->ladder().max_level());
  }
}

TEST(Token, AdmitsEverythingUnderLightLoad) {
  Rig rig({}, power::BudgetLevel::kNormal);
  rig.cluster->install_scheme(std::make_unique<TokenScheme>());
  rig.offer(workload::Mixture::alios_normal(), 50.0);
  rig.cluster->run_for(30 * kSecond);
  const auto& metrics = rig.cluster->request_metrics();
  EXPECT_EQ(metrics.normal_counts().dropped_by_limit, 0u);
}

TEST(Shaving, RespectsBatteryReserveFloor) {
  // With a 40% outage reserve, shaving stops at SoC 0.4 and DVFS takes
  // over earlier than with the full battery available.
  auto config = battery_config();
  config.battery_reserve_fraction = 0.4;
  config.budget_override = Watts{550.0};
  Rig rig(config);
  rig.cluster->install_scheme(std::make_unique<ShavingScheme>());
  rig.offer(workload::Mixture::single(Catalog::kKMeans), 700.0);
  rig.cluster->run_for(10 * kMinute);
  EXPECT_GE(rig.cluster->battery()->soc(), 0.4 - 1e-9);
  bool any_throttled = false;
  for (auto* n : rig.cluster->servers()) {
    if (n->level() < rig.cluster->ladder().max_level()) any_throttled = true;
  }
  EXPECT_TRUE(any_throttled);
}

TEST(Token, ValidatesBurstWindow) {
  EXPECT_THROW(TokenScheme(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dope::schemes
