// Tests for the extension features: RAPL per-node capping, battery
// reserve policy, cluster health checker, online power classification,
// and the oracle / per-node capping ablation schemes.
#include <gtest/gtest.h>

#include <memory>

#include "antidope/antidope.hpp"
#include "antidope/online_classifier.hpp"
#include "battery/battery.hpp"
#include "cluster/health.hpp"
#include "schemes/oracle.hpp"
#include "schemes/rapl_capping.hpp"
#include "server/rapl.hpp"
#include "workload/generator.hpp"

namespace dope {
namespace {

using workload::Catalog;

// -------------------------------------------------------------------- RAPL

class RaplTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  workload::Catalog catalog_ = Catalog::standard();
  power::DvfsLadder ladder_ = power::DvfsLadder::make();
  server::ServerConfig config_{.queue_capacity = 64,
                               .queue_deadline = 0,
                               .dvfs_latency = 0};
  server::ServerNode node_{engine_, 0, catalog_,
                           power::ServerPowerModel({}, ladder_), config_,
                           [](const workload::RequestRecord&) {}};

  void load_kmeans(int n) {
    for (int i = 0; i < n; ++i) {
      workload::Request r;
      r.type = Catalog::kKMeans;
      r.size_factor = 1e6;  // pin the active set
      node_.submit(std::move(r));
    }
  }
};

TEST_F(RaplTest, UncappedNodeRunsAtMax) {
  server::RaplInterface rapl(node_);
  EXPECT_FALSE(rapl.cap().has_value());
  rapl.enforce();  // no-op without a cap
  EXPECT_EQ(node_.target_level(), ladder_.max_level());
}

TEST_F(RaplTest, CapSelectsHighestFittingLevel) {
  load_kmeans(4);  // 38 idle + 4x21 -> clamped 100 W at max
  server::RaplInterface rapl(node_);
  rapl.set_cap(Watts{90.0});
  engine_.run_until(kSecond);
  EXPECT_LE(node_.estimate_power_at(node_.level()), Watts{90.0});
  // One level higher must violate the cap (highest fitting level).
  if (node_.level() < ladder_.max_level()) {
    EXPECT_GT(node_.estimate_power_at(node_.level() + 1), Watts{90.0});
  }
}

TEST_F(RaplTest, CapBelowIdleFloorsAtMinLevel) {
  load_kmeans(4);
  server::RaplInterface rapl(node_);
  rapl.set_cap(Watts{10.0});  // below even idle power: RAPL can't power off
  engine_.run_until(kSecond);
  EXPECT_EQ(node_.level(), ladder_.min_level());
}

TEST_F(RaplTest, ClearCapRestoresMax) {
  load_kmeans(4);
  server::RaplInterface rapl(node_);
  rapl.set_cap(Watts{80.0});
  engine_.run_until(kSecond);
  ASSERT_LT(node_.level(), ladder_.max_level());
  rapl.clear_cap();
  engine_.run_until(2 * kSecond);
  EXPECT_EQ(node_.level(), ladder_.max_level());
  EXPECT_FALSE(rapl.cap().has_value());
}

TEST_F(RaplTest, EnforceReactsToLoadChanges) {
  server::RaplInterface rapl(node_);
  rapl.set_cap(Watts{60.0});
  engine_.run_until(kSecond);
  EXPECT_EQ(node_.level(), ladder_.max_level());  // idle fits easily
  load_kmeans(2);  // 38 + 42 = 80 > 60
  rapl.enforce();
  engine_.run_until(2 * kSecond);
  EXPECT_LT(node_.level(), ladder_.max_level());
}

TEST_F(RaplTest, RejectsNonPositiveCap) {
  server::RaplInterface rapl(node_);
  EXPECT_THROW(rapl.set_cap(Watts{0.0}), std::invalid_argument);
}

// --------------------------------------------------------- battery reserve

TEST(BatteryReserve, ShavingStopsAtReserveFloor) {
  auto spec = battery::BatterySpec::sized_for(Watts{100.0}, kMinute);
  spec.reserve_fraction = 0.25;
  battery::Battery b(spec);
  // Drain by shaving: must stop at 25% SoC.
  for (int i = 0; i < 600; ++i) b.discharge(Watts{100.0}, kSecond);
  EXPECT_NEAR(b.soc(), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(b.discharge(Watts{100.0}, kSecond).value(), 0.0);
}

TEST(BatteryReserve, EmergencyDischargeTapsTheReserve) {
  auto spec = battery::BatterySpec::sized_for(Watts{100.0}, kMinute);
  spec.reserve_fraction = 0.25;
  battery::Battery b(spec);
  for (int i = 0; i < 600; ++i) b.discharge(Watts{100.0}, kSecond);
  ASSERT_NEAR(b.soc(), 0.25, 1e-9);
  EXPECT_GT(b.discharge(Watts{100.0}, kSecond, /*emergency=*/true),
            Watts{0.0});
  EXPECT_LT(b.soc(), 0.25);
}

TEST(BatteryReserve, ShavableReportsHeadroomAboveReserve) {
  auto spec = battery::BatterySpec::sized_for(Watts{100.0}, kMinute);
  spec.reserve_fraction = 0.5;
  battery::Battery b(spec);
  EXPECT_DOUBLE_EQ(b.shavable().value(), 3000.0);  // half of 6000 J
  b.discharge(Watts{100.0}, 10 * kSecond);
  EXPECT_DOUBLE_EQ(b.shavable().value(), 2000.0);
}

TEST(BatteryReserve, ValidatesReserveFraction) {
  auto spec = battery::BatterySpec::sized_for(Watts{100.0}, kMinute);
  spec.reserve_fraction = 1.0;
  EXPECT_THROW(battery::Battery{spec}, std::invalid_argument);
}

// ------------------------------------------------------------------ health

class HealthTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  workload::Catalog catalog_ = Catalog::standard();
  cluster::ClusterConfig config_ = [] {
    cluster::ClusterConfig c;
    c.num_servers = 4;
    c.battery_runtime = 2 * kMinute;
    return c;
  }();
  cluster::Cluster cluster_{engine_, catalog_, config_};
};

TEST_F(HealthTest, IdleClusterIsHealthy) {
  cluster::HealthChecker checker(cluster_);
  const auto report = checker.inspect();
  ASSERT_EQ(report.nodes.size(), 4u);
  EXPECT_EQ(report.count(cluster::NodeHealth::kHealthy), 4u);
  EXPECT_FALSE(report.any_critical());
  EXPECT_NEAR(report.total_power.value(), 4 * 38.0, 1e-9);
  EXPECT_GT(report.headroom, Watts{0.0});
  EXPECT_DOUBLE_EQ(report.battery_soc, 1.0);
}

TEST_F(HealthTest, FlagsPowerSaturatedNodes) {
  // Saturate server 0 with K-means.
  for (int i = 0; i < 4; ++i) {
    workload::Request r;
    r.type = Catalog::kKMeans;
    r.size_factor = 100.0;
    cluster_.server(0).submit(std::move(r));
  }
  cluster::HealthChecker checker(cluster_);
  const auto report = checker.inspect();
  EXPECT_EQ(report.nodes[0].health, cluster::NodeHealth::kPowerSaturated);
  EXPECT_EQ(report.count(cluster::NodeHealth::kHealthy), 3u);
}

TEST_F(HealthTest, FlagsOverloadedAndCriticalNodes) {
  cluster::HealthCheckerConfig config;
  config.queue_pressure = 8;
  for (int i = 0; i < 16; ++i) {
    workload::Request r;
    r.type = Catalog::kKMeans;
    r.size_factor = 100.0;
    cluster_.server(1).submit(std::move(r));
  }
  cluster::HealthChecker checker(cluster_, config);
  const auto report = checker.inspect();
  // Saturated power AND a deep queue: critical.
  EXPECT_EQ(report.nodes[1].health, cluster::NodeHealth::kCritical);
  EXPECT_TRUE(report.any_critical());
}

TEST_F(HealthTest, HeadroomGoesNegativeOverBudget) {
  cluster::ClusterConfig tight = config_;
  tight.budget_override = Watts{100.0};  // below the 152 W idle floor
  cluster::Cluster cluster(engine_, catalog_, tight);
  cluster::HealthChecker checker(cluster);
  EXPECT_LT(checker.inspect().headroom, Watts{0.0});
}

TEST_F(HealthTest, ValidatesConfig) {
  cluster::HealthCheckerConfig bad;
  bad.queue_pressure = 0;
  EXPECT_THROW(cluster::HealthChecker(cluster_, bad),
               std::invalid_argument);
}

// ------------------------------------------------------- online classifier

TEST(OnlineClassifier, LearnsHeavyTypeFromIngestedSamples) {
  auto classifier = antidope::OnlineClassifier::untrained(4);
  for (int i = 0; i < 20; ++i) classifier.ingest(2, Watts{18.0});
  EXPECT_TRUE(classifier.suspicious(2));
  EXPECT_FALSE(classifier.suspicious(0));
  EXPECT_NEAR(classifier.estimate(2).value(), 18.0, 1e-9);
  EXPECT_EQ(classifier.reclassifications(), 1u);
}

TEST(OnlineClassifier, RequiresMinimumEvidence) {
  antidope::OnlineClassifierConfig config;
  config.min_observations = 50;
  auto classifier = antidope::OnlineClassifier::untrained(2, config);
  for (int i = 0; i < 49; ++i) classifier.ingest(0, Watts{30.0});
  EXPECT_FALSE(classifier.suspicious(0));
  classifier.ingest(0, Watts{30.0});
  EXPECT_TRUE(classifier.suspicious(0));
}

TEST(OnlineClassifier, HysteresisPreventsFlapping) {
  antidope::OnlineClassifierConfig config;
  config.suspect_threshold = Watts{10.0};
  config.hysteresis = 0.2;  // releases below 8 W
  config.alpha = 1.0;       // track the last sample exactly
  config.min_observations = 1;
  auto classifier = antidope::OnlineClassifier::untrained(1, config);
  classifier.ingest(0, Watts{12.0});
  EXPECT_TRUE(classifier.suspicious(0));
  // Inside the hysteresis band: stays suspect.
  classifier.ingest(0, Watts{9.0});
  EXPECT_TRUE(classifier.suspicious(0));
  classifier.ingest(0, Watts{7.0});  // below the release point
  EXPECT_FALSE(classifier.suspicious(0));
}

TEST(OnlineClassifier, PriorFlagsPersistWithoutEvidence) {
  const antidope::SuspectList prior(std::vector<bool>{true, false});
  antidope::OnlineClassifier classifier(2, prior);
  EXPECT_TRUE(classifier.suspicious(0));
  EXPECT_FALSE(classifier.suspicious(1));
}

TEST(OnlineClassifier, ObserveAttributesNodePowerToActiveTypes) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  const auto ladder = power::DvfsLadder::make();
  server::ServerNode node(engine, 0, catalog,
                          power::ServerPowerModel({}, ladder),
                          {.queue_capacity = 16, .queue_deadline = 0},
                          [](const workload::RequestRecord&) {});
  for (int i = 0; i < 2; ++i) {
    workload::Request r;
    r.type = Catalog::kKMeans;
    r.size_factor = 100.0;
    node.submit(std::move(r));
  }
  antidope::OnlineClassifierConfig config;
  config.min_observations = 5;
  auto classifier = antidope::OnlineClassifier::untrained(
      catalog.size(), config);
  for (int i = 0; i < 10; ++i) classifier.observe(node);
  // Two K-means at 21 W each: the attributed share is ~21 W.
  EXPECT_NEAR(classifier.estimate(Catalog::kKMeans).value(), 21.0, 1.0);
  EXPECT_TRUE(classifier.suspicious(Catalog::kKMeans));
}

TEST(OnlineClassifier, ValidatesInputs) {
  EXPECT_THROW(antidope::OnlineClassifier::untrained(0),
               std::invalid_argument);
  auto classifier = antidope::OnlineClassifier::untrained(2);
  EXPECT_THROW(classifier.ingest(5, Watts{1.0}), std::invalid_argument);
  EXPECT_THROW(classifier.ingest(0, Watts{-1.0}), std::invalid_argument);
}

// -------------------------------------- online learning inside Anti-DOPE

TEST(OnlineAntiDope, LearnsUnprofiledAttackUrlAndReroutes) {
  // The operator never profiled anything: the initial suspect list is
  // empty, so at first the K-means flood spreads over the innocent pool.
  // The online classifier must learn its power and pull it into the
  // suspect pool.
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);

  antidope::AntiDopeConfig config;
  config.suspect_list = antidope::SuspectList(
      std::vector<bool>(catalog.size(), false));  // nothing profiled
  config.online_learning = true;
  auto scheme_ptr = std::make_unique<antidope::AntiDopeScheme>(config);
  auto* scheme = scheme_ptr.get();
  cluster.install_scheme(std::move(scheme_ptr));

  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kKMeans);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());

  engine.run_until(kMinute);
  ASSERT_NE(scheme->classifier(), nullptr);
  EXPECT_TRUE(scheme->classifier()->suspicious(Catalog::kKMeans));
  EXPECT_TRUE(scheme->suspects().suspicious(Catalog::kKMeans));
  // After learning, innocent-pool servers shed the attack again.
  engine.run_until(3 * kMinute);
  std::size_t innocent_load = 0;
  for (std::size_t i = 2; i < cluster.num_servers(); ++i) {
    innocent_load += cluster.server(i).load();
  }
  EXPECT_LT(innocent_load, 20u);
}

TEST(OnlineAntiDope, LightTypesStayInnocent) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 4;
  cluster::Cluster cluster(engine, catalog, cc);
  antidope::AntiDopeConfig config;
  config.online_learning = true;
  auto scheme_ptr = std::make_unique<antidope::AntiDopeScheme>(config);
  auto* scheme = scheme_ptr.get();
  cluster.install_scheme(std::move(scheme_ptr));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::single(Catalog::kTextCont);
  normal.rate_rps = 400.0;
  normal.num_sources = 64;
  workload::TrafficGenerator gen(engine, catalog, normal,
                                 cluster.edge_sink());
  engine.run_until(2 * kMinute);
  EXPECT_FALSE(scheme->suspects().suspicious(Catalog::kTextCont));
}

// ------------------------------------------------------------------ oracle

TEST(Oracle, QuarantinesAttackTrafficPerfectly) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(std::make_unique<schemes::OracleScheme>());

  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kKMeans);
  attack.rate_rps = 300.0;
  attack.num_sources = 32;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  engine.run_until(10 * kSecond);
  std::size_t clean_load = 0;
  for (std::size_t i = 2; i < cluster.num_servers(); ++i) {
    clean_load += cluster.server(i).load();
  }
  EXPECT_EQ(clean_load, 0u);
}

TEST(Oracle, LegitimateHeavyRequestsAreUnaffected) {
  // The oracle's whole advantage: legit Colla-Filt users do NOT share
  // the quarantine pool.
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(std::make_unique<schemes::OracleScheme>());
  workload::Request legit;
  legit.type = Catalog::kCollaFilt;
  legit.ground_truth_attack = false;
  cluster.ingest(std::move(legit));
  std::size_t quarantine_load =
      cluster.server(0).load() + cluster.server(1).load();
  EXPECT_EQ(quarantine_load, 0u);
}

TEST(Oracle, ValidatesConfig) {
  EXPECT_THROW(schemes::OracleScheme(0.0), std::invalid_argument);
  EXPECT_THROW(schemes::OracleScheme(1.0), std::invalid_argument);
}

// ------------------------------------------------------- per-node capping

TEST(RaplCapping, ThrottlesOnlyHotNodes) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 4;
  cc.budget_override = Watts{250.0};
  cluster::Cluster cluster(engine, catalog, cc);
  auto scheme_ptr = std::make_unique<schemes::RaplCappingScheme>();
  auto* scheme = scheme_ptr.get();
  cluster.install_scheme(std::move(scheme_ptr));

  // Pin heavy work on servers 0 and 1 only (long requests).
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 4; ++i) {
      workload::Request r;
      r.type = Catalog::kKMeans;
      r.size_factor = 10'000.0;
      cluster.server(static_cast<std::size_t>(s)).submit(std::move(r));
    }
  }
  engine.run_until(10 * kSecond);
  EXPECT_TRUE(scheme->capping());
  // Hot nodes throttle; idle nodes keep their frequency.
  EXPECT_LT(cluster.server(0).level(), cluster.ladder().max_level());
  EXPECT_EQ(cluster.server(3).level(), cluster.ladder().max_level());
}

TEST(RaplCapping, ReleasesCapsWhenLoadSubsides) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 4;
  cc.budget_override = Watts{280.0};
  cluster::Cluster cluster(engine, catalog, cc);
  auto scheme_ptr = std::make_unique<schemes::RaplCappingScheme>();
  cluster.install_scheme(std::move(scheme_ptr));

  workload::GeneratorConfig burst;
  burst.mixture = workload::Mixture::single(Catalog::kKMeans);
  burst.rate_rps = 300.0;
  burst.stop = 30 * kSecond;
  workload::TrafficGenerator gen(engine, catalog, burst,
                                 cluster.edge_sink());
  engine.run_until(3 * kMinute);
  for (auto* node : cluster.servers()) {
    EXPECT_EQ(node->level(), cluster.ladder().max_level());
  }
}

TEST(RaplCapping, ValidatesMargin) {
  EXPECT_THROW(schemes::RaplCappingScheme(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dope
