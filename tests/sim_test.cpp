// Unit tests for the discrete-event engine: ordering, cancellation,
// periodic tasks, and deterministic replay.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace dope::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeEventsFireInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(100, [&] {
    engine.schedule_after(50, [&] { fired_at = engine.now(); });
  });
  engine.run_all();
  EXPECT_EQ(fired_at, 150);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule_at(10, [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(Engine, RejectsNullHandler) {
  Engine engine;
  EXPECT_THROW(engine.schedule_at(1, nullptr), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run_all();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelFromInsideAnEarlierEvent) {
  Engine engine;
  bool fired = false;
  const EventId victim = engine.schedule_at(20, [&] { fired = true; });
  engine.schedule_at(10, [&] { engine.cancel(victim); });
  engine.run_all();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine engine;
  engine.run_until(12'345);
  EXPECT_EQ(engine.now(), 12'345);
  EXPECT_THROW(engine.run_until(100), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  std::vector<Time> fired;
  engine.schedule_at(10, [&] { fired.push_back(10); });
  engine.schedule_at(20, [&] { fired.push_back(20); });
  engine.schedule_at(21, [&] { fired.push_back(21); });
  engine.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(engine.now(), 20);
  engine.run_until(25);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(1, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(Engine, PendingCountsLiveEventsOnly) {
  Engine engine;
  const EventId a = engine.schedule_at(5, [] {});
  engine.schedule_at(6, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, PeriodicFiresAtFixedCadence) {
  Engine engine;
  std::vector<Time> fires;
  auto handle = engine.every(10, [&] { fires.push_back(engine.now()); });
  engine.run_until(35);
  handle.stop();
  EXPECT_EQ(fires, (std::vector<Time>{10, 20, 30}));
}

TEST(Engine, PeriodicPhaseControlsFirstFiring) {
  Engine engine;
  std::vector<Time> fires;
  auto handle =
      engine.every(10, [&] { fires.push_back(engine.now()); }, 0);
  engine.run_until(25);
  handle.stop();
  EXPECT_EQ(fires, (std::vector<Time>{0, 10, 20}));
}

TEST(Engine, PeriodicStopsWhenHandleStopped) {
  Engine engine;
  int count = 0;
  auto handle = engine.every(10, [&] { ++count; });
  engine.run_until(25);
  handle.stop();
  EXPECT_FALSE(handle.active());
  engine.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(Engine, PeriodicCanStopItselfFromCallback) {
  Engine engine;
  int count = 0;
  PeriodicHandle handle;
  handle = engine.every(10, [&] {
    ++count;
    if (count == 3) handle.stop();
  });
  engine.run_until(1'000);
  EXPECT_EQ(count, 3);
}

TEST(Engine, RejectsNonPositivePeriod) {
  Engine engine;
  EXPECT_THROW(engine.every(0, [] {}), std::invalid_argument);
}

TEST(Engine, DeterministicReplayProducesIdenticalTrace) {
  const auto run = [] {
    Engine engine;
    std::vector<Time> trace;
    auto p = engine.every(7, [&] { trace.push_back(engine.now()); });
    engine.schedule_at(15, [&] { trace.push_back(-engine.now()); });
    engine.run_until(100);
    p.stop();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, ExecutedCountsFiringsNotCancellations) {
  Engine engine;
  const EventId a = engine.schedule_at(1, [] {});
  engine.schedule_at(2, [] {});
  engine.schedule_at(3, [] {});
  engine.cancel(a);
  engine.run_until(10);
  // The cancelled event never runs, so it must not inflate executed().
  EXPECT_EQ(engine.executed(), 2u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, PendingTracksPeriodicReschedule) {
  Engine engine;
  auto handle = engine.every(10, [] {});
  // Exactly one in-flight occurrence exists at any time.
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(35);
  EXPECT_EQ(engine.pending(), 1u);
  handle.stop();
  engine.run_until(100);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.executed(), 4u);  // t=10,20,30 + the stopped final pop
}

TEST(Engine, CancelAlreadyFiredReturnsFalse) {
  Engine engine;
  const EventId a = engine.schedule_at(1, [] {});
  engine.run_until(5);
  EXPECT_FALSE(engine.cancel(a));
  const EventId b = engine.schedule_at(10, [] {});
  EXPECT_TRUE(engine.cancel(b));
  EXPECT_FALSE(engine.cancel(b));  // double cancel
}

TEST(Engine, StoppedPeriodicStillDrainsItsLastEvent) {
  // Stopping is lazy: the already-queued occurrence pops (and counts as
  // executed) but does not fire the callback or reschedule.
  Engine engine;
  int count = 0;
  auto handle = engine.every(10, [&] { ++count; });
  engine.run_until(10);
  EXPECT_EQ(count, 1);
  handle.stop();
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_all();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine engine;
  Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    // Deterministic pseudo-random times via a simple LCG.
    const Time t = (static_cast<Time>(i) * 48271) % 65'536;
    engine.schedule_at(t, [&, t] {
      if (engine.now() < last) monotone = false;
      last = engine.now();
    });
  }
  engine.run_all();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(engine.executed(), 10'000u);
}

// --- event pool: slot reuse, generation safety, growth ---

TEST(EnginePool, CancelledSlotIsRecycledWithoutGrowth) {
  Engine engine;
  const EventId a = engine.schedule_at(10, [] {});
  const std::size_t pool_after_first = engine.event_pool_size();
  EXPECT_TRUE(engine.cancel(a));
  // The freed slot must satisfy the next schedule; no new slot appears.
  engine.schedule_at(20, [] {});
  EXPECT_EQ(engine.event_pool_size(), pool_after_first);
}

TEST(EnginePool, StaleIdAfterReuseNeverCancelsNewEvent) {
  Engine engine;
  const EventId stale = engine.schedule_at(10, [] {});
  ASSERT_TRUE(engine.cancel(stale));
  // This event recycles the slot `stale` pointed at, under a fresh
  // generation.
  bool fired = false;
  engine.schedule_at(10, [&] { fired = true; });
  EXPECT_FALSE(engine.cancel(stale));  // ABA guard: generation mismatch
  engine.run_all();
  EXPECT_TRUE(fired);
}

TEST(EnginePool, NullEventIdNeverCancels) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(5, [&] { fired = true; });
  // Id 0 is the "no event" sentinel (default-initialised members);
  // generations start at 1, so it can never name a live slot.
  EXPECT_FALSE(engine.cancel(EventId{0}));
  engine.run_all();
  EXPECT_TRUE(fired);
}

TEST(EnginePool, CancelTwiceReturnsFalseSecondTime) {
  Engine engine;
  const EventId id = engine.schedule_at(10, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
}

TEST(EnginePool, PoolGrowsThenSteadyStateReusesSlots) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(engine.schedule_at(i, [] {}));
  }
  const std::size_t high_water = engine.event_pool_size();
  EXPECT_GE(high_water, 256u);
  engine.run_all();
  // Schedule/fire churn after the burst must run inside the existing
  // pool: capacity is a high-water mark, not a treadmill.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 256; ++i) {
      engine.schedule_after(1 + i, [] {});
    }
    engine.run_all();
  }
  EXPECT_EQ(engine.event_pool_size(), high_water);
}

TEST(EnginePool, TiedTimesStayInsertionOrderedAcrossGrowthAndReuse) {
  // Interleaves schedules, cancels, and firings so heap entries span
  // recycled and freshly grown slots, then asserts (time, seq) order
  // still holds exactly for the survivors.
  Engine engine;
  std::vector<int> order;
  std::vector<EventId> cancel_me;
  for (int i = 0; i < 100; ++i) {
    const Time t = 50 + (i % 5);  // heavy ties across 5 timestamps
    if (i % 3 == 0) {
      cancel_me.push_back(engine.schedule_at(t, [] {}));
    } else {
      engine.schedule_at(t, [&order, i] { order.push_back(i); });
    }
  }
  for (const EventId id : cancel_me) EXPECT_TRUE(engine.cancel(id));
  engine.run_all();
  // Survivors must fire grouped by time, insertion-ordered within a tie:
  // with times cycling i % 5, that is ascending i % 5 then ascending i.
  std::vector<int> expected;
  for (int rem = 0; rem < 5; ++rem) {
    for (int i = 0; i < 100; ++i) {
      if (i % 3 != 0 && i % 5 == rem) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(EnginePool, PeriodicSlotRecyclesAfterStop) {
  Engine engine;
  auto first = engine.every(10, [] {});
  engine.run_until(35);
  first.stop();
  engine.run_until(50);  // drains the tombstone occurrence
  const std::size_t pool = engine.periodic_pool_size();
  auto second = engine.every(7, [] {});
  EXPECT_EQ(engine.periodic_pool_size(), pool);  // reused first's slot
  second.stop();
}

TEST(EnginePool, StoppedHandleReportsInactiveImmediately) {
  Engine engine;
  auto task = engine.every(10, [] {});
  EXPECT_TRUE(task.active());
  task.stop();
  EXPECT_FALSE(task.active());  // before the tombstone drains
  task.stop();                  // idempotent
  EXPECT_FALSE(task.active());
}

TEST(EnginePool, DefaultPeriodicHandleIsInactive) {
  PeriodicHandle handle;
  EXPECT_FALSE(handle.active());
  handle.stop();  // must be a safe no-op
}

}  // namespace
}  // namespace dope::sim
