// Tests for the Anti-DOPE framework: suspect list, offline profiler, PDF
// routing, and the DPM enforcement loop.
#include <gtest/gtest.h>

#include <memory>

#include "antidope/antidope.hpp"
#include "antidope/pdf.hpp"
#include "antidope/profiler.hpp"
#include "antidope/suspect_list.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

namespace dope::antidope {
namespace {

using workload::Catalog;

// ----------------------------------------------------------- suspect list

TEST(SuspectList, FromCatalogSeparatesHeavyFromLight) {
  const auto catalog = Catalog::standard();
  const auto list = SuspectList::from_catalog(catalog, Watts{10.0});
  EXPECT_TRUE(list.suspicious(Catalog::kCollaFilt));
  EXPECT_TRUE(list.suspicious(Catalog::kKMeans));
  EXPECT_TRUE(list.suspicious(Catalog::kWordCount));
  EXPECT_FALSE(list.suspicious(Catalog::kTextCont));
  EXPECT_FALSE(list.suspicious(Catalog::kSynPacket));
  EXPECT_FALSE(list.suspicious(Catalog::kUdpPacket));
  EXPECT_EQ(list.suspect_count(), 3u);
  EXPECT_EQ(list.size(), catalog.size());
}

TEST(SuspectList, FromMeasurementsThresholds) {
  const auto list = SuspectList::from_measurements(
      {Watts{1.0}, Watts{15.0}, Watts{9.99}}, Watts{10.0});
  EXPECT_FALSE(list.suspicious(0));
  EXPECT_TRUE(list.suspicious(1));
  EXPECT_FALSE(list.suspicious(2));
}

TEST(SuspectList, Validates) {
  EXPECT_THROW(SuspectList(std::vector<bool>{}), std::invalid_argument);
  EXPECT_THROW(SuspectList::from_measurements({}, Watts{1.0}),
               std::invalid_argument);
  const SuspectList list(std::vector<bool>{true});
  EXPECT_THROW(list.suspicious(5), std::invalid_argument);
}

// -------------------------------------------------------------- profiler

TEST(Profiler, MeasuredPowersMatchModelGroundTruth) {
  const auto catalog = Catalog::standard();
  ProfilerConfig config;
  config.duration = 20 * kSecond;
  const auto profiles =
      profile_catalog(catalog, {}, power::DvfsLadder::make(), config);
  ASSERT_EQ(profiles.size(), catalog.size());
  for (const auto& p : profiles) {
    const Watts truth = catalog.type(p.type).power.p0;
    // Measurement error should be small (concurrency attribution noise).
    EXPECT_NEAR(p.per_request_power.value(), truth.value(),
                0.15 * truth.value() + 0.5)
        << catalog.type(p.type).name;
  }
}

TEST(Profiler, MeasuredSuspectListMatchesAnalyticOne) {
  const auto catalog = Catalog::standard();
  ProfilerConfig config;
  config.duration = 20 * kSecond;
  const auto profiles =
      profile_catalog(catalog, {}, power::DvfsLadder::make(), config);
  const auto measured =
      SuspectList::from_measurements(per_request_powers(profiles),
                                     Watts{10.0});
  const auto analytic = SuspectList::from_catalog(catalog, Watts{10.0});
  for (workload::RequestTypeId t = 0; t < catalog.size(); ++t) {
    EXPECT_EQ(measured.suspicious(t), analytic.suspicious(t))
        << catalog.type(t).name;
  }
}

TEST(Profiler, CollaFiltSaturatesNodeNearNameplate) {
  // Fig. 5a: Colla-Filt drives the node's power close to nameplate.
  const auto catalog = Catalog::standard();
  ProfilerConfig config;
  config.duration = 20 * kSecond;
  const auto profiles =
      profile_catalog(catalog, {}, power::DvfsLadder::make(), config);
  EXPECT_GT(profiles[Catalog::kCollaFilt].saturated_node_power, Watts{90.0});
  EXPECT_LT(profiles[Catalog::kSynPacket].saturated_node_power, Watts{45.0});
}

TEST(Profiler, ReportsSaturationRates) {
  const auto catalog = Catalog::standard();
  ProfilerConfig config;
  config.duration = 5 * kSecond;
  const auto profiles =
      profile_catalog(catalog, {}, power::DvfsLadder::make(), config);
  // Colla-Filt: 4 cores / 80 ms = 50 rps.
  EXPECT_NEAR(profiles[Catalog::kCollaFilt].saturation_rps, 50.0, 1.0);
  // Text-Cont: 4 / 8 ms = 500 rps.
  EXPECT_NEAR(profiles[Catalog::kTextCont].saturation_rps, 500.0, 10.0);
}

// ------------------------------------------------------------------- PDF

class PdfTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Catalog catalog_ = Catalog::standard();
  cluster::ClusterConfig config_ = [] {
    cluster::ClusterConfig c;
    c.num_servers = 8;
    return c;
  }();
  cluster::Cluster cluster_{engine_, catalog_, config_};
};

TEST_F(PdfTest, RoutesByUrlClass) {
  auto nodes = cluster_.servers();
  std::vector<net::Backend*> suspect_pool(nodes.begin(), nodes.begin() + 2);
  std::vector<net::Backend*> innocent_pool(nodes.begin() + 2, nodes.end());
  PdfRouter router(SuspectList::from_catalog(catalog_, Watts{10.0}),
                   suspect_pool,
                   innocent_pool);

  workload::Request heavy;
  heavy.type = Catalog::kKMeans;
  net::Backend* b1 = router.route(heavy);
  ASSERT_NE(b1, nullptr);
  EXPECT_LT(b1->backend_id(), 2);

  workload::Request light;
  light.type = Catalog::kTextCont;
  net::Backend* b2 = router.route(light);
  ASSERT_NE(b2, nullptr);
  EXPECT_GE(b2->backend_id(), 2);

  EXPECT_EQ(router.suspect_routed(), 1u);
  EXPECT_EQ(router.innocent_routed(), 1u);
}

TEST_F(PdfTest, SuspectTrafficNeverSpillsToInnocentPool) {
  auto nodes = cluster_.servers();
  std::vector<net::Backend*> suspect_pool(nodes.begin(), nodes.begin() + 1);
  std::vector<net::Backend*> innocent_pool(nodes.begin() + 1, nodes.end());
  PdfRouter router(SuspectList::from_catalog(catalog_, Watts{10.0}),
                   suspect_pool,
                   innocent_pool);
  // Even with the suspect node refusing traffic, suspicious requests must
  // not leak into the innocent pool.
  cluster_.server(0).set_accepting(false);
  workload::Request heavy;
  heavy.type = Catalog::kCollaFilt;
  EXPECT_EQ(router.route(heavy), nullptr);
}

TEST_F(PdfTest, InnocentTrafficSpillsWhenPoolUnavailable) {
  auto nodes = cluster_.servers();
  std::vector<net::Backend*> suspect_pool(nodes.begin(), nodes.begin() + 1);
  std::vector<net::Backend*> innocent_pool(nodes.begin() + 1, nodes.end());
  PdfRouter router(SuspectList::from_catalog(catalog_, Watts{10.0}),
                   suspect_pool,
                   innocent_pool);
  for (std::size_t i = 1; i < cluster_.num_servers(); ++i) {
    cluster_.server(i).set_accepting(false);
  }
  workload::Request light;
  light.type = Catalog::kTextCont;
  net::Backend* b = router.route(light);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->backend_id(), 0);
}

// -------------------------------------------------------------- the scheme

struct AntiDopeRig {
  sim::Engine engine;
  workload::Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  AntiDopeScheme* scheme = nullptr;
  std::unique_ptr<workload::TrafficGenerator> normal;
  std::unique_ptr<workload::TrafficGenerator> attack;

  explicit AntiDopeRig(power::BudgetLevel level = power::BudgetLevel::kLow,
                       AntiDopeConfig config = {},
                       Watts budget_override = Watts{0.0}) {
    cluster::ClusterConfig cc;
    cc.num_servers = 8;
    cc.budget_level = level;
    cc.budget_override = budget_override;
    cc.battery_runtime = 2 * kMinute;
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
    auto s = std::make_unique<AntiDopeScheme>(config);
    scheme = s.get();
    cluster->install_scheme(std::move(s));
  }

  void start_traffic(double normal_rps, double attack_rps,
                     workload::RequestTypeId attack_type = Catalog::kKMeans) {
    workload::GeneratorConfig n;
    n.mixture = workload::Mixture::alios_normal();
    n.rate_rps = normal_rps;
    n.num_sources = 256;
    n.seed = 21;
    normal = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, n, cluster->edge_sink());
    if (attack_rps > 0) {
      workload::GeneratorConfig a;
      a.mixture = workload::Mixture::single(attack_type);
      a.rate_rps = attack_rps;
      a.num_sources = 64;
      a.source_base = 1'000'000;
      a.ground_truth_attack = true;
      a.seed = 22;
      attack = std::make_unique<workload::TrafficGenerator>(
          engine, catalog, a, cluster->edge_sink());
    }
  }
};

TEST(AntiDope, PartitionsPoolsAtAttach) {
  AntiDopeRig rig;
  EXPECT_EQ(rig.scheme->suspect_pool_size(), 2u);  // 25% of 8
  EXPECT_EQ(rig.scheme->suspects().suspect_count(), 3u);
}

TEST(AntiDope, AttackLandsOnSuspectPoolOnly) {
  AntiDopeRig rig;
  rig.start_traffic(0.0, 400.0);
  rig.engine.run_until(5 * kSecond);
  // Suspect pool (servers 0,1) is loaded; innocent pool stays idle.
  std::size_t suspect_load = 0, innocent_load = 0;
  for (std::size_t i = 0; i < rig.cluster->num_servers(); ++i) {
    (i < 2 ? suspect_load : innocent_load) +=
        rig.cluster->server(i).load();
  }
  EXPECT_GT(suspect_load, 0u);
  EXPECT_EQ(innocent_load, 0u);
}

TEST(AntiDope, IsolationAloneCanNeutraliseDope) {
  // With a Low-PB budget, confining the flood to a 2-node suspect pool
  // bounds the attack's power contribution so hard that the budget is
  // never violated — no throttling needed at all.
  AntiDopeRig rig;
  rig.start_traffic(100.0, 500.0);
  rig.cluster->run_for(60 * kSecond);
  EXPECT_EQ(rig.scheme->suspect_level(), rig.cluster->ladder().max_level());
  EXPECT_EQ(rig.cluster->slot_stats().violation_slots, 0u);
}

TEST(AntiDope, ThrottlesSuspectPoolUnderDope) {
  // Tight explicit budget so the confined attack still causes a deficit.
  AntiDopeRig rig(power::BudgetLevel::kLow, {},
                  /*budget_override=*/Watts{420.0});
  rig.start_traffic(300.0, 500.0, Catalog::kCollaFilt);
  rig.cluster->run_for(60 * kSecond);
  EXPECT_LT(rig.scheme->suspect_level(),
            rig.cluster->ladder().max_level());
}

TEST(AntiDope, InnocentPoolKeepsFullFrequencyUnderDope) {
  AntiDopeRig rig(power::BudgetLevel::kLow, {},
                  /*budget_override=*/Watts{420.0});
  rig.start_traffic(300.0, 500.0, Catalog::kCollaFilt);
  rig.cluster->run_for(60 * kSecond);
  EXPECT_EQ(rig.scheme->innocent_level(),
            rig.cluster->ladder().max_level());
  for (std::size_t i = 2; i < rig.cluster->num_servers(); ++i) {
    EXPECT_EQ(rig.cluster->server(i).level(),
              rig.cluster->ladder().max_level());
  }
}

TEST(AntiDope, BringsDemandWithinBudget) {
  AntiDopeRig rig(power::BudgetLevel::kLow, {},
                  /*budget_override=*/Watts{420.0});
  rig.start_traffic(300.0, 500.0, Catalog::kCollaFilt);
  rig.cluster->run_for(60 * kSecond);
  EXPECT_LE(rig.cluster->last_slot_demand(),
            rig.cluster->budget() * 1.10);
}

TEST(AntiDope, NormalLatencyStaysNearBaselineUnderDope) {
  // The headline property: legitimate users barely notice the attack.
  AntiDopeRig rig;
  rig.start_traffic(100.0, 500.0);
  rig.cluster->run_for(60 * kSecond);
  const auto& latency = rig.cluster->request_metrics().normal_latency_ms();
  ASSERT_GT(latency.count(), 100u);
  // 90% of normal traffic is light and lands on 6 full-speed servers; the
  // heavy tail shares the suspect pool with the attack, so the p90 stays
  // in the light group (paper Fig. 15b: only "slightly worse").
  EXPECT_LT(latency.percentile(90), 100.0);
}

TEST(AntiDope, BatteryOnlyBridgesTransitions) {
  AntiDopeRig rig(power::BudgetLevel::kLow, {},
                  /*budget_override=*/Watts{420.0});
  rig.start_traffic(300.0, 500.0, Catalog::kCollaFilt);
  rig.cluster->run_for(3 * kMinute);
  // Unlike Shaving, the battery must not be drained by a sustained DOPE:
  // throttling converges within a few slots and the battery recharges.
  EXPECT_GT(rig.cluster->battery()->soc(), 0.5);
  EXPECT_GT(rig.cluster->battery()->total_discharged(), Joules{0.0});
}

TEST(AntiDope, RecoversFullSpeedAfterAttack) {
  AntiDopeRig rig(power::BudgetLevel::kLow, {},
                  /*budget_override=*/Watts{420.0});
  rig.start_traffic(300.0, 500.0, Catalog::kCollaFilt);
  rig.cluster->run_for(60 * kSecond);
  rig.attack->stop();
  rig.cluster->run_for(3 * kMinute);
  EXPECT_EQ(rig.scheme->suspect_level(), rig.cluster->ladder().max_level());
}

TEST(AntiDope, NoBatteryConfigurationStillEnforces) {
  AntiDopeConfig config;
  config.use_battery = false;
  AntiDopeRig rig(power::BudgetLevel::kLow, config,
                  /*budget_override=*/Watts{420.0});
  rig.start_traffic(300.0, 500.0, Catalog::kCollaFilt);
  rig.cluster->run_for(60 * kSecond);
  EXPECT_LE(rig.cluster->last_slot_demand(), rig.cluster->budget() * 1.10);
  EXPECT_DOUBLE_EQ(rig.cluster->battery()->total_discharged().value(), 0.0);
}

TEST(AntiDope, ValidatesConfig) {
  AntiDopeConfig bad;
  bad.suspect_pool_fraction = 0.0;
  EXPECT_THROW(AntiDopeScheme{bad}, std::invalid_argument);
  bad = {};
  bad.suspect_power_threshold = Watts{0.0};
  EXPECT_THROW(AntiDopeScheme{bad}, std::invalid_argument);
}

TEST(AntiDope, NeedsAtLeastTwoServers) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 1;
  cluster::Cluster cluster(engine, catalog, cc);
  auto scheme = std::make_unique<AntiDopeScheme>();
  EXPECT_THROW(cluster.install_scheme(std::move(scheme)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dope::antidope
