// Unit tests for the common utility layer: units, RNG, statistics,
// histograms, CSV, tables, and the parallel sweep helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "common/csv.hpp"
#include "common/expect.hpp"
#include "common/histogram.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace dope {
namespace {

// ----------------------------------------------------------------- units

TEST(Units, SecondConversionsRoundTrip) {
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_EQ(millis(2.0), 2'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kMillisecond), 1.0);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 3600 * kSecond);
}

TEST(Units, EnergyOfIntegratesPowerOverTime) {
  EXPECT_DOUBLE_EQ(energy_of(Watts{100.0}, kSecond).value(), 100.0);
  EXPECT_DOUBLE_EQ(energy_of(Watts{50.0}, 2 * kMinute).value(),
                   50.0 * 120.0);
  EXPECT_DOUBLE_EQ(energy_of(Watts{0.0}, kHour).value(), 0.0);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 6.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 6.0);
  }
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(10);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMeanOneParameterisation) {
  // mu = -sigma^2/2 makes E[X] = 1, the size-factor convention.
  Rng rng(12);
  const double sigma = 0.25;
  OnlineStats stats;
  for (int i = 0; i < 200'000; ++i) {
    stats.add(rng.lognormal(-0.5 * sigma * sigma, sigma));
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.01);
}

TEST(Rng, ParetoStaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.pareto(1.5, 0.5, 3.0);
    ASSERT_GE(v, 0.5 - 1e-9);
    ASSERT_LE(v, 3.0 + 1e-9);
  }
}

TEST(Rng, ChanceIsCalibrated) {
  Rng rng(14);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.fork();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(15);
  (void)parent_copy();  // consume the value used to seed the fork
  EXPECT_NE(child(), parent_copy());
}

// ----------------------------------------------------------------- stats

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  Rng rng(20);
  OnlineStats all, left, right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(1.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, b;
  a.add(3.0);
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 4.0);
}

TEST(Percentiles, ExactValuesOnSmallSet) {
  Percentiles p;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 5.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(p.percentile(75), 4.0);
  EXPECT_DOUBLE_EQ(p.mean(), 3.0);
}

TEST(Percentiles, InterpolatesBetweenRanks) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(90), 9.0);
}

TEST(Percentiles, SingleSample) {
  Percentiles p;
  p.add(42.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 42.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(Percentiles, RejectsOutOfRangeRank) {
  Percentiles p;
  p.add(1.0);
  EXPECT_THROW(p.percentile(-1), std::invalid_argument);
  EXPECT_THROW(p.percentile(101), std::invalid_argument);
}

TEST(Percentiles, CdfAtCountsInclusive) {
  Percentiles p;
  for (double x : {1.0, 2.0, 3.0, 4.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(p.cdf_at(10.0), 1.0);
}

TEST(Percentiles, SortedSamplesAreSorted) {
  Percentiles p;
  for (double x : {3.0, 1.0, 2.0}) p.add(x);
  const auto& sorted = p.sorted_samples();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(MakeCdf, ProducesMonotoneCurve) {
  Percentiles p;
  Rng rng(21);
  for (int i = 0; i < 5'000; ++i) p.add(rng.uniform());
  const auto cdf = make_cdf(p, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].f, cdf[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(cdf.front().f, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(9.99);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, TracksUnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, PercentileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(22);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.percentile(50), 0.5, 0.02);
  EXPECT_NEAR(h.percentile(90), 0.9, 0.02);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 1.0, 2), b(0.0, 1.0, 2);
  a.add(0.25);
  b.add(0.75);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(1), 1u);
}

TEST(Histogram, MergeRejectsMismatchedLayout) {
  Histogram a(0.0, 1.0, 2), b(0.0, 2.0, 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ------------------------------------------------------------------- csv

TEST(Csv, ParsesSimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParsesQuotedFieldsWithCommasAndQuotes) {
  const auto fields = parse_csv_line(R"(x,"a,b","say ""hi""",y)");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "a,b");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(Csv, ReaderConsumesHeaderAndRows) {
  std::istringstream in("t,v\n1,2\n3,4\n");
  CsvReader reader(in);
  ASSERT_EQ(reader.header().size(), 2u);
  EXPECT_EQ(*reader.column("v"), 1u);
  EXPECT_FALSE(reader.column("missing").has_value());
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "1");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "4");
  EXPECT_FALSE(reader.next(row));
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(Csv, ReaderHandlesCrlfAndBlankLines) {
  std::istringstream in("a,b\r\n\n1,2\r\n");
  CsvReader reader(in);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "1");
  EXPECT_EQ(row[1], "2");
}

TEST(Csv, ReaderReassemblesMultilineQuotedField) {
  std::istringstream in("h1,h2\n\"line1\nline2\",x\n");
  CsvReader reader(in);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "line1\nline2");
}

TEST(Csv, WriterQuotesOnlyWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, WriterRowVariadicFormatsNumbers) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row("x", 42, 1.5);
  EXPECT_TRUE(out.str().rfind("x,42,", 0) == 0);
}

TEST(Csv, RoundTripThroughReader) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a,1", "b"});
  std::istringstream in(out.str());
  CsvReader reader(in, /*has_header=*/false);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "a,1");
  EXPECT_EQ(row[1], "b");
}

TEST(Csv, ParseDoubleAcceptsAndRejects) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double("  7 "), 7.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
}

TEST(Csv, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(*parse_int("-12"), -12);
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

// ----------------------------------------------------------------- table

TEST(TextTable, AlignsColumnsAndPrintsRule) {
  TextTable table({"name", "value"});
  table.row("alpha", 1.0);
  table.row("b", 22.5);
  std::ostringstream out;
  table.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, FormatsExtremeDoublesInScientific) {
  EXPECT_NE(TextTable::format_cell(1e9).find('e'), std::string::npos);
  EXPECT_EQ(TextTable::format_cell(1.5), "1.500");
}

// --------------------------------------------------------------- parallel

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<int> hits(500, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); }, 4);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          8, [](std::size_t i) {
            if (i == 3) throw std::runtime_error("boom");
          },
          2),
      std::runtime_error);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

// ---------------------------------------------------------------- expect

TEST(Expect, RequireThrowsWithContext) {
  try {
    DOPE_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
  }
}

}  // namespace
}  // namespace dope
