// Unit tests for the battery / UPS peak-shaving model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "battery/battery.hpp"
#include "common/units.hpp"

namespace dope::battery {
namespace {

TEST(BatterySpec, SizedForMatchesPaperMiniBattery) {
  // 2 minutes at 400 W cluster load.
  const auto spec = BatterySpec::sized_for(400.0, 2 * kMinute);
  EXPECT_DOUBLE_EQ(spec.capacity, 400.0 * 120.0);
  EXPECT_DOUBLE_EQ(spec.max_discharge, 400.0);
  EXPECT_DOUBLE_EQ(spec.max_charge, 100.0);
}

TEST(BatterySpec, SizedForValidatesInputs) {
  EXPECT_THROW(BatterySpec::sized_for(0.0, kMinute), std::invalid_argument);
  EXPECT_THROW(BatterySpec::sized_for(100.0, 0), std::invalid_argument);
}

TEST(Battery, StartsFull) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));
  EXPECT_TRUE(b.full());
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_DOUBLE_EQ(b.stored(), 6000.0);
}

TEST(Battery, DischargeDeliversRequestedWhenAble) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));
  const Watts delivered = b.discharge(50.0, kSecond);
  EXPECT_DOUBLE_EQ(delivered, 50.0);
  EXPECT_DOUBLE_EQ(b.stored(), 6000.0 - 50.0);
  EXPECT_DOUBLE_EQ(b.total_discharged(), 50.0);
  EXPECT_EQ(b.discharge_events(), 1u);
}

TEST(Battery, DischargeCappedByCRate) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));  // max 100 W
  EXPECT_DOUBLE_EQ(b.discharge(250.0, kSecond), 100.0);
}

TEST(Battery, DischargeCappedByRemainingEnergy) {
  BatterySpec spec;
  spec.capacity = 10.0;  // joules
  spec.max_discharge = 1'000.0;
  Battery b(spec);
  // 10 J over 1 s supports at most 10 W.
  EXPECT_DOUBLE_EQ(b.discharge(50.0, kSecond), 10.0);
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.discharge(50.0, kSecond), 0.0);
}

TEST(Battery, SustainsRatedLoadForRatedDuration) {
  Battery b(BatterySpec::sized_for(400.0, 2 * kMinute));
  int slots = 0;
  while (b.discharge(400.0, kSecond) >= 399.999) ++slots;
  // Should have sustained (within one slot of) the full 120 seconds.
  EXPECT_GE(slots, 119);
  EXPECT_LE(slots, 120);
}

TEST(Battery, ZeroRequestDeliversNothing) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));
  EXPECT_DOUBLE_EQ(b.discharge(0.0, kSecond), 0.0);
  EXPECT_EQ(b.discharge_events(), 0u);
}

TEST(Battery, ChargeRespectsRateLimit) {
  auto spec = BatterySpec::sized_for(100.0, kMinute, 0.25);  // 25 W charge
  Battery b(spec);
  b.discharge(100.0, 10 * kSecond);  // take out 1000 J
  const Watts drawn = b.charge(80.0, kSecond);
  EXPECT_DOUBLE_EQ(drawn, 25.0);
}

TEST(Battery, ChargeAppliesEfficiencyLoss) {
  auto spec = BatterySpec::sized_for(100.0, kMinute, 0.25);
  spec.charge_efficiency = 0.9;
  Battery b(spec);
  b.discharge(100.0, 10 * kSecond);
  const Joules before = b.stored();
  const Watts drawn = b.charge(25.0, kSecond);
  EXPECT_DOUBLE_EQ(drawn, 25.0);
  EXPECT_NEAR(b.stored() - before, 25.0 * 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(b.total_charge_drawn(), 25.0);
}

TEST(Battery, ChargeStopsAtCapacity) {
  auto spec = BatterySpec::sized_for(100.0, kMinute, 1.0);
  spec.charge_efficiency = 1.0;
  Battery b(spec);
  b.discharge(100.0, kSecond);  // remove 100 J
  // Offering far more than needed only draws what fits.
  const Watts drawn = b.charge(100.0, 10 * kSecond);
  EXPECT_NEAR(drawn * 10.0, 100.0, 1e-9);
  EXPECT_TRUE(b.full());
  EXPECT_DOUBLE_EQ(b.charge(50.0, kSecond), 0.0);
}

TEST(Battery, RefillRestoresChargeWithoutTouchingTotals) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));
  b.discharge(100.0, 5 * kSecond);
  const Joules discharged = b.total_discharged();
  b.refill();
  EXPECT_TRUE(b.full());
  EXPECT_DOUBLE_EQ(b.total_discharged(), discharged);
}

TEST(Battery, RoundTripConservesEnergyWithinEfficiency) {
  auto spec = BatterySpec::sized_for(200.0, kMinute, 1.0);
  spec.charge_efficiency = 0.8;
  Battery b(spec);
  // Cycle: discharge 2000 J, then recharge fully.
  b.discharge(200.0, 10 * kSecond);
  Joules drawn_total = 0.0;
  for (int i = 0; i < 1'000 && !b.full(); ++i) {
    drawn_total += energy_of(b.charge(200.0, kSecond), kSecond);
  }
  EXPECT_TRUE(b.full());
  // To restore 2000 J at 80% efficiency the grid must supply 2500 J.
  EXPECT_NEAR(drawn_total, 2000.0 / 0.8, 1.0);
}

TEST(Battery, RejectsInvalidArguments) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));
  EXPECT_THROW(b.discharge(-1.0, kSecond), std::invalid_argument);
  EXPECT_THROW(b.discharge(10.0, 0), std::invalid_argument);
  EXPECT_THROW(b.charge(-1.0, kSecond), std::invalid_argument);
  BatterySpec bad;
  bad.capacity = 0.0;
  EXPECT_THROW(Battery{bad}, std::invalid_argument);
}

TEST(Battery, SocTracksStoredFraction) {
  Battery b(BatterySpec::sized_for(100.0, kMinute));
  b.discharge(100.0, 30 * kSecond);  // half the 6000 J capacity
  EXPECT_NEAR(b.soc(), 0.5, 1e-9);
}

}  // namespace
}  // namespace dope::battery
