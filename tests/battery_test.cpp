// Unit tests for the battery / UPS peak-shaving model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "battery/battery.hpp"
#include "common/units.hpp"

namespace dope::battery {
namespace {

TEST(BatterySpec, SizedForMatchesPaperMiniBattery) {
  // 2 minutes at 400 W cluster load.
  const auto spec = BatterySpec::sized_for(Watts{400.0}, 2 * kMinute);
  EXPECT_DOUBLE_EQ(spec.capacity.value(), 400.0 * 120.0);
  EXPECT_DOUBLE_EQ(spec.max_discharge.value(), 400.0);
  EXPECT_DOUBLE_EQ(spec.max_charge.value(), 100.0);
}

TEST(BatterySpec, SizedForValidatesInputs) {
  EXPECT_THROW(BatterySpec::sized_for(Watts{0.0}, kMinute),
               std::invalid_argument);
  EXPECT_THROW(BatterySpec::sized_for(Watts{100.0}, 0), std::invalid_argument);
}

TEST(Battery, StartsFull) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));
  EXPECT_TRUE(b.full());
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_DOUBLE_EQ(b.stored().value(), 6000.0);
}

TEST(Battery, DischargeDeliversRequestedWhenAble) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));
  const Watts delivered = b.discharge(Watts{50.0}, kSecond);
  EXPECT_DOUBLE_EQ(delivered.value(), 50.0);
  EXPECT_DOUBLE_EQ(b.stored().value(), 6000.0 - 50.0);
  EXPECT_DOUBLE_EQ(b.total_discharged().value(), 50.0);
  EXPECT_EQ(b.discharge_events(), 1u);
}

TEST(Battery, DischargeCappedByCRate) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));  // max 100 W
  EXPECT_DOUBLE_EQ(b.discharge(Watts{250.0}, kSecond).value(),
                   100.0);
}

TEST(Battery, DischargeCappedByRemainingEnergy) {
  BatterySpec spec;
  spec.capacity = Joules{10.0};
  spec.max_discharge = Watts{1'000.0};
  Battery b(spec);
  // 10 J over 1 s supports at most 10 W.
  EXPECT_DOUBLE_EQ(b.discharge(Watts{50.0}, kSecond).value(), 10.0);
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.discharge(Watts{50.0}, kSecond).value(), 0.0);
}

TEST(Battery, SustainsRatedLoadForRatedDuration) {
  Battery b(BatterySpec::sized_for(Watts{400.0}, 2 * kMinute));
  int slots = 0;
  while (b.discharge(Watts{400.0}, kSecond) >= Watts{399.999}) {
    ++slots;
  }
  // Should have sustained (within one slot of) the full 120 seconds.
  EXPECT_GE(slots, 119);
  EXPECT_LE(slots, 120);
}

TEST(Battery, ZeroRequestDeliversNothing) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));
  EXPECT_DOUBLE_EQ(b.discharge(Watts{0.0}, kSecond).value(), 0.0);
  EXPECT_EQ(b.discharge_events(), 0u);
}

TEST(Battery, ChargeRespectsRateLimit) {
  // 25 W charge rate.
  auto spec = BatterySpec::sized_for(Watts{100.0}, kMinute, 0.25);
  Battery b(spec);
  b.discharge(Watts{100.0}, 10 * kSecond);  // take out 1000 J
  const Watts drawn = b.charge(Watts{80.0}, kSecond);
  EXPECT_DOUBLE_EQ(drawn.value(), 25.0);
}

TEST(Battery, ChargeAppliesEfficiencyLoss) {
  auto spec = BatterySpec::sized_for(Watts{100.0}, kMinute, 0.25);
  spec.charge_efficiency = 0.9;
  Battery b(spec);
  b.discharge(Watts{100.0}, 10 * kSecond);
  const Joules before = b.stored();
  const Watts drawn = b.charge(Watts{25.0}, kSecond);
  EXPECT_DOUBLE_EQ(drawn.value(), 25.0);
  EXPECT_NEAR((b.stored() - before).value(), 25.0 * 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(b.total_charge_drawn().value(), 25.0);
}

TEST(Battery, ChargeStopsAtCapacity) {
  auto spec = BatterySpec::sized_for(Watts{100.0}, kMinute, 1.0);
  spec.charge_efficiency = 1.0;
  Battery b(spec);
  b.discharge(Watts{100.0}, kSecond);  // remove 100 J
  // Offering far more than needed only draws what fits.
  const Watts drawn = b.charge(Watts{100.0}, 10 * kSecond);
  EXPECT_NEAR((drawn * 10.0).value(), 100.0, 1e-9);
  EXPECT_TRUE(b.full());
  EXPECT_DOUBLE_EQ(b.charge(Watts{50.0}, kSecond).value(), 0.0);
}

TEST(Battery, RefillRestoresChargeWithoutTouchingTotals) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));
  b.discharge(Watts{100.0}, 5 * kSecond);
  const Joules discharged = b.total_discharged();
  b.refill();
  EXPECT_TRUE(b.full());
  EXPECT_DOUBLE_EQ(b.total_discharged().value(),
                   discharged.value());
}

TEST(Battery, RoundTripConservesEnergyWithinEfficiency) {
  auto spec = BatterySpec::sized_for(Watts{200.0}, kMinute, 1.0);
  spec.charge_efficiency = 0.8;
  Battery b(spec);
  // Cycle: discharge 2000 J, then recharge fully.
  b.discharge(Watts{200.0}, 10 * kSecond);
  Joules drawn_total{0.0};
  for (int i = 0; i < 1'000 && !b.full(); ++i) {
    drawn_total += energy_of(b.charge(Watts{200.0}, kSecond), kSecond);
  }
  EXPECT_TRUE(b.full());
  // To restore 2000 J at 80% efficiency the grid must supply 2500 J.
  EXPECT_NEAR(drawn_total.value(), 2000.0 / 0.8, 1.0);
}

TEST(Battery, RejectsInvalidArguments) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));
  EXPECT_THROW(b.discharge(Watts{-1.0}, kSecond), std::invalid_argument);
  EXPECT_THROW(b.discharge(Watts{10.0}, 0), std::invalid_argument);
  EXPECT_THROW(b.charge(Watts{-1.0}, kSecond), std::invalid_argument);
  BatterySpec bad;
  bad.capacity = Joules{0.0};
  EXPECT_THROW(Battery{bad}, std::invalid_argument);
}

TEST(Battery, SocTracksStoredFraction) {
  Battery b(BatterySpec::sized_for(Watts{100.0}, kMinute));
  b.discharge(Watts{100.0}, 30 * kSecond);  // half the 6000 J capacity
  EXPECT_NEAR(b.soc(), 0.5, 1e-9);
}

}  // namespace
}  // namespace dope::battery
