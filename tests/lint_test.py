#!/usr/bin/env python3
"""Self-test for tools/dope_lint.py (tier 2 of the correctness stack).

Feeds known-bad C++ snippets through the linter and asserts each rule
fires where expected, that the suppression syntax is honoured, and — as
the integration check — that the real tree is clean.

Run directly (``python3 tests/lint_test.py``) or via ctest as the
``lint_selftest`` test.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

spec = importlib.util.spec_from_file_location(
    "dope_lint", os.path.join(REPO_ROOT, "tools", "dope_lint.py"))
dope_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(dope_lint)


def lint_snippet(snippet: str, filename: str = "src/mod/sample.cpp"):
    """Writes one file into a temp tree and returns its findings."""
    return lint_snippets({filename: snippet})


def lint_snippets(files: dict[str, str]):
    with tempfile.TemporaryDirectory() as root:
        for rel, text in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return dope_lint.lint_tree(root, sorted({
            rel.split("/")[0] for rel in files
        }))


def rules_of(findings):
    return {f.rule for f in findings}


class WallClockRule(unittest.TestCase):
    def test_flags_chrono_clocks(self):
        for expr in (
            "auto t = std::chrono::steady_clock::now();",
            "auto t = std::chrono::system_clock::now();",
            "auto t = high_resolution_clock::now();",
            "gettimeofday(&tv, nullptr);",
            "time_t t = time(nullptr);",
        ):
            findings = lint_snippet(f"void f() {{ {expr} }}\n")
            self.assertIn("wall-clock", rules_of(findings), expr)

    def test_sim_time_is_clean(self):
        findings = lint_snippet(
            "void f(sim::Engine& e) { auto t = e.now(); }\n")
        self.assertNotIn("wall-clock", rules_of(findings))

    def test_identifier_containing_time_is_clean(self):
        findings = lint_snippet(
            "void f() { auto t = runtime(nullptr); }\n")
        self.assertNotIn("wall-clock", rules_of(findings))


class BannedRngRule(unittest.TestCase):
    def test_flags_std_engines(self):
        for expr in (
            "std::mt19937 gen(42);",
            "std::random_device rd;",
            "int x = rand();",
            "srand(42);",
            "static Rng shared;",
            "thread_local dope::Rng shared;",
        ):
            findings = lint_snippet(f"void f() {{ {expr} }}\n")
            self.assertIn("banned-rng", rules_of(findings), expr)

    def test_explicit_rng_param_is_clean(self):
        findings = lint_snippet(
            "double f(dope::Rng& rng) { return rng.uniform(); }\n")
        self.assertNotIn("banned-rng", rules_of(findings))


class UnorderedIterRule(unittest.TestCase):
    SNIPPET = (
        "#pragma once\n"
        "#include <unordered_map>\n"
        "struct S {\n"
        "  std::unordered_map<int, int> counts_;\n"
        "  void dump() {\n"
        "    for (const auto& [k, v] : counts_) emit(k, v);\n"
        "  }\n"
        "};\n"
    )

    def test_flags_range_for_over_member(self):
        findings = lint_snippet(self.SNIPPET, "src/mod/sample.hpp")
        self.assertIn("unordered-iter", rules_of(findings))

    def test_detects_decl_in_another_file(self):
        # The declaration lives in the header; the loop in the .cpp.
        findings = lint_snippets({
            "src/mod/s.hpp": ("#pragma once\n#include <unordered_map>\n"
                              "struct S { std::unordered_map<int, int> "
                              "window_; };\n"),
            "src/mod/s.cpp": ('#include "s.hpp"\n'
                              "void dump(S& s) {\n"
                              "  for (auto& kv : s.window_) emit(kv);\n"
                              "}\n"),
        })
        self.assertIn("unordered-iter",
                      {f.rule for f in findings if f.path.endswith("s.cpp")})

    def test_sorted_vector_is_clean(self):
        findings = lint_snippet(
            "void f(const std::vector<int>& sorted_keys) {\n"
            "  for (int k : sorted_keys) emit(k);\n"
            "}\n")
        self.assertNotIn("unordered-iter", rules_of(findings))


class FloatEqRule(unittest.TestCase):
    def test_flags_power_comparison(self):
        for expr in (
            "if (power == 0.0) return;",
            "if (demand_w != budget) return;",
            "bool b = soc == 1.0;",
        ):
            findings = lint_snippet(f"void f() {{ {expr} }}\n")
            self.assertIn("float-eq", rules_of(findings), expr)

    def test_integer_comparison_is_clean(self):
        findings = lint_snippet(
            "void f(int count) { if (count == 0) return; }\n")
        self.assertNotIn("float-eq", rules_of(findings))

    def test_tests_are_exempt(self):
        findings = lint_snippet(
            "void f() { if (power == 0.0) return; }\n",
            "tests/sample_test.cpp")
        self.assertNotIn("float-eq", rules_of(findings))

    def test_sizeof_comparison_is_clean(self):
        # sizeof yields an integer; static_assert layout checks on the
        # Quantity types (common/units.hpp) must not trip the rule.
        findings = lint_snippet(
            "#pragma once\n"
            "static_assert(sizeof(Watts) == sizeof(double));\n",
            "src/mod/sample.hpp")
        self.assertNotIn("float-eq", rules_of(findings))


class RawPhysicalDoubleRule(unittest.TestCase):
    def test_flags_unit_suffixed_members_and_params(self):
        for decl in (
            "double power_w = 0.0;",
            "double idle_joules;",
            "double cap_wh = 0.0;",
            "double clock_ghz = 2.4;",
            "void set(double budget_w);",
            "double drained_j() const;",
        ):
            findings = lint_snippet(
                f"#pragma once\nstruct S {{ {decl} }};\n",
                "src/mod/sample.hpp")
            self.assertIn("raw-physical-double", rules_of(findings), decl)

    def test_quantity_types_are_clean(self):
        findings = lint_snippet(
            "#pragma once\n"
            "struct S { dope::Watts power_w{0.0}; "
            "dope::Joules drained_j{0.0}; };\n",
            "src/mod/sample.hpp")
        self.assertNotIn("raw-physical-double", rules_of(findings))

    def test_dimensionless_doubles_are_clean(self):
        findings = lint_snippet(
            "#pragma once\n"
            "struct S { double headroom_margin = 0.02; double soc; };\n",
            "src/mod/sample.hpp")
        self.assertNotIn("raw-physical-double", rules_of(findings))

    def test_cpp_files_are_exempt(self):
        findings = lint_snippet(
            "void emit() { double power_w = p.value(); write(power_w); }\n",
            "src/mod/sample.cpp")
        self.assertNotIn("raw-physical-double", rules_of(findings))

    def test_suppression_is_honoured(self):
        findings = lint_snippet(
            "#pragma once\n"
            "struct Row {\n"
            "  // dope-lint: allow(raw-physical-double) — JSON schema\n"
            "  double power_w;\n"
            "};\n",
            "src/mod/sample.hpp")
        self.assertNotIn("raw-physical-double", rules_of(findings))


class IncludeHygieneRule(unittest.TestCase):
    def test_header_missing_pragma_once(self):
        findings = lint_snippet("struct S {};\n", "src/mod/sample.hpp")
        self.assertIn("include-hygiene", rules_of(findings))

    def test_cpp_must_include_own_header_first(self):
        findings = lint_snippets({
            "src/mod/sample.hpp": "#pragma once\n",
            "src/mod/other.hpp": "#pragma once\n",
            "src/mod/sample.cpp": ('#include "other.hpp"\n'
                                   '#include "sample.hpp"\n'),
        })
        self.assertIn("include-hygiene", rules_of(findings))

    def test_unsorted_include_block(self):
        findings = lint_snippet(
            '#include "zed/a.hpp"\n#include "alpha/b.hpp"\nint x;\n')
        self.assertIn("include-hygiene", rules_of(findings))

    def test_parent_relative_include(self):
        findings = lint_snippet('#include "../mod/a.hpp"\nint x;\n')
        self.assertIn("include-hygiene", rules_of(findings))

    def test_well_formed_file_is_clean(self):
        findings = lint_snippets({
            "src/mod/sample.hpp": "#pragma once\nstruct S {};\n",
            "src/mod/sample.cpp": ('#include "sample.hpp"\n\n'
                                   '#include "alpha/b.hpp"\n'
                                   '#include "zed/a.hpp"\n'),
        })
        self.assertEqual(rules_of(findings), set())


class HotPathStdFunctionRule(unittest.TestCase):
    def test_flags_std_function_in_hot_path_dirs(self):
        for rel in ("src/sim/sample.cpp", "src/server/sample.hpp",
                    "src/workload/sample.cpp", "src/net/sample.hpp"):
            snippet = "#pragma once\n" if rel.endswith(".hpp") else ""
            snippet += "void f(std::function<void()> cb) { cb(); }\n"
            findings = lint_snippet(snippet, rel)
            self.assertIn("hot-path-std-function", rules_of(findings), rel)

    def test_flags_functional_include(self):
        findings = lint_snippet(
            "#pragma once\n#include <functional>\n", "src/sim/sample.hpp")
        self.assertIn("hot-path-std-function", rules_of(findings))

    def test_cold_path_dirs_are_exempt(self):
        for rel in ("src/sweep/sample.cpp", "src/common/sample.cpp",
                    "tests/sample_test.cpp"):
            findings = lint_snippet(
                "void f(std::function<void()> cb) { cb(); }\n", rel)
            self.assertNotIn("hot-path-std-function", rules_of(findings),
                             rel)

    def test_inline_function_is_clean(self):
        findings = lint_snippet(
            "void f(common::InlineFunction<void()> cb) { cb(); }\n",
            "src/sim/sample.cpp")
        self.assertNotIn("hot-path-std-function", rules_of(findings))

    def test_suppression_is_honoured(self):
        findings = lint_snippet(
            "// dope-lint: allow(hot-path-std-function) — cold config\n"
            "void f(std::function<void()> cb) { cb(); }\n",
            "src/net/sample.cpp")
        self.assertNotIn("hot-path-std-function", rules_of(findings))


class StagePlaneRule(unittest.TestCase):
    def test_flags_internal_access_in_stage_dirs(self):
        for rel in ("src/schemes/sample.cpp", "src/antidope/sample.cpp"):
            for expr in (
                "cluster.servers(0).set_level(2);",
                "cluster_->battery()->drain(j);",
                "cluster().slot_stats();",
            ):
                findings = lint_snippet(
                    f"void f() {{ {expr} }}\n", rel)
                self.assertIn("stage-plane", rules_of(findings),
                              f"{rel}: {expr}")

    def test_plane_interfaces_are_clean(self):
        snippet = (
            "void f() {\n"
            "  cluster.power().set_budget(w);\n"
            "  cluster_->data().lb();\n"
            "  cluster.control().slot();\n"
            "  auto& e = cluster.engine();\n"
            "  cluster_->ladder().level_count();\n"
            "  if (cluster.zone() >= 0) use(cluster.config());\n"
            "  (void)cluster.catalog();\n"
            "}\n")
        findings = lint_snippet(snippet, "src/schemes/sample.cpp")
        self.assertNotIn("stage-plane", rules_of(findings))

    def test_other_dirs_are_exempt(self):
        # The composition root and its satellites own the internals.
        for rel in ("src/cluster/sample.cpp", "src/scenario/sample.cpp",
                    "tests/sample_test.cpp"):
            findings = lint_snippet(
                "void f() { cluster_->servers(0).fail(); }\n", rel)
            self.assertNotIn("stage-plane", rules_of(findings), rel)

    def test_namespace_qualification_is_clean(self):
        findings = lint_snippet(
            "void f(cluster::Cluster& c) {\n"
            "  auto w = cluster::Cluster::kSignalSlotDemand;\n"
            "}\n", "src/schemes/sample.cpp")
        self.assertNotIn("stage-plane", rules_of(findings))

    def test_suppression_is_honoured(self):
        findings = lint_snippet(
            "// dope-lint: allow(stage-plane) — profiler needs raw slots\n"
            "void f() { cluster_->slot_stats(); }\n",
            "src/antidope/sample.cpp")
        self.assertNotIn("stage-plane", rules_of(findings))


class Suppressions(unittest.TestCase):
    BAD = "void f() { auto t = std::chrono::steady_clock::now(); }"

    def test_trailing_allow_covers_its_line(self):
        findings = lint_snippet(
            f"{self.BAD}  // dope-lint: allow(wall-clock) — telemetry\n")
        self.assertEqual(rules_of(findings), set())

    def test_standalone_allow_covers_next_code_line(self):
        findings = lint_snippet(
            "// dope-lint: allow(wall-clock) — host-side telemetry that\n"
            "// never reaches a report.\n"
            f"{self.BAD}\n")
        self.assertEqual(rules_of(findings), set())

    def test_allow_file_covers_whole_file(self):
        findings = lint_snippet(
            "// dope-lint: allow-file(wall-clock) — wall-clock bench\n"
            f"{self.BAD}\n"
            f"{self.BAD}\n")
        self.assertEqual(rules_of(findings), set())

    def test_allow_does_not_cover_other_rules(self):
        findings = lint_snippet(
            f"{self.BAD}  // dope-lint: allow(banned-rng) — wrong rule\n")
        self.assertIn("wall-clock", rules_of(findings))

    def test_comments_and_strings_never_match(self):
        findings = lint_snippet(
            "// std::chrono::steady_clock::now() in prose\n"
            '/* rand() discussion */\n'
            'const char* kHelp = "std::mt19937 gen(rand());";\n')
        self.assertEqual(rules_of(findings), set())


class RealTreeIsClean(unittest.TestCase):
    def test_repository_lints_clean(self):
        findings = dope_lint.lint_tree(
            REPO_ROOT,
            [d for d in dope_lint.DEFAULT_DIRS
             if os.path.isdir(os.path.join(REPO_ROOT, d))])
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    sys.exit(unittest.main())
