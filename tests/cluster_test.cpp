// Unit tests for cluster assembly: request path, management slots, energy
// attribution, and the scheme hook points.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "workload/generator.hpp"

namespace dope::cluster {
namespace {

using workload::Catalog;
using workload::Request;
using workload::RequestOutcome;

Request request_of(workload::RequestTypeId type, Time arrival,
                   workload::SourceId source = 0) {
  Request r;
  r.type = type;
  r.arrival = arrival;
  r.source = source;
  return r;
}

class ClusterTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Catalog catalog_ = Catalog::standard();

  std::unique_ptr<Cluster> make_cluster(ClusterConfig config = {}) {
    return std::make_unique<Cluster>(engine_, catalog_, config);
  }
};

TEST_F(ClusterTest, BuildsRequestedTopology) {
  ClusterConfig config;
  config.num_servers = 4;
  auto cluster = make_cluster(config);
  EXPECT_EQ(cluster->num_servers(), 4u);
  EXPECT_DOUBLE_EQ(cluster->total_nameplate().value(), 400.0);
  EXPECT_DOUBLE_EQ(cluster->budget().value(), 400.0);  // Normal-PB
  EXPECT_EQ(cluster->battery(), nullptr);
  EXPECT_EQ(cluster->firewall(), nullptr);
}

TEST_F(ClusterTest, BudgetLevelsScaleSupply) {
  ClusterConfig config;
  config.num_servers = 10;
  config.budget_level = power::BudgetLevel::kLow;
  auto cluster = make_cluster(config);
  EXPECT_DOUBLE_EQ(cluster->budget().value(), 800.0);
}

TEST_F(ClusterTest, BatteryCreatedWithRequestedRuntime) {
  ClusterConfig config;
  config.num_servers = 4;
  config.battery_runtime = 2 * kMinute;
  auto cluster = make_cluster(config);
  ASSERT_NE(cluster->battery(), nullptr);
  EXPECT_DOUBLE_EQ(cluster->battery()->spec().capacity.value(),
                   400.0 * 120.0);
}

TEST_F(ClusterTest, IngestDispatchesAndCompletes) {
  auto cluster = make_cluster();
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 1u);
}

TEST_F(ClusterTest, EdgeSinkFeedsIngest) {
  auto cluster = make_cluster();
  auto sink = cluster->edge_sink();
  sink(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 1u);
}

TEST_F(ClusterTest, DefaultLeastLoadedSpreadsRequests) {
  ClusterConfig config;
  config.num_servers = 4;
  auto cluster = make_cluster(config);
  for (int i = 0; i < 4; ++i) {
    cluster->ingest(request_of(Catalog::kCollaFilt, engine_.now()));
  }
  for (auto* s : cluster->servers()) {
    EXPECT_EQ(s->active_count(), 1u);
  }
}

TEST_F(ClusterTest, FirewallBlocksBannedSources) {
  ClusterConfig config;
  config.num_servers = 2;
  net::FirewallConfig firewall;
  firewall.threshold_rps = 10.0;
  firewall.check_interval = kSecond;
  config.firewall = firewall;
  auto cluster = make_cluster(config);

  workload::GeneratorConfig gen_config;
  gen_config.mixture = workload::Mixture::single(Catalog::kTextCont);
  gen_config.rate_rps = 200.0;  // one source, way over threshold
  workload::TrafficGenerator gen(engine_, catalog_, gen_config,
                                 cluster->edge_sink());
  cluster->run_for(10 * kSecond);
  EXPECT_GT(
      cluster->request_metrics().normal_counts().blocked_by_firewall, 0u);
}

TEST_F(ClusterTest, TotalPowerSumsServers) {
  ClusterConfig config;
  config.num_servers = 3;
  auto cluster = make_cluster(config);
  EXPECT_DOUBLE_EQ(cluster->total_power().value(), 3 * 38.0);
  cluster->ingest(request_of(Catalog::kKMeans, engine_.now()));
  EXPECT_DOUBLE_EQ(cluster->total_power().value(), 3 * 38.0 + 21.0);
}

TEST_F(ClusterTest, LastSlotDemandTracksLoad) {
  auto cluster = make_cluster();
  cluster->run_for(2 * kSecond);
  EXPECT_NEAR(cluster->last_slot_demand().value(), 8 * 38.0, 1.0);
}

TEST_F(ClusterTest, EnergyAccountAllUtilityWithoutBattery) {
  auto cluster = make_cluster();
  cluster->run_for(10 * kSecond);
  const auto& account = cluster->energy_account();
  EXPECT_NEAR(account.utility.value(), 8 * 38.0 * 10.0, 1.0);
  EXPECT_DOUBLE_EQ(account.battery.value(), 0.0);
  EXPECT_NEAR(account.load_total().value(), cluster->total_energy().value(),
              1.0);
}

TEST_F(ClusterTest, SlotStatsCountViolations) {
  ClusterConfig config;
  config.num_servers = 2;
  config.budget_level = power::BudgetLevel::kLow;  // 160 W budget
  auto cluster = make_cluster(config);
  // Saturate both servers with heavy requests; no scheme installed, so
  // demand (~200 W) stays above budget and every slot violates.
  workload::GeneratorConfig gen_config;
  gen_config.mixture = workload::Mixture::single(Catalog::kKMeans);
  gen_config.rate_rps = 500.0;
  workload::TrafficGenerator gen(engine_, catalog_, gen_config,
                                 cluster->edge_sink());
  cluster->run_for(10 * kSecond);
  EXPECT_GT(cluster->slot_stats().violation_slots, 5u);
  EXPECT_GT(cluster->slot_stats().worst_overshoot, Watts{10.0});
}

// A scheme that drops every request at admission.
class DropAllScheme final : public PowerScheme {
 public:
  std::string name() const override { return "drop-all"; }
  bool admit(const Request&) override { return false; }
  void on_slot(Time, Duration) override {}
};

TEST_F(ClusterTest, SchemeAdmitGate) {
  auto cluster = make_cluster();
  cluster->install_scheme(std::make_unique<DropAllScheme>());
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().dropped_by_limit, 1u);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 0u);
}

// A scheme that routes everything to server 0.
class PinScheme final : public PowerScheme {
 public:
  std::string name() const override { return "pin"; }
  void attach(Cluster& cluster) override {
    PowerScheme::attach(cluster);
    target_ = cluster.servers().front();
  }
  net::Backend* route(const Request&) override { return target_; }
  void on_slot(Time, Duration) override { ++slots_; }

  int slots_ = 0;

 private:
  net::Backend* target_ = nullptr;
};

TEST_F(ClusterTest, SchemeRouteOverridesBalancer) {
  ClusterConfig config;
  config.num_servers = 4;
  auto cluster = make_cluster(config);
  auto scheme = std::make_unique<PinScheme>();
  cluster->install_scheme(std::move(scheme));
  for (int i = 0; i < 3; ++i) {
    cluster->ingest(request_of(Catalog::kCollaFilt, engine_.now()));
  }
  EXPECT_EQ(cluster->server(0).active_count(), 3u);
  EXPECT_EQ(cluster->server(1).active_count(), 0u);
}

TEST_F(ClusterTest, OnSlotInvokedEverySlot) {
  ClusterConfig config;
  config.slot = kSecond;
  auto cluster = make_cluster(config);
  auto* scheme = new PinScheme();
  cluster->install_scheme(std::unique_ptr<PowerScheme>(scheme));
  cluster->run_for(10 * kSecond);
  EXPECT_EQ(scheme->slots_, 10);
  EXPECT_EQ(cluster->slot_stats().slots, 10u);
}

TEST_F(ClusterTest, RecordListenersObserveTerminalRecords) {
  auto cluster = make_cluster();
  int seen = 0;
  cluster->add_record_listener(
      [&seen](const workload::RequestRecord&) { ++seen; });
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(seen, 1);
}

TEST_F(ClusterTest, ValidatesConfig) {
  ClusterConfig config;
  config.num_servers = 0;
  EXPECT_THROW(make_cluster(config), std::invalid_argument);
  config = {};
  config.slot = 0;
  EXPECT_THROW(make_cluster(config), std::invalid_argument);
}

TEST_F(ClusterTest, ServerIndexBoundsChecked) {
  auto cluster = make_cluster();
  EXPECT_THROW(cluster->server(99), std::invalid_argument);
}

}  // namespace
}  // namespace dope::cluster
