// Unit tests for cluster assembly: request path, management slots, energy
// attribution, and the scheme hook points.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "workload/generator.hpp"

namespace dope::cluster {
namespace {

using workload::Catalog;
using workload::Request;
using workload::RequestOutcome;

Request request_of(workload::RequestTypeId type, Time arrival,
                   workload::SourceId source = 0) {
  Request r;
  r.type = type;
  r.arrival = arrival;
  r.source = source;
  return r;
}

class ClusterTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Catalog catalog_ = Catalog::standard();

  std::unique_ptr<Cluster> make_cluster(ClusterConfig config = {}) {
    return std::make_unique<Cluster>(engine_, catalog_, config);
  }
};

TEST_F(ClusterTest, BuildsRequestedTopology) {
  ClusterConfig config;
  config.num_servers = 4;
  auto cluster = make_cluster(config);
  EXPECT_EQ(cluster->num_servers(), 4u);
  EXPECT_DOUBLE_EQ(cluster->total_nameplate().value(), 400.0);
  EXPECT_DOUBLE_EQ(cluster->budget().value(), 400.0);  // Normal-PB
  EXPECT_EQ(cluster->battery(), nullptr);
  EXPECT_EQ(cluster->firewall(), nullptr);
}

TEST_F(ClusterTest, BudgetLevelsScaleSupply) {
  ClusterConfig config;
  config.num_servers = 10;
  config.budget_level = power::BudgetLevel::kLow;
  auto cluster = make_cluster(config);
  EXPECT_DOUBLE_EQ(cluster->budget().value(), 800.0);
}

TEST_F(ClusterTest, BatteryCreatedWithRequestedRuntime) {
  ClusterConfig config;
  config.num_servers = 4;
  config.battery_runtime = 2 * kMinute;
  auto cluster = make_cluster(config);
  ASSERT_NE(cluster->battery(), nullptr);
  EXPECT_DOUBLE_EQ(cluster->battery()->spec().capacity.value(),
                   400.0 * 120.0);
}

TEST_F(ClusterTest, IngestDispatchesAndCompletes) {
  auto cluster = make_cluster();
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 1u);
}

TEST_F(ClusterTest, EdgeSinkFeedsIngest) {
  auto cluster = make_cluster();
  auto sink = cluster->edge_sink();
  sink(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 1u);
}

TEST_F(ClusterTest, DefaultLeastLoadedSpreadsRequests) {
  ClusterConfig config;
  config.num_servers = 4;
  auto cluster = make_cluster(config);
  for (int i = 0; i < 4; ++i) {
    cluster->ingest(request_of(Catalog::kCollaFilt, engine_.now()));
  }
  for (auto* s : cluster->servers()) {
    EXPECT_EQ(s->active_count(), 1u);
  }
}

TEST_F(ClusterTest, FirewallBlocksBannedSources) {
  ClusterConfig config;
  config.num_servers = 2;
  net::FirewallConfig firewall;
  firewall.threshold_rps = 10.0;
  firewall.check_interval = kSecond;
  config.firewall = firewall;
  auto cluster = make_cluster(config);

  workload::GeneratorConfig gen_config;
  gen_config.mixture = workload::Mixture::single(Catalog::kTextCont);
  gen_config.rate_rps = 200.0;  // one source, way over threshold
  workload::TrafficGenerator gen(engine_, catalog_, gen_config,
                                 cluster->edge_sink());
  cluster->run_for(10 * kSecond);
  EXPECT_GT(
      cluster->request_metrics().normal_counts().blocked_by_firewall, 0u);
}

TEST_F(ClusterTest, TotalPowerSumsServers) {
  ClusterConfig config;
  config.num_servers = 3;
  auto cluster = make_cluster(config);
  EXPECT_DOUBLE_EQ(cluster->total_power().value(), 3 * 38.0);
  cluster->ingest(request_of(Catalog::kKMeans, engine_.now()));
  EXPECT_DOUBLE_EQ(cluster->total_power().value(), 3 * 38.0 + 21.0);
}

TEST_F(ClusterTest, LastSlotDemandTracksLoad) {
  auto cluster = make_cluster();
  cluster->run_for(2 * kSecond);
  EXPECT_NEAR(cluster->last_slot_demand().value(), 8 * 38.0, 1.0);
}

TEST_F(ClusterTest, EnergyAccountAllUtilityWithoutBattery) {
  auto cluster = make_cluster();
  cluster->run_for(10 * kSecond);
  const auto& account = cluster->energy_account();
  EXPECT_NEAR(account.utility.value(), 8 * 38.0 * 10.0, 1.0);
  EXPECT_DOUBLE_EQ(account.battery.value(), 0.0);
  EXPECT_NEAR(account.load_total().value(), cluster->total_energy().value(),
              1.0);
}

TEST_F(ClusterTest, SlotStatsCountViolations) {
  ClusterConfig config;
  config.num_servers = 2;
  config.budget_level = power::BudgetLevel::kLow;  // 160 W budget
  auto cluster = make_cluster(config);
  // Saturate both servers with heavy requests; no scheme installed, so
  // demand (~200 W) stays above budget and every slot violates.
  workload::GeneratorConfig gen_config;
  gen_config.mixture = workload::Mixture::single(Catalog::kKMeans);
  gen_config.rate_rps = 500.0;
  workload::TrafficGenerator gen(engine_, catalog_, gen_config,
                                 cluster->edge_sink());
  cluster->run_for(10 * kSecond);
  EXPECT_GT(cluster->slot_stats().violation_slots, 5u);
  EXPECT_GT(cluster->slot_stats().worst_overshoot, Watts{10.0});
}

// A scheme that drops every request at admission.
class DropAllScheme final : public PowerScheme {
 public:
  std::string name() const override { return "drop-all"; }
  bool admit(const Request&) override { return false; }
  void on_slot(Time, Duration) override {}
};

TEST_F(ClusterTest, SchemeAdmitGate) {
  auto cluster = make_cluster();
  cluster->install_scheme(std::make_unique<DropAllScheme>());
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().dropped_by_limit, 1u);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 0u);
}

// A scheme that routes everything to server 0.
class PinScheme final : public PowerScheme {
 public:
  std::string name() const override { return "pin"; }
  void attach(Cluster& cluster) override {
    PowerScheme::attach(cluster);
    target_ = cluster.servers().front();
  }
  net::Backend* route(const Request&) override { return target_; }
  void on_slot(Time, Duration) override { ++slots_; }

  int slots_ = 0;

 private:
  net::Backend* target_ = nullptr;
};

TEST_F(ClusterTest, SchemeRouteOverridesBalancer) {
  ClusterConfig config;
  config.num_servers = 4;
  auto cluster = make_cluster(config);
  auto scheme = std::make_unique<PinScheme>();
  cluster->install_scheme(std::move(scheme));
  for (int i = 0; i < 3; ++i) {
    cluster->ingest(request_of(Catalog::kCollaFilt, engine_.now()));
  }
  EXPECT_EQ(cluster->server(0).active_count(), 3u);
  EXPECT_EQ(cluster->server(1).active_count(), 0u);
}

TEST_F(ClusterTest, OnSlotInvokedEverySlot) {
  ClusterConfig config;
  config.slot = kSecond;
  auto cluster = make_cluster(config);
  auto* scheme = new PinScheme();
  cluster->install_scheme(std::unique_ptr<PowerScheme>(scheme));
  cluster->run_for(10 * kSecond);
  EXPECT_EQ(scheme->slots_, 10);
  EXPECT_EQ(cluster->slot_stats().slots, 10u);
}

TEST_F(ClusterTest, RecordListenersObserveTerminalRecords) {
  auto cluster = make_cluster();
  int seen = 0;
  cluster->add_record_listener(
      [&seen](const workload::RequestRecord&) { ++seen; });
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(seen, 1);
}

TEST_F(ClusterTest, ValidatesConfig) {
  ClusterConfig config;
  config.num_servers = 0;
  EXPECT_THROW(make_cluster(config), std::invalid_argument);
  config = {};
  config.slot = 0;
  EXPECT_THROW(make_cluster(config), std::invalid_argument);
}

TEST_F(ClusterTest, SingleServerClusterIsValid) {
  // num_servers = 1 is the edge the validation gate must let through:
  // every plane (fleet, budget, pipeline) works with a fleet of one.
  ClusterConfig config;
  config.num_servers = 1;
  auto cluster = make_cluster(config);
  EXPECT_EQ(cluster->num_servers(), 1u);
  cluster->ingest(request_of(Catalog::kTextCont, engine_.now()));
  cluster->run_for(kSecond);
  EXPECT_EQ(cluster->request_metrics().normal_counts().completed, 1u);
}

// Records its tag into a shared journal at each plug point, so the
// pipeline's invocation order is directly observable.
class JournalStage final : public PowerScheme {
 public:
  JournalStage(char tag, std::vector<char>& journal, bool admits = true)
      : tag_(tag), journal_(journal), admits_(admits) {}
  std::string name() const override { return std::string(1, tag_); }
  bool admit(const Request&) override {
    journal_.push_back(tag_);
    return admits_;
  }
  void on_slot(Time, Duration) override { journal_.push_back(tag_); }

 private:
  char tag_;
  std::vector<char>& journal_;
  bool admits_;
};

TEST_F(ClusterTest, ControlStageOrderingIsInstallationOrder) {
  // Two stacks differing only in order are two *different* policies: the
  // admit chain short-circuits at the first refusal, so whether the
  // journal sees 'c' depends on where the dropper sits.
  auto run_stack = [this](bool counter_first) {
    sim::Engine engine;
    Cluster cluster(engine, catalog_, {});
    std::vector<char> journal;
    auto counter = std::make_unique<JournalStage>('c', journal);
    auto dropper =
        std::make_unique<JournalStage>('d', journal, /*admits=*/false);
    if (counter_first) {
      cluster.control().push_stage(std::move(counter));
      cluster.control().push_stage(std::move(dropper));
    } else {
      cluster.control().push_stage(std::move(dropper));
      cluster.control().push_stage(std::move(counter));
    }
    cluster.ingest(request_of(Catalog::kTextCont, engine.now()));
    cluster.run_for(2 * kSecond);
    return journal;
  };

  const auto counter_first = run_stack(true);
  const auto dropper_first = run_stack(false);
  // counter admits, dropper refuses, then two slots in install order.
  EXPECT_EQ(counter_first, (std::vector<char>{'c', 'd', 'c', 'd', 'c', 'd'}));
  // dropper refuses immediately; the counter never sees the request.
  EXPECT_EQ(dropper_first, (std::vector<char>{'d', 'd', 'c', 'd', 'c'}));
  // Each order is individually deterministic, run to run.
  EXPECT_EQ(run_stack(true), counter_first);
  EXPECT_EQ(run_stack(false), dropper_first);
}

TEST_F(ClusterTest, ReleasedStageReattachesWithoutDangling) {
  // A stage handed from one cluster to another must survive the first
  // cluster's destruction: detach() drops every cached Cluster* pointer.
  auto first = std::make_unique<Cluster>(engine_, catalog_, ClusterConfig{});
  auto* pin = static_cast<PinScheme*>(
      &first->control().push_stage(std::make_unique<PinScheme>()));
  first->run_for(2 * kSecond);
  EXPECT_EQ(pin->slots_, 2);

  std::unique_ptr<PowerScheme> released = first->control().release_stage(0);
  EXPECT_FALSE(released->attached());
  EXPECT_TRUE(first->control().empty());
  first.reset();  // the old cluster is gone; the stage must not care

  sim::Engine second_engine;
  Cluster second(second_engine, catalog_, ClusterConfig{});
  second.control().push_stage(std::move(released));
  second.ingest(request_of(Catalog::kTextCont, second_engine.now()));
  second.run_for(2 * kSecond);
  EXPECT_EQ(pin->slots_, 4);
  EXPECT_EQ(second.server(0).active_count(), 0u);  // completed, not stuck
  EXPECT_EQ(second.request_metrics().normal_counts().completed, 1u);
}

TEST_F(ClusterTest, AttachedStageRefusesASecondCluster) {
  auto cluster = make_cluster();
  PowerScheme& stage =
      cluster->control().push_stage(std::make_unique<PinScheme>());
  sim::Engine other_engine;
  Cluster other(other_engine, catalog_, ClusterConfig{});
  EXPECT_THROW(stage.attach(other), std::invalid_argument);
  stage.detach();
  EXPECT_NO_THROW(stage.attach(other));
  // Put it back so the owning plane's teardown detach stays coherent.
  stage.detach();
  EXPECT_NO_THROW(stage.attach(*cluster));
}

TEST_F(ClusterTest, ServerIndexBoundsChecked) {
  auto cluster = make_cluster();
  EXPECT_THROW(cluster->server(99), std::invalid_argument);
}

}  // namespace
}  // namespace dope::cluster
