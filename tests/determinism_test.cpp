// Same-process determinism: the golden scenario executed twice
// back-to-back (a fresh Engine, Hub, and cluster each time) must
// serialise byte-identical exports across every surface — results CSV,
// power/SoC timelines, metrics registry JSON, merged span+event trace
// JSONL, Chrome trace, and per-source forensics.
//
// Cross-run byte-identity is the property every other pillar leans on:
// the sweep/fuzz runners merge by index assuming a run is a pure
// function of its config, goldens diff CI output against a committed
// file, and the fuzz oracle's `nondeterminism` check re-runs scenarios
// expecting exact equality. A failure here means hidden global state —
// a static counter, an unseeded RNG, address-dependent iteration — and
// would silently poison all of them.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/forensics.hpp"
#include "obs/hub.hpp"
#include "scenario/scenario.hpp"

namespace dope {
namespace {

/// The CI golden scenario (tools/check_golden.sh): Anti-DOPE under a
/// Low budget with a 400 rps flood and a 2-minute battery.
scenario::ScenarioConfig golden_config() {
  scenario::ScenarioConfig config;
  config.scheme = scenario::SchemeKind::kAntiDope;
  config.budget = power::BudgetLevel::kLow;
  config.num_servers = 8;
  config.battery_runtime = 2 * kMinute;
  config.normal_rps = 300.0;
  config.attack_rps = 400.0;
  config.duration = 60 * kSecond;
  config.seed = 42;
  config.default_alert_rules = true;
  return config;
}

/// One full run with every observability pillar on, flattened into a
/// single export string covering all serialisation surfaces.
std::string run_and_export_everything() {
  obs::HubConfig hub_config;
  hub_config.enable_spans = true;
  obs::Hub hub(hub_config);
  auto config = golden_config();
  config.obs = &hub;
  const auto result = scenario::run_scenario(config);

  std::ostringstream out;
  scenario::write_results_csv(out, {result});
  scenario::write_timeline_csv(out, result.power_timeline);
  scenario::write_timeline_csv(out, result.battery_soc_timeline);
  hub.registry().write_json(out);
  hub.write_trace_jsonl(out);
  hub.write_chrome_trace(out);
  const auto forensics =
      obs::Forensics::build(*hub.spans(), hub.trace(), config.duration);
  forensics.write_json(out);
  return out.str();
}

TEST(DeterminismTest, GoldenScenarioExportsAreByteIdenticalBackToBack) {
  const std::string first = run_and_export_everything();
  const std::string second = run_and_export_everything();
  ASSERT_FALSE(first.empty());
  // EXPECT_EQ on multi-megabyte strings prints an unusable diff; compare
  // and report only the first divergence point.
  if (first != second) {
    std::size_t at = 0;
    while (at < first.size() && at < second.size() &&
           first[at] == second[at]) {
      ++at;
    }
    const std::size_t lo = at < 80 ? 0 : at - 80;
    FAIL() << "exports diverge at byte " << at << ":\n  first:  ..."
           << first.substr(lo, 160) << "\n  second: ..."
           << second.substr(lo, 160);
  }
}

TEST(DeterminismTest, ResultStructsMatchFieldByFieldAcrossRuns) {
  // The no-hub path too: a bare run (no observability at all) repeated
  // in-process must reproduce its headline numbers exactly.
  const auto config = golden_config();
  const auto a = scenario::run_scenario(config);
  const auto b = scenario::run_scenario(config);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.normal_counts.terminal(), b.normal_counts.terminal());
  EXPECT_EQ(a.attack_counts.terminal(), b.attack_counts.terminal());
  EXPECT_EQ(a.slot_stats.violation_slots, b.slot_stats.violation_slots);
  EXPECT_EQ(a.slot_stats.outages, b.slot_stats.outages);
  ASSERT_EQ(a.power_timeline.size(), b.power_timeline.size());
  for (std::size_t i = 0; i < a.power_timeline.size(); ++i) {
    EXPECT_EQ(a.power_timeline[i].t, b.power_timeline[i].t);
    EXPECT_EQ(a.power_timeline[i].value, b.power_timeline[i].value);
  }
}

}  // namespace
}  // namespace dope
