// Tests for server sleep states (park/unpark) and the auto-scaler —
// including the DOPE amplification effect the paper warns about.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "workload/generator.hpp"

namespace dope {
namespace {

using workload::Catalog;

// ------------------------------------------------------------ park/unpark

class ParkTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  workload::Catalog catalog_ = Catalog::standard();
  power::DvfsLadder ladder_ = power::DvfsLadder::make();
  server::ServerConfig config_{};
  server::ServerNode node_{engine_, 0, catalog_,
                           power::ServerPowerModel({}, ladder_), config_,
                           [](const workload::RequestRecord&) {}};
};

TEST_F(ParkTest, ParkDropsPowerToSleepLevel) {
  ASSERT_DOUBLE_EQ(node_.current_power().value(), 38.0);
  node_.park();
  EXPECT_TRUE(node_.parked());
  EXPECT_FALSE(node_.accepting());
  EXPECT_DOUBLE_EQ(node_.current_power().value(), 4.0);
  EXPECT_DOUBLE_EQ(node_.estimate_power_at(ladder_.max_level()).value(),
                   4.0);
}

TEST_F(ParkTest, ParkedEnergyIntegratesSleepPower) {
  node_.park();
  engine_.run_until(10 * kSecond);
  EXPECT_NEAR(node_.energy().value(), 4.0 * 10.0, 1e-6);
}

TEST_F(ParkTest, CannotParkBusyNode) {
  workload::Request r;
  r.type = Catalog::kTextCont;
  node_.submit(std::move(r));
  EXPECT_THROW(node_.park(), std::invalid_argument);
}

TEST_F(ParkTest, UnparkTakesWakeLatency) {
  node_.park();
  engine_.run_until(kSecond);
  node_.unpark();
  EXPECT_TRUE(node_.waking());
  EXPECT_FALSE(node_.accepting());
  // Boot power during wake = idle power.
  EXPECT_DOUBLE_EQ(node_.current_power().value(), 38.0);
  engine_.run_until(engine_.now() + 3 * kSecond);  // > 2 s wake latency
  EXPECT_FALSE(node_.waking());
  EXPECT_TRUE(node_.accepting());
}

TEST_F(ParkTest, DoubleParkAndUnparkAreIdempotent) {
  node_.park();
  node_.park();
  EXPECT_TRUE(node_.parked());
  node_.unpark();
  node_.unpark();  // no-op while waking
  engine_.run_until(5 * kSecond);
  EXPECT_TRUE(node_.accepting());
  node_.unpark();  // no-op when awake
  EXPECT_TRUE(node_.accepting());
}

TEST_F(ParkTest, ParkDuringWakeCancelsTheWake) {
  node_.park();
  node_.unpark();
  ASSERT_TRUE(node_.waking());
  node_.park();
  EXPECT_TRUE(node_.parked());
  engine_.run_until(10 * kSecond);
  EXPECT_TRUE(node_.parked());  // the old wake event must not fire
  EXPECT_FALSE(node_.accepting());
}

// -------------------------------------------------------------- autoscaler

struct ScalerRig {
  sim::Engine engine;
  workload::Catalog catalog = workload::Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<cluster::AutoScaler> scaler;
  std::unique_ptr<workload::TrafficGenerator> traffic;

  explicit ScalerRig(cluster::AutoScalerConfig config = {}) {
    cluster::ClusterConfig cc;
    cc.num_servers = 8;
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
    scaler = std::make_unique<cluster::AutoScaler>(*cluster, config);
  }

  void offer(double rate, workload::Mixture mixture =
                              workload::Mixture::alios_normal()) {
    workload::GeneratorConfig gen;
    gen.mixture = std::move(mixture);
    gen.rate_rps = rate;
    gen.num_sources = 64;
    gen.seed = 55;
    traffic = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen, cluster->edge_sink());
  }
};

TEST(AutoScaler, ParksIdleFleetDownToMinimum) {
  cluster::AutoScalerConfig config;
  config.min_active = 2;
  config.step = 2;
  ScalerRig rig(config);
  rig.offer(5.0);  // nearly idle
  rig.cluster->run_for(3 * kMinute);
  EXPECT_EQ(rig.scaler->serving_count(), 2u);
  EXPECT_GE(rig.scaler->parked_count(), 5u);
  // Parked fleet slashes idle power: 2 serving x ~38 W + 6 parked x 4 W.
  EXPECT_LT(rig.cluster->total_power(), Watts{2 * 45.0 + 6 * 5.0});
}

TEST(AutoScaler, WakesFleetUnderLoadGrowth) {
  cluster::AutoScalerConfig config;
  config.min_active = 1;
  config.step = 2;
  ScalerRig rig(config);
  rig.offer(5.0);
  rig.cluster->run_for(3 * kMinute);
  ASSERT_LE(rig.scaler->serving_count(), 2u);
  rig.traffic->set_rate(1'200.0);  // surge
  rig.cluster->run_for(3 * kMinute);
  EXPECT_GE(rig.scaler->serving_count(), 6u);
  EXPECT_GT(rig.scaler->scale_ups(), 0u);
}

TEST(AutoScaler, DrainsGracefullyWithoutDroppingWork) {
  cluster::AutoScalerConfig config;
  config.min_active = 1;
  ScalerRig rig(config);
  rig.offer(400.0);
  rig.cluster->run_for(kMinute);
  rig.traffic->set_rate(2.0);  // load collapses; fleet must shrink
  rig.cluster->run_for(5 * kMinute);
  EXPECT_GT(rig.scaler->scale_downs(), 0u);
  // Graceful drain: nothing was rejected or lost to the scale-down.
  const auto& counts = rig.cluster->request_metrics().normal_counts();
  EXPECT_EQ(counts.rejected_queue_full, 0u);
}

TEST(AutoScaler, DopeAttackWakesTheWholeFleetAndRaisesPower) {
  // The paper's amplification: to the auto-scaler, attack load is just
  // load — it obligingly wakes every server for the adversary.
  cluster::AutoScalerConfig config;
  config.min_active = 2;
  config.step = 2;
  ScalerRig rig(config);
  rig.offer(20.0);
  rig.cluster->run_for(3 * kMinute);
  const Watts calm_power = rig.cluster->total_power();
  ASSERT_LE(rig.scaler->serving_count(), 3u);

  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kKMeans);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.start = rig.engine.now();  // begins after the calm phase
  workload::TrafficGenerator attack_gen(rig.engine, rig.catalog, attack,
                                        rig.cluster->edge_sink());
  rig.cluster->run_for(5 * kMinute);
  EXPECT_EQ(rig.scaler->serving_count(), 8u);
  EXPECT_GT(rig.cluster->total_power(), 3.0 * calm_power);
}

TEST(AutoScaler, ValidatesConfig) {
  ScalerRig rig;  // valid default first
  cluster::AutoScalerConfig bad;
  bad.min_active = 0;
  EXPECT_THROW(cluster::AutoScaler(*rig.cluster, bad),
               std::invalid_argument);
  bad = {};
  bad.scale_down_utilization = 0.9;
  bad.scale_up_utilization = 0.5;
  EXPECT_THROW(cluster::AutoScaler(*rig.cluster, bad),
               std::invalid_argument);
}

TEST(AutoScaler, UtilizationReflectsBusyCores) {
  ScalerRig rig;
  EXPECT_DOUBLE_EQ(rig.scaler->utilization(), 0.0);
  for (int i = 0; i < 16; ++i) {
    workload::Request r;
    r.type = Catalog::kKMeans;
    r.size_factor = 100.0;
    rig.cluster->server(static_cast<std::size_t>(i % 8))
        .submit(std::move(r));
  }
  EXPECT_NEAR(rig.scaler->utilization(), 0.5, 1e-9);  // 16 of 32 cores
}

}  // namespace
}  // namespace dope
