// Tier-0 contract tests for the strong quantity types (common/units.hpp).
//
// The dimension algebra is asserted at compile time — a wrong result
// type here is a build failure, not a red test — while the runtime
// sections check the arithmetic the types carry and the documented
// conversion boundaries (seconds/millis, joules <-> watt-hours). The
// ill-formed half of the contract (Watts + Joules must not compile)
// lives in tests/negative_compile/, driven by the units_negative_compile
// ctest.

#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace dope {
namespace {

// ---- compile-time: layout. The wrapper must cost nothing. ----

static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Joules) == sizeof(double));
static_assert(sizeof(GHz) == sizeof(double));
static_assert(sizeof(WattHours) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Watts>);
static_assert(std::is_trivially_default_constructible_v<Watts>);
static_assert(std::is_standard_layout_v<Watts>);

// ---- compile-time: construction is explicit both ways. ----

static_assert(!std::is_convertible_v<double, Watts>);
static_assert(!std::is_convertible_v<Watts, double>);
static_assert(!std::is_convertible_v<Watts, Joules>);
static_assert(!std::is_convertible_v<Joules, WattHours>);
static_assert(std::is_constructible_v<Watts, double>);

// ---- compile-time: dimension algebra. ----

template <class A, class B>
inline constexpr bool same = std::is_same_v<A, B>;

// Same-dimension sums and differences keep the dimension.
static_assert(same<decltype(std::declval<Watts>() + std::declval<Watts>()),
                   Watts>);
static_assert(same<decltype(std::declval<Joules>() - std::declval<Joules>()),
                   Joules>);

// Scaling by a raw double keeps the dimension, either side.
static_assert(same<decltype(std::declval<Watts>() * 2.0), Watts>);
static_assert(same<decltype(2.0 * std::declval<Watts>()), Watts>);
static_assert(same<decltype(std::declval<GHz>() / 2.0), GHz>);

// Power x time is energy; energy over time is power.
static_assert(same<decltype(std::declval<Watts>() * Duration{}), Joules>);
static_assert(same<decltype(Duration{} * std::declval<Watts>()), Joules>);
static_assert(same<decltype(std::declval<Joules>() / Duration{}), Watts>);
static_assert(
    same<decltype(energy_of(std::declval<Watts>(), Duration{})), Joules>);

// Same-dimension ratios collapse to plain double.
static_assert(same<decltype(std::declval<Watts>() / std::declval<Watts>()),
                   double>);
static_assert(same<decltype(std::declval<Joules>() / std::declval<Joules>()),
                   double>);
static_assert(same<decltype(std::declval<GHz>() / std::declval<GHz>()),
                   double>);

// Mixed products/quotients derive exponent sums/differences.
static_assert(same<decltype(std::declval<Watts>() * std::declval<Joules>()),
                   Quantity<units::Dim<2, 1, 0, 0>>>);
static_assert(same<decltype(std::declval<Joules>() / std::declval<Watts>()),
                   Quantity<units::Dim<0, -1, 0, 0>>>);

// Joules and watt-hours live on distinct axes: their ratio is NOT
// dimensionless, so the 3600x scale cannot cancel silently.
static_assert(
    !same<decltype(std::declval<Joules>() / std::declval<WattHours>()),
          double>);

// Conversions cross the axis explicitly.
static_assert(same<decltype(to_watt_hours(std::declval<Joules>())),
                   WattHours>);
static_assert(same<decltype(to_joules(std::declval<WattHours>())), Joules>);

// The algebra is constexpr end to end.
static_assert((Watts{2.0} + Watts{3.0}).value() == 5.0);
static_assert(Watts{100.0} * kSecond == Joules{100.0});
static_assert(Joules{50.0} / kSecond == Watts{50.0});
static_assert(Watts{90.0} / Watts{45.0} == 2.0);
static_assert(to_joules(WattHours{1.0}) == Joules{3600.0});

// ---- runtime: arithmetic carried by the wrapper. ----

TEST(Units, CompoundAssignmentMatchesRawDoubleMath) {
  Watts p{10.0};
  p += Watts{5.0};
  EXPECT_DOUBLE_EQ(p.value(), 15.0);
  p -= Watts{2.5};
  EXPECT_DOUBLE_EQ(p.value(), 12.5);
  p *= 2.0;
  EXPECT_DOUBLE_EQ(p.value(), 25.0);
  p /= 5.0;
  EXPECT_DOUBLE_EQ(p.value(), 5.0);
}

TEST(Units, UnaryAndAbs) {
  EXPECT_DOUBLE_EQ((-Watts{3.0}).value(), -3.0);
  EXPECT_DOUBLE_EQ((+Watts{3.0}).value(), 3.0);
  EXPECT_DOUBLE_EQ(abs(Watts{-7.0}).value(), 7.0);
  EXPECT_DOUBLE_EQ(abs(Watts{7.0}).value(), 7.0);
}

TEST(Units, ComparisonsOrderByMagnitude) {
  EXPECT_LT(Watts{1.0}, Watts{2.0});
  EXPECT_GE(Joules{2.0}, Joules{2.0});
  EXPECT_NE(GHz{1.2}, GHz{2.4});
}

TEST(Units, EnergyOfIntegratesConstantPower) {
  EXPECT_DOUBLE_EQ(energy_of(Watts{100.0}, kSecond).value(), 100.0);
  EXPECT_DOUBLE_EQ(energy_of(Watts{100.0}, kMinute).value(), 6'000.0);
  EXPECT_DOUBLE_EQ(energy_of(Watts{0.0}, kHour).value(), 0.0);
  // p * d and d * p are the same integral.
  EXPECT_DOUBLE_EQ((Watts{38.0} * seconds(0.5)).value(), 19.0);
  EXPECT_DOUBLE_EQ((seconds(0.5) * Watts{38.0}).value(), 19.0);
}

TEST(Units, AveragePowerInvertsTheIntegral) {
  const Joules e = energy_of(Watts{250.0}, 2 * kMinute);
  EXPECT_DOUBLE_EQ((e / (2 * kMinute)).value(), 250.0);
}

// ---- runtime: conversion boundaries. ----

TEST(Units, DurationConversionsRoundTrip) {
  EXPECT_EQ(seconds(1.0), kSecond);
  EXPECT_EQ(seconds(0.001), kMillisecond);
  EXPECT_EQ(millis(1.0), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1'000.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(12.75)), 12.75);
  EXPECT_DOUBLE_EQ(to_millis(millis(8.5)), 8.5);
}

TEST(Units, WattHoursRoundTripThroughJoules) {
  EXPECT_DOUBLE_EQ(to_joules(WattHours{1.0}).value(), 3600.0);
  EXPECT_DOUBLE_EQ(to_watt_hours(Joules{3600.0}).value(), 1.0);
  const Joules e{123'456.0};
  EXPECT_DOUBLE_EQ(to_joules(to_watt_hours(e)).value(), e.value());
  // A 2-minute battery sized for 400 W, in the spec's unit.
  EXPECT_DOUBLE_EQ(
      to_watt_hours(energy_of(Watts{400.0}, 2 * kMinute)).value(),
      400.0 * 2.0 / 60.0);
}

TEST(Units, ValueIsTheOnlyEscapeHatch) {
  // .value() returns exactly the stored payload — the export boundary
  // writes the same bytes the old raw-double code did.
  const Watts p{441.65};
  EXPECT_EQ(p.value(), 441.65);
}

}  // namespace
}  // namespace dope
