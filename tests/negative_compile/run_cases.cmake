# Negative-compilation driver for the Quantity<Dim> dimension system.
#
# Invoked by ctest (see tests/CMakeLists.txt, units_negative_compile) as
#   cmake -DCXX=... -DSRC=... -DINC=... -P run_cases.cmake
#
# For each DOPE_NC_* macro in units_illformed.cpp the driver try-compiles
# the file (syntax-only; nothing is linked or written) and FAILS if the
# compiler *accepts* it — each case is a watts/joules mix-up the type
# system must reject. A no-macro positive-control compile runs first so
# a broken include path or flag can never masquerade as "all cases
# rejected".

if(NOT CXX OR NOT SRC OR NOT INC)
  message(FATAL_ERROR "usage: cmake -DCXX=<compiler> -DSRC=<units_illformed.cpp> "
                      "-DINC=<src include dir> -P run_cases.cmake")
endif()

set(cases
    DOPE_NC_ADD_WATTS_JOULES
    DOPE_NC_IMPLICIT_FROM_DOUBLE
    DOPE_NC_IMPLICIT_TO_DOUBLE
    DOPE_NC_POWER_WHERE_ENERGY
    DOPE_NC_ADD_JOULES_WATT_HOURS
    DOPE_NC_COMPARE_WATTS_JOULES
    DOPE_NC_COMPOUND_MIXED
    DOPE_NC_ASSIGN_RAW_DOUBLE)

# Positive control: the legal algebra must build, or the harness itself
# is broken and every "rejection" below would be meaningless.
execute_process(
  COMMAND "${CXX}" -std=c++20 -fsyntax-only "-I${INC}" "${SRC}"
  RESULT_VARIABLE control_rv
  ERROR_VARIABLE control_err)
if(NOT control_rv EQUAL 0)
  message(FATAL_ERROR
          "positive control failed to compile — harness broken:\n"
          "${control_err}")
endif()

set(accepted "")
foreach(case IN LISTS cases)
  execute_process(
    COMMAND "${CXX}" -std=c++20 -fsyntax-only "-D${case}" "-I${INC}" "${SRC}"
    RESULT_VARIABLE rv
    ERROR_VARIABLE err)
  if(rv EQUAL 0)
    list(APPEND accepted "${case}")
    message(SEND_ERROR "ACCEPTED (must be ill-formed): ${case}")
  else()
    message(STATUS "rejected as required: ${case}")
  endif()
endforeach()

if(accepted)
  message(FATAL_ERROR "dimension-mixing cases compiled: ${accepted}")
endif()
list(LENGTH cases n)
message(STATUS "units_negative_compile: all ${n} ill-formed cases rejected")
