// Negative-compilation cases for the strong quantity types.
//
// Each DOPE_NC_* macro selects one deliberately ill-formed snippet; the
// units_negative_compile ctest (run_cases.cmake) compiles this file once
// per macro and fails if any snippet is *accepted*. Compiled with no
// macro defined, the file is the positive control: the legal algebra
// around each trap must still build, so a red case can only mean the
// type system rejected the mix-up — not that the harness broke.

#include "common/units.hpp"

namespace {

using dope::GHz;
using dope::Joules;
using dope::WattHours;
using dope::Watts;

#if defined(DOPE_NC_ADD_WATTS_JOULES)
// Power plus energy has no dimension: Eq. 1 sums powers, never mixes.
Joules bad() { return Watts{100.0} + Joules{50.0}; }
#elif defined(DOPE_NC_IMPLICIT_FROM_DOUBLE)
// Raw doubles must enter through the explicit constructor.
Watts bad() { return 100.0; }
#elif defined(DOPE_NC_IMPLICIT_TO_DOUBLE)
// ...and leave only through .value().
double bad() { return Watts{100.0}; }
#elif defined(DOPE_NC_POWER_WHERE_ENERGY)
// Passing power where energy is expected — the battery-SoC bug class.
Joules sink(Joules e) { return e; }
Joules bad() { return sink(Watts{100.0}); }
#elif defined(DOPE_NC_ADD_JOULES_WATT_HOURS)
// Same dimension, different scale: the 3600x trap needs to_joules().
Joules bad() { return Joules{100.0} + WattHours{1.0}; }
#elif defined(DOPE_NC_COMPARE_WATTS_JOULES)
// Cross-dimension comparison is meaningless.
bool bad() { return Watts{100.0} < Joules{100.0}; }
#elif defined(DOPE_NC_COMPOUND_MIXED)
// Compound assignment cannot change dimension either.
Watts bad() {
  Watts p{10.0};
  p += GHz{2.4};
  return p;
}
#elif defined(DOPE_NC_ASSIGN_RAW_DOUBLE)
// No operator= from a raw double: re-wrap explicitly.
Watts bad() {
  Watts p{10.0};
  p = 20.0;
  return p;
}
#else
// Positive control: the legal counterpart of every trap above.
Joules fine() {
  Watts p = Watts{100.0} + Watts{50.0};
  p += GHz{2.4}.value() * Watts{1.0};
  p = Watts{20.0};
  const double ratio = p / Watts{2.0};
  const bool hotter = p > Watts{90.0};
  Joules e = dope::energy_of(p, dope::kSecond) +
             dope::to_joules(WattHours{1.0});
  return hotter ? e * ratio : e;
}
#endif

}  // namespace

int main() { return 0; }
