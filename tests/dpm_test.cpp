// Tests for the DPM per-node throttling solver (Algorithm 1's TL(p,q)).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "antidope/antidope.hpp"
#include "antidope/dpm.hpp"
#include "cluster/cluster.hpp"
#include "schemes/util.hpp"
#include "workload/generator.hpp"

namespace dope::antidope {
namespace {

using workload::Catalog;

class DpmTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  workload::Catalog catalog_ = Catalog::standard();
  power::DvfsLadder ladder_ = power::DvfsLadder::make();
  std::vector<std::unique_ptr<server::ServerNode>> owned_;
  std::vector<server::ServerNode*> nodes_;

  void make_nodes(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      owned_.push_back(std::make_unique<server::ServerNode>(
          engine_, static_cast<int>(i), catalog_,
          power::ServerPowerModel({}, ladder_),
          server::ServerConfig{.queue_capacity = 64, .queue_deadline = 0},
          [](const workload::RequestRecord&) {}));
      nodes_.push_back(owned_.back().get());
    }
  }

  void load(std::size_t node, workload::RequestTypeId type, int count) {
    for (int i = 0; i < count; ++i) {
      workload::Request r;
      r.type = type;
      r.size_factor = 1e6;  // pinned
      nodes_[node]->submit(std::move(r));
    }
  }
};

TEST_F(DpmTest, NoThrottlingWhenAllowanceIsGenerous) {
  make_nodes(3);
  load(0, Catalog::kCollaFilt, 4);
  const auto assignment =
      solve_throttling(nodes_, ladder_, Watts{1'000.0}, ladder_.max_level());
  for (const auto level : assignment) {
    EXPECT_EQ(level, ladder_.max_level());
  }
}

TEST_F(DpmTest, AssignmentFitsAllowanceWhenFeasible) {
  make_nodes(4);
  for (std::size_t i = 0; i < 4; ++i) load(i, Catalog::kCollaFilt, 4);
  // Saturated Colla-Filt fleet: 4x100 W; ask for 300 W.
  const auto assignment =
      solve_throttling(nodes_, ladder_, Watts{300.0}, ladder_.max_level());
  EXPECT_LE(assignment_power(nodes_, assignment), Watts{300.0});
}

TEST_F(DpmTest, FloorsWhenAllowanceIsInfeasible) {
  make_nodes(2);
  load(0, Catalog::kKMeans, 4);
  load(1, Catalog::kKMeans, 4);
  const auto assignment =
      solve_throttling(nodes_, ladder_, Watts{1.0}, ladder_.max_level());
  for (const auto level : assignment) {
    EXPECT_EQ(level, ladder_.min_level());
  }
}

TEST_F(DpmTest, ThrottlesFrequencySensitiveNodesFirst) {
  // One node runs Colla-Filt (power falls fast with f) and one runs
  // K-means (power barely moves): the greedy must spend its reduction on
  // the Colla-Filt node where each lost hertz buys the most watts.
  make_nodes(2);
  load(0, Catalog::kCollaFilt, 4);
  load(1, Catalog::kKMeans, 4);
  const Watts full = assignment_power(
      nodes_, ThrottleAssignment(2, ladder_.max_level()));
  const auto assignment = solve_throttling(nodes_, ladder_, full - Watts{20.0},
                                           ladder_.max_level());
  EXPECT_LT(assignment[0], ladder_.max_level());
  EXPECT_EQ(assignment[1], ladder_.max_level());
}

TEST_F(DpmTest, BeatsOrMatchesUniformOnPerformance) {
  // For the same allowance, the heterogeneous assignment must retain at
  // least as much total frequency as the best uniform level.
  make_nodes(4);
  load(0, Catalog::kCollaFilt, 4);
  load(1, Catalog::kCollaFilt, 2);
  load(2, Catalog::kKMeans, 4);
  load(3, Catalog::kTextCont, 1);
  const Watts allowance{250.0};
  const auto per_node = solve_throttling(nodes_, ladder_, allowance,
                                         ladder_.max_level());
  const auto uniform_level = schemes::find_uniform_level(
      nodes_, ladder_, allowance, ladder_.max_level());
  const ThrottleAssignment uniform(nodes_.size(), uniform_level);
  EXPECT_LE(assignment_power(nodes_, per_node), allowance);
  EXPECT_GE(assignment_frequency(ladder_, per_node),
            assignment_frequency(ladder_, uniform));
}

TEST_F(DpmTest, MonotoneInAllowance) {
  make_nodes(3);
  for (std::size_t i = 0; i < 3; ++i) load(i, Catalog::kCollaFilt, 4);
  GHz prev{0.0};
  for (Watts allowance :
       {Watts{150.0}, Watts{200.0}, Watts{250.0}, Watts{300.0}}) {
    const auto assignment = solve_throttling(nodes_, ladder_, allowance,
                                             ladder_.max_level());
    const GHz freq = assignment_frequency(ladder_, assignment);
    EXPECT_GE(freq, prev);
    prev = freq;
  }
}

TEST_F(DpmTest, ApplyAssignmentActuatesEveryNode) {
  make_nodes(2);
  const ThrottleAssignment assignment{3, 7};
  apply_assignment(nodes_, assignment);
  engine_.run_until(kSecond);  // actuation latency elapses
  EXPECT_EQ(nodes_[0]->level(), 3u);
  EXPECT_EQ(nodes_[1]->level(), 7u);
}

TEST_F(DpmTest, ValidatesInputs) {
  make_nodes(1);
  EXPECT_THROW(solve_throttling({}, ladder_, Watts{10.0}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      assignment_power(nodes_, ThrottleAssignment(5, 0)),
      std::invalid_argument);
}

// ------------------------------------------ scheme integration

TEST(PerNodeDpm, AntiDopeEnforcesBudgetWithHeterogeneousLevels) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_override = Watts{420.0};
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);
  AntiDopeConfig config;
  config.per_node_throttling = true;
  cluster.install_scheme(std::make_unique<AntiDopeScheme>(config));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 128;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());
  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kCollaFilt);
  attack.rate_rps = 500.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());
  engine.run_until(kMinute);
  EXPECT_LE(cluster.last_slot_demand(), cluster.budget() * 1.10);
  // Innocent pool untouched, suspect pool throttled.
  for (std::size_t i = 2; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(i).level(), cluster.ladder().max_level());
  }
  bool any_throttled = false;
  for (std::size_t i = 0; i < 2; ++i) {
    if (cluster.server(i).level() < cluster.ladder().max_level()) {
      any_throttled = true;
    }
  }
  EXPECT_TRUE(any_throttled);
}

}  // namespace
}  // namespace dope::antidope
