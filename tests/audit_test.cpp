// Tier-3 correctness: the DOPE_AUDIT runtime invariant checks
// (src/common/audit.hpp; see docs/ANALYSIS.md).
//
// The check functions are deliberately not gated on audit::kEnabled, so
// every invariant class can be driven with corrupted state in any build
// configuration. What kEnabled gates is the *instrumented call sites*
// inside battery/cluster/power/antidope/sim — those are exercised here
// through healthy scenario runs (must stay silent) and through the
// byte-identity regression (auditing must not perturb results).

#include "common/audit.hpp"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "battery/battery.hpp"
#include "common/log.hpp"
#include "obs/hub.hpp"
#include "scenario/scenario.hpp"

namespace dope {
namespace {

/// Resets the global violation count around each test.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    audit::reset_violations();
    Log::set_level(LogLevel::kOff);  // violation logs are expected noise
  }
  void TearDown() override {
    audit::reset_violations();
    Log::set_level(LogLevel::kWarn);
  }
};

TEST_F(AuditTest, BatterySocTripsOnCorruptedState) {
  EXPECT_TRUE(
      audit::check_battery_soc(nullptr, 0, Joules{50.0}, Joules{100.0}));
  EXPECT_EQ(audit::violation_count(), 0u);
  EXPECT_FALSE(
      audit::check_battery_soc(nullptr, 0, Joules{-5.0}, Joules{100.0}));
  EXPECT_FALSE(
      audit::check_battery_soc(nullptr, 0, Joules{101.0}, Joules{100.0}));
  EXPECT_EQ(audit::violation_count(), 2u);
}

TEST_F(AuditTest, BatteryRateTripsOnOverRatedPower) {
  EXPECT_TRUE(audit::check_battery_rate(nullptr, 0, Watts{400.0}, Watts{500.0},
                                        "discharge"));
  // rated <= 0 means unlimited by rate.
  EXPECT_TRUE(audit::check_battery_rate(nullptr, 0, Watts{1e9}, Watts{0.0},
                                        "discharge"));
  EXPECT_FALSE(audit::check_battery_rate(nullptr, 0, Watts{501.0},
                                         Watts{500.0},
                                         "discharge"));
  EXPECT_FALSE(audit::check_battery_rate(nullptr, 0, Watts{-1.0}, Watts{500.0},
                                         "charge"));
  EXPECT_EQ(audit::violation_count(), 2u);
}

TEST_F(AuditTest, PowerConservationTripsOnUnbalancedBooks) {
  // Balanced: load fully covered by utility + battery.
  EXPECT_TRUE(audit::check_power_conservation(nullptr, 0, Joules{1000.0},
                                              Joules{700.0}, Joules{300.0}));
  // Battery over-delivery is representable (utility clamps at zero).
  EXPECT_TRUE(audit::check_power_conservation(nullptr, 0, Joules{200.0},
                                              Joules{0.0}, Joules{300.0}));
  // Uncovered load: 1000 J drawn, only 800 J accounted.
  EXPECT_FALSE(audit::check_power_conservation(nullptr, 0, Joules{1000.0},
                                               Joules{500.0}, Joules{300.0}));
  // Utility exceeding the load drawn is a sign error somewhere.
  EXPECT_FALSE(audit::check_power_conservation(nullptr, 0, Joules{100.0},
                                               Joules{200.0}, Joules{0.0}));
  // Negative components never balance.
  EXPECT_FALSE(audit::check_power_conservation(nullptr, 0, Joules{100.0},
                                               Joules{-50.0}, Joules{200.0}));
  EXPECT_EQ(audit::violation_count(), 3u);
}

TEST_F(AuditTest, BudgetFeasibilityTripsOnInfeasibleSolve) {
  EXPECT_TRUE(audit::check_budget_feasible(nullptr, 0, Watts{900.0},
                                           Watts{1000.0},
                                           false));
  // Over allowance is legal only when every node hit the ladder floor.
  EXPECT_TRUE(audit::check_budget_feasible(nullptr, 0, Watts{1200.0},
                                           Watts{1000.0},
                                           true));
  EXPECT_FALSE(audit::check_budget_feasible(nullptr, 0, Watts{1200.0},
                                            Watts{1000.0},
                                            false));
  EXPECT_EQ(audit::violation_count(), 1u);
}

TEST_F(AuditTest, NegativeMetricTrips) {
  EXPECT_TRUE(audit::check_non_negative(nullptr, 0, "latency_us", 12.5));
  EXPECT_TRUE(audit::check_non_negative(nullptr, 0, "latency_us", 0.0));
  EXPECT_FALSE(audit::check_non_negative(nullptr, 0, "latency_us", -1.0));
  EXPECT_EQ(audit::violation_count(), 1u);
}

TEST_F(AuditTest, MonotonicTimeTrips) {
  EXPECT_TRUE(audit::check_monotonic_time(
      static_cast<obs::Hub*>(nullptr), 100, 100));
  EXPECT_TRUE(audit::check_monotonic_time(
      static_cast<obs::Hub*>(nullptr), 100, 101));
  EXPECT_FALSE(audit::check_monotonic_time(
      static_cast<obs::Hub*>(nullptr), 100, 99));
  EXPECT_EQ(audit::violation_count(), 1u);
}

TEST_F(AuditTest, ViolationRaisesWatchdogAlertAndTraceEvent) {
  obs::Hub hub;
  ASSERT_FALSE(audit::check_battery_soc(&hub, 7 * kSecond, Joules{-1.0},
                                        Joules{10.0}));
  EXPECT_TRUE(hub.watchdog().is_firing("audit.battery_soc"));
  ASSERT_EQ(hub.watchdog().alerts().size(), 1u);
  const auto& alert = hub.watchdog().alerts().front();
  EXPECT_EQ(alert.signal, "audit.battery_soc");
  EXPECT_EQ(alert.raised_at, 7 * kSecond);
  EXPECT_TRUE(alert.active());
  // The watchdog mirrors the raise into the trace.
  bool saw_raise = false;
  for (const auto& e : hub.trace().events()) {
    if (e.type == obs::EventType::kAlertRaised) saw_raise = true;
  }
  EXPECT_TRUE(saw_raise);

  // A second violation of the same class reuses the lazily added rule.
  audit::check_battery_soc(&hub, 8 * kSecond, Joules{-2.0}, Joules{10.0});
  EXPECT_EQ(hub.watchdog().rule_count(), 1u);
  EXPECT_EQ(audit::violation_count(), 2u);
}

TEST_F(AuditTest, CompileTimeGateMatchesBuildConfiguration) {
#ifdef DOPE_AUDIT_ENABLED
  EXPECT_TRUE(audit::kEnabled);
#else
  // Release-style builds compile every instrumented call site out: the
  // `if constexpr (audit::kEnabled)` blocks are discarded statements.
  EXPECT_FALSE(audit::kEnabled);
#endif
}

TEST_F(AuditTest, HealthyBatteryPathIsSilent) {
  battery::Battery battery(
      battery::BatterySpec::sized_for(Watts{1000.0}, 2 * kMinute));
  // Over-rate and over-capacity requests are legal: the battery clamps.
  battery.discharge(Watts{5000.0}, kSecond);
  battery.discharge(Watts{1000.0}, 10 * kMinute, /*emergency=*/true);
  battery.charge(Watts{5000.0}, kSecond);
  battery.refill();
  battery.charge(Watts{5000.0}, kSecond);
  EXPECT_EQ(audit::violation_count(), 0u);
}

scenario::ScenarioConfig stressed_config() {
  scenario::ScenarioConfig config;
  config.num_servers = 4;
  config.budget = power::BudgetLevel::kLow;
  config.scheme = scenario::SchemeKind::kAntiDope;
  config.antidope.per_node_throttling = true;
  config.firewall.emplace();
  config.breaker = power::BreakerSpec{.rated = Watts{900.0}};
  config.attack_rps = 400.0;
  config.duration = 90 * kSecond;
  config.seed = 42;
  return config;
}

TEST_F(AuditTest, HealthyScenarioRunProducesNoViolations) {
  // Exercises every instrumented path (battery, cluster accounting,
  // breaker, DPM solve, engine clock) under attack-driven throttling.
  auto config = stressed_config();
  obs::Hub hub;
  config.obs = &hub;
  scenario::run_scenario(config);
  EXPECT_EQ(audit::violation_count(), 0u);
  EXPECT_EQ(hub.watchdog().active_count(), 0u);
}

TEST_F(AuditTest, AuditInstrumentationDoesNotPerturbResults) {
  // Two identical runs — one with a hub (alert watchdog live), one
  // without — must serialise the same result bytes whether or not the
  // audit tier is compiled in.
  auto config = stressed_config();
  const auto baseline = scenario::run_scenario(config);
  obs::Hub hub;
  config.obs = &hub;
  const auto audited = scenario::run_scenario(config);
  std::ostringstream a;
  std::ostringstream b;
  scenario::write_results_csv(a, {baseline});
  scenario::write_results_csv(b, {audited});
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(audit::violation_count(), 0u);
}

// ---- hard-fail modes (fuzz oracle / gate builds) ----

/// Restores report-only mode even when the test body throws.
class AuditModeTest : public AuditTest {
 protected:
  void TearDown() override {
    audit::set_mode(audit::Mode::kReport);
    AuditTest::TearDown();
  }
};

TEST_F(AuditModeTest, FatalModeThrowsStructuredFailure) {
  audit::set_mode(audit::Mode::kFatal);
  try {
    audit::check_non_negative(nullptr, 7, "queue.depth", -3.0);
    FAIL() << "fatal-mode violation did not throw";
  } catch (const audit::AuditFailure& failure) {
    EXPECT_EQ(failure.violation().check, "negative_metric");
    EXPECT_EQ(failure.violation().t, 7);
    EXPECT_NE(std::string(failure.what()).find("negative_metric"),
              std::string::npos);
  }
  EXPECT_EQ(audit::violation_count(), 1u);  // counted before the throw
}

TEST_F(AuditModeTest, ReportModeStaysThrowFree) {
  audit::set_mode(audit::Mode::kReport);
  EXPECT_NO_THROW(audit::check_non_negative(nullptr, 0, "x", -1.0));
  EXPECT_EQ(audit::violation_count(), 1u);
}

TEST_F(AuditModeTest, CollectorCapturesInsteadOfThrowing) {
  // A collector scope is the caller's failure handling: even in fatal
  // mode the violation is returned, not thrown.
  audit::set_mode(audit::Mode::kFatal);
  audit::ScopedCollector collector;
  EXPECT_NO_THROW(
      audit::check_battery_soc(nullptr, 11, Joules{-5.0}, Joules{100.0}));
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.violations()[0].check, "battery_soc");
  EXPECT_EQ(collector.violations()[0].t, 11);
  EXPECT_FALSE(collector.violations()[0].message.empty());
}

TEST_F(AuditModeTest, CollectorScopesNestInnermostWins) {
  audit::ScopedCollector outer;
  audit::check_non_negative(nullptr, 0, "outer", -1.0);
  {
    audit::ScopedCollector inner;
    audit::check_non_negative(nullptr, 0, "inner", -2.0);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_NE(inner.violations()[0].message.find("inner"),
              std::string::npos);
  }
  // Scope restored: new violations land in the outer collector again.
  audit::check_non_negative(nullptr, 0, "outer-again", -3.0);
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_NE(outer.violations()[1].message.find("outer-again"),
            std::string::npos);
}

TEST_F(AuditModeTest, CollectorOnHealthyScenarioStaysEmpty) {
  // The fuzz oracle wraps every run in a collector; a healthy golden
  // run must come back violation-free with identical result bytes.
  audit::set_mode(audit::Mode::kFatal);
  auto config = stressed_config();
  const auto baseline = scenario::run_scenario(config);
  audit::ScopedCollector collector;
  const auto collected = scenario::run_scenario(config);
  EXPECT_TRUE(collector.empty());
  std::ostringstream a;
  std::ostringstream b;
  scenario::write_results_csv(a, {baseline});
  scenario::write_results_csv(b, {collected});
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace dope
