// End-to-end integration tests: the paper's headline comparisons, run
// through the same scenario harness the bench binaries use.
//
// These assert *shape*, not absolute numbers: orderings between schemes,
// crossover behaviour across budget levels, and enforcement invariants.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace dope::scenario {
namespace {

using workload::Catalog;

workload::Mixture heavy_blend() {
  // The paper's injected malicious load: Colla-Filt, K-means, Word-Count.
  return workload::Mixture(
      {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount},
      {1.0, 1.0, 1.0});
}

ScenarioConfig base_scenario(SchemeKind scheme, power::BudgetLevel budget,
                             double attack_rps = 400.0) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.budget = budget;
  config.normal_rps = 300.0;
  config.attack_rps = attack_rps;
  config.attack_mixture = heavy_blend();
  config.duration = 5 * kMinute;
  config.seed = 7;
  return config;
}

// --------------------------------------------------- no-attack equivalence

TEST(Integration, NoAttackAllSchemesServeFast) {
  // Paper Fig. 16 baseline: with adequate power and no DOPE, all schemes
  // behave identically and the mean stays low.
  for (const auto scheme : kEvaluatedSchemes) {
    auto config = base_scenario(scheme, power::BudgetLevel::kNormal,
                                /*attack_rps=*/0.0);
    const auto r = run_scenario(config);
    EXPECT_LT(r.mean_ms, 40.0) << r.scheme;
    EXPECT_GT(r.availability, 0.999) << r.scheme;
    EXPECT_EQ(r.slot_stats.utility_violation_slots, 0u) << r.scheme;
  }
}

// ------------------------------------------------------ headline latencies

TEST(Integration, AntiDopeMeanResponseBeatsCappingUnderDope) {
  // Paper headline: "Anti-DOPE allows 44% shorter average response time".
  for (const auto budget :
       {power::BudgetLevel::kMedium, power::BudgetLevel::kLow}) {
    const auto capping =
        run_scenario(base_scenario(SchemeKind::kCapping, budget));
    const auto antidope =
        run_scenario(base_scenario(SchemeKind::kAntiDope, budget));
    EXPECT_LT(antidope.mean_ms, 0.56 * capping.mean_ms)
        << power::budget_name(budget);
  }
}

TEST(Integration, AntiDopeTailLatencyBeatsCappingUnderDope) {
  // Paper headline: "improves the 90th percentile tail latency by 68.1%".
  const auto capping = run_scenario(
      base_scenario(SchemeKind::kCapping, power::BudgetLevel::kMedium));
  const auto antidope = run_scenario(
      base_scenario(SchemeKind::kAntiDope, power::BudgetLevel::kMedium));
  EXPECT_LT(antidope.p90_ms, (1.0 - 0.681) * capping.p90_ms);
}

TEST(Integration, CappingDegradesAsBudgetShrinks) {
  // Paper Fig. 16/17: lower budgets mean worse service under DOPE.
  const auto normal = run_scenario(
      base_scenario(SchemeKind::kCapping, power::BudgetLevel::kNormal));
  const auto low = run_scenario(
      base_scenario(SchemeKind::kCapping, power::BudgetLevel::kLow));
  EXPECT_GT(low.mean_ms, 5.0 * normal.mean_ms);
  EXPECT_GT(low.p90_ms, 5.0 * normal.p90_ms);
}

TEST(Integration, AntiDopeLatencyInsensitiveToBudget) {
  // Anti-DOPE sustains service quality "regardless of the supplied power".
  const auto normal = run_scenario(
      base_scenario(SchemeKind::kAntiDope, power::BudgetLevel::kNormal));
  const auto low = run_scenario(
      base_scenario(SchemeKind::kAntiDope, power::BudgetLevel::kLow));
  EXPECT_NEAR(low.p90_ms, normal.p90_ms, 0.5 * normal.p90_ms + 5.0);
}

// ----------------------------------------------------------------- Token

TEST(Integration, TokenDropsTrafficButSurvivorsAreFast) {
  // Paper: Token "abandons packages to satisfy the power limit" yet shows
  // deceptively good latency for what it admits.
  const auto token = run_scenario(
      base_scenario(SchemeKind::kToken, power::BudgetLevel::kLow));
  const auto capping = run_scenario(
      base_scenario(SchemeKind::kCapping, power::BudgetLevel::kLow));
  EXPECT_GT(token.drop_fraction, 0.10);
  EXPECT_GT(token.drop_fraction, capping.drop_fraction);
  EXPECT_LT(token.p90_ms, 50.0);
}

TEST(Integration, TokenDropsMajorityUnderExtremeForce) {
  // At the paper's extreme 1000+ rps force, Token sheds most packets
  // ("abandons more than 60% of the packages").
  auto config = base_scenario(SchemeKind::kToken, power::BudgetLevel::kLow,
                              /*attack_rps=*/1'500.0);
  const auto r = run_scenario(config);
  EXPECT_GT(r.drop_fraction, 0.60);
}

// --------------------------------------------------------------- batteries

TEST(Integration, ShavingDrainsBatteryUnderSustainedDope) {
  // Paper Fig. 18: a long DOPE peak exhausts a shave-first battery.
  auto config = base_scenario(SchemeKind::kShaving, power::BudgetLevel::kLow);
  config.duration = 10 * kMinute;
  const auto r = run_scenario(config);
  ASSERT_FALSE(r.battery_soc_timeline.empty());
  EXPECT_LT(r.battery_soc_timeline.back().value, 0.5);
  EXPECT_GT(r.battery_discharged, Joules{10'000.0});
}

TEST(Integration, AntiDopeSipsBatteryUnderSustainedDope) {
  auto config = base_scenario(SchemeKind::kAntiDope,
                              power::BudgetLevel::kLow);
  config.duration = 10 * kMinute;
  const auto r = run_scenario(config);
  ASSERT_FALSE(r.battery_soc_timeline.empty());
  EXPECT_GT(r.battery_soc_timeline.back().value, 0.9);
}

// -------------------------------------------------------------- power side

TEST(Integration, EnforcingSchemesKeepUtilityDrawWithinBudget) {
  for (const auto scheme : kEvaluatedSchemes) {
    auto config = base_scenario(scheme, power::BudgetLevel::kLow);
    const auto r = run_scenario(config);
    // Mean utility power over the run must respect the feed (small slack
    // for convergence transients in the first slots).
    const Watts mean_utility = r.energy.utility_total() / config.duration;
    EXPECT_LE(mean_utility, r.budget * 1.05) << r.scheme;
    // The utility feed should be clean for the battery/selective schemes.
    if (scheme == SchemeKind::kShaving || scheme == SchemeKind::kAntiDope) {
      EXPECT_LT(r.slot_stats.utility_violation_slots,
                r.slot_stats.slots / 5)
          << r.scheme;
    }
  }
}

TEST(Integration, UncappedClusterViolatesShrunkBudget) {
  // The vulnerability itself: without management, DOPE pushes demand past
  // an oversubscribed feed almost every slot.
  auto config = base_scenario(SchemeKind::kNone, power::BudgetLevel::kLow);
  const auto r = run_scenario(config);
  EXPECT_GT(r.slot_stats.violation_slots, r.slot_stats.slots * 9 / 10);
}

// ------------------------------------------------------------ availability

TEST(Integration, AntiDopeAvailabilityStaysHigh) {
  const auto r = run_scenario(
      base_scenario(SchemeKind::kAntiDope, power::BudgetLevel::kLow));
  EXPECT_GT(r.availability, 0.90);
}

TEST(Integration, ResultsAreDeterministic) {
  const auto a = run_scenario(
      base_scenario(SchemeKind::kAntiDope, power::BudgetLevel::kMedium));
  const auto b = run_scenario(
      base_scenario(SchemeKind::kAntiDope, power::BudgetLevel::kMedium));
  EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
  EXPECT_DOUBLE_EQ(a.p90_ms, b.p90_ms);
  EXPECT_DOUBLE_EQ(a.mean_power.value(), b.mean_power.value());
  EXPECT_EQ(a.slot_stats.violation_slots, b.slot_stats.violation_slots);
}

}  // namespace
}  // namespace dope::scenario
