// Tests for attack profiles and the adaptive DOPE attacker (Fig. 12).
#include <gtest/gtest.h>

#include <memory>

#include "attack/dope_attacker.hpp"
#include "attack/profiles.hpp"
#include "cluster/cluster.hpp"
#include "schemes/baselines.hpp"

namespace dope::attack {
namespace {

using workload::Catalog;

// ---------------------------------------------------------------- profiles

TEST(Profiles, EveryKindHasNameAndMixture) {
  for (const auto kind : kAllAttackKinds) {
    EXPECT_FALSE(attack_name(kind).empty());
    EXPECT_FALSE(attack_mixture(kind).empty());
  }
}

TEST(Profiles, VolumeAttacksUseVolumeTypes) {
  Rng rng(1);
  EXPECT_EQ(attack_mixture(AttackKind::kSynFlood).sample(rng),
            Catalog::kSynPacket);
  EXPECT_EQ(attack_mixture(AttackKind::kUdpFlood).sample(rng),
            Catalog::kUdpPacket);
}

TEST(Profiles, DopeVariantsTargetSingleHeavyUrl) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(attack_mixture(AttackKind::kDopeCollaFilt).sample(rng),
              Catalog::kCollaFilt);
    EXPECT_EQ(attack_mixture(AttackKind::kDopeKMeans).sample(rng),
              Catalog::kKMeans);
  }
}

TEST(Profiles, MakeAttackConfigStampsGroundTruth) {
  const auto config =
      make_attack_config(AttackKind::kHttpFlood, 500.0, 32, 9'000, 5);
  EXPECT_TRUE(config.ground_truth_attack);
  EXPECT_EQ(config.num_sources, 32u);
  EXPECT_EQ(config.source_base, 9'000u);
  EXPECT_DOUBLE_EQ(config.rate_rps, 500.0);
  EXPECT_THROW(make_attack_config(AttackKind::kHttpFlood, -1.0, 1, 0, 0),
               std::invalid_argument);
}

// ----------------------------------------------------------- dope attacker

struct AttackRig {
  sim::Engine engine;
  workload::Catalog catalog = Catalog::standard();
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<DopeAttacker> attacker;

  explicit AttackRig(power::BudgetLevel level = power::BudgetLevel::kLow,
                     bool with_firewall = false,
                     DopeAttackerConfig config = default_config()) {
    cluster::ClusterConfig cc;
    cc.num_servers = 8;
    cc.budget_level = level;
    if (with_firewall) {
      net::FirewallConfig fw;
      fw.threshold_rps = 150.0;
      fw.check_interval = 5 * kSecond;
      cc.firewall = fw;
    }
    cluster = std::make_unique<cluster::Cluster>(engine, catalog, cc);
    cluster->install_scheme(std::make_unique<schemes::CappingScheme>());
    attacker = std::make_unique<DopeAttacker>(engine, catalog, config,
                                              cluster->edge_sink());
    cluster->add_record_listener(attacker->feedback_sink());
  }

  static DopeAttackerConfig default_config() {
    DopeAttackerConfig config;
    config.mixture = workload::Mixture::single(Catalog::kKMeans);
    return config;
  }
};

TEST(DopeAttacker, StartsInProbingPhase) {
  AttackRig rig;
  EXPECT_EQ(rig.attacker->phase(), AttackPhase::kProbing);
  EXPECT_DOUBLE_EQ(rig.attacker->current_rate(), 10.0);
}

TEST(DopeAttacker, RampsAfterBaselineEstablished) {
  AttackRig rig;
  rig.engine.run_until(30 * kSecond);
  EXPECT_GT(rig.attacker->current_rate(), 10.0);
  EXPECT_NE(rig.attacker->phase(), AttackPhase::kProbing);
}

TEST(DopeAttacker, AchievesPowerEmergencyOnUnprotectedCluster) {
  // Against a Low-PB cluster with capping and no firewall the attacker
  // should find a rate that degrades latency and hold there.
  AttackRig rig;
  rig.engine.run_until(5 * kMinute);
  EXPECT_TRUE(rig.attacker->emergency_achieved());
  // The victim's capping confirms the emergency from the inside.
  bool any_throttled = false;
  for (auto* n : rig.cluster->servers()) {
    if (n->level() < rig.cluster->ladder().max_level()) any_throttled = true;
  }
  EXPECT_TRUE(any_throttled);
}

TEST(DopeAttacker, StaysUnderPerSourceFirewallThreshold) {
  AttackRig rig(power::BudgetLevel::kLow, /*with_firewall=*/true);
  rig.engine.run_until(5 * kMinute);
  // 64 agents: even 4000 rps aggregate is 62 rps/agent — under the 150
  // threshold, so the firewall must never have banned anyone.
  EXPECT_EQ(rig.cluster->firewall()->total_bans(), 0u);
  EXPECT_TRUE(rig.attacker->emergency_achieved());
}

TEST(DopeAttacker, FewAgentsGetDetectedAndBackOff) {
  // With only 2 agents, the per-agent rate crosses the threshold during
  // the ramp; the attacker must observe blocking and back off.
  DopeAttackerConfig config = AttackRig::default_config();
  config.num_agents = 2;
  config.max_rate_rps = 4'000.0;
  AttackRig rig(power::BudgetLevel::kLow, /*with_firewall=*/true, config);
  rig.engine.run_until(10 * kMinute);
  EXPECT_GT(rig.cluster->firewall()->total_bans(), 0u);
  bool backed_off = false;
  for (const auto& d : rig.attacker->decisions()) {
    if (d.phase == AttackPhase::kBackoff) backed_off = true;
  }
  EXPECT_TRUE(backed_off);
}

TEST(DopeAttacker, DecisionLogIsTimeOrderedAndBounded) {
  AttackRig rig;
  rig.engine.run_until(2 * kMinute);
  const auto& decisions = rig.attacker->decisions();
  ASSERT_FALSE(decisions.empty());
  Time prev = -1;
  for (const auto& d : decisions) {
    EXPECT_GT(d.at, prev);
    prev = d.at;
    EXPECT_GE(d.rate_rps, 0.0);
    EXPECT_LE(d.rate_rps, 4'000.0);
  }
}

TEST(DopeAttacker, StopHaltsTraffic) {
  AttackRig rig;
  rig.engine.run_until(30 * kSecond);
  rig.attacker->stop();
  const auto sent = rig.attacker->generator().generated();
  rig.engine.run_until(60 * kSecond);
  EXPECT_EQ(rig.attacker->generator().generated(), sent);
}

TEST(DopeAttacker, ValidatesConfig) {
  sim::Engine engine;
  const auto catalog = Catalog::standard();
  DopeAttackerConfig config;  // empty mixture
  EXPECT_THROW(
      DopeAttacker(engine, catalog, config, [](workload::Request&&) {}),
      std::invalid_argument);
  config.mixture = workload::Mixture::single(Catalog::kKMeans);
  config.ramp_factor = 1.0;
  EXPECT_THROW(
      DopeAttacker(engine, catalog, config, [](workload::Request&&) {}),
      std::invalid_argument);
}

TEST(PhaseName, AllPhasesNamed) {
  EXPECT_EQ(phase_name(AttackPhase::kProbing), "probing");
  EXPECT_EQ(phase_name(AttackPhase::kRamping), "ramping");
  EXPECT_EQ(phase_name(AttackPhase::kHolding), "holding");
  EXPECT_EQ(phase_name(AttackPhase::kBackoff), "backoff");
}

}  // namespace
}  // namespace dope::attack
