// Online defense: Anti-DOPE learning an unprofiled attack URL at runtime.
//
// The operator deployed Anti-DOPE without any offline profiling — the
// suspect list starts empty. An attacker floods the K-means endpoint.
// Watch the online classifier build per-URL power estimates from node
// telemetry, flip the endpoint to "suspect", and pull the flood into the
// isolation pool, restoring normal users' latency.
//
//   $ ./online_defense
#include <iostream>
#include <memory>

#include "antidope/antidope.hpp"
#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "metrics/timeline.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace dope;
  using workload::Catalog;

  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();

  cluster::ClusterConfig cc;
  cc.num_servers = 8;
  cc.budget_level = power::BudgetLevel::kLow;
  cc.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, cc);

  antidope::AntiDopeConfig config;
  config.suspect_list = antidope::SuspectList(
      std::vector<bool>(catalog.size(), false));  // nothing profiled!
  config.online_learning = true;
  auto scheme_ptr = std::make_unique<antidope::AntiDopeScheme>(config);
  auto* scheme = scheme_ptr.get();
  cluster.install_scheme(std::move(scheme_ptr));

  workload::GeneratorConfig normal;
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  workload::GeneratorConfig attack;
  attack.mixture = workload::Mixture::single(Catalog::kKMeans);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.start = kMinute;  // one calm minute first
  workload::TrafficGenerator attack_gen(engine, catalog, attack,
                                        cluster.edge_sink());

  // Sample the classifier's belief about the attacked URL once a second.
  std::cout << "== online classification of the K-means endpoint ==\n\n";
  TextTable learning({"t (s)", "estimated W/request", "suspect?",
                      "innocent-pool load"});
  auto probe = engine.every(20 * kSecond, [&] {
    std::size_t innocent_load = 0;
    for (std::size_t i = 2; i < cluster.num_servers(); ++i) {
      innocent_load += cluster.server(i).load();
    }
    learning.row(to_seconds(engine.now()),
                 scheme->classifier()->estimate(Catalog::kKMeans).value(),
                 scheme->suspects().suspicious(Catalog::kKMeans) ? "YES"
                                                                 : "no",
                 static_cast<long long>(innocent_load));
  });
  engine.run_until(5 * kMinute);
  probe.stop();
  learning.print(std::cout);

  const auto& metrics = cluster.request_metrics();
  std::cout << "\nnormal users after 5 minutes: mean "
            << metrics.normal_latency_ms().mean() << " ms, p90 "
            << metrics.normal_latency_ms().percentile(90)
            << " ms, availability " << metrics.availability() << "\n";
  std::cout << "classifier reclassifications: "
            << scheme->classifier()->reclassifications() << "\n";
  std::cout << "\nThe flood arrived on the innocent pool (the URL was "
               "unknown), was measured,\nflagged, and rerouted — no "
               "offline profiling required.\n";
  return 0;
}
