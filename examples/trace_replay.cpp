// Trace replay: generate (or load) an Alibaba-style server-usage trace,
// collapse it into a cluster-load series, and replay it as time-varying
// normal traffic against a power-managed cluster — the paper's
// trace-driven evaluation methodology in miniature.
//
//   $ ./trace_replay                 # synthesise a 12 h trace, replay it
//   $ ./trace_replay usage.csv       # replay a real server_usage CSV
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "antidope/antidope.hpp"
#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "trace/alibaba.hpp"
#include "trace/synthetic.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace dope;

  // 1. Obtain a trace: parse the file given on the command line, or
  //    synthesise one matching the public trace's statistics.
  std::vector<trace::UsageRecord> records;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::size_t bad = 0;
    // Auto-detects the cluster-trace-v2017 (server_usage) vs. v2018
    // (machine_usage, "m_" ids) schema.
    records = trace::parse_any_usage(in, &bad);
    std::cout << "parsed " << records.size() << " records from " << argv[1]
              << " (" << bad << " malformed rows skipped)\n";
  } else {
    trace::SyntheticTraceConfig synth;
    synth.machines = 64;
    synth.duration_s = 12 * 3600;  // the paper's 12-hour log
    records = trace::generate_server_usage(synth);
    std::cout << "synthesised " << records.size()
              << " records (64 machines, 12 h, 300 s interval)\n";
  }

  const auto summary = trace::summarize(records);
  std::cout << "trace: " << summary.machines << " machines, mean cpu "
            << summary.mean_cpu << "%, span "
            << (summary.t_end - summary.t_begin) / 3600 << " h\n\n";

  // 2. Collapse to a cluster-utilisation series and map onto a request
  //    rate plan: peak load = 500 rps, 12 trace-hours compressed into 12
  //    simulated minutes (x60).
  const auto util = trace::cluster_utilization(records);
  const auto plan = trace::to_rate_plan(util, /*peak_rps=*/500.0,
                                        /*time_compression=*/60.0);

  // 3. A power-constrained cluster defended by Anti-DOPE.
  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();
  cluster::ClusterConfig config;
  config.num_servers = 8;
  config.budget_level = power::BudgetLevel::kMedium;
  config.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, config);
  cluster.install_scheme(std::make_unique<antidope::AntiDopeScheme>());

  // 4. Normal traffic follows the trace's shape.
  workload::GeneratorConfig traffic;
  traffic.name = "trace-replay";
  traffic.mixture = workload::Mixture::alios_normal();
  traffic.rate_rps = plan.empty() ? 100.0 : plan.front().rate_rps;
  traffic.num_sources = 256;
  workload::TrafficGenerator generator(engine, catalog, traffic,
                                       cluster.edge_sink());
  workload::apply_rate_plan(engine, generator, plan);

  // 5. Inject a DOPE burst for two minutes mid-replay.
  workload::GeneratorConfig attack;
  attack.name = "dope-burst";
  attack.mixture = workload::Mixture::single(workload::Catalog::kKMeans);
  attack.rate_rps = 400.0;
  attack.num_sources = 64;
  attack.source_base = 1'000'000;
  attack.ground_truth_attack = true;
  attack.start = 5 * kMinute;
  attack.stop = 7 * kMinute;
  workload::TrafficGenerator attacker(engine, catalog, attack,
                                      cluster.edge_sink());

  const Duration replay_span = 12 * kMinute;
  cluster.run_for(replay_span);

  // 6. Report.
  const auto& metrics = cluster.request_metrics();
  std::cout << "== replay results (12 trace-hours in "
            << to_seconds(replay_span) / 60 << " sim-minutes) ==\n";
  TextTable table({"metric", "value"});
  table.row("normal requests served",
            static_cast<long long>(metrics.normal_counts().completed));
  table.row("mean latency (ms)", metrics.normal_latency_ms().mean());
  table.row("p90 latency (ms)",
            metrics.normal_latency_ms().percentile(90));
  table.row("availability", metrics.availability());
  table.row("attack requests seen",
            static_cast<long long>(metrics.attack_counts().terminal()));
  table.row("budget violations (slots)",
            static_cast<long long>(cluster.slot_stats().violation_slots));
  table.row("utility energy (J)",
            cluster.energy_account().utility.value());
  table.print(std::cout);

  // 7. Round-trip demo: write the synthetic trace back out in the same
  //    schema so external tooling can consume it.
  if (argc <= 1) {
    std::ostringstream out;
    trace::write_server_usage(out, records);
    std::cout << "\n(serialised trace is " << out.str().size()
              << " bytes in server_usage.csv schema)\n";
  }
  return 0;
}
