// dopesim — command-line driver for the simulator.
//
// Runs one fully configurable scenario and prints the paper's metrics;
// optionally dumps CSVs for plotting. This is the entry point a
// downstream user scripts parameter sweeps with.
//
//   $ ./dopesim_cli --scheme antidope --budget low --attack-rps 400
//   $ ./dopesim_cli --scheme capping --budget-watts 520
//         --attack-type kmeans --csv out.csv --power-csv power.csv
//   $ ./dopesim_cli --help
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "antidope/suspect_list.hpp"
#include "common/table.hpp"
#include "obs/flight.hpp"
#include "obs/forensics.hpp"
#include "obs/hub.hpp"
#include "scenario/scenario.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace dope;

void print_help() {
  std::cout <<
      R"(dopesim — data center peak power management under traffic flood

usage: dopesim_cli [options]

cluster
  --servers N          leaf nodes (default 8)
  --budget LEVEL       normal | high | medium | low (default low)
  --budget-watts W     explicit supply in watts (overrides --budget)
  --battery-min M      battery runtime in minutes at full load (default 2)
  --firewall           enable the DDoS-deflate firewall (150 rps/source)
  --breaker-watts W    protect the utility feed with a breaker rated W
  --slot-ms MS         management slot (default 1000)

site (multi-zone; see docs/SITE.md)
  --zones N            zone count (default 1 = classic single cluster;
                       >= 2 puts N identical zones behind a global LB,
                       each with --servers servers and its own scheme)
  --glb POLICY         weighted | least-loaded | affinity (default
                       weighted)
  --divider KIND       static | demand | headroom — how the facility
                       budget is split across zones (default static)
  --attack-zone Z      concentrate attack traffic on zone Z's front
                       door instead of the global LB

scheme
  --scheme NAME        none | capping | shaving | token | antidope
                       (default antidope)
  --online             Anti-DOPE: learn the suspect list online
  --per-node           Anti-DOPE: per-node DPM throttling (TL(p,q))
  --pool-fraction F    Anti-DOPE: suspect pool share (default 0.25)

traffic
  --normal-rps R       normal user rate (default 300)
  --attack-rps R       DOPE attack rate (default 400; 0 disables)
  --attack-type T      colla-filt | kmeans | wordcount | blend (default)
  --agents N           attack botnet size (default 64)
  --attack-start-s S   attack onset time (default 0)

run
  --duration-s S       observation window (default 600, the paper's 10 min)
  --seed N             RNG seed (default 42)
  --csv FILE           append a one-row CSV summary
  --power-csv FILE     write the power timeline
  --soc-csv FILE       write the battery state-of-charge timeline

observability (see docs/OBSERVABILITY.md)
  --metrics-out FILE   write the metrics registry as JSON
  --trace-out FILE     write the structured event trace; a .jsonl suffix
                       selects JSONL, anything else Chrome trace_event
                       (load in chrome://tracing or ui.perfetto.dev)
  --alerts             run the power-emergency watchdog and print any
                       alerts it raised
  --spans              record request-lifecycle spans; --trace-out then
                       also carries them (JSONL SpanBegin/SpanEnd records
                       or Chrome per-slot duration tracks)
  --forensics-out FILE write the per-source forensics rollup as JSON and
                       print the top suspects (implies --spans)
  --trace-cap N        keep at most N trace events (0 = hub default;
                       exports end with a TraceTruncated record when hit)
  --incidents-out FILE record per-slot time series + the flight recorder
                       and write the incident bundle as JSON (implies
                       --spans; render with dopereport)
  --dump-incident-at S force one "manual" incident snapshot at the first
                       management slot at or after sim time S seconds
                       (use with --incidents-out)
  --alert-hysteresis R:C
                       override every watchdog rule's hysteresis: R
                       breach windows to raise, C calm windows to clear
  --metrics-percentiles
                       add a p50/p95/p99 summary section to --metrics-out

sweep mode (see docs/SWEEP.md; any --sweep-* flag selects it — the
flags above define the base scenario, each axis multiplies the grid)
  --sweep-schemes LIST comma-separated scheme names
  --sweep-budgets LIST comma-separated budget levels
  --sweep-attacks LIST none | dope:RPS | pulse:RPS:PERIOD_S
  --sweep-seeds LIST   comma-separated RNG seeds
  --threads N          sweep worker threads; 0 = hardware concurrency
                       (default; results are identical either way)
  --sweep-json FILE    write the merged sweep report
  --sweep-csv FILE     write one CSV row per run
  --help               this text
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "dopesim: " << message << " (see --help)\n";
  std::exit(2);
}

double number_arg(const std::string& flag, const std::string& value) {
  try {
    return std::stod(value);
  } catch (...) {
    fail("bad numeric value for " + flag + ": " + value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  scenario::ScenarioConfig config;
  config.scheme = scenario::SchemeKind::kAntiDope;
  config.budget = power::BudgetLevel::kLow;
  config.normal_rps = 300.0;
  config.attack_rps = 400.0;
  config.attack_mixture = workload::Mixture(
      {workload::Catalog::kCollaFilt, workload::Catalog::kKMeans,
       workload::Catalog::kWordCount},
      {1.0, 1.0, 1.0});
  config.duration = 10 * kMinute;
  config.seed = 42;

  std::string csv_path, power_csv_path, soc_csv_path;
  std::string metrics_path, trace_path, forensics_path, incidents_path;
  bool want_alerts = false;
  bool want_spans = false;
  bool metrics_percentiles = false;
  std::size_t trace_cap = 0;

  std::string sweep_schemes, sweep_budgets, sweep_attacks, sweep_seeds;
  std::string sweep_json_path, sweep_csv_path;
  std::size_t threads = 0;
  bool sweep_mode = false;

  const std::map<std::string, scenario::SchemeKind> schemes = {
      {"none", scenario::SchemeKind::kNone},
      {"capping", scenario::SchemeKind::kCapping},
      {"shaving", scenario::SchemeKind::kShaving},
      {"token", scenario::SchemeKind::kToken},
      {"antidope", scenario::SchemeKind::kAntiDope},
  };
  const std::map<std::string, power::BudgetLevel> budgets = {
      {"normal", power::BudgetLevel::kNormal},
      {"high", power::BudgetLevel::kHigh},
      {"medium", power::BudgetLevel::kMedium},
      {"low", power::BudgetLevel::kLow},
  };
  const std::map<std::string, workload::Mixture> attack_types = {
      {"colla-filt",
       workload::Mixture::single(workload::Catalog::kCollaFilt)},
      {"kmeans", workload::Mixture::single(workload::Catalog::kKMeans)},
      {"wordcount",
       workload::Mixture::single(workload::Catalog::kWordCount)},
      {"blend", *config.attack_mixture},
  };

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) fail("missing value for " + flag);
      return args[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_help();
      return 0;
    } else if (flag == "--servers") {
      config.num_servers = static_cast<std::size_t>(
          number_arg(flag, next()));
    } else if (flag == "--budget") {
      const auto it = budgets.find(next());
      if (it == budgets.end()) fail("unknown budget level");
      config.budget = it->second;
    } else if (flag == "--budget-watts") {
      config.budget_override = Watts{number_arg(flag, next())};
    } else if (flag == "--battery-min") {
      config.battery_runtime =
          static_cast<Duration>(number_arg(flag, next()) * kMinute);
    } else if (flag == "--firewall") {
      net::FirewallConfig firewall;
      firewall.threshold_rps = 150.0;
      firewall.check_interval = 5 * kSecond;
      config.firewall = firewall;
    } else if (flag == "--breaker-watts") {
      power::BreakerSpec breaker;
      breaker.rated = Watts{number_arg(flag, next())};
      config.breaker = breaker;
    } else if (flag == "--slot-ms") {
      config.slot = millis(number_arg(flag, next()));
    } else if (flag == "--zones") {
      config.num_zones =
          static_cast<std::size_t>(number_arg(flag, next()));
      if (config.num_zones < 1) fail("--zones needs at least 1");
    } else if (flag == "--glb") {
      const std::string name = next();
      if (name == "weighted") {
        config.glb_policy = site::GlobalLbPolicy::kWeighted;
      } else if (name == "least-loaded") {
        config.glb_policy = site::GlobalLbPolicy::kLeastLoaded;
      } else if (name == "affinity") {
        config.glb_policy = site::GlobalLbPolicy::kZoneAffinity;
      } else {
        fail("unknown GLB policy: " + name);
      }
    } else if (flag == "--divider") {
      const std::string name = next();
      if (name == "static") {
        config.site_divider = site::DividerKind::kStatic;
      } else if (name == "demand") {
        config.site_divider = site::DividerKind::kDemandProportional;
      } else if (name == "headroom") {
        config.site_divider = site::DividerKind::kHeadroomAware;
      } else {
        fail("unknown divider: " + name);
      }
    } else if (flag == "--attack-zone") {
      config.attack_zone = static_cast<int>(number_arg(flag, next()));
    } else if (flag == "--scheme") {
      const auto it = schemes.find(next());
      if (it == schemes.end()) fail("unknown scheme");
      config.scheme = it->second;
    } else if (flag == "--online") {
      config.antidope.online_learning = true;
    } else if (flag == "--per-node") {
      config.antidope.per_node_throttling = true;
    } else if (flag == "--pool-fraction") {
      config.antidope.suspect_pool_fraction = number_arg(flag, next());
    } else if (flag == "--normal-rps") {
      config.normal_rps = number_arg(flag, next());
    } else if (flag == "--attack-rps") {
      config.attack_rps = number_arg(flag, next());
    } else if (flag == "--attack-type") {
      const auto it = attack_types.find(next());
      if (it == attack_types.end()) fail("unknown attack type");
      config.attack_mixture = it->second;
    } else if (flag == "--agents") {
      config.attack_agents =
          static_cast<unsigned>(number_arg(flag, next()));
    } else if (flag == "--attack-start-s") {
      config.attack_start = seconds(number_arg(flag, next()));
    } else if (flag == "--duration-s") {
      config.duration = seconds(number_arg(flag, next()));
    } else if (flag == "--seed") {
      config.seed = static_cast<std::uint64_t>(number_arg(flag, next()));
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--power-csv") {
      power_csv_path = next();
    } else if (flag == "--soc-csv") {
      soc_csv_path = next();
    } else if (flag == "--metrics-out") {
      metrics_path = next();
    } else if (flag == "--trace-out") {
      trace_path = next();
    } else if (flag == "--alerts") {
      want_alerts = true;
    } else if (flag == "--spans") {
      want_spans = true;
    } else if (flag == "--forensics-out") {
      forensics_path = next();
      want_spans = true;
    } else if (flag == "--trace-cap") {
      trace_cap = static_cast<std::size_t>(number_arg(flag, next()));
    } else if (flag == "--incidents-out") {
      incidents_path = next();
      want_spans = true;
    } else if (flag == "--dump-incident-at") {
      config.dump_incident_at = seconds(number_arg(flag, next()));
    } else if (flag == "--alert-hysteresis") {
      const std::string value = next();
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        fail("--alert-hysteresis wants RAISE:CLEAR, e.g. 3:5");
      }
      config.alert_raise_windows = static_cast<unsigned>(
          number_arg(flag, value.substr(0, colon)));
      config.alert_clear_windows = static_cast<unsigned>(
          number_arg(flag, value.substr(colon + 1)));
    } else if (flag == "--metrics-percentiles") {
      metrics_percentiles = true;
    } else if (flag == "--sweep-schemes") {
      sweep_schemes = next();
      sweep_mode = true;
    } else if (flag == "--sweep-budgets") {
      sweep_budgets = next();
      sweep_mode = true;
    } else if (flag == "--sweep-attacks") {
      sweep_attacks = next();
      sweep_mode = true;
    } else if (flag == "--sweep-seeds") {
      sweep_seeds = next();
      sweep_mode = true;
    } else if (flag == "--sweep-json") {
      sweep_json_path = next();
      sweep_mode = true;
    } else if (flag == "--sweep-csv") {
      sweep_csv_path = next();
      sweep_mode = true;
    } else if (flag == "--threads") {
      threads = static_cast<std::size_t>(number_arg(flag, next()));
    } else {
      fail("unknown flag: " + flag);
    }
  }

  if (sweep_mode) {
    sweep::GridSpec grid;
    grid.base = config;
    try {
      if (!sweep_schemes.empty()) {
        grid.schemes = sweep::parse_scheme_list(sweep_schemes);
      }
      if (!sweep_budgets.empty()) {
        grid.budgets = sweep::parse_budget_list(sweep_budgets);
      }
      if (!sweep_attacks.empty()) {
        grid.attacks =
            sweep::parse_attack_list(sweep_attacks, grid.base.duration);
      }
      if (!sweep_seeds.empty()) {
        grid.seeds = sweep::parse_seed_list(sweep_seeds);
      }
    } catch (const std::exception& e) {
      fail(e.what());
    }

    const auto sweep_result =
        sweep::SweepRunner({.threads = threads}).run(grid);
    std::cout << "== dopesim sweep: " << sweep_result.runs.size()
              << " runs (" << sweep_result.failures << " failed) ==\n\n";
    TextTable table({"run", "mean (ms)", "p90 (ms)", "availability",
                     "peak (W)", "status"});
    for (const auto& run : sweep_result.runs) {
      if (run.ok) {
        table.row(run.point.label(), run.result.mean_ms,
                  run.result.p90_ms, run.result.availability,
                  run.result.peak_power.value(), "ok");
      } else {
        table.row(run.point.label(), "-", "-", "-", "-",
                  "FAILED: " + run.error);
      }
    }
    table.print(std::cout);

    if (!sweep_json_path.empty()) {
      std::ofstream out(sweep_json_path);
      if (!out) fail("cannot write " + sweep_json_path);
      sweep::write_json(out, grid, sweep_result);
      std::cout << "\nwrote " << sweep_json_path << "\n";
    }
    if (!sweep_csv_path.empty()) {
      std::ofstream out(sweep_csv_path);
      if (!out) fail("cannot write " + sweep_csv_path);
      sweep::write_csv(out, sweep_result);
      std::cout << "wrote " << sweep_csv_path << "\n";
    }
    return sweep_result.failures == 0 ? 0 : 1;
  }

  std::unique_ptr<obs::Hub> hub;
  if (!metrics_path.empty() || !trace_path.empty() || want_alerts ||
      want_spans) {
    obs::HubConfig hub_config;
    hub_config.enable_spans = want_spans;
    if (!incidents_path.empty()) {
      hub_config.enable_timeseries = true;
      hub_config.enable_flight = true;
    }
    hub = std::make_unique<obs::Hub>(hub_config);
    config.obs = hub.get();
    config.default_alert_rules = want_alerts;
    config.trace_cap = trace_cap;
  }

  const auto r = scenario::run_scenario(config);

  std::cout << "== dopesim: " << r.scheme << " @ " << r.budget.value()
            << " W, "
            << config.normal_rps << " rps normal, " << config.attack_rps
            << " rps attack, " << to_seconds(config.duration)
            << " s ==\n\n";
  TextTable table({"metric", "value"});
  table.row("normal mean RT (ms)", r.mean_ms);
  table.row("normal p50 / p90 / p95 / p99 (ms)",
            TextTable::format_cell(r.p50_ms) + " / " +
                TextTable::format_cell(r.p90_ms) + " / " +
                TextTable::format_cell(r.p95_ms) + " / " +
                TextTable::format_cell(r.p99_ms));
  table.row("availability", r.availability);
  table.row("drop fraction", r.drop_fraction);
  table.row("mean / peak power (W)",
            TextTable::format_cell(r.mean_power.value()) + " / " +
                TextTable::format_cell(r.peak_power.value()));
  table.row("utility energy (J)", r.energy.utility_total().value());
  table.row("battery energy (J)", r.energy.battery.value());
  table.row("demand violation slots",
            static_cast<long long>(r.slot_stats.violation_slots));
  table.row("utility violation slots",
            static_cast<long long>(r.slot_stats.utility_violation_slots));
  table.row("outages", static_cast<long long>(r.slot_stats.outages));
  table.print(std::cout);

  if (!r.zones.empty()) {
    std::cout << "\n== zones (" << site::glb_policy_name(config.glb_policy)
              << " GLB, " << site::divider_name(config.site_divider)
              << " divider) ==\n";
    TextTable zone_table({"zone", "budget (W)", "availability",
                          "violation slots", "min level",
                          "mean freq (GHz)"});
    for (std::size_t z = 0; z < r.zones.size(); ++z) {
      const auto& zone = r.zones[z];
      zone_table.row(static_cast<long long>(z), zone.budget.value(),
                     zone.availability,
                     static_cast<long long>(zone.violation_slots),
                     static_cast<long long>(zone.min_level_seen),
                     zone.final_mean_frequency.value());
    }
    zone_table.print(std::cout);
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) fail("cannot write " + csv_path);
    scenario::write_results_csv(out, {r});
    std::cout << "\nwrote " << csv_path << "\n";
  }
  if (!power_csv_path.empty()) {
    std::ofstream out(power_csv_path);
    if (!out) fail("cannot write " + power_csv_path);
    scenario::write_timeline_csv(out, r.power_timeline);
    std::cout << "wrote " << power_csv_path << "\n";
  }
  if (!soc_csv_path.empty()) {
    std::ofstream out(soc_csv_path);
    if (!out) fail("cannot write " + soc_csv_path);
    scenario::write_timeline_csv(out, r.battery_soc_timeline);
    std::cout << "wrote " << soc_csv_path << "\n";
  }

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) fail("cannot write " + metrics_path);
    hub->registry().write_json(out, metrics_percentiles);
    std::cout << "wrote " << metrics_path << " ("
              << hub->registry().size() << " metrics)\n";
  }
  if (!incidents_path.empty()) {
    std::ofstream out(incidents_path);
    if (!out) fail("cannot write " + incidents_path);
    hub->flight()->write_json(out);
    std::cout << "wrote " << incidents_path << " ("
              << hub->flight()->incident_count() << " incidents, "
              << hub->flight()->triggers() << " triggers)\n";
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) fail("cannot write " + trace_path);
    const bool jsonl = trace_path.size() >= 6 &&
                       trace_path.rfind(".jsonl") == trace_path.size() - 6;
    if (jsonl) {
      hub->write_trace_jsonl(out);
    } else {
      hub->write_chrome_trace(out);
    }
    std::cout << "wrote " << trace_path << " ("
              << hub->trace().recorded() << " events, "
              << hub->trace().distinct_types() << " types";
    if (hub->spans() != nullptr) {
      std::cout << ", " << hub->spans()->recorded() << " spans";
    }
    std::cout << ", " << (jsonl ? "jsonl" : "chrome") << ")\n";
  }
  if (!forensics_path.empty()) {
    const auto forensics = obs::Forensics::build(
        *hub->spans(), hub->trace(), config.duration);
    std::ofstream out(forensics_path);
    if (!out) fail("cannot write " + forensics_path);
    forensics.write_json(out);
    std::cout << "wrote " << forensics_path << " ("
              << forensics.sources().size() << " sources, "
              << forensics.violation_events() << " violation events)\n";

    const auto catalog = workload::Catalog::standard();
    // Anti-DOPE's own classification, for cross-checking the ranking.
    std::unique_ptr<antidope::SuspectList> suspects;
    if (config.scheme == scenario::SchemeKind::kAntiDope) {
      suspects = std::make_unique<antidope::SuspectList>(
          antidope::SuspectList::from_catalog(
              catalog, config.antidope.suspect_power_threshold));
    }
    std::cout << "\n== forensics: top suspects by attributed energy ==\n";
    TextTable suspect_table({"rank", "source", "requests", "joules",
                             "occupancy (ms)", "violation overlaps",
                             "dominant class", "suspect?"});
    std::size_t rank = 1;
    for (const auto& s : forensics.top_by_joules(10)) {
      const std::string class_name =
          s.dominant_class < catalog.size()
              ? catalog.type(s.dominant_class).name
              : "?";
      const std::string flagged =
          suspects == nullptr
              ? "-"
              : (suspects->suspicious(s.dominant_class) ? "yes" : "no");
      suspect_table.row(static_cast<long long>(rank++),
                        static_cast<long long>(s.source_id),
                        static_cast<long long>(s.requests),
                        s.joules.value(), s.occupancy_ms,
                        static_cast<long long>(s.violation_overlaps),
                        class_name, flagged);
    }
    suspect_table.print(std::cout);
  }
  if (want_alerts) {
    const auto& alerts = hub->watchdog().alerts();
    std::cout << "\n== watchdog: " << alerts.size() << " alert(s), "
              << hub->watchdog().active_count() << " still active ==\n";
    if (!alerts.empty()) {
      TextTable table({"alert", "signal", "raised_s", "cleared_s", "value"});
      for (const auto& a : alerts) {
        table.row(a.rule, a.signal, to_seconds(a.raised_at),
                  a.active() ? std::string("-")
                             : TextTable::format_cell(
                                   to_seconds(a.cleared_at)),
                  a.value);
      }
      table.print(std::cout);
    }
  }
  return 0;
}
