// Quickstart: build a small power-constrained cluster, send it a mixed
// workload, and read back latency / power / energy metrics.
//
//   $ ./quickstart
//
// This walks the public API at its lowest useful level — engine, cluster,
// scheme, traffic generator — without the scenario convenience layer, so
// you can see where each moving part attaches.
#include <iostream>
#include <memory>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "schemes/baselines.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace dope;

  // 1. One simulation engine drives everything.
  sim::Engine engine;

  // 2. The standard EC request catalog (Table 1 of the paper).
  const auto catalog = workload::Catalog::standard();

  // 3. A small cluster: 4 leaf nodes of 100 W, a Medium-PB power budget
  //    (85% of aggregate nameplate), and a 2-minute battery.
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.budget_level = power::BudgetLevel::kMedium;
  config.battery_runtime = 2 * kMinute;
  cluster::Cluster cluster(engine, catalog, config);

  // 4. Pick a power-management scheme. Try swapping this for
  //    CappingScheme, TokenScheme, or antidope::AntiDopeScheme.
  cluster.install_scheme(std::make_unique<schemes::ShavingScheme>());

  // 5. Normal users: the AliOS blend at 150 requests/second from 64
  //    distinct clients.
  workload::GeneratorConfig traffic;
  traffic.name = "normal-users";
  traffic.mixture = workload::Mixture::alios_normal();
  traffic.rate_rps = 150.0;
  traffic.num_sources = 64;
  traffic.seed = 2024;
  workload::TrafficGenerator generator(engine, catalog, traffic,
                                       cluster.edge_sink());

  // 6. Run ten simulated minutes.
  cluster.run_for(10 * kMinute);

  // 7. Read the results.
  const auto& metrics = cluster.request_metrics();
  const auto& latency = metrics.normal_latency_ms();

  std::cout << "== quickstart: 4x100 W cluster, Medium-PB, 150 rps ==\n\n";
  TextTable table({"metric", "value"});
  table.row("requests completed",
            static_cast<long long>(metrics.normal_counts().completed));
  table.row("availability", metrics.availability());
  table.row("mean latency (ms)", latency.mean());
  table.row("p90 latency (ms)", latency.percentile(90));
  table.row("p99 latency (ms)", latency.percentile(99));
  table.row("power budget (W)", cluster.budget().value());
  table.row("mean demand last slot (W)", cluster.last_slot_demand().value());
  table.row("energy from utility (J)",
            cluster.energy_account().utility.value());
  table.row("energy from battery (J)",
            cluster.energy_account().battery.value());
  table.row("battery state of charge", cluster.battery()->soc());
  table.row("budget violation slots",
            static_cast<long long>(cluster.slot_stats().violation_slots));
  table.print(std::cout);

  std::cout << "\nDone. Try raising rate_rps or lowering the budget level "
               "and watch the scheme react.\n";
  return 0;
}
