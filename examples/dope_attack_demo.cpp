// DOPE attack demo: mount the paper's adaptive attack (Fig. 12) against a
// firewalled, conventionally power-capped data center and watch it induce
// a power emergency without ever tripping the firewall.
//
//   $ ./dope_attack_demo
#include <iostream>
#include <memory>

#include "attack/dope_attacker.hpp"
#include "attack/profiles.hpp"
#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "metrics/timeline.hpp"
#include "schemes/baselines.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace dope;

  sim::Engine engine;
  const auto catalog = workload::Catalog::standard();

  // The victim: an oversubscribed (Low-PB) cluster protected by a
  // DDoS-deflate-style firewall and a conventional DVFS capping manager —
  // exactly the "defended" deployment the paper argues is insufficient.
  cluster::ClusterConfig config;
  config.num_servers = 8;
  config.budget_level = power::BudgetLevel::kLow;
  net::FirewallConfig firewall;
  firewall.threshold_rps = 150.0;
  firewall.check_interval = 5 * kSecond;
  config.firewall = firewall;
  cluster::Cluster cluster(engine, catalog, config);
  cluster.install_scheme(std::make_unique<schemes::CappingScheme>());

  // Legitimate background traffic.
  workload::GeneratorConfig normal;
  normal.name = "normal-users";
  normal.mixture = workload::Mixture::alios_normal();
  normal.rate_rps = 300.0;
  normal.num_sources = 256;
  workload::TrafficGenerator normal_gen(engine, catalog, normal,
                                        cluster.edge_sink());

  // The adversary: a 64-agent botnet running the adaptive DOPE loop,
  // flooding the profiled high-power URLs.
  attack::DopeAttackerConfig attacker_config;
  attacker_config.mixture =
      attack::attack_mixture(attack::AttackKind::kDopeKMeans);
  attacker_config.num_agents = 64;
  attack::DopeAttacker attacker(engine, catalog, attacker_config,
                                cluster.edge_sink());
  cluster.add_record_listener(attacker.feedback_sink());

  // Observe cluster power while the attack unfolds.
  metrics::TimelineRecorder power_probe(
      engine, 5 * kSecond,
      [&cluster] { return cluster.total_power().value(); });

  engine.run_until(8 * kMinute);

  std::cout << "== DOPE attack against a firewalled, capped cluster ==\n\n";
  std::cout << "attack decisions (one per 5 s epoch):\n";
  TextTable trace({"t (s)", "phase", "aggregate rps", "rps/agent"});
  const auto& decisions = attacker.decisions();
  for (std::size_t i = 0; i < decisions.size(); i += 4) {
    const auto& d = decisions[i];
    trace.row(to_seconds(d.at), attack::phase_name(d.phase), d.rate_rps,
              d.rate_rps / attacker_config.num_agents);
  }
  trace.print(std::cout);

  std::cout << "\noutcome:\n";
  TextTable outcome({"metric", "value"});
  outcome.row("attacker converged to",
              attack::phase_name(attacker.phase()));
  outcome.row("final attack rate (rps)", attacker.current_rate());
  outcome.row("firewall bans",
              static_cast<long long>(cluster.firewall()->total_bans()));
  outcome.row("budget (W)", cluster.budget().value());
  outcome.row("peak power seen (W)", power_probe.stats().max());
  outcome.row("victim DVFS level (server 0)",
              static_cast<long long>(cluster.server(0).level()));
  outcome.row("normal users' mean latency (ms)",
              cluster.request_metrics().normal_latency_ms().mean());
  outcome.row("normal users' p90 latency (ms)",
              cluster.request_metrics().normal_latency_ms().percentile(90));
  outcome.row("availability",
              cluster.request_metrics().availability());
  outcome.print(std::cout);

  std::cout << "\nThe attacker held every agent below the 150 rps firewall "
               "threshold, yet the\ncluster was forced into deep DVFS "
               "throttling — a denial of power and energy.\n";
  return 0;
}
