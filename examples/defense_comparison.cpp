// Defense comparison: run the same DOPE attack against all four power
// management schemes (Table 2) side by side and print the paper's key
// metrics — the condensed version of Figs. 16-19.
//
//   $ ./defense_comparison
#include <iostream>

#include "common/table.hpp"
#include "scenario/scenario.hpp"

int main() {
  using namespace dope;
  using scenario::SchemeKind;

  std::cout << "== four defenses vs. the same DOPE attack ==\n"
            << "(8x100 W cluster, Low-PB budget = 640 W, 300 rps normal "
               "traffic,\n 400 rps heavy-URL attack, 10-minute window)\n\n";

  workload::Mixture heavy(
      {workload::Catalog::kCollaFilt, workload::Catalog::kKMeans,
       workload::Catalog::kWordCount},
      {1.0, 1.0, 1.0});

  // Describe every run declaratively, then execute the sweep (in parallel
  // when more than one hardware thread is available).
  std::vector<scenario::ScenarioConfig> configs;
  for (const auto scheme : scenario::kEvaluatedSchemes) {
    scenario::ScenarioConfig config;
    config.scheme = scheme;
    config.budget = power::BudgetLevel::kLow;
    config.normal_rps = 300.0;
    config.attack_rps = 400.0;
    config.attack_mixture = heavy;
    config.duration = 10 * kMinute;
    config.seed = 99;
    configs.push_back(config);
  }
  const auto results = scenario::run_scenarios(configs);

  TextTable table({"scheme", "mean RT (ms)", "p90 (ms)", "availability",
                   "dropped %", "battery used (J)", "utility energy (J)"});
  for (const auto& r : results) {
    table.row(r.scheme, r.mean_ms, r.p90_ms, r.availability,
              r.drop_fraction * 100.0, r.battery_discharged.value(),
              r.energy.utility_total().value());
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table like the paper does:\n"
      << "  - Capping throttles everyone: worst latency for normal users.\n"
      << "  - Shaving hides the peak in the battery until it runs dry.\n"
      << "  - Token looks fast, but only because it discards traffic.\n"
      << "  - Anti-DOPE isolates the heavy URLs and throttles only the\n"
      << "    suspect pool: normal users barely notice the attack.\n";
  return 0;
}
