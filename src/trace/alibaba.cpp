#include "trace/alibaba.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "common/csv.hpp"
#include "common/expect.hpp"

namespace dope::trace {

std::vector<UsageRecord> parse_server_usage(std::istream& in,
                                            std::size_t* bad_rows) {
  std::vector<UsageRecord> out;
  std::size_t bad = 0;
  CsvReader reader(in, /*has_header=*/false);
  std::vector<std::string> fields;
  bool first = true;
  while (reader.next(fields)) {
    if (fields.size() < 5) {
      ++bad;
      continue;
    }
    const auto ts = parse_int(fields[0]);
    const auto mid = parse_int(fields[1]);
    const auto cpu = parse_double(fields[2]);
    const auto mem = parse_double(fields[3]);
    const auto dsk = parse_double(fields[4]);
    if (!ts || !mid || !cpu || !mem || !dsk) {
      // A non-numeric first row is an optional header: skip silently.
      if (!first) ++bad;
      first = false;
      continue;
    }
    first = false;
    out.push_back({*ts, *mid, *cpu, *mem, *dsk});
  }
  if (bad_rows != nullptr) *bad_rows = bad;
  return out;
}

namespace {

/// Strips the v2018 "m_" prefix; returns nullopt for malformed ids.
std::optional<std::int64_t> parse_machine_id_v2018(
    const std::string& field) {
  std::string_view v(field);
  if (v.size() > 2 && v[0] == 'm' && v[1] == '_') v.remove_prefix(2);
  return parse_int(v);
}

}  // namespace

std::vector<UsageRecord> parse_machine_usage_v2018(std::istream& in,
                                                   std::size_t* bad_rows) {
  std::vector<UsageRecord> out;
  std::size_t bad = 0;
  CsvReader reader(in, /*has_header=*/false);
  std::vector<std::string> fields;
  bool first = true;
  while (reader.next(fields)) {
    if (fields.size() < 3) {
      ++bad;
      continue;
    }
    const auto mid = parse_machine_id_v2018(fields[0]);
    const auto ts = parse_int(fields[1]);
    const auto cpu = parse_double(fields[2]);
    if (!mid || !ts || !cpu) {
      if (!first) ++bad;  // non-numeric first row = optional header
      first = false;
      continue;
    }
    first = false;
    UsageRecord record;
    record.machine_id = *mid;
    record.timestamp = *ts;
    record.cpu_util = *cpu;
    if (fields.size() > 3) {
      record.mem_util = parse_double(fields[3]).value_or(0.0);
    }
    if (fields.size() > 8) {
      record.disk_util = parse_double(fields[8]).value_or(0.0);
    }
    out.push_back(record);
  }
  if (bad_rows != nullptr) *bad_rows = bad;
  return out;
}

std::vector<UsageRecord> parse_any_usage(std::istream& in,
                                         std::size_t* bad_rows) {
  // Sniff the first non-empty line: v2018 rows start with "m_<digits>".
  std::string first_line;
  while (std::getline(in, first_line)) {
    if (!first_line.empty()) break;
  }
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const bool v2018 = first_line.rfind("m_", 0) == 0;
  std::istringstream replay(first_line + "\n" + rest);
  return v2018 ? parse_machine_usage_v2018(replay, bad_rows)
               : parse_server_usage(replay, bad_rows);
}

void write_server_usage(std::ostream& out,
                        const std::vector<UsageRecord>& records) {
  CsvWriter writer(out);
  for (const auto& r : records) {
    writer.row(r.timestamp, r.machine_id, r.cpu_util, r.mem_util,
               r.disk_util);
  }
}

TraceSummary summarize(const std::vector<UsageRecord>& records) {
  DOPE_REQUIRE(!records.empty(), "cannot summarise an empty trace");
  TraceSummary s;
  s.records = records.size();
  std::set<std::int64_t> machines;
  s.t_begin = records.front().timestamp;
  s.t_end = records.front().timestamp;
  double cpu_sum = 0.0;
  for (const auto& r : records) {
    machines.insert(r.machine_id);
    s.t_begin = std::min(s.t_begin, r.timestamp);
    s.t_end = std::max(s.t_end, r.timestamp);
    cpu_sum += r.cpu_util;
    s.max_cpu = std::max(s.max_cpu, r.cpu_util);
  }
  s.machines = machines.size();
  s.mean_cpu = cpu_sum / static_cast<double>(records.size());
  return s;
}

std::vector<UtilPoint> cluster_utilization(
    const std::vector<UsageRecord>& records) {
  std::map<std::int64_t, std::pair<double, std::size_t>> by_time;
  for (const auto& r : records) {
    auto& [sum, n] = by_time[r.timestamp];
    sum += r.cpu_util;
    ++n;
  }
  std::vector<UtilPoint> out;
  out.reserve(by_time.size());
  for (const auto& [ts, agg] : by_time) {
    out.push_back({ts, agg.first / static_cast<double>(agg.second)});
  }
  return out;
}

}  // namespace dope::trace
