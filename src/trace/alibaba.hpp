// Alibaba cluster-trace ingestion.
//
// The paper replays the public Alibaba container/cluster trace (12 h of
// ~1.3 k machines) to model normal-user activity. We parse the
// `server_usage.csv` schema of cluster-trace-v2017:
//
//   timestamp, machine_id, cpu_util(%), mem_util(%), disk_util(%), ...
//
// (no header row in the published files; extra trailing columns such as
// load1/load5/load15 are ignored). Since the real trace is not shipped
// with this repository, `synthetic.hpp` provides a generator that emits
// the same schema with matched first-order statistics, so every consumer
// of this parser works identically on real or synthetic data.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dope::trace {

/// One machine-utilisation sample.
struct UsageRecord {
  /// Seconds since trace start (the raw trace unit).
  std::int64_t timestamp = 0;
  std::int64_t machine_id = 0;
  /// Percentages in [0, 100].
  double cpu_util = 0.0;
  double mem_util = 0.0;
  double disk_util = 0.0;
};

/// Summary statistics of a parsed trace.
struct TraceSummary {
  std::size_t records = 0;
  std::size_t machines = 0;
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;
  double mean_cpu = 0.0;
  double max_cpu = 0.0;
};

/// Parses `server_usage.csv`-style content. Tolerates an optional header
/// row and rows with extra trailing columns; rows with fewer than five
/// fields or malformed numbers are skipped (counted in `bad_rows`).
std::vector<UsageRecord> parse_server_usage(std::istream& in,
                                            std::size_t* bad_rows = nullptr);

/// Parses cluster-trace-v2018 `machine_usage.csv` content:
///   machine_id, time_stamp, cpu_util_percent, mem_util_percent,
///   mem_gps, mkpi, net_in, net_out, disk_io_percent
/// i.e. the id and timestamp columns are swapped relative to v2017 and
/// machine ids carry an "m_" prefix. Missing/malformed optional columns
/// degrade to zero; rows without id/timestamp/cpu are skipped.
std::vector<UsageRecord> parse_machine_usage_v2018(
    std::istream& in, std::size_t* bad_rows = nullptr);

/// Sniffs which of the two public schemas a stream uses (by the "m_"
/// machine-id prefix and column order) and parses accordingly.
std::vector<UsageRecord> parse_any_usage(std::istream& in,
                                         std::size_t* bad_rows = nullptr);

/// Serialises records in the same headerless CSV schema.
void write_server_usage(std::ostream& out,
                        const std::vector<UsageRecord>& records);

/// Computes summary statistics (records must be non-empty).
TraceSummary summarize(const std::vector<UsageRecord>& records);

/// Collapses a machine-level trace into a cluster-mean CPU utilisation
/// series: one (timestamp, mean cpu%) per distinct timestamp, time-ordered.
struct UtilPoint {
  std::int64_t timestamp = 0;
  double mean_cpu = 0.0;
};
std::vector<UtilPoint> cluster_utilization(
    const std::vector<UsageRecord>& records);

}  // namespace dope::trace
