// Synthetic Alibaba-style trace generation.
//
// Stands in for the real cluster trace (documented substitution; see
// DESIGN.md): produces `server_usage`-schema records whose first-order
// statistics match the published trace — ~30-40 % mean CPU utilisation, a
// pronounced diurnal swing, per-machine noise, and occasional heavy-tailed
// bursts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "trace/alibaba.hpp"
#include "workload/generator.hpp"

namespace dope::trace {

/// Parameters of the synthetic trace.
struct SyntheticTraceConfig {
  std::size_t machines = 64;
  /// Total covered wall time in seconds (the real trace spans 12 h).
  std::int64_t duration_s = 12 * 3600;
  /// Sampling interval in seconds (Alibaba samples every 300 s).
  std::int64_t interval_s = 300;
  /// Mean CPU utilisation in percent.
  double mean_cpu = 35.0;
  /// Peak-to-trough amplitude of the diurnal component (percent).
  double diurnal_amplitude = 18.0;
  /// Per-sample Gaussian noise sigma (percent).
  double noise_sigma = 5.0;
  /// Probability a machine-sample belongs to a burst...
  double burst_prob = 0.02;
  /// ...and how many percent a burst adds (bounded-Pareto scaled).
  double burst_scale = 25.0;
  std::uint64_t seed = 42;
};

/// Generates machine-level records, time-major (all machines at t, then
/// t + interval, ...).
std::vector<UsageRecord> generate_server_usage(
    const SyntheticTraceConfig& config);

/// Converts a cluster-utilisation series into a piecewise-constant request
/// rate plan for a `TrafficGenerator`: rate(t) = peak_rps * cpu(t)/100,
/// with trace seconds mapped onto simulation time scaled by
/// `time_compression` (e.g. 72 maps 12 h of trace onto 10 min of sim).
std::vector<workload::RateStep> to_rate_plan(
    const std::vector<UtilPoint>& util, double peak_rps,
    double time_compression = 1.0);

}  // namespace dope::trace
