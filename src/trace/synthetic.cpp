#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace dope::trace {

std::vector<UsageRecord> generate_server_usage(
    const SyntheticTraceConfig& config) {
  DOPE_REQUIRE(config.machines > 0, "need at least one machine");
  DOPE_REQUIRE(config.interval_s > 0, "interval must be positive");
  DOPE_REQUIRE(config.duration_s >= config.interval_s,
               "duration shorter than one interval");
  Rng rng(config.seed);
  // Per-machine offsets: some machines run consistently hotter.
  std::vector<double> machine_bias(config.machines);
  for (auto& b : machine_bias) b = rng.normal(0.0, 4.0);

  std::vector<UsageRecord> out;
  const auto steps =
      static_cast<std::size_t>(config.duration_s / config.interval_s);
  out.reserve(steps * config.machines);
  constexpr double kTwoPi = 6.28318530717958647692;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::int64_t ts =
        static_cast<std::int64_t>(s) * config.interval_s;
    // Diurnal component: trough in the early morning, peak in the evening.
    const double day_phase =
        static_cast<double>(ts % 86400) / 86400.0;
    const double diurnal = 0.5 * config.diurnal_amplitude *
                           std::sin(kTwoPi * (day_phase - 0.25));
    for (std::size_t m = 0; m < config.machines; ++m) {
      double cpu = config.mean_cpu + diurnal + machine_bias[m] +
                   rng.normal(0.0, config.noise_sigma);
      if (rng.chance(config.burst_prob)) {
        cpu += config.burst_scale * rng.pareto(1.5, 0.5, 3.0);
      }
      cpu = std::clamp(cpu, 0.0, 100.0);
      // Memory tracks CPU loosely; disk is mostly independent.
      const double mem = std::clamp(
          0.6 * cpu + 25.0 + rng.normal(0.0, 3.0), 0.0, 100.0);
      const double dsk = std::clamp(
          10.0 + rng.normal(0.0, 4.0) + 0.1 * cpu, 0.0, 100.0);
      out.push_back({ts, static_cast<std::int64_t>(m), cpu, mem, dsk});
    }
  }
  return out;
}

std::vector<workload::RateStep> to_rate_plan(
    const std::vector<UtilPoint>& util, double peak_rps,
    double time_compression) {
  DOPE_REQUIRE(peak_rps > 0, "peak rate must be positive");
  DOPE_REQUIRE(time_compression > 0, "time compression must be positive");
  std::vector<workload::RateStep> plan;
  plan.reserve(util.size());
  for (const auto& p : util) {
    workload::RateStep step;
    step.at = static_cast<Time>(
        static_cast<double>(p.timestamp) / time_compression *
        static_cast<double>(kSecond));
    step.rate_rps = peak_rps * std::clamp(p.mean_cpu, 0.0, 100.0) / 100.0;
    plan.push_back(step);
  }
  return plan;
}

}  // namespace dope::trace
