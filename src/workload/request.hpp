// The unit of work flowing through the system: one HTTP-style request.
#pragma once

#include <cstdint>

#include "common/inline_function.hpp"
#include "common/units.hpp"

namespace dope::workload {

/// Index into the `Catalog` of request types; doubles as the "URL class"
/// used for suspect-list forwarding (requests for the same service/URL
/// consume near-identical resources — paper Section 5.2).
using RequestTypeId = std::uint32_t;

/// Identifies the network origin (client IP) of a request. Firewalls and
/// rate limiters track state per source.
using SourceId = std::uint32_t;

/// One in-flight request.
struct Request {
  /// Unique per run; assigned by the generator.
  std::uint64_t id = 0;
  /// Service/URL class (index into the workload catalog).
  RequestTypeId type = 0;
  /// Originating client.
  SourceId source = 0;
  /// Time the request arrived at the data center edge.
  Time arrival = 0;
  /// Multiplier on the type's base service time (captures per-request
  /// size variation; sampled by the generator).
  double size_factor = 1.0;
  /// Ground truth: whether an attacker generated this request. Defense
  /// mechanisms must never read this — it exists only so metrics can be
  /// split into legitimate vs. malicious populations.
  bool ground_truth_attack = false;
};

/// Typed reference to a serving node: the zone it lives in and the
/// server index inside that zone. The invalid state — a request that was
/// never dispatched to a server — is explicit (`valid()` is false)
/// instead of a magic `int -1`. A standalone cluster outside any
/// `site::Site` carries `zone == kNoZone`.
struct ServerRef {
  static constexpr std::int32_t kNoZone = -1;

  /// Zone index within a Site; kNoZone for a standalone cluster.
  std::int32_t zone = kNoZone;
  /// Server index within the zone's cluster; negative when never
  /// dispatched.
  std::int32_t index = -1;

  constexpr bool valid() const { return index >= 0; }

  friend constexpr bool operator==(const ServerRef& a, const ServerRef& b) {
    return a.zone == b.zone && a.index == b.index;
  }
  friend constexpr bool operator!=(const ServerRef& a, const ServerRef& b) {
    return !(a == b);
  }
};

/// Terminal status of a request.
enum class RequestOutcome {
  kCompleted,       ///< served to completion
  kDroppedByLimit,  ///< shed by a rate limiter / token bucket
  kBlockedByFirewall,
  kRejectedQueueFull,
  kTimedOut,        ///< exceeded its queueing deadline and was abandoned
  kFailedOutage,    ///< lost in-flight when its server lost power
  kDroppedNetwork,  ///< dropped at a saturated switch (connectivity loss)
};

/// Completion record emitted to metrics sinks.
struct RequestRecord {
  Request request;
  RequestOutcome outcome = RequestOutcome::kCompleted;
  /// Departure (or drop) time.
  Time finish = 0;
  /// End-to-end latency for completed requests (finish - arrival).
  Duration latency = 0;
  /// Which server served it; `server.valid()` is false when the request
  /// was dropped before ever reaching a node.
  ServerRef server;
};

/// Consumes terminal request records (metrics, attacker feedback probes).
/// Inline-stored and move-only: sinks sit on the per-request hot path, so
/// they must never heap-allocate (see docs/ENGINE.md).
using RecordSink = common::InlineFunction<void(const RequestRecord&)>;

/// Receives generated requests (the data-center edge). Same inline
/// storage contract as `RecordSink`.
using RequestSink = common::InlineFunction<void(Request&&)>;

}  // namespace dope::workload
