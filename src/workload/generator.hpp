// Open-loop traffic generation.
//
// A `TrafficGenerator` produces Poisson arrivals of requests drawn from a
// type mixture and pushes them into a sink (normally the cluster's edge:
// firewall -> NLB). Open-loop generation is essential here: real Internet
// clients — and certainly attackers — do not slow down because the victim
// is throttled, which is exactly why power capping interacts so badly with
// traffic floods.
//
// The rate can be changed at any simulated time (`set_rate`), which is how
// the adaptive DOPE attacker (Fig. 12) and trace-driven load replay
// modulate their traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::workload {

/// Static configuration of one traffic source population.
struct GeneratorConfig {
  std::string name = "traffic";
  /// Request-type blend.
  Mixture mixture;
  /// Mean aggregate arrival rate (requests/second) at start.
  double rate_rps = 0.0;
  /// Generation window [start, stop); stop < 0 means "until sim end".
  Time start = 0;
  Time stop = -1;
  /// Arrivals are spread uniformly over this many distinct source IDs
  /// (clients); per-source rate = rate_rps / num_sources. This is what a
  /// botnet manipulates to stay under per-source firewall thresholds.
  unsigned num_sources = 1;
  /// First source ID of this population's contiguous ID range.
  SourceId source_base = 0;
  /// Ground-truth tag stamped on emitted requests (metrics only).
  bool ground_truth_attack = false;
  /// RNG seed for this generator's private stream.
  std::uint64_t seed = 1;
};

/// Poisson open-loop request generator bound to a simulation engine.
class TrafficGenerator {
 public:
  TrafficGenerator(sim::Engine& engine, const Catalog& catalog,
                   GeneratorConfig config, RequestSink sink);

  TrafficGenerator(const TrafficGenerator&) = delete;
  TrafficGenerator& operator=(const TrafficGenerator&) = delete;

  const GeneratorConfig& config() const { return config_; }

  /// Current aggregate rate (rps).
  double rate() const { return rate_; }

  /// Changes the aggregate rate, effective immediately. A zero rate parks
  /// the generator; a later non-zero rate resumes it.
  void set_rate(double rps);

  /// Swaps the request-type blend from now on (attack-type switching).
  void set_mixture(Mixture mixture);

  /// Permanently stops generation.
  void stop();

  /// Requests emitted so far.
  std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();
  void emit();
  bool window_open(Time t) const;

  sim::Engine& engine_;
  const Catalog& catalog_;
  GeneratorConfig config_;
  RequestSink sink_;
  Rng rng_;
  double rate_;
  bool stopped_ = false;
  bool armed_ = false;  // an arrival event is pending
  sim::EventId pending_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t next_request_serial_ = 0;
};

/// One step of a piecewise-constant rate plan.
struct RateStep {
  Time at = 0;
  double rate_rps = 0.0;
};

/// Schedules `set_rate` calls on `gen` for every step in `plan`. Steps must
/// be time-ordered. Used for trace replay and scripted attack phases.
void apply_rate_plan(sim::Engine& engine, TrafficGenerator& gen,
                     const std::vector<RateStep>& plan);

}  // namespace dope::workload
