#include "workload/bursty.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::workload {

BurstModulator::BurstModulator(sim::Engine& engine,
                               TrafficGenerator& generator,
                               BurstConfig config)
    : engine_(engine),
      generator_(generator),
      config_(config),
      rng_(config.seed) {
  DOPE_REQUIRE(config_.base_rps >= 0, "base rate must be non-negative");
  DOPE_REQUIRE(config_.burst_rps > config_.base_rps,
               "burst rate must exceed the base rate");
  DOPE_REQUIRE(config_.mean_quiet > 0 && config_.mean_burst > 0,
               "dwell times must be positive");
  generator_.set_rate(config_.base_rps);
  const auto dwell = static_cast<Duration>(
      rng_.exponential(static_cast<double>(config_.mean_quiet)));
  pending_ = engine_.schedule_after(std::max<Duration>(dwell, 1),
                                    [this] { transition(); });
}

BurstModulator::~BurstModulator() { stop(); }

void BurstModulator::stop() {
  if (stopped_) return;
  stopped_ = true;
  engine_.cancel(pending_);
}

double BurstModulator::expected_mean_rate() const {
  const double quiet = static_cast<double>(config_.mean_quiet);
  const double burst = static_cast<double>(config_.mean_burst);
  return (config_.base_rps * quiet + config_.burst_rps * burst) /
         (quiet + burst);
}

void BurstModulator::transition() {
  if (stopped_) return;
  bursting_ = !bursting_;
  if (bursting_) {
    ++bursts_;
    generator_.set_rate(config_.burst_rps);
  } else {
    generator_.set_rate(config_.base_rps);
  }
  const Duration mean =
      bursting_ ? config_.mean_burst : config_.mean_quiet;
  const auto dwell =
      static_cast<Duration>(rng_.exponential(static_cast<double>(mean)));
  pending_ = engine_.schedule_after(std::max<Duration>(dwell, 1),
                                    [this] { transition(); });
}

}  // namespace dope::workload
