// Markov-modulated (ON/OFF) burst traffic.
//
// Real normal-user load is not a stationary Poisson process: flash
// crowds, sales events, and cache misses produce bursts. The paper's
// oversubscription premise ("servers rarely reach peak load
// simultaneously") lives or dies by this burstiness, so the simulator
// models it explicitly: a two-state Markov modulator drives a
// TrafficGenerator between a base rate and a burst rate with
// exponentially distributed dwell times — the classic MMPP(2).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace dope::workload {

/// ON/OFF modulation parameters.
struct BurstConfig {
  /// Rate while in the quiet state (rps).
  double base_rps = 100.0;
  /// Rate while bursting (rps).
  double burst_rps = 500.0;
  /// Mean dwell time in the quiet state.
  Duration mean_quiet = 60 * kSecond;
  /// Mean dwell time in the burst state.
  Duration mean_burst = 10 * kSecond;
  std::uint64_t seed = 71;
};

/// Drives a generator's rate between base and burst levels.
class BurstModulator {
 public:
  BurstModulator(sim::Engine& engine, TrafficGenerator& generator,
                 BurstConfig config);
  ~BurstModulator();

  BurstModulator(const BurstModulator&) = delete;
  BurstModulator& operator=(const BurstModulator&) = delete;

  bool bursting() const { return bursting_; }
  unsigned bursts_started() const { return bursts_; }

  /// Long-run mean rate implied by the configuration.
  double expected_mean_rate() const;

  void stop();

 private:
  void transition();

  sim::Engine& engine_;
  TrafficGenerator& generator_;
  BurstConfig config_;
  Rng rng_;
  bool bursting_ = false;
  bool stopped_ = false;
  unsigned bursts_ = 0;
  sim::EventId pending_ = 0;
};

}  // namespace dope::workload
