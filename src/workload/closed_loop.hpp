// Closed-loop client sessions.
//
// Interactive users are *closed-loop*: each has at most one request in
// flight and thinks for a while after every response. That feedback is
// what makes DOPE so asymmetric — when the victim throttles, legitimate
// closed-loop users naturally slow their own sending rate (each cycle
// takes longer), voluntarily ceding capacity, while the open-loop
// attacker keeps hammering at full rate. This module models a population
// of such sessions for studying that effect.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::workload {

/// Closed-loop population parameters.
struct ClosedLoopConfig {
  /// Concurrent user sessions (one outstanding request each).
  std::size_t num_users = 50;
  /// Mean think time between a response and the next request
  /// (exponentially distributed).
  Duration mean_think = 2 * kSecond;
  /// A user abandons an unanswered request after this long and thinks
  /// again (they hit reload later).
  Duration patience = 8 * kSecond;
  /// Request blend.
  Mixture mixture;
  /// Each user gets its own source ID starting here.
  SourceId source_base = 0;
  std::uint64_t seed = 37;
};

/// A population of think-time-gated user sessions.
class ClosedLoopClients {
 public:
  ClosedLoopClients(sim::Engine& engine, const Catalog& catalog,
                    ClosedLoopConfig config, RequestSink edge);
  ~ClosedLoopClients();

  ClosedLoopClients(const ClosedLoopClients&) = delete;
  ClosedLoopClients& operator=(const ClosedLoopClients&) = delete;

  /// Record listener that delivers responses back to the sessions;
  /// register with `Cluster::add_record_listener`.
  RecordSink feedback_sink();

  /// Completed request/response cycles across the population.
  std::uint64_t completed_cycles() const { return completed_cycles_; }
  /// Cycles abandoned because the response never came.
  std::uint64_t abandoned_cycles() const { return abandoned_cycles_; }
  /// Requests sent so far.
  std::uint64_t sent() const { return sent_; }

  /// Current effective request rate (completed cycles per second since
  /// start); the self-backoff signal.
  double effective_rate() const;

  void stop();

 private:
  struct User {
    bool waiting = false;
    std::uint64_t outstanding_id = 0;
    sim::EventId patience_event = 0;
  };

  void send(std::size_t user_index);
  void think_then_send(std::size_t user_index);
  void on_record(const RequestRecord& record);

  sim::Engine& engine_;
  const Catalog& catalog_;
  ClosedLoopConfig config_;
  RequestSink edge_;
  Rng rng_;
  std::vector<User> users_;
  bool stopped_ = false;
  std::uint64_t next_serial_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t completed_cycles_ = 0;
  std::uint64_t abandoned_cycles_ = 0;
};

}  // namespace dope::workload
