// Request-type catalog (paper Table 1).
//
// Each entry couples a service-time model with a power model:
//
//   service time  t(f) = t0 · size · (alpha · f_max/f + (1 - alpha))
//   active power  p(f) = p0 · (beta · (f/f_max)^3 + (1 - beta))
//
// `alpha` is the CPU-bound fraction of the work (how much DVFS slows it
// down); `beta` is the frequency sensitivity of its power draw. The default
// catalog reproduces the paper's scaled-down EC testbed:
//
//   Colla-Filt  compute-intensive recommender; saturates a node's power at
//               low request rates (Fig. 5a: right-most, sub-vertical CDF)
//   K-means     memory-intensive classification; highest power *per
//               request* and the least frequency-sensitive power, so
//               capping it requires the deepest V/F cuts (Fig. 6b)
//   Word-Count  disk-heavy text scan
//   Text-Cont   light text fetch (the bulk of normal traffic)
//   DNS-Q       DNS query handling (application-layer flood target)
//   SYN / UDP   volume-based packets: negligible per-packet power
//               (Fig. 5b: "volume-based traffic consumes much less power")
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "power/power_model.hpp"
#include "workload/request.hpp"

namespace dope::workload {

/// Static description of one request type / URL class.
struct RequestTypeProfile {
  std::string name;
  std::string url;
  /// Base service time at f_max for a size-1 request.
  Duration base_service_time = 0;
  /// CPU-bound fraction in [0, 1]: 1 = pure compute, 0 = no DVFS effect.
  double cpu_bound_fraction = 1.0;
  /// Active power parameters.
  power::RequestPowerProfile power;
  /// Lognormal sigma of the per-request size factor (0 = deterministic).
  double size_sigma = 0.0;

  /// Service time at relative frequency `rel = f/f_max` for `size`.
  Duration service_time(double rel, double size = 1.0) const;
};

/// Immutable, indexable set of request types.
class Catalog {
 public:
  /// The paper's EC-service catalog (see file header).
  static Catalog standard();

  /// Builds a catalog from explicit profiles (tests, what-if studies).
  explicit Catalog(std::vector<RequestTypeProfile> types);

  std::size_t size() const { return types_.size(); }
  const RequestTypeProfile& type(RequestTypeId id) const;
  const RequestTypeProfile& operator[](RequestTypeId id) const {
    return type(id);
  }

  /// Finds a type by name; throws if absent.
  RequestTypeId id_of(const std::string& name) const;

  /// Well-known indices into `standard()`.
  static constexpr RequestTypeId kCollaFilt = 0;
  static constexpr RequestTypeId kKMeans = 1;
  static constexpr RequestTypeId kWordCount = 2;
  static constexpr RequestTypeId kTextCont = 3;
  static constexpr RequestTypeId kDnsQuery = 4;
  static constexpr RequestTypeId kSynPacket = 5;
  static constexpr RequestTypeId kUdpPacket = 6;

 private:
  std::vector<RequestTypeProfile> types_;
};

/// A discrete distribution over request types (e.g. the AliOS normal-user
/// mix, or an attacker's chosen blend).
class Mixture {
 public:
  Mixture() = default;

  /// weights need not be normalised; they must be non-negative and sum > 0.
  Mixture(std::vector<RequestTypeId> types, std::vector<double> weights);

  /// Single-type "mixture".
  static Mixture single(RequestTypeId type);

  /// The paper's normal-user blend over the EC service (Text-Cont heavy).
  static Mixture alios_normal();

  bool empty() const { return types_.empty(); }

  /// Samples a type.
  RequestTypeId sample(Rng& rng) const;

  const std::vector<RequestTypeId>& types() const { return types_; }
  const std::vector<double>& weights() const { return cumulative_; }

  /// Expected value of f(type) under the mixture.
  template <typename F>
  double expectation(F&& f) const {
    double acc = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < types_.size(); ++i) {
      acc += (cumulative_[i] - prev) * f(types_[i]);
      prev = cumulative_[i];
    }
    return acc;
  }

 private:
  std::vector<RequestTypeId> types_;
  std::vector<double> cumulative_;  // normalised cumulative weights
};

}  // namespace dope::workload
