#include "workload/generator.hpp"

#include <cmath>
#include <utility>

#include "common/expect.hpp"

namespace dope::workload {

TrafficGenerator::TrafficGenerator(sim::Engine& engine, const Catalog& catalog,
                                   GeneratorConfig config, RequestSink sink)
    : engine_(engine),
      catalog_(catalog),
      config_(std::move(config)),
      sink_(std::move(sink)),
      rng_(config_.seed),
      rate_(config_.rate_rps) {
  DOPE_REQUIRE(sink_ != nullptr, "generator needs a sink");
  DOPE_REQUIRE(!config_.mixture.empty(), "generator needs a mixture");
  DOPE_REQUIRE(config_.rate_rps >= 0.0, "rate must be non-negative");
  DOPE_REQUIRE(config_.num_sources >= 1, "need at least one source");
  DOPE_REQUIRE(config_.start >= engine_.now(),
               "generation window starts in the past");
  if (rate_ > 0.0) {
    // First arrival is exponentially distributed after the window opens.
    armed_ = true;
    const auto gap = static_cast<Duration>(
        rng_.exponential(static_cast<double>(kSecond) / rate_));
    pending_ = engine_.schedule_at(config_.start + gap, [this] { emit(); });
  }
}

bool TrafficGenerator::window_open(Time t) const {
  if (t < config_.start) return false;
  if (config_.stop >= 0 && t >= config_.stop) return false;
  return true;
}

void TrafficGenerator::schedule_next() {
  armed_ = false;
  if (stopped_ || rate_ <= 0.0) return;
  const double mean_gap_us = static_cast<double>(kSecond) / rate_;
  auto gap = static_cast<Duration>(rng_.exponential(mean_gap_us));
  if (gap < 1) gap = 1;
  const Time t = engine_.now() + gap;
  if (config_.stop >= 0 && t >= config_.stop) return;
  armed_ = true;
  pending_ = engine_.schedule_at(t, [this] { emit(); });
}

void TrafficGenerator::emit() {
  armed_ = false;
  if (stopped_) return;
  const Time now = engine_.now();
  if (window_open(now)) {
    Request req;
    // Serial numbers are unique per generator; combining with the seed in
    // the top bits keeps IDs unique across generators in one run.
    req.id = (config_.seed << 40) ^ next_request_serial_++;
    req.type = config_.mixture.sample(rng_);
    const auto& profile = catalog_.type(req.type);
    if (profile.size_sigma > 0.0) {
      const double sigma = profile.size_sigma;
      // mean-1 lognormal: mu = -sigma^2/2
      req.size_factor = rng_.lognormal(-0.5 * sigma * sigma, sigma);
    }
    req.source = config_.source_base +
                 static_cast<SourceId>(rng_.uniform_int(
                     0, static_cast<std::int64_t>(config_.num_sources) - 1));
    req.arrival = now;
    req.ground_truth_attack = config_.ground_truth_attack;
    ++generated_;
    sink_(std::move(req));
  }
  schedule_next();
}

void TrafficGenerator::set_rate(double rps) {
  DOPE_REQUIRE(rps >= 0.0, "rate must be non-negative");
  const bool was_idle = (rate_ <= 0.0);
  rate_ = rps;
  if (stopped_) return;
  if (rate_ > 0.0 && was_idle && !armed_) {
    // Resume from parked state.
    if (engine_.now() >= config_.start) {
      schedule_next();
    } else {
      armed_ = true;
      pending_ = engine_.schedule_at(config_.start, [this] { emit(); });
    }
  }
  // A rate *decrease* leaves the already-scheduled arrival in place; the
  // new rate applies from the next gap onward. This matches how an
  // attacker or client pool changes its sending rate.
}

void TrafficGenerator::set_mixture(Mixture mixture) {
  DOPE_REQUIRE(!mixture.empty(), "mixture must not be empty");
  config_.mixture = std::move(mixture);
}

void TrafficGenerator::stop() {
  stopped_ = true;
  if (armed_) {
    engine_.cancel(pending_);
    armed_ = false;
  }
}

void apply_rate_plan(sim::Engine& engine, TrafficGenerator& gen,
                     const std::vector<RateStep>& plan) {
  Time prev = engine.now();
  for (const auto& step : plan) {
    DOPE_REQUIRE(step.at >= prev, "rate plan must be time-ordered");
    prev = step.at;
    engine.schedule_at(step.at,
                       [&gen, rate = step.rate_rps] { gen.set_rate(rate); });
  }
}

}  // namespace dope::workload
