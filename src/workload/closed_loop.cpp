#include "workload/closed_loop.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace dope::workload {

ClosedLoopClients::ClosedLoopClients(sim::Engine& engine,
                                     const Catalog& catalog,
                                     ClosedLoopConfig config,
                                     RequestSink edge)
    : engine_(engine),
      catalog_(catalog),
      config_(std::move(config)),
      edge_(std::move(edge)),
      rng_(config_.seed),
      users_(config_.num_users) {
  DOPE_REQUIRE(edge_ != nullptr, "closed-loop clients need a sink");
  DOPE_REQUIRE(config_.num_users >= 1, "need at least one user");
  DOPE_REQUIRE(!config_.mixture.empty(), "need a request mixture");
  DOPE_REQUIRE(config_.mean_think > 0, "think time must be positive");
  DOPE_REQUIRE(config_.patience > 0, "patience must be positive");
  // Stagger the initial requests over one think time so the population
  // does not arrive as a single synchronised burst.
  for (std::size_t u = 0; u < users_.size(); ++u) {
    const auto stagger = static_cast<Duration>(
        rng_.uniform() * static_cast<double>(config_.mean_think));
    engine_.schedule_after(std::max<Duration>(stagger, 1),
                           [this, u] { send(u); });
  }
}

ClosedLoopClients::~ClosedLoopClients() { stop(); }

void ClosedLoopClients::stop() { stopped_ = true; }

void ClosedLoopClients::send(std::size_t user_index) {
  if (stopped_) return;
  User& user = users_[user_index];
  DOPE_ASSERT(!user.waiting);
  Request request;
  // Top bits: a fixed tag for this population; low bits: serial.
  request.id = (static_cast<std::uint64_t>(config_.seed) << 48) ^
               (0xC105EDULL << 24) ^ next_serial_++;
  request.type = config_.mixture.sample(rng_);
  const auto& profile = catalog_.type(request.type);
  if (profile.size_sigma > 0.0) {
    const double sigma = profile.size_sigma;
    request.size_factor = rng_.lognormal(-0.5 * sigma * sigma, sigma);
  }
  request.source =
      config_.source_base + static_cast<SourceId>(user_index);
  request.arrival = engine_.now();
  user.waiting = true;
  user.outstanding_id = request.id;
  // Patience timer: the user gives up and thinks again.
  user.patience_event = engine_.schedule_after(
      config_.patience, [this, user_index] {
        User& u = users_[user_index];
        if (!u.waiting) return;
        u.waiting = false;
        ++abandoned_cycles_;
        think_then_send(user_index);
      });
  ++sent_;
  edge_(std::move(request));
}

void ClosedLoopClients::think_then_send(std::size_t user_index) {
  if (stopped_) return;
  const auto think = static_cast<Duration>(
      rng_.exponential(static_cast<double>(config_.mean_think)));
  engine_.schedule_after(std::max<Duration>(think, 1),
                         [this, user_index] { send(user_index); });
}

void ClosedLoopClients::on_record(const RequestRecord& record) {
  const auto src = record.request.source;
  if (src < config_.source_base ||
      src >= config_.source_base + users_.size()) {
    return;
  }
  const auto user_index =
      static_cast<std::size_t>(src - config_.source_base);
  User& user = users_[user_index];
  if (!user.waiting || record.request.id != user.outstanding_id) return;
  user.waiting = false;
  engine_.cancel(user.patience_event);
  if (record.outcome == RequestOutcome::kCompleted) {
    ++completed_cycles_;
  } else {
    ++abandoned_cycles_;
  }
  think_then_send(user_index);
}

RecordSink ClosedLoopClients::feedback_sink() {
  return [this](const RequestRecord& record) { on_record(record); };
}

double ClosedLoopClients::effective_rate() const {
  const double seconds = to_seconds(engine_.now());
  return seconds <= 0.0
             ? 0.0
             : static_cast<double>(completed_cycles_) / seconds;
}

}  // namespace dope::workload
