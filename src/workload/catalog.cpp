#include "workload/catalog.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace dope::workload {

Duration RequestTypeProfile::service_time(double rel, double size) const {
  DOPE_REQUIRE(rel > 0.0 && rel <= 1.0, "relative frequency out of range");
  DOPE_REQUIRE(size > 0.0, "size factor must be positive");
  const double slowdown =
      cpu_bound_fraction / rel + (1.0 - cpu_bound_fraction);
  const double t = static_cast<double>(base_service_time) * size * slowdown;
  return static_cast<Duration>(std::llround(t));
}

Catalog Catalog::standard() {
  std::vector<RequestTypeProfile> types;
  types.push_back({
      "Colla-Filt", "/api/recommend",
      millis(80.0),         // long, compute-heavy recommendation
      0.90,                 // almost fully CPU-bound
      {Watts{19.0}, 0.80},  // high power per request, strongly f-sensitive
      0.25,
  });
  types.push_back({
      "K-means", "/api/classify",
      millis(60.0),
      0.55,                 // partly memory-bound: DVFS helps latency less
      {Watts{21.0}, 0.35},  // highest per-request power, weakly f-sensitive
      0.25,
  });
  types.push_back({
      "Word-Count", "/api/wordcount",
      millis(40.0),
      0.40,  // disk-dominated
      {Watts{15.0}, 0.45},
      0.30,
  });
  types.push_back({
      "Text-Cont", "/api/text",
      millis(8.0),
      0.70,
      {Watts{6.0}, 0.70},
      0.20,
  });
  types.push_back({
      "DNS-Q", "/dns",
      millis(5.0),
      0.85,
      {Watts{8.0}, 0.75},
      0.10,
  });
  types.push_back({
      "SYN", "/syn",
      static_cast<Duration>(200),  // 0.2 ms of protocol handling
      1.0,
      {Watts{0.8}, 1.0},
      0.0,
  });
  types.push_back({
      "UDP", "/udp",
      static_cast<Duration>(150),
      1.0,
      {Watts{0.6}, 1.0},
      0.0,
  });
  return Catalog(std::move(types));
}

Catalog::Catalog(std::vector<RequestTypeProfile> types)
    : types_(std::move(types)) {
  DOPE_REQUIRE(!types_.empty(), "catalog must not be empty");
  for (const auto& t : types_) {
    DOPE_REQUIRE(t.base_service_time > 0, "service time must be positive");
    DOPE_REQUIRE(t.cpu_bound_fraction >= 0.0 && t.cpu_bound_fraction <= 1.0,
                 "cpu_bound_fraction must be in [0,1]");
    DOPE_REQUIRE(t.power.p0 >= Watts{0.0},
                 "request power must be non-negative");
    DOPE_REQUIRE(
        t.power.freq_sensitivity >= 0.0 && t.power.freq_sensitivity <= 1.0,
        "freq_sensitivity must be in [0,1]");
  }
}

const RequestTypeProfile& Catalog::type(RequestTypeId id) const {
  DOPE_REQUIRE(id < types_.size(), "request type id out of range");
  return types_[id];
}

RequestTypeId Catalog::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<RequestTypeId>(i);
  }
  DOPE_REQUIRE(false, "unknown request type: " + name);
  return 0;  // unreachable
}

Mixture::Mixture(std::vector<RequestTypeId> types, std::vector<double> weights)
    : types_(std::move(types)) {
  DOPE_REQUIRE(types_.size() == weights.size(),
               "types/weights size mismatch");
  DOPE_REQUIRE(!types_.empty(), "mixture must not be empty");
  double total = 0.0;
  for (double w : weights) {
    DOPE_REQUIRE(w >= 0.0, "mixture weights must be non-negative");
    total += w;
  }
  DOPE_REQUIRE(total > 0.0, "mixture weights must sum to a positive value");
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

Mixture Mixture::single(RequestTypeId type) { return Mixture({type}, {1.0}); }

Mixture Mixture::alios_normal() {
  // Normal users browsing the EC application: overwhelmingly light text
  // requests, with a thin tail of heavy recommendation/classification and
  // catalog-scan calls. The heavy tail is what PDF co-locates with attack
  // traffic, so its share bounds the collateral damage Anti-DOPE accepts
  // (paper Section 5.4).
  return Mixture(
      {Catalog::kCollaFilt, Catalog::kKMeans, Catalog::kWordCount,
       Catalog::kTextCont},
      {0.01, 0.015, 0.025, 0.95});
}

RequestTypeId Mixture::sample(Rng& rng) const {
  DOPE_REQUIRE(!types_.empty(), "cannot sample an empty mixture");
  const double u = rng.uniform();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(types_.size()) -
                                   1));
  return types_[idx];
}

}  // namespace dope::workload
