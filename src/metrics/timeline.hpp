// Periodic sampling of scalar signals (power, battery SoC, queue depth).
#pragma once

#include <vector>

#include "common/inline_function.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"

namespace dope::metrics {

/// One timestamped sample.
struct Sample {
  Time t = 0;
  double value = 0.0;
};

/// Samples `probe()` every `interval` and retains the full timeline plus
/// summary statistics. Used for the paper's power traces (Fig. 3, 15a) and
/// battery SoC curves (Fig. 18).
class TimelineRecorder {
 public:
  /// `probe` is called once per sampling tick; inline-stored (no heap),
  /// same contract as the engine's EventFn callbacks.
  TimelineRecorder(sim::Engine& engine, Duration interval,
                   common::InlineFunction<double()> probe);
  ~TimelineRecorder();

  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  const std::vector<Sample>& samples() const { return samples_; }
  const OnlineStats& stats() const { return stats_; }
  const Percentiles& distribution() const { return distribution_; }

  /// Stops sampling (also happens on destruction).
  void stop();

  /// Mean of samples within [from, to).
  double mean_between(Time from, Time to) const;

 private:
  sim::Engine& engine_;
  common::InlineFunction<double()> probe_;
  sim::PeriodicHandle handle_;
  std::vector<Sample> samples_;
  OnlineStats stats_;
  Percentiles distribution_;
};

}  // namespace dope::metrics
