// Request-level metrics collection.
//
// Consumes terminal `RequestRecord`s and maintains the populations the
// paper reports separately: legitimate ("good user") vs. attacker traffic,
// split by outcome, with full latency distributions for completions.
// Defenses never see the ground-truth attack flag; only this recorder does.
#pragma once

#include <cstdint>
#include <map>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "workload/request.hpp"

namespace dope::metrics {

/// Outcome counters for one traffic population.
struct OutcomeCounts {
  std::uint64_t completed = 0;
  std::uint64_t dropped_by_limit = 0;
  std::uint64_t blocked_by_firewall = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t failed_outage = 0;
  std::uint64_t dropped_network = 0;

  std::uint64_t terminal() const {
    return completed + dropped_by_limit + blocked_by_firewall +
           rejected_queue_full + timed_out + failed_outage +
           dropped_network;
  }
  std::uint64_t lost() const { return terminal() - completed; }
};

/// Latency + outcome statistics for normal and attack populations.
class RequestMetrics {
 public:
  /// Sink entry point; hand `sink()` to servers/cluster.
  void record(const workload::RequestRecord& record);

  /// Builds a RecordSink bound to this object (object must outlive it).
  workload::RecordSink sink();

  const OutcomeCounts& normal_counts() const { return normal_counts_; }
  const OutcomeCounts& attack_counts() const { return attack_counts_; }

  /// Latency distribution of *completed* requests, milliseconds.
  const Percentiles& normal_latency_ms() const { return normal_latency_; }
  const Percentiles& attack_latency_ms() const { return attack_latency_; }

  /// Fraction of legitimate requests that completed (paper's "service
  /// availability"). 1.0 when no legitimate request terminated yet.
  double availability() const;

  /// Fraction of *all* requests that were dropped/shed before service
  /// (how aggressively Token-style schemes discard packets).
  double drop_fraction() const;

  std::uint64_t total_terminal() const {
    return normal_counts_.terminal() + attack_counts_.terminal();
  }

  /// Completed requests keyed by the serving zone (`ServerRef::kNoZone`
  /// for a standalone cluster). Ordered for deterministic iteration;
  /// site-level recorders see every zone a record came from.
  const std::map<std::int32_t, std::uint64_t>& completed_by_zone() const {
    return completed_by_zone_;
  }

 private:
  OutcomeCounts normal_counts_;
  OutcomeCounts attack_counts_;
  Percentiles normal_latency_;
  Percentiles attack_latency_;
  std::map<std::int32_t, std::uint64_t> completed_by_zone_;
};

}  // namespace dope::metrics
