// Cluster-level energy accounting.
//
// Splits consumed energy by origin: utility supply vs. battery discharge
// (plus the extra utility energy spent recharging the battery). The paper
// normalises total consumption to the supplied utility energy (Fig. 19).
#pragma once

#include "common/units.hpp"

namespace dope::metrics {

/// Accumulated energy by source.
struct EnergyAccount {
  /// Energy delivered directly by the utility feed to the IT load.
  Joules utility{0.0};
  /// Energy delivered by battery discharge.
  Joules battery{0.0};
  /// Utility energy diverted into recharging the battery.
  Joules recharge{0.0};

  /// Total energy the IT load consumed.
  Joules load_total() const { return utility + battery; }

  /// Total energy drawn from the utility feed.
  Joules utility_total() const { return utility + recharge; }

  void add_slot(Watts utility_power, Watts battery_power,
                Watts recharge_power, Duration slot) {
    utility += energy_of(utility_power, slot);
    battery += energy_of(battery_power, slot);
    recharge += energy_of(recharge_power, slot);
  }

  void add_joules(Joules utility_j, Joules battery_j, Joules recharge_j) {
    utility += utility_j;
    battery += battery_j;
    recharge += recharge_j;
  }
};

}  // namespace dope::metrics
