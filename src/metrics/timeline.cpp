#include "metrics/timeline.hpp"

#include <utility>

#include "common/expect.hpp"

namespace dope::metrics {

TimelineRecorder::TimelineRecorder(sim::Engine& engine, Duration interval,
                                   common::InlineFunction<double()> probe)
    : engine_(engine), probe_(std::move(probe)) {
  DOPE_REQUIRE(interval > 0, "sampling interval must be positive");
  DOPE_REQUIRE(probe_ != nullptr, "probe must be callable");
  handle_ = engine_.every(interval, [this] {
    const double v = probe_();
    samples_.push_back({engine_.now(), v});
    stats_.add(v);
    distribution_.add(v);
  });
}

TimelineRecorder::~TimelineRecorder() { stop(); }

void TimelineRecorder::stop() { handle_.stop(); }

double TimelineRecorder::mean_between(Time from, Time to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.t >= from && s.t < to) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace dope::metrics
