#include "metrics/request_metrics.hpp"

namespace dope::metrics {

namespace {

void bump(OutcomeCounts& counts, workload::RequestOutcome outcome) {
  switch (outcome) {
    case workload::RequestOutcome::kCompleted: ++counts.completed; break;
    case workload::RequestOutcome::kDroppedByLimit:
      ++counts.dropped_by_limit;
      break;
    case workload::RequestOutcome::kBlockedByFirewall:
      ++counts.blocked_by_firewall;
      break;
    case workload::RequestOutcome::kRejectedQueueFull:
      ++counts.rejected_queue_full;
      break;
    case workload::RequestOutcome::kTimedOut: ++counts.timed_out; break;
    case workload::RequestOutcome::kFailedOutage:
      ++counts.failed_outage;
      break;
    case workload::RequestOutcome::kDroppedNetwork:
      ++counts.dropped_network;
      break;
  }
}

}  // namespace

void RequestMetrics::record(const workload::RequestRecord& record) {
  const bool attack = record.request.ground_truth_attack;
  OutcomeCounts& counts = attack ? attack_counts_ : normal_counts_;
  bump(counts, record.outcome);
  if (record.outcome == workload::RequestOutcome::kCompleted) {
    Percentiles& latency = attack ? attack_latency_ : normal_latency_;
    latency.add(to_millis(record.latency));
    ++completed_by_zone_[record.server.zone];
  }
}

workload::RecordSink RequestMetrics::sink() {
  return [this](const workload::RequestRecord& record) { this->record(record); };
}

double RequestMetrics::availability() const {
  const std::uint64_t terminal = normal_counts_.terminal();
  if (terminal == 0) return 1.0;
  return static_cast<double>(normal_counts_.completed) /
         static_cast<double>(terminal);
}

double RequestMetrics::drop_fraction() const {
  const std::uint64_t terminal = total_terminal();
  if (terminal == 0) return 0.0;
  const std::uint64_t lost =
      normal_counts_.lost() + attack_counts_.lost();
  return static_cast<double>(lost) / static_cast<double>(terminal);
}

}  // namespace dope::metrics
