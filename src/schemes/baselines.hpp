// The paper's baseline power-management schemes (Table 2).
//
//   None     no enforcement at all — the uncapped reference used by the
//            vulnerability-characterisation experiments (Figs. 3-5).
//   Capping  traditional performance-scaling-only capping: when demand
//            exceeds the budget, the whole cluster is DVFS-throttled to
//            the highest uniform level that fits; frequencies recover
//            step-wise once there is headroom.
//   Shaving  UPS-based peak shaving (Govindan/Wang style): the battery
//            absorbs the deficit first and DVFS engages only for whatever
//            the battery cannot deliver; headroom recharges the battery.
//   Token    a *power-based* token bucket at the NLB: the bucket refills
//            with the budget's usable joules and each admitted request
//            debits its estimated energy; requests beyond that are shed.
//            A slow multiplicative feedback trims the refill rate when a
//            slot still overshoots (estimation error), mimicking an
//            adaptive rate limiter.
#pragma once

#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "net/token_bucket.hpp"
#include "schemes/util.hpp"

namespace dope::schemes {

/// No power management: demand is never capped.
class NoScheme final : public cluster::PowerScheme {
 public:
  std::string name() const override { return "None"; }
  void on_slot(Time now, Duration slot) override {
    (void)now;
    (void)slot;
  }
};

/// DVFS-only capping of the whole cluster.
class CappingScheme final : public cluster::PowerScheme {
 public:
  /// `headroom_margin`: fraction of the budget that must remain free for a
  /// frequency raise to be attempted (hysteresis against oscillation).
  explicit CappingScheme(double headroom_margin = 0.02);

  std::string name() const override { return "Capping"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  void on_slot(Time now, Duration slot) override;

 private:
  double headroom_margin_;
  power::DvfsLevel target_;
  bool attached_ = false;
};

/// Battery-first peak shaving with DVFS fallback.
class ShavingScheme final : public cluster::PowerScheme {
 public:
  explicit ShavingScheme(double headroom_margin = 0.02);

  std::string name() const override { return "Shaving"; }
  void attach(cluster::Cluster& cluster) override;
  void on_slot(Time now, Duration slot) override;

  /// Watts the battery delivered in the most recent slot (telemetry).
  Watts last_battery_power() const { return last_battery_power_; }

 private:
  double headroom_margin_;
  power::DvfsLevel target_;
  Watts last_battery_power_{0.0};
};

/// Power-based token-bucket admission control at the NLB.
class TokenScheme final : public cluster::PowerScheme {
 public:
  /// `burst_seconds`: bucket capacity expressed as seconds of refill.
  explicit TokenScheme(double burst_seconds = 1.0);

  std::string name() const override { return "Token"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  bool admit(const workload::Request& request) override;
  void on_slot(Time now, Duration slot) override;

  const net::EnergyTokenBucket& bucket() const { return *bucket_; }

 private:
  /// Estimated energy (joules) one request costs at full frequency.
  Joules request_cost(const workload::Request& request) const;

  double burst_seconds_;
  std::unique_ptr<net::EnergyTokenBucket> bucket_;
  /// Usable refill (budget minus the cluster idle floor).
  Watts base_refill_{0.0};
  /// Multiplicative feedback on the refill rate.
  double refill_scale_ = 1.0;
};

}  // namespace dope::schemes
