// Hierarchy-aware power capping.
//
// Flat capping watches one number — cluster total vs. facility budget —
// and misses rack-local emergencies: a flood concentrated on one rack
// (source-affinity routing, a hot shard) can overload that rack's PDU
// while the cluster total stays comfortably under the feed rating. This
// scheme enforces *every* level of the delivery tree: each violated PDU
// throttles its own rack, and a facility-level violation throttles
// everything (like flat capping).
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "power/hierarchy.hpp"
#include "schemes/util.hpp"

namespace dope::obs {
class Counter;
class Hub;
}  // namespace dope::obs

namespace dope::schemes {

/// Per-level capping over a PowerTopology.
class HierarchicalCappingScheme final : public cluster::PowerScheme {
 public:
  /// The topology must cover exactly the cluster's servers (validated at
  /// attach time). `recovery_debounce`: consecutive clean slots a rack
  /// must show before its frequency is raised one step (prevents the
  /// raise/violate limit cycle under a saturating load).
  explicit HierarchicalCappingScheme(power::PowerTopology topology,
                                     double headroom_margin = 0.05,
                                     unsigned recovery_debounce = 5);

  std::string name() const override { return "Hier-Capping"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  void on_slot(Time now, Duration slot) override;

  const power::PowerTopology& topology() const { return topology_; }

  /// Load snapshot of the most recent slot.
  const power::HierarchyLoad& last_load() const { return last_load_; }

  /// Rack-local violations detected so far (facility was fine).
  std::uint64_t rack_interventions() const { return rack_interventions_; }

 private:
  power::PowerTopology topology_;
  double headroom_margin_;
  unsigned recovery_debounce_;
  /// Per-PDU node groups and their current uniform target levels.
  std::vector<std::vector<server::ServerNode*>> rack_nodes_;
  std::vector<power::DvfsLevel> rack_target_;
  std::vector<unsigned> rack_clean_slots_;
  power::HierarchyLoad last_load_;
  std::uint64_t rack_interventions_ = 0;
  obs::Hub* hub_ = nullptr;
  obs::Counter* obs_facility_violations_ = nullptr;
  obs::Counter* obs_rack_violations_ = nullptr;
};

}  // namespace dope::schemes
