// Oracle isolation scheme — an upper bound, NOT a deployable defense.
//
// This scheme reads `Request::ground_truth_attack`, which no real system
// can observe, and routes attacker traffic to an isolation pool with
// perfect accuracy. It exists purely as a research yardstick: the gap
// between Anti-DOPE (URL-class heuristics) and this oracle is exactly the
// collateral damage Anti-DOPE's KISS classification accepts — legitimate
// heavy requests sharing the suspect pool. Used by the ablation benches.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "net/load_balancer.hpp"
#include "schemes/util.hpp"

namespace dope::schemes {

/// Perfect-knowledge isolation + differentiated throttling.
class OracleScheme final : public cluster::PowerScheme {
 public:
  /// `isolation_fraction`: share of servers quarantining attack traffic.
  explicit OracleScheme(double isolation_fraction = 0.25);

  std::string name() const override { return "Oracle"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  net::Backend* route(const workload::Request& request) override;
  void on_slot(Time now, Duration slot) override;

 private:
  double isolation_fraction_;
  std::vector<server::ServerNode*> isolated_nodes_;
  std::vector<server::ServerNode*> clean_nodes_;
  std::unique_ptr<net::LoadBalancer> isolated_lb_;
  std::unique_ptr<net::LoadBalancer> clean_lb_;
  power::DvfsLevel isolated_target_ = 0;
};

}  // namespace dope::schemes
