#include "schemes/hierarchical.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"
#include "obs/hub.hpp"

namespace dope::schemes {

HierarchicalCappingScheme::HierarchicalCappingScheme(
    power::PowerTopology topology, double headroom_margin,
    unsigned recovery_debounce)
    : topology_(std::move(topology)),
      headroom_margin_(headroom_margin),
      recovery_debounce_(recovery_debounce) {
  DOPE_REQUIRE(headroom_margin >= 0.0 && headroom_margin < 1.0,
               "headroom margin must be in [0, 1)");
  DOPE_REQUIRE(recovery_debounce >= 1,
               "debounce must be at least one slot");
}

void HierarchicalCappingScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  topology_.validate(cluster.data().num_servers());
  auto nodes = cluster.data().servers();
  rack_nodes_.clear();
  rack_target_.clear();
  for (const auto& pdu : topology_.pdus) {
    std::vector<server::ServerNode*> rack;
    for (const std::size_t s : pdu.servers) rack.push_back(nodes[s]);
    rack_nodes_.push_back(std::move(rack));
    rack_target_.push_back(cluster.ladder().max_level());
    rack_clean_slots_.push_back(0);
  }
  hub_ = cluster.engine().obs();
  if (hub_ != nullptr) {
    auto& reg = hub_->registry();
    obs_facility_violations_ =
        &reg.counter("power.level_violation", {{"level", "facility"}});
    obs_rack_violations_ =
        &reg.counter("power.level_violation", {{"level", "pdu"}});
  }
}

void HierarchicalCappingScheme::detach() {
  rack_nodes_.clear();
  rack_target_.clear();
  rack_clean_slots_.clear();
  hub_ = nullptr;
  obs_facility_violations_ = nullptr;
  obs_rack_violations_ = nullptr;
  ControlStage::detach();
}

void HierarchicalCappingScheme::on_slot(Time now, Duration slot) {
  (void)slot;
  const auto& ladder = cluster_->ladder();
  auto nodes = cluster_->data().servers();
  std::vector<Watts> per_server;
  per_server.reserve(nodes.size());
  for (auto* node : nodes) per_server.push_back(node->current_power());
  last_load_ = power::evaluate_hierarchy(topology_, per_server);

  const bool facility_hot = last_load_.facility.violated();
  if (last_load_.rack_only_violation()) ++rack_interventions_;
  if (facility_hot && hub_ != nullptr) {
    obs_facility_violations_->inc();
    obs::TraceEvent e;
    e.t = now;
    e.type = obs::EventType::kLevelViolation;
    e.source = "hierarchy";
    e.num.emplace_back("load_w", last_load_.facility.load.value());
    e.num.emplace_back("rating_w", last_load_.facility.rating.value());
    e.str.emplace_back("level", "facility");
    hub_->event(std::move(e));
  }

  for (std::size_t p = 0; p < rack_nodes_.size(); ++p) {
    const auto& level_load = last_load_.pdus[p];
    // A rack must satisfy both its own PDU rating and its proportional
    // share of the facility rating when the feed itself is hot.
    Watts allowance = level_load.rating;
    if (facility_hot) {
      const double share =
          level_load.load /
          std::max(Watts{1e-9}, last_load_.facility.load);
      allowance = std::min(allowance,
                           share * topology_.facility_rating);
    }
    if (level_load.load > allowance) {
      rack_clean_slots_[p] = 0;
      if (hub_ != nullptr) {
        obs_rack_violations_->inc();
        obs::TraceEvent e;
        e.t = now;
        e.type = obs::EventType::kLevelViolation;
        e.source = "hierarchy";
        e.num.emplace_back("pdu", static_cast<double>(p));
        e.num.emplace_back("load_w", level_load.load.value());
        e.num.emplace_back("allowance_w", allowance.value());
        e.str.emplace_back("level", "pdu");
        hub_->event(std::move(e));
      }
      const auto level = find_uniform_level(rack_nodes_[p], ladder,
                                            allowance, rack_target_[p]);
      if (level != rack_target_[p] || level == ladder.min_level()) {
        rack_target_[p] = level;
        request_uniform_level(rack_nodes_[p], rack_target_[p]);
      }
      continue;
    }
    // Recovery: one step per slot within this rack's own headroom, only
    // after a debounced streak of clean slots.
    ++rack_clean_slots_[p];
    if (rack_target_[p] < ladder.max_level() &&
        rack_clean_slots_[p] >= recovery_debounce_) {
      const auto next = rack_target_[p] + 1;
      const Watts projected =
          estimate_power_at_uniform(rack_nodes_[p], next);
      if (projected <= allowance * (1.0 - headroom_margin_)) {
        rack_target_[p] = next;
        request_uniform_level(rack_nodes_[p], rack_target_[p]);
        rack_clean_slots_[p] = 0;
      }
    }
  }
}

}  // namespace dope::schemes
