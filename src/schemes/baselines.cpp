#include "schemes/baselines.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::schemes {

// ---------------------------------------------------------------- Capping

CappingScheme::CappingScheme(double headroom_margin)
    : headroom_margin_(headroom_margin), target_(0) {
  DOPE_REQUIRE(headroom_margin >= 0.0 && headroom_margin < 1.0,
               "headroom margin must be in [0, 1)");
}

void CappingScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  target_ = cluster.ladder().max_level();
  attached_ = true;
}

void CappingScheme::detach() {
  attached_ = false;
  ControlStage::detach();
}

void CappingScheme::on_slot(Time now, Duration slot) {
  (void)now;
  (void)slot;
  DOPE_ASSERT(attached_);
  auto nodes = cluster_->data().servers();
  const Watts budget = cluster_->power().budget();
  const Watts demand = cluster_->data().total_power();
  const auto& ladder = cluster_->ladder();

  if (demand > budget) {
    // Throttle: deepest-first search for the highest level that fits.
    const power::DvfsLevel level =
        find_uniform_level(nodes, ladder, budget, target_);
    if (level != target_) {
      target_ = level;
      request_uniform_level(nodes, target_);
    } else if (level == ladder.min_level()) {
      // Already at the floor; nothing more DVFS can do.
      request_uniform_level(nodes, target_);
    }
    return;
  }
  // Recover one step per slot when there is comfortable headroom.
  if (target_ < ladder.max_level()) {
    const power::DvfsLevel next = target_ + 1;
    const Watts projected = estimate_power_at_uniform(nodes, next);
    if (projected <= budget * (1.0 - headroom_margin_)) {
      target_ = next;
      request_uniform_level(nodes, target_);
    }
  }
}

// ---------------------------------------------------------------- Shaving

ShavingScheme::ShavingScheme(double headroom_margin)
    : headroom_margin_(headroom_margin), target_(0) {
  DOPE_REQUIRE(headroom_margin >= 0.0 && headroom_margin < 1.0,
               "headroom margin must be in [0, 1)");
}

void ShavingScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  target_ = cluster.ladder().max_level();
  battery::Battery* battery = cluster.power().battery();
  DOPE_REQUIRE(battery != nullptr,
               "ShavingScheme requires a cluster battery");
}

void ShavingScheme::on_slot(Time now, Duration slot) {
  (void)now;
  auto nodes = cluster_->data().servers();
  const Watts budget = cluster_->power().budget();
  // Sense the worse of the instantaneous reading and the just-finished
  // slot's average so intra-slot load growth stays off the utility feed.
  const Watts demand =
      std::max(cluster_->data().total_power(), cluster_->power().last_slot_demand());
  const auto& ladder = cluster_->ladder();
  battery::Battery& battery = *cluster_->power().battery();

  last_battery_power_ = Watts{0.0};
  const Watts deficit = demand - budget;
  if (deficit > Watts{0.0}) {
    // Battery first: reserve the discharge for this whole slot, with a
    // small guard band on top of the instantaneous reading so intra-slot
    // load growth does not leak onto the utility feed.
    const Watts guard = 0.03 * budget;
    last_battery_power_ = battery.discharge(deficit + guard, slot);
    const Watts remaining = deficit - last_battery_power_;
    if (remaining > Watts{1e-9}) {
      // The battery could not carry the peak alone: DVFS covers the rest.
      const Watts allowance = budget + last_battery_power_;
      const power::DvfsLevel level =
          find_uniform_level(nodes, ladder, allowance, target_);
      target_ = level;
      request_uniform_level(nodes, target_);
    }
    return;
  }

  // Headroom: recover frequency first, then recharge with what is left.
  Watts headroom = -deficit;
  if (target_ < ladder.max_level()) {
    const power::DvfsLevel next = target_ + 1;
    const Watts projected = estimate_power_at_uniform(nodes, next);
    if (projected <= budget * (1.0 - headroom_margin_)) {
      target_ = next;
      request_uniform_level(nodes, target_);
      headroom = std::max(Watts{0.0}, budget - projected);
    }
  }
  if (headroom > Watts{0.0} && !battery.full()) {
    battery.charge(headroom, slot);
  }
}

// ------------------------------------------------------------------ Token

TokenScheme::TokenScheme(double burst_seconds)
    : burst_seconds_(burst_seconds) {
  DOPE_REQUIRE(burst_seconds > 0, "burst window must be positive");
}

void TokenScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  // Usable power for request work: budget minus what the cluster burns
  // when fully idle at maximum frequency.
  Watts idle_floor{0.0};
  for (auto* n : cluster.data().servers()) {
    idle_floor += n->power_model().idle_power(cluster.ladder().max_level());
  }
  base_refill_ = std::max(Watts{1.0}, cluster.power().budget() - idle_floor);
  bucket_ = std::make_unique<net::EnergyTokenBucket>(
      Joules{base_refill_.value() * burst_seconds_}, base_refill_);
}

void TokenScheme::detach() {
  // The bucket was sized from the old cluster's idle floor and budget;
  // attach rebuilds it for the next host.
  bucket_.reset();
  refill_scale_ = 1.0;
  ControlStage::detach();
}

Joules TokenScheme::request_cost(const workload::Request& request) const {
  const auto& profile = cluster_->catalog().type(request.type);
  const auto max_level = cluster_->ladder().max_level();
  const Watts p = power::active_power(profile.power, 1.0);
  const Duration t = profile.service_time(
      cluster_->ladder().relative(max_level), request.size_factor);
  return energy_of(p, t);
}

bool TokenScheme::admit(const workload::Request& request) {
  DOPE_ASSERT(bucket_ != nullptr);
  return bucket_->try_consume(request_cost(request),
                              cluster_->engine().now());
}

void TokenScheme::on_slot(Time now, Duration slot) {
  (void)slot;
  // Feedback trim: if the finished slot still overshot the budget (cost
  // under-estimation), shrink the refill; recover slowly when well under.
  const Watts budget = cluster_->power().budget();
  const Watts demand = cluster_->power().last_slot_demand();
  if (demand > budget) {
    refill_scale_ = std::max(0.05, refill_scale_ * 0.8);
  } else if (demand < 0.9 * budget && refill_scale_ < 1.0) {
    refill_scale_ = std::min(1.0, refill_scale_ * 1.05);
  }
  bucket_->set_refill_rate(base_refill_ * refill_scale_, now);
}

}  // namespace dope::schemes
