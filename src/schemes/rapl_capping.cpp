#include "schemes/rapl_capping.hpp"

#include <algorithm>
#include <vector>

#include "common/expect.hpp"

namespace dope::schemes {

RaplCappingScheme::RaplCappingScheme(double release_margin)
    : release_margin_(release_margin) {
  DOPE_REQUIRE(release_margin > 0.0 && release_margin <= 1.0,
               "release margin must be in (0, 1]");
}

void RaplCappingScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  rapl_.clear();
  for (auto* node : cluster.data().servers()) {
    rapl_.push_back(std::make_unique<server::RaplInterface>(*node));
  }
}

void RaplCappingScheme::detach() {
  rapl_.clear();
  capping_ = false;
  ControlStage::detach();
}

void RaplCappingScheme::on_slot(Time now, Duration slot) {
  (void)now;
  (void)slot;
  const Watts budget = cluster_->power().budget();
  const Watts demand = cluster_->data().total_power();

  if (demand > budget) {
    capping_ = true;
    // Guarantee every node its idle power, then split the remaining
    // budget proportionally to each node's *active* draw: idle nodes keep
    // their frequency, hot nodes absorb the entire reduction.
    const auto max_level = cluster_->ladder().max_level();
    Watts idle_total{0.0};
    Watts active_total{0.0};
    std::vector<Watts> idle(rapl_.size()), active(rapl_.size());
    for (std::size_t i = 0; i < rapl_.size(); ++i) {
      idle[i] = rapl_[i]->node().power_model().idle_power(max_level);
      active[i] = std::max(
          Watts{0.0},
          rapl_[i]->node().estimate_power_at(max_level) - idle[i]);
      idle_total += idle[i];
      active_total += active[i];
    }
    const Watts spare = budget - idle_total;
    for (std::size_t i = 0; i < rapl_.size(); ++i) {
      Watts slice;
      if (spare <= Watts{0.0}) {
        // Budget below the idle floor: split evenly; RAPL floors apply.
        slice = budget / static_cast<double>(rapl_.size());
      } else if (active_total <= Watts{1e-9}) {
        slice = idle[i] + spare / static_cast<double>(rapl_.size());
      } else {
        slice = idle[i] + spare * active[i] / active_total;
      }
      rapl_[i]->set_cap(std::max(Watts{1.0}, slice));
    }
    return;
  }
  if (capping_ && demand <= release_margin_ * budget) {
    capping_ = false;
    for (auto& rapl : rapl_) rapl->clear_cap();
  } else if (capping_) {
    // Still near the edge: keep caps but refresh against the current
    // active sets.
    for (auto& rapl : rapl_) rapl->enforce();
  }
}

}  // namespace dope::schemes
