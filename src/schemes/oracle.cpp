#include "schemes/oracle.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::schemes {

OracleScheme::OracleScheme(double isolation_fraction)
    : isolation_fraction_(isolation_fraction) {
  DOPE_REQUIRE(isolation_fraction > 0.0 && isolation_fraction < 1.0,
               "isolation fraction must be in (0, 1)");
}

void OracleScheme::attach(cluster::Cluster& cluster) {
  ControlStage::attach(cluster);
  auto nodes = cluster.data().servers();
  DOPE_REQUIRE(nodes.size() >= 2, "Oracle needs at least two servers");
  const auto k = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          static_cast<double>(nodes.size()) * isolation_fraction_ + 0.5),
      1, nodes.size() - 1);
  isolated_nodes_.assign(nodes.begin(), nodes.begin() + static_cast<long>(k));
  clean_nodes_.assign(nodes.begin() + static_cast<long>(k), nodes.end());
  isolated_lb_ = std::make_unique<net::LoadBalancer>(
      net::LbPolicy::kLeastLoaded,
      std::vector<net::Backend*>(isolated_nodes_.begin(),
                                 isolated_nodes_.end()));
  clean_lb_ = std::make_unique<net::LoadBalancer>(
      net::LbPolicy::kLeastLoaded,
      std::vector<net::Backend*>(clean_nodes_.begin(), clean_nodes_.end()));
  isolated_target_ = cluster.ladder().max_level();
}

net::Backend* OracleScheme::route(const workload::Request& request) {
  // The one deliberately impossible read in the codebase (see header).
  if (request.ground_truth_attack) return isolated_lb_->select(request);
  net::Backend* b = clean_lb_->select(request);
  return b != nullptr ? b : isolated_lb_->select(request);
}

void OracleScheme::detach() {
  isolated_nodes_.clear();
  clean_nodes_.clear();
  isolated_lb_.reset();
  clean_lb_.reset();
  ControlStage::detach();
}

void OracleScheme::on_slot(Time now, Duration slot) {
  (void)now;
  (void)slot;
  const Watts budget = cluster_->power().budget();
  const Watts demand = cluster_->data().total_power();
  const auto& ladder = cluster_->ladder();
  if (demand > budget) {
    const Watts clean_now = estimate_power_at_uniform(
        clean_nodes_, ladder.max_level());
    const Watts allowance = std::max(Watts{0.0}, budget - clean_now);
    isolated_target_ = find_uniform_level(isolated_nodes_, ladder,
                                          allowance, isolated_target_);
    request_uniform_level(isolated_nodes_, isolated_target_);
    return;
  }
  if (isolated_target_ < ladder.max_level()) {
    const power::DvfsLevel next = isolated_target_ + 1;
    const Watts projected =
        estimate_power_at_uniform(isolated_nodes_, next) +
        estimate_power_at_uniform(clean_nodes_, ladder.max_level());
    if (projected <= 0.98 * budget) {
      isolated_target_ = next;
      request_uniform_level(isolated_nodes_, isolated_target_);
    }
  }
}

}  // namespace dope::schemes
