// Shared helpers for power-scheme implementations.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "power/dvfs.hpp"
#include "server/node.hpp"

namespace dope::schemes {

/// Estimated aggregate power if every server in `nodes` ran at `level`
/// with its *current* active request set.
Watts estimate_power_at_uniform(const std::vector<server::ServerNode*>& nodes,
                                power::DvfsLevel level);

/// Highest level L <= `ceiling` whose uniform estimate over `nodes` stays
/// within `allowance`; returns the ladder minimum when even that violates.
power::DvfsLevel find_uniform_level(
    const std::vector<server::ServerNode*>& nodes,
    const power::DvfsLadder& ladder, Watts allowance,
    power::DvfsLevel ceiling);

/// Requests `level` on every node (actuation latency applies per node).
void request_uniform_level(const std::vector<server::ServerNode*>& nodes,
                           power::DvfsLevel level);

}  // namespace dope::schemes
