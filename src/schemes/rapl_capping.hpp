// Per-node proportional capping through the RAPL interface.
//
// An ablation of the Capping baseline's design choice: instead of forcing
// one *uniform* DVFS level onto the whole cluster, distribute the budget
// across nodes proportionally to their instantaneous demand and let each
// node's RAPL actuator pick its own operating point. Lightly loaded nodes
// keep their frequency; only the hot ones throttle.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/scheme.hpp"
#include "server/rapl.hpp"

namespace dope::schemes {

/// Demand-proportional per-node power capping.
class RaplCappingScheme final : public cluster::PowerScheme {
 public:
  /// `release_margin`: caps are lifted when demand falls below this
  /// fraction of the budget (hysteresis).
  explicit RaplCappingScheme(double release_margin = 0.95);

  std::string name() const override { return "RAPL-Capping"; }
  void attach(cluster::Cluster& cluster) override;
  void detach() override;
  void on_slot(Time now, Duration slot) override;

  /// True while per-node caps are active.
  bool capping() const { return capping_; }

 private:
  double release_margin_;
  std::vector<std::unique_ptr<server::RaplInterface>> rapl_;
  bool capping_ = false;
};

}  // namespace dope::schemes
