#include "schemes/util.hpp"

namespace dope::schemes {

Watts estimate_power_at_uniform(const std::vector<server::ServerNode*>& nodes,
                                power::DvfsLevel level) {
  Watts p{0.0};
  for (const auto* n : nodes) p += n->estimate_power_at(level);
  return p;
}

power::DvfsLevel find_uniform_level(
    const std::vector<server::ServerNode*>& nodes,
    const power::DvfsLadder& ladder, Watts allowance,
    power::DvfsLevel ceiling) {
  // Walk down from the ceiling; the estimate is monotone in level, so the
  // first level that fits is the best one.
  for (std::ptrdiff_t l = static_cast<std::ptrdiff_t>(ceiling); l >= 0; --l) {
    const auto level = static_cast<power::DvfsLevel>(l);
    if (estimate_power_at_uniform(nodes, level) <= allowance) return level;
  }
  return ladder.min_level();
}

void request_uniform_level(const std::vector<server::ServerNode*>& nodes,
                           power::DvfsLevel level) {
  for (auto* n : nodes) n->request_level(level);
}

}  // namespace dope::schemes
