#include "battery/battery.hpp"

#include <algorithm>

#include "common/audit.hpp"
#include "common/expect.hpp"

namespace dope::battery {

BatterySpec BatterySpec::sized_for(Watts load, Duration duration,
                                   double charge_fraction) {
  DOPE_REQUIRE(load > Watts{0.0}, "load must be positive");
  DOPE_REQUIRE(duration > 0, "duration must be positive");
  DOPE_REQUIRE(charge_fraction > 0, "charge fraction must be positive");
  BatterySpec spec;
  spec.capacity = energy_of(load, duration);
  spec.max_discharge = load;
  spec.max_charge = load * charge_fraction;
  return spec;
}

Battery::Battery(BatterySpec spec) : spec_(spec), stored_(spec.capacity) {
  DOPE_REQUIRE(spec_.capacity > Joules{0.0},
               "battery capacity must be positive");
  DOPE_REQUIRE(spec_.charge_efficiency > 0 && spec_.charge_efficiency <= 1.0,
               "charge efficiency must be in (0, 1]");
  DOPE_REQUIRE(
      spec_.reserve_fraction >= 0.0 && spec_.reserve_fraction < 1.0,
      "reserve fraction must be in [0, 1)");
}

double Battery::soc() const { return stored_ / spec_.capacity; }

Joules Battery::shavable() const {
  return std::max(Joules{0.0},
                  stored_ - spec_.reserve_fraction * spec_.capacity);
}

Watts Battery::discharge(Watts power, Duration slot, bool emergency) {
  DOPE_REQUIRE(power >= Watts{0.0}, "discharge power must be non-negative");
  DOPE_REQUIRE(slot > 0, "slot must be positive");
  const Joules available = emergency ? stored_ : shavable();
  if (power <= Watts{0.0} || available <= Joules{0.0}) return Watts{0.0};
  Watts deliverable = power;
  if (spec_.max_discharge > Watts{0.0}) {
    deliverable = std::min(deliverable, spec_.max_discharge);
  }
  // Energy-limited: cannot deliver more than what is available this slot.
  const Watts energy_limit = available / slot;
  deliverable = std::min(deliverable, energy_limit);
  const Joules withdrawn = energy_of(deliverable, slot);
  stored_ = std::max(Joules{0.0}, stored_ - withdrawn);
  total_discharged_ += withdrawn;
  if (withdrawn > Joules{0.0}) ++discharge_events_;
  if constexpr (audit::kEnabled) {
    audit::check_battery_rate(nullptr, -1, deliverable,
                              spec_.max_discharge, "discharge");
    audit::check_battery_soc(nullptr, -1, stored_, spec_.capacity);
  }
  return deliverable;
}

Watts Battery::charge(Watts power, Duration slot) {
  DOPE_REQUIRE(power >= Watts{0.0}, "charge power must be non-negative");
  DOPE_REQUIRE(slot > 0, "slot must be positive");
  if (power <= Watts{0.0} || full()) return Watts{0.0};
  Watts drawn = power;
  if (spec_.max_charge > Watts{0.0}) {
    drawn = std::min(drawn, spec_.max_charge);
  }
  // Do not overshoot capacity: limit by the room left, accounting for the
  // efficiency loss between drawn and stored energy.
  const Joules room = spec_.capacity - stored_;
  const Watts room_limit{
      room.value() / (spec_.charge_efficiency * to_seconds(slot))};
  drawn = std::min(drawn, room_limit);
  const Joules stored_gain = energy_of(drawn, slot) * spec_.charge_efficiency;
  stored_ = std::min(spec_.capacity, stored_ + stored_gain);
  total_charge_drawn_ += energy_of(drawn, slot);
  if constexpr (audit::kEnabled) {
    audit::check_battery_rate(nullptr, -1, drawn, spec_.max_charge,
                              "charge");
    audit::check_battery_soc(nullptr, -1, stored_, spec_.capacity);
  }
  return drawn;
}

}  // namespace dope::battery
