// Battery / UPS energy-storage model.
//
// Data centers increasingly use their UPS batteries not only for outage
// ride-through but for *peak shaving*: discharging to cover short power
// peaks above the utility budget (Govindan et al., Wang et al.). The paper
// sizes a "mini battery" able to sustain the full web-application cluster
// for 2 minutes; a long DOPE-induced peak therefore drains it quickly.
//
// The model is slot-oriented: the power manager asks the battery to cover a
// deficit (watts) for the length of a slot; the battery returns the power
// it can actually deliver given its C-rate limit and remaining energy, and
// accounts the withdrawn joules. Recharge works symmetrically when there is
// budget headroom, with a round-trip efficiency penalty applied on charge.
#pragma once

#include "common/units.hpp"

namespace dope::battery {

/// Static battery parameters.
struct BatterySpec {
  /// Usable energy when fully charged (joules).
  Joules capacity{0.0};
  /// Maximum discharge power (watts). 0 means unlimited by rate.
  Watts max_discharge{0.0};
  /// Maximum recharge power drawn from the supply (watts).
  Watts max_charge{0.0};
  /// Fraction of charged energy actually stored (round-trip efficiency).
  double charge_efficiency = 0.9;
  /// Fraction of capacity held back for outage ride-through: ordinary
  /// peak-shaving discharge stops at this floor so the battery's original
  /// emergency function is never compromised (the paper's requirement
  /// that shaving not impair "normal functionality"). Emergency discharge
  /// may go below it.
  double reserve_fraction = 0.0;

  /// Sizes a battery that can sustain `load` for `duration` (the paper's
  /// 2-minute mini battery), with discharge rate exactly `load` and a
  /// recharge rate of `charge_fraction * load`.
  static BatterySpec sized_for(Watts load, Duration duration,
                               double charge_fraction = 0.25);
};

/// Mutable battery state with energy accounting.
class Battery {
 public:
  explicit Battery(BatterySpec spec);

  const BatterySpec& spec() const { return spec_; }

  /// Remaining stored energy (joules).
  Joules stored() const { return stored_; }

  /// State of charge in [0, 1].
  double soc() const;

  bool empty() const { return stored_ <= Joules{0.0}; }
  bool full() const { return stored_ >= spec_.capacity; }

  /// Requests `power` watts of discharge for `slot` microseconds. Returns
  /// the power actually delivered (possibly less than requested when the
  /// C-rate limit, remaining energy, or the reserve floor binds).
  /// Withdraws the corresponding energy from the store. Peak-shaving
  /// discharge respects `reserve_fraction`; pass `emergency = true` for
  /// outage ride-through, which may drain into the reserve.
  Watts discharge(Watts power, Duration slot, bool emergency = false);

  /// Energy available to non-emergency (peak-shaving) discharge.
  Joules shavable() const;

  /// Offers `power` watts of headroom for `slot` microseconds. Returns the
  /// power actually drawn from the supply for recharging (capped by the
  /// charge-rate limit and remaining capacity; efficiency loss applies to
  /// the stored amount, not the drawn amount).
  Watts charge(Watts power, Duration slot);

  /// Cumulative energy delivered by discharging since construction.
  Joules total_discharged() const { return total_discharged_; }

  /// Cumulative energy drawn from the supply for charging.
  Joules total_charge_drawn() const { return total_charge_drawn_; }

  /// Number of discharge events that delivered any energy.
  unsigned long discharge_events() const { return discharge_events_; }

  /// Resets charge to full without touching the accounting totals.
  void refill() { stored_ = spec_.capacity; }

 private:
  BatterySpec spec_;
  Joules stored_;
  Joules total_discharged_{0.0};
  Joules total_charge_drawn_{0.0};
  unsigned long discharge_events_ = 0;
};

}  // namespace dope::battery
