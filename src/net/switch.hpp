// Top-of-rack switch with finite packet-processing capacity.
//
// Network-layer DoS (paper Section 2.2) does not exhaust server CPU — it
// exhausts *connectivity*: router/switch processing capacity. This model
// gives the rack's ingress that finite capacity: packets are forwarded at
// up to `capacity_pps`, a small buffer absorbs bursts, and overflow is
// dropped before any server (or even the firewall) sees it.
//
// Together with the server model this completes the taxonomy the paper
// characterises: volume floods kill connectivity at low power; app-layer
// floods exhaust server resources; DOPE stays under both radars and
// attacks the power envelope.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "net/token_bucket.hpp"

namespace dope::net {

/// Switch forwarding parameters.
struct SwitchConfig {
  /// Sustained forwarding capacity (packets/requests per second).
  double capacity_pps = 20'000.0;
  /// Burst absorption (packets) on top of the sustained rate.
  double buffer_packets = 256.0;
};

/// Ingress switch; consult `forward` for every arriving packet.
class Switch {
 public:
  explicit Switch(SwitchConfig config);

  const SwitchConfig& config() const { return config_; }

  /// True if the packet is forwarded; false if the switch is saturated
  /// and the packet is dropped at the wire.
  bool forward(Time now);

  std::uint64_t forwarded() const { return bucket_.admitted(); }
  std::uint64_t dropped() const { return bucket_.rejected(); }

  /// Fraction of offered packets dropped so far.
  double drop_rate() const;

 private:
  SwitchConfig config_;
  TokenBucket bucket_;
};

}  // namespace dope::net
