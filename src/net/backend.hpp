// Abstract backend (compute node) interface seen by the network layer.
//
// The load balancer and routers only need load visibility and a submit
// path; `server::ServerNode` implements this interface. Keeping the
// interface here avoids a dependency cycle between net and server.
#pragma once

#include <cstddef>

#include "workload/request.hpp"

namespace dope::net {

/// A dispatch target for the load balancer.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier (server index within the cluster).
  virtual int backend_id() const = 0;

  /// Requests currently queued plus in service (load-balancing signal).
  virtual std::size_t load() const = 0;

  /// False when the node refuses new work (drained / unhealthy).
  virtual bool accepting() const = 0;

  /// Hands a request to the node. The node owns it from here and will
  /// eventually emit a completion/drop record.
  virtual void submit(workload::Request&& request) = 0;
};

}  // namespace dope::net
