// Perimeter firewall modelled on DDoS-deflate.
//
// DDoS-deflate periodically polls `netstat`, counts connections per source
// address, and bans sources whose rate exceeds a configured threshold (the
// paper uses the default 150 requests/second). Two properties matter for
// the DOPE threat model and are modelled faithfully:
//
//  1. *Thresholding is per source.* A botnet that spreads its traffic over
//     enough agents keeps every agent below the threshold and is never
//     banned — the DOPE operating region of Fig. 11.
//  2. *Detection lags.* The poll interval (plus an optional multi-strike
//     requirement) means a flood runs unhindered for a short window, which
//     is why Fig. 10 shows early power spikes even with the firewall on.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "workload/request.hpp"

namespace dope::obs {
class Counter;
class Hub;
class SpanTracer;
}  // namespace dope::obs

namespace dope::net {

/// Firewall tuning parameters.
struct FirewallConfig {
  /// Per-source request rate that triggers a ban (requests/second).
  double threshold_rps = 150.0;
  /// How often the source counters are polled (netstat cron granularity).
  Duration check_interval = 5 * kSecond;
  /// Consecutive over-threshold polls required before banning.
  unsigned required_strikes = 1;
  /// How long a banned source stays blocked.
  Duration ban_duration = 10 * kMinute;
};

/// Stateful per-source rate-threshold firewall.
class Firewall {
 public:
  /// `zone` stamps the firewall's metrics labels, trace events, and
  /// verdict spans; -1 (standalone cluster) suppresses it entirely.
  Firewall(sim::Engine& engine, FirewallConfig config, int zone = -1);
  ~Firewall();

  Firewall(const Firewall&) = delete;
  Firewall& operator=(const Firewall&) = delete;

  const FirewallConfig& config() const { return config_; }

  /// Counts the request against its source and returns whether it passes
  /// (false when the source is currently banned).
  bool admit(const workload::Request& request);

  /// Whether `source` is banned right now.
  bool is_banned(workload::SourceId source) const;

  /// Sources currently banned.
  std::size_t banned_count() const;

  /// Requests rejected so far.
  std::uint64_t blocked() const { return blocked_; }

  /// Total ban decisions made (a source re-banned counts again).
  std::uint64_t total_bans() const { return total_bans_; }

 private:
  void poll();

  sim::Engine& engine_;
  FirewallConfig config_;
  int zone_;
  sim::PeriodicHandle poller_;
  obs::Hub* hub_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_blocked_ = nullptr;
  obs::Counter* obs_bans_ = nullptr;
  /// Arrivals per source within the current poll window.
  std::unordered_map<workload::SourceId, std::uint32_t> window_counts_;
  /// Consecutive over-threshold polls per source.
  std::unordered_map<workload::SourceId, unsigned> strikes_;
  /// Ban expiry per source.
  std::unordered_map<workload::SourceId, Time> bans_;
  std::uint64_t blocked_ = 0;
  std::uint64_t total_bans_ = 0;
};

}  // namespace dope::net
