#include "net/token_bucket.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace dope::net {

TokenBucket::TokenBucket(double capacity, double refill_per_second)
    : capacity_(capacity),
      refill_per_second_(refill_per_second),
      tokens_(capacity) {
  DOPE_REQUIRE(capacity > 0, "bucket capacity must be positive");
  DOPE_REQUIRE(refill_per_second >= 0, "refill rate must be non-negative");
}

void TokenBucket::advance(Time now) {
  DOPE_REQUIRE(now >= last_, "token bucket time went backwards");
  if (now == last_) return;
  tokens_ = std::min(capacity_,
                     tokens_ + refill_per_second_ * to_seconds(now - last_));
  last_ = now;
}

double TokenBucket::available(Time now) {
  advance(now);
  return tokens_;
}

bool TokenBucket::try_consume(double tokens, Time now) {
  DOPE_REQUIRE(tokens >= 0, "token cost must be non-negative");
  advance(now);
  if (tokens_ + 1e-12 < tokens) {
    ++rejected_;
    return false;
  }
  tokens_ -= tokens;
  ++admitted_;
  return true;
}

void TokenBucket::set_refill_rate(double refill_per_second, Time now) {
  DOPE_REQUIRE(refill_per_second >= 0, "refill rate must be non-negative");
  advance(now);
  refill_per_second_ = refill_per_second;
}

}  // namespace dope::net
