#include "net/load_balancer.hpp"

#include <limits>
#include <string>

#include "common/expect.hpp"
#include "obs/hub.hpp"
#include "sim/engine.hpp"

namespace dope::net {

LoadBalancer::LoadBalancer(LbPolicy policy, std::vector<Backend*> pool,
                           std::uint64_t seed)
    : policy_(policy), pool_(std::move(pool)), rng_(seed) {
  DOPE_REQUIRE(!pool_.empty(), "load balancer pool must not be empty");
  for (const auto* b : pool_) {
    DOPE_REQUIRE(b != nullptr, "null backend in pool");
  }
}

void LoadBalancer::bind_obs(obs::Hub* hub, const char* pool, int zone) {
  if (hub == nullptr) return;
  obs::Labels labels{{"pool", pool}};
  if (zone >= 0) labels.emplace_back("zone", std::to_string(zone));
  obs_selected_ = &hub->registry().counter("net.lb_selected", labels);
  obs_no_backend_ = &hub->registry().counter("net.lb_no_backend", labels);
}

void LoadBalancer::bind_spans(sim::Engine* engine, obs::SpanTracer* spans,
                              const char* pool, int zone) {
  if (engine == nullptr || spans == nullptr) return;
  span_engine_ = engine;
  spans_ = spans;
  span_pool_ = pool;
  span_zone_ = zone;
}

Backend* LoadBalancer::select(const workload::Request& request) {
  Backend* chosen = do_select(request);
  if (obs_selected_ != nullptr) {
    (chosen != nullptr ? obs_selected_ : obs_no_backend_)->inc();
  }
  if (spans_ != nullptr) {
    obs::Span span;
    span.id = obs::span_id_for(request.id, obs::SpanKind::kLbPick);
    span.parent = obs::span_id_for(request.id, obs::SpanKind::kRequest);
    span.kind = obs::SpanKind::kLbPick;
    span.source_id = request.source;
    span.url_class = request.type;
    if (chosen != nullptr) span.server = chosen->backend_id();
    span.zone = span_zone_;
    span.label = span_pool_;
    span.outcome = chosen != nullptr ? "selected" : "no_backend";
    spans_->instant(std::move(span), span_engine_->now());
  }
  return chosen;
}

Backend* LoadBalancer::do_select(const workload::Request& request) {
  const std::size_t n = pool_.size();
  switch (policy_) {
    case LbPolicy::kRoundRobin: {
      for (std::size_t probe = 0; probe < n; ++probe) {
        Backend* b = pool_[rr_next_];
        rr_next_ = (rr_next_ + 1) % n;
        if (b->accepting()) return b;
      }
      return nullptr;
    }
    case LbPolicy::kLeastLoaded: {
      Backend* best = nullptr;
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (Backend* b : pool_) {
        if (!b->accepting()) continue;
        const std::size_t l = b->load();
        if (l < best_load) {
          best = b;
          best_load = l;
        }
      }
      return best;
    }
    case LbPolicy::kRandom: {
      for (std::size_t probe = 0; probe < 2 * n; ++probe) {
        Backend* b = pool_[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
        if (b->accepting()) return b;
      }
      // Fall back to a linear scan if random probing keeps missing.
      for (Backend* b : pool_) {
        if (b->accepting()) return b;
      }
      return nullptr;
    }
    case LbPolicy::kSourceHash: {
      std::uint64_t h = request.source;
      h = splitmix64(h);
      const std::size_t start = static_cast<std::size_t>(h % n);
      for (std::size_t probe = 0; probe < n; ++probe) {
        Backend* b = pool_[(start + probe) % n];
        if (b->accepting()) return b;
      }
      return nullptr;
    }
  }
  return nullptr;
}

bool LoadBalancer::dispatch(workload::Request&& request) {
  Backend* b = select(request);
  if (b == nullptr) return false;
  ++dispatched_;
  b->submit(std::move(request));
  return true;
}

}  // namespace dope::net
