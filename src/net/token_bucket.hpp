// Token bucket rate limiter.
//
// Classic leaky-bucket admission control, parameterised in arbitrary token
// units. The Token baseline (Table 2) instantiates it in *energy* units:
// the bucket refills at the power budget's rate (joules per second) and
// each admitted request debits its estimated energy cost, so admission is
// power-aware rather than packet-count-aware.
#pragma once

#include "common/units.hpp"

namespace dope::net {

/// Continuous-refill token bucket. Time is supplied by the caller (the
/// simulation clock) so the bucket itself stays engine-agnostic.
class TokenBucket {
 public:
  /// `capacity`: maximum accumulated tokens; `refill_per_second`: steady
  /// refill rate. The bucket starts full.
  TokenBucket(double capacity, double refill_per_second);

  double capacity() const { return capacity_; }
  double refill_rate() const { return refill_per_second_; }

  /// Tokens available at time `now`.
  double available(Time now);

  /// Attempts to withdraw `tokens` at time `now`. Returns true and debits
  /// on success; leaves the bucket untouched on failure.
  bool try_consume(double tokens, Time now);

  /// Changes the refill rate from `now` onward (budget changes).
  void set_refill_rate(double refill_per_second, Time now);

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  void advance(Time now);

  double capacity_;
  double refill_per_second_;
  double tokens_;
  Time last_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Energy-unit facade over `TokenBucket` for power-aware admission: the
/// bucket holds joules and refills in watts. The `.value()` unwraps live
/// here, at one audited boundary, so scheme code never handles raw token
/// doubles.
class EnergyTokenBucket {
 public:
  EnergyTokenBucket(Joules capacity, Watts refill_rate)
      : bucket_(capacity.value(), refill_rate.value()) {}

  Joules capacity() const { return Joules{bucket_.capacity()}; }
  Watts refill_rate() const { return Watts{bucket_.refill_rate()}; }

  /// Energy available at time `now`.
  Joules available(Time now) { return Joules{bucket_.available(now)}; }

  /// Attempts to withdraw `cost` at time `now`. Returns true and debits
  /// on success; leaves the bucket untouched on failure.
  bool try_consume(Joules cost, Time now) {
    return bucket_.try_consume(cost.value(), now);
  }

  /// Changes the refill rate from `now` onward (budget changes).
  void set_refill_rate(Watts refill_rate, Time now) {
    bucket_.set_refill_rate(refill_rate.value(), now);
  }

  std::uint64_t admitted() const { return bucket_.admitted(); }
  std::uint64_t rejected() const { return bucket_.rejected(); }

 private:
  TokenBucket bucket_;
};

}  // namespace dope::net
