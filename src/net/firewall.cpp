#include "net/firewall.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "obs/hub.hpp"

namespace dope::net {

Firewall::Firewall(sim::Engine& engine, FirewallConfig config, int zone)
    : engine_(engine), config_(config), zone_(zone) {
  DOPE_REQUIRE(config_.threshold_rps > 0, "threshold must be positive");
  DOPE_REQUIRE(config_.check_interval > 0, "check interval must be positive");
  DOPE_REQUIRE(config_.required_strikes >= 1, "need at least one strike");
  DOPE_REQUIRE(config_.ban_duration > 0, "ban duration must be positive");
  hub_ = engine_.obs();
  if (hub_ != nullptr) {
    auto& reg = hub_->registry();
    obs::Labels labels;
    if (zone_ >= 0) labels.emplace_back("zone", std::to_string(zone_));
    obs_admitted_ = &reg.counter("net.fw_admitted", labels);
    obs_blocked_ = &reg.counter("net.fw_blocked", labels);
    obs_bans_ = &reg.counter("net.fw_bans", labels);
    spans_ = hub_->spans();
  }
  poller_ = engine_.every(config_.check_interval, [this] { poll(); });
}

Firewall::~Firewall() { poller_.stop(); }

bool Firewall::admit(const workload::Request& request) {
  const bool banned = is_banned(request.source);
  if (spans_ != nullptr) {
    obs::Span span;
    span.id = obs::span_id_for(request.id, obs::SpanKind::kFirewall);
    span.parent = obs::span_id_for(request.id, obs::SpanKind::kRequest);
    span.kind = obs::SpanKind::kFirewall;
    span.source_id = request.source;
    span.url_class = request.type;
    span.zone = zone_;
    span.outcome = banned ? "blocked" : "pass";
    spans_->instant(std::move(span), engine_.now());
  }
  if (banned) {
    ++blocked_;
    if (obs_blocked_ != nullptr) obs_blocked_->inc();
    return false;
  }
  ++window_counts_[request.source];
  if (obs_admitted_ != nullptr) obs_admitted_->inc();
  return true;
}

bool Firewall::is_banned(workload::SourceId source) const {
  const auto it = bans_.find(source);
  return it != bans_.end() && it->second > engine_.now();
}

std::size_t Firewall::banned_count() const {
  std::size_t n = 0;
  const Time now = engine_.now();
  // dope-lint: allow(unordered-iter) — pure commutative count; no
  // output, trace, or state mutation depends on visit order.
  for (const auto& [src, until] : bans_) {
    if (until > now) ++n;
  }
  return n;
}

void Firewall::poll() {
  const double window_s = to_seconds(config_.check_interval);
  // Materialise the window sorted by source id: ban decisions emit log
  // lines and trace events, and hash order would make those exports
  // (and the strikes/bans insertion order) depend on the allocator.
  std::vector<std::pair<workload::SourceId, std::uint32_t>> window(
      window_counts_.begin(), window_counts_.end());
  std::sort(window.begin(), window.end());
  for (const auto& [source, count] : window) {
    const double rate = static_cast<double>(count) / window_s;
    if (rate > config_.threshold_rps) {
      unsigned& strikes = strikes_[source];
      ++strikes;
      if (strikes >= config_.required_strikes) {
        bans_[source] = engine_.now() + config_.ban_duration;
        ++total_bans_;
        strikes = 0;
        DOPE_LOG_INFO << "firewall banned source " << source << " at rate "
                      << rate << " rps";
        if (hub_ != nullptr) {
          obs_bans_->inc();
          obs::TraceEvent e;
          e.t = engine_.now();
          e.type = obs::EventType::kFirewallBan;
          e.source = "firewall";
          e.num.emplace_back("source_id", source);
          e.num.emplace_back("rate_rps", rate);
          if (zone_ >= 0) e.num.emplace_back("zone", zone_);
          hub_->event(std::move(e));
        }
      }
    } else {
      // Streak broken: the source behaved this window.
      const auto it = strikes_.find(source);
      if (it != strikes_.end()) strikes_.erase(it);
    }
  }
  window_counts_.clear();
}

}  // namespace dope::net
