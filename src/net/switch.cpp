#include "net/switch.hpp"

#include "common/expect.hpp"

namespace dope::net {

Switch::Switch(SwitchConfig config)
    : config_(config),
      bucket_(config.buffer_packets, config.capacity_pps) {
  DOPE_REQUIRE(config_.capacity_pps > 0, "capacity must be positive");
  DOPE_REQUIRE(config_.buffer_packets > 0, "buffer must be positive");
}

bool Switch::forward(Time now) { return bucket_.try_consume(1.0, now); }

double Switch::drop_rate() const {
  const std::uint64_t total = forwarded() + dropped();
  return total == 0
             ? 0.0
             : static_cast<double>(dropped()) / static_cast<double>(total);
}

}  // namespace dope::net
