// Network load balancer (NLB).
//
// Dispatches incoming requests over a pool of backends. Supports the
// classic stateless policies; Anti-DOPE's power-driven forwarding (PDF)
// wraps two of these — one per pool — behind a suspect-list router.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "net/backend.hpp"
#include "workload/request.hpp"

namespace dope::obs {
class Counter;
class Hub;
class SpanTracer;
}  // namespace dope::obs

namespace dope::sim {
class Engine;
}  // namespace dope::sim

namespace dope::net {

/// Backend selection policy.
enum class LbPolicy {
  kRoundRobin,
  kLeastLoaded,
  kRandom,
  /// Consistent per-source assignment (source-affinity hashing).
  kSourceHash,
};

/// Load balancer over one backend pool.
class LoadBalancer {
 public:
  LoadBalancer(LbPolicy policy, std::vector<Backend*> pool,
               std::uint64_t seed = 7);

  const std::vector<Backend*>& pool() const { return pool_; }
  LbPolicy policy() const { return policy_; }

  /// Picks a backend for the request, skipping non-accepting nodes.
  /// Returns nullptr when no backend accepts.
  Backend* select(const workload::Request& request);

  /// Dispatches: select + submit. Returns false when no backend accepted
  /// (caller records the drop).
  bool dispatch(workload::Request&& request);

  std::uint64_t dispatched() const { return dispatched_; }

  /// Binds per-pool selection counters into `hub`'s registry (label
  /// `{"pool": pool}`, plus `{"zone": N}` when `zone >= 0`). Optional;
  /// `hub` may be null (no-op). `pool` must outlive the balancer
  /// (string literals at all call sites).
  void bind_obs(obs::Hub* hub, const char* pool, int zone = -1);

  /// Binds span emission: every `select` records an instant kLbPick span
  /// labelled with this pool (zone-stamped when `zone >= 0`). Optional;
  /// `spans` may be null (no-op). Span-only — adds no metrics, so the
  /// span-off export is unchanged.
  void bind_spans(sim::Engine* engine, obs::SpanTracer* spans,
                  const char* pool, int zone = -1);

 private:
  Backend* do_select(const workload::Request& request);

  LbPolicy policy_;
  std::vector<Backend*> pool_;
  std::size_t rr_next_ = 0;
  Rng rng_;
  std::uint64_t dispatched_ = 0;
  obs::Counter* obs_selected_ = nullptr;
  obs::Counter* obs_no_backend_ = nullptr;
  sim::Engine* span_engine_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  const char* span_pool_ = "";
  int span_zone_ = -1;
};

}  // namespace dope::net
