// Turn-key experiment scenarios.
//
// Every evaluation in the paper is an instance of the same template: a
// power-constrained cluster, background (trace-shaped) normal traffic, an
// optional attack, one power-management scheme, and a 10-minute
// observation window. `run_scenario` assembles exactly that and returns
// the metrics the paper's tables and figures report, so bench binaries and
// integration tests stay declarative.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "antidope/antidope.hpp"
#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "metrics/energy.hpp"
#include "metrics/request_metrics.hpp"
#include "metrics/timeline.hpp"
#include "net/firewall.hpp"
#include "power/provisioning.hpp"
#include "site/site.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace dope::scenario {

/// The four evaluated schemes (Table 2) plus the uncapped reference.
enum class SchemeKind { kNone, kCapping, kShaving, kToken, kAntiDope };

inline constexpr SchemeKind kEvaluatedSchemes[] = {
    SchemeKind::kCapping, SchemeKind::kShaving, SchemeKind::kToken,
    SchemeKind::kAntiDope};

std::string scheme_name(SchemeKind kind);

/// Instantiates a scheme (Anti-DOPE takes its own sub-config).
std::unique_ptr<cluster::PowerScheme> make_scheme(
    SchemeKind kind, const antidope::AntiDopeConfig& antidope_config = {});

/// One scripted chaos event: server `server` suffers a hard power loss
/// at `at` (in-flight and queued work is lost, recorded as outage
/// failures) and begins its reboot `down` later. Used by resilience
/// studies and the fuzzer's mid-run fault injection.
struct NodeOutage {
  std::size_t server = 0;
  Time at = 0;
  Duration down = 10 * kSecond;
};

/// Full scenario description.
struct ScenarioConfig {
  // --- cluster ---
  std::size_t num_servers = 8;
  power::BudgetLevel budget = power::BudgetLevel::kNormal;
  /// Explicit budget watts; overrides `budget` when positive.
  Watts budget_override{0.0};
  Duration battery_runtime = 2 * kMinute;
  std::optional<net::FirewallConfig> firewall;
  /// Branch-circuit breaker on the utility feed; disabled when nullopt.
  std::optional<power::BreakerSpec> breaker;
  Duration slot = 1 * kSecond;

  // --- scheme ---
  SchemeKind scheme = SchemeKind::kNone;
  antidope::AntiDopeConfig antidope{};

  // --- normal traffic ---
  double normal_rps = 300.0;
  unsigned normal_sources = 256;
  /// Empty mixture selects the AliOS normal blend.
  std::optional<workload::Mixture> normal_mixture;
  /// Optional piecewise-constant modulation (trace replay).
  std::vector<workload::RateStep> normal_rate_plan;

  // --- attack traffic ---
  double attack_rps = 0.0;
  std::optional<workload::Mixture> attack_mixture;
  unsigned attack_agents = 64;
  Time attack_start = 0;
  Time attack_stop = -1;
  /// Optional scripted attack-rate schedule (pulsating attacks etc.).
  std::vector<workload::RateStep> attack_rate_plan;

  // --- chaos ---
  /// Scripted single-node outages injected mid-run. Each entry must name
  /// a valid server index; events on the same server must not overlap.
  /// In a multi-zone run the index is global across zones in zone order
  /// (zone = index / num_servers, server = index % num_servers).
  std::vector<NodeOutage> node_outages;

  // --- multi-zone site (docs/SITE.md) ---
  /// Zone count. 1 runs the classic single-cluster scenario (exports
  /// stay byte-identical to the pre-site layout); >= 2 stands up a
  /// `site::Site` of identical zones — each with `num_servers` servers,
  /// the cluster settings above, and its own copy of `scheme` — behind
  /// the global load balancer below.
  std::size_t num_zones = 1;
  /// Per-zone GLB/divider weights; empty means all 1.0. When non-empty
  /// the size must equal `num_zones`.
  std::vector<double> zone_weights;
  site::GlobalLbPolicy glb_policy = site::GlobalLbPolicy::kWeighted;
  /// How the facility budget (`budget_override` when positive, else the
  /// sum of the zones' level-derived budgets) is split across zones.
  site::DividerKind site_divider = site::DividerKind::kStatic;
  Duration reapportion_period = 5 * kSecond;
  /// When >= 0, attack traffic enters through this zone's regional
  /// front door instead of the global balancer — the zone-concentrated
  /// DOPE flood (ignored in single-cluster runs).
  int attack_zone = -1;

  // --- run ---
  Duration duration = 10 * kMinute;  // the paper's observation window
  Duration power_sample_interval = 500 * kMillisecond;
  std::uint64_t seed = 1;

  // --- observability ---
  /// Optional metrics/trace/alert hub attached to the run's engine. The
  /// caller owns it and it must outlive the call. One hub per scenario:
  /// `run_scenarios` executes entries concurrently, so never share a hub
  /// across configs in one batch. Instrumentation only observes — results
  /// are byte-identical with and without a hub.
  obs::Hub* obs = nullptr;
  /// Install the standard power-emergency watchdog rules (budget breach,
  /// utility feed over budget, battery below reserve, and — when the
  /// scenario has attack traffic — attack rate above half the configured
  /// flood rate) into `obs`'s watchdog before the run. Ignored when
  /// `obs` is null.
  bool default_alert_rules = false;
  /// Overrides the hub's trace retention cap for this run when positive
  /// (0 keeps whatever the hub was configured with). Dropped events are
  /// never silent: exports end with a TraceTruncated record.
  std::size_t trace_cap = 0;
  /// Watchdog hysteresis override applied to every rule installed after
  /// setup (the default rules above included): breach windows before a
  /// raise / calm windows before a clear. 0 keeps each rule's own
  /// values. (`--alert-hysteresis R:C` in dopesim_cli.)
  unsigned alert_raise_windows = 0;
  unsigned alert_clear_windows = 0;
  /// When >= 0 and `obs` has a FlightRecorder, forces one "manual"
  /// incident snapshot at the first management-slot boundary at or
  /// after this time (`--dump-incident-at`). Piggybacks on the slot
  /// probe, so it adds no engine events of its own.
  Time dump_incident_at = -1;
  /// Label stamped into incident bundles (sweep cell ids, fuzz case
  /// names); empty for plain runs.
  std::string run_label;
};

/// Watchdog signal carrying the offered attack rate (requests/second),
/// fed once per management slot by the scenario runner and on every epoch
/// by the adaptive `attack::DopeAttacker`.
inline constexpr const char* kSignalAttackRate = "attack.rate_rps";

/// Per-zone slice of a multi-zone run's results.
struct ZoneBreakdown {
  /// Final applied budget share (the divider moves these at runtime).
  Watts budget{0.0};
  double availability = 1.0;
  metrics::OutcomeCounts normal_counts;
  std::uint64_t violation_slots = 0;
  /// Deepest DVFS throttling any of the zone's servers reached.
  std::size_t min_level_seen = 0;
  GHz final_mean_frequency{0.0};
  /// Energy the zone's IT load consumed (utility + battery).
  Joules load_energy{0.0};
};

/// Everything the paper's figures report about one run.
struct ScenarioResult {
  std::string scheme;
  Watts budget{0.0};

  // Normal-user latency (completed requests, milliseconds).
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;

  double availability = 1.0;
  double drop_fraction = 0.0;
  metrics::OutcomeCounts normal_counts;
  metrics::OutcomeCounts attack_counts;
  double attack_mean_ms = 0.0;

  // Power.
  Watts mean_power{0.0};
  Watts peak_power{0.0};
  std::vector<metrics::Sample> power_timeline;
  /// Power distribution (normalised to aggregate nameplate) for CDFs.
  std::vector<double> power_samples_normalized;

  // Battery.
  std::vector<metrics::Sample> battery_soc_timeline;
  Joules battery_discharged{0.0};

  // Energy and enforcement.
  metrics::EnergyAccount energy;
  cluster::SlotStats slot_stats;

  // DVFS: mean applied frequency over servers at run end, and the
  // minimum level any server reached during the run.
  GHz final_mean_frequency{0.0};
  std::size_t min_level_seen = 0;

  /// Per-zone breakdown, in zone order. Empty for single-cluster runs.
  std::vector<ZoneBreakdown> zones;
};

/// Builds, runs, and summarises one scenario.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Runs one scenario per entry, in parallel when hardware allows.
/// `threads == 0` selects the hardware concurrency. Results are always
/// in `configs` order. (For grids over named axes with per-run failure
/// capture, prefer `sweep::SweepRunner`.)
std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioConfig>& configs, std::size_t threads = 0);

/// Writes a CSV summary (one row per result) for external plotting:
/// scheme, budget, latency stats, availability, power, energy columns.
void write_results_csv(std::ostream& out,
                       const std::vector<ScenarioResult>& results);

/// Writes a (time_s, value) CSV of a sampled timeline.
void write_timeline_csv(std::ostream& out,
                        const std::vector<metrics::Sample>& samples);

}  // namespace dope::scenario
