#include "scenario/scenario.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/csv.hpp"
#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "obs/flight.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"
#include "schemes/baselines.hpp"
#include "sim/engine.hpp"

namespace dope::scenario {

std::string scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNone: return "None";
    case SchemeKind::kCapping: return "Capping";
    case SchemeKind::kShaving: return "Shaving";
    case SchemeKind::kToken: return "Token";
    case SchemeKind::kAntiDope: return "Anti-DOPE";
  }
  return "?";
}

std::unique_ptr<cluster::PowerScheme> make_scheme(
    SchemeKind kind, const antidope::AntiDopeConfig& antidope_config) {
  switch (kind) {
    case SchemeKind::kNone:
      return std::make_unique<schemes::NoScheme>();
    case SchemeKind::kCapping:
      return std::make_unique<schemes::CappingScheme>();
    case SchemeKind::kShaving:
      return std::make_unique<schemes::ShavingScheme>();
    case SchemeKind::kToken:
      return std::make_unique<schemes::TokenScheme>();
    case SchemeKind::kAntiDope:
      return std::make_unique<antidope::AntiDopeScheme>(antidope_config);
  }
  return nullptr;
}

namespace {

/// Observability setup shared by both paths: the watchdog hysteresis
/// override (which must land before the default rules are installed)
/// and, when a FlightRecorder is attached, the run context and the
/// Anti-DOPE suspect classes stamped into incident bundles.
void configure_obs_run(const ScenarioConfig& config) {
  obs::Hub* hub = config.obs;
  if (hub == nullptr) return;
  if (config.alert_raise_windows > 0 || config.alert_clear_windows > 0) {
    hub->watchdog().set_default_hysteresis(config.alert_raise_windows,
                                           config.alert_clear_windows);
  }
  obs::FlightRecorder* flight = hub->flight();
  if (flight == nullptr) return;
  obs::FlightRunContext ctx;
  ctx.seed = config.seed;
  ctx.scheme = scheme_name(config.scheme);
  ctx.slot = config.slot;
  ctx.duration = config.duration;
  ctx.label = config.run_label;
  flight->set_run_context(std::move(ctx));
  if (config.scheme == SchemeKind::kAntiDope) {
    // Same list the scheme itself builds, so the bundle's attribution
    // cross-reference matches what the PDF stage actually isolated.
    const auto catalog = workload::Catalog::standard();
    const antidope::SuspectList list =
        config.antidope.suspect_list.has_value()
            ? *config.antidope.suspect_list
            : antidope::SuspectList::from_catalog(
                  catalog, config.antidope.suspect_power_threshold);
    std::vector<std::uint32_t> classes;
    for (std::size_t t = 0; t < list.size(); ++t) {
      if (list.suspicious(static_cast<workload::RequestTypeId>(t))) {
        classes.push_back(static_cast<std::uint32_t>(t));
      }
    }
    flight->set_suspect_classes(std::move(classes));
  }
}

/// Multi-zone path: a `site::Site` of identical zones behind the GLB.
/// Kept fully separate from the single-cluster path below so the
/// latter's construction/registration order — and therefore its golden
/// exports — cannot drift.
ScenarioResult run_site_scenario(const ScenarioConfig& config) {
  DOPE_REQUIRE(config.zone_weights.empty() ||
                   config.zone_weights.size() == config.num_zones,
               "zone_weights must be empty or match num_zones");
  DOPE_REQUIRE(config.attack_zone < static_cast<int>(config.num_zones),
               "attack_zone outside the site");

  sim::Engine engine;
  engine.set_obs(config.obs);  // before any component construction
  if (config.obs != nullptr && config.trace_cap > 0) {
    config.obs->trace().set_max_events(config.trace_cap);
  }
  configure_obs_run(config);
  const auto catalog = workload::Catalog::standard();

  site::SiteConfig sc;
  sc.zones.reserve(config.num_zones);
  for (std::size_t z = 0; z < config.num_zones; ++z) {
    site::ZoneConfig zone;
    zone.cluster.num_servers = config.num_servers;
    zone.cluster.budget_level = config.budget;
    zone.cluster.battery_runtime = config.battery_runtime;
    zone.cluster.firewall = config.firewall;
    zone.cluster.breaker = config.breaker;
    zone.cluster.slot = config.slot;
    if (!config.zone_weights.empty()) {
      zone.weight = config.zone_weights[z];
    }
    sc.zones.push_back(std::move(zone));
  }
  // A positive override provisions the *facility*, not each zone.
  sc.facility_budget = config.budget_override;
  sc.divider = config.site_divider;
  sc.policy = config.glb_policy;
  sc.reapportion_period = config.reapportion_period;
  site::Site site(engine, catalog, sc);

  for (std::size_t z = 0; z < site.num_zones(); ++z) {
    site.zone(z).install_scheme(
        make_scheme(config.scheme, config.antidope));
  }

  if (config.obs != nullptr && config.default_alert_rules) {
    auto& dog = config.obs->watchdog();
    for (std::size_t z = 0; z < site.num_zones(); ++z) {
      const std::string suffix = ".zone" + std::to_string(z);
      const double share = site.zone_budgets()[z].value();
      dog.add_rule({.name = "budget-violated" + suffix,
                    .signal = cluster::Cluster::kSignalSlotDemand + suffix,
                    .cmp = obs::AlertCmp::kAbove,
                    .threshold = share,
                    .consecutive = 5,
                    .clear_after = 5});
      dog.add_rule({.name = "utility-over-budget" + suffix,
                    .signal = cluster::Cluster::kSignalUtility + suffix,
                    .cmp = obs::AlertCmp::kAbove,
                    .threshold = share,
                    .consecutive = 3,
                    .clear_after = 3});
      if (site.zone(z).battery() != nullptr) {
        dog.add_rule({.name = "battery-low" + suffix,
                      .signal =
                          cluster::Cluster::kSignalBatterySoc + suffix,
                      .cmp = obs::AlertCmp::kBelow,
                      .threshold = 0.25,
                      .consecutive = 1,
                      .clear_after = 3});
      }
    }
    if (config.attack_rps > 0.0) {
      dog.add_rule({.name = "attack-rate",
                    .signal = kSignalAttackRate,
                    .cmp = obs::AlertCmp::kAbove,
                    .threshold = 0.5 * config.attack_rps,
                    .consecutive = 3,
                    .clear_after = 3});
    }
  }

  // Scripted chaos, with the global server index split into
  // (zone, server-in-zone).
  for (const auto& outage : config.node_outages) {
    DOPE_REQUIRE(
        outage.server < config.num_servers * site.num_zones(),
        "node outage names a server outside the site");
    DOPE_REQUIRE(outage.at >= 0 && outage.down > 0,
                 "node outage needs a non-negative start and a positive "
                 "downtime");
    cluster::Cluster* cl = &site.zone(outage.server / config.num_servers);
    const std::size_t idx = outage.server % config.num_servers;
    engine.schedule_at(outage.at, [cl, idx] {
      cl->server(idx).power_off();
    });
    const Duration reboot = cl->config().reboot_time;
    engine.schedule_at(outage.at + outage.down, [cl, idx, reboot] {
      if (!cl->in_outage()) cl->server(idx).power_on(reboot);
    });
  }

  // Normal traffic enters through the global balancer.
  std::unique_ptr<workload::TrafficGenerator> normal;
  if (config.normal_rps > 0.0 || !config.normal_rate_plan.empty()) {
    workload::GeneratorConfig gen;
    gen.name = "normal";
    gen.mixture = config.normal_mixture.value_or(
        workload::Mixture::alios_normal());
    gen.rate_rps = config.normal_rps;
    gen.num_sources = config.normal_sources;
    gen.source_base = 0;
    gen.seed = config.seed * 2 + 1;
    normal = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen, site.edge_sink());
    if (!config.normal_rate_plan.empty()) {
      apply_rate_plan(engine, *normal, config.normal_rate_plan);
    }
  }

  // Attack traffic: through the GLB, or concentrated on one zone's
  // regional front door.
  std::unique_ptr<workload::TrafficGenerator> attack;
  if (config.attack_rps > 0.0) {
    workload::GeneratorConfig gen;
    gen.name = "attack";
    gen.mixture = config.attack_mixture.value_or(
        workload::Mixture::single(workload::Catalog::kKMeans));
    gen.rate_rps = config.attack_rps;
    gen.num_sources = config.attack_agents;
    gen.source_base = 1'000'000;
    gen.start = config.attack_start;
    gen.stop = config.attack_stop;
    gen.ground_truth_attack = true;
    gen.seed = config.seed * 2 + 2;
    attack = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen,
        config.attack_zone >= 0
            ? site.zone_sink(static_cast<std::size_t>(config.attack_zone))
            : site.edge_sink());
    if (!config.attack_rate_plan.empty()) {
      apply_rate_plan(engine, *attack, config.attack_rate_plan);
    }
  }

  // Probes: site-wide power, mean SoC over battery-backed zones,
  // per-zone throttling depth, and the watchdog's attack-rate feed.
  metrics::TimelineRecorder power_probe(
      engine, config.power_sample_interval, [&site] {
        Watts total{0.0};
        for (std::size_t z = 0; z < site.num_zones(); ++z) {
          total += site.zone(z).total_power();
        }
        return total.value();
      });
  bool any_battery = false;
  for (std::size_t z = 0; z < site.num_zones(); ++z) {
    if (site.zone(z).battery() != nullptr) any_battery = true;
  }
  std::unique_ptr<metrics::TimelineRecorder> soc_probe;
  if (any_battery) {
    soc_probe = std::make_unique<metrics::TimelineRecorder>(
        engine, config.power_sample_interval, [&site] {
          double soc = 0.0;
          std::size_t n = 0;
          for (std::size_t z = 0; z < site.num_zones(); ++z) {
            if (const auto* b = site.zone(z).battery()) {
              soc += b->soc();
              ++n;
            }
          }
          return n == 0 ? 0.0 : soc / static_cast<double>(n);
        });
  }

  struct SiteProbe {
    std::vector<std::size_t> min_level;
    workload::TrafficGenerator* attack_gen = nullptr;
    obs::Watchdog* dog = nullptr;
    obs::Series* attack_series = nullptr;
    obs::FlightRecorder* flight = nullptr;
    Time dump_at = -1;
    bool dumped = false;
    double slot_seconds = 1.0;
    std::uint64_t prev_generated = 0;
  } probe;
  probe.min_level.assign(site.num_zones(),
                         site.zone(0).ladder().max_level());
  if (config.obs != nullptr && attack != nullptr) {
    probe.attack_gen = attack.get();
    probe.dog = &config.obs->watchdog();
    probe.slot_seconds = to_seconds(config.slot);
    if (auto* ts = config.obs->timeseries()) {
      probe.attack_series = &ts->series(kSignalAttackRate);
    }
  }
  if (config.obs != nullptr && config.dump_incident_at >= 0) {
    probe.flight = config.obs->flight();
    probe.dump_at = config.dump_incident_at;
  }
  auto level_probe = engine.every(config.slot, [&site, &probe, &engine] {
    for (std::size_t z = 0; z < site.num_zones(); ++z) {
      for (auto* n : site.zone(z).servers()) {
        probe.min_level[z] = std::min(probe.min_level[z], n->level());
      }
    }
    if (probe.attack_gen != nullptr) {
      const std::uint64_t generated = probe.attack_gen->generated();
      const double rate =
          static_cast<double>(generated - probe.prev_generated) /
          probe.slot_seconds;
      probe.dog->observe(kSignalAttackRate, engine.now(), rate);
      if (probe.attack_series != nullptr) {
        probe.attack_series->sample(engine.now(), rate);
      }
      probe.prev_generated = generated;
    }
    if (probe.flight != nullptr && !probe.dumped &&
        engine.now() >= probe.dump_at) {
      probe.dumped = true;
      probe.flight->dump_now(engine.now(), "manual");
    }
  });

  engine.run_until(config.duration);
  level_probe.stop();

  // --- summarise ---
  ScenarioResult result;
  result.scheme = scheme_name(config.scheme);
  result.budget = site.facility_budget();

  const auto& metrics = site.request_metrics();
  const auto& latency = metrics.normal_latency_ms();
  result.mean_ms = latency.mean();
  result.p50_ms = latency.percentile(50);
  result.p90_ms = latency.percentile(90);
  result.p95_ms = latency.percentile(95);
  result.p99_ms = latency.percentile(99);
  result.min_ms = latency.min();
  result.max_ms = latency.max();
  result.availability = metrics.availability();
  result.drop_fraction = metrics.drop_fraction();
  result.normal_counts = metrics.normal_counts();
  result.attack_counts = metrics.attack_counts();
  result.attack_mean_ms = metrics.attack_latency_ms().mean();

  result.mean_power = Watts{power_probe.stats().mean()};
  result.peak_power = Watts{power_probe.stats().max()};
  result.power_timeline = power_probe.samples();
  Watts nameplate{0.0};
  for (std::size_t z = 0; z < site.num_zones(); ++z) {
    nameplate += site.zone(z).total_nameplate();
  }
  result.power_samples_normalized.reserve(power_probe.samples().size());
  for (const auto& s : power_probe.samples()) {
    result.power_samples_normalized.push_back(Watts{s.value} / nameplate);
  }
  if (soc_probe) {
    result.battery_soc_timeline = soc_probe->samples();
  }

  result.energy = site.aggregate_energy();
  result.zones.reserve(site.num_zones());
  GHz freq_sum{0.0};
  std::size_t total_servers = 0;
  result.min_level_seen = site.zone(0).ladder().max_level();
  for (std::size_t z = 0; z < site.num_zones(); ++z) {
    cluster::Cluster& zone = site.zone(z);
    if (zone.battery() != nullptr) {
      result.battery_discharged += zone.battery()->total_discharged();
    }
    const auto& stats = zone.slot_stats();
    result.slot_stats.slots =
        std::max(result.slot_stats.slots, stats.slots);
    result.slot_stats.violation_slots += stats.violation_slots;
    result.slot_stats.utility_violation_slots +=
        stats.utility_violation_slots;
    result.slot_stats.worst_overshoot = std::max(
        result.slot_stats.worst_overshoot, stats.worst_overshoot);
    result.slot_stats.outages += stats.outages;
    result.slot_stats.downtime += stats.downtime;

    ZoneBreakdown breakdown;
    breakdown.budget = site.zone_budgets()[z];
    breakdown.availability = zone.request_metrics().availability();
    breakdown.normal_counts = zone.request_metrics().normal_counts();
    breakdown.violation_slots = stats.violation_slots;
    breakdown.min_level_seen = probe.min_level[z];
    breakdown.load_energy = zone.energy_account().load_total();
    GHz zone_freq{0.0};
    for (auto* n : zone.servers()) {
      zone_freq += zone.ladder().frequency(n->level());
    }
    breakdown.final_mean_frequency =
        zone_freq / static_cast<double>(zone.num_servers());
    result.zones.push_back(breakdown);

    freq_sum += zone_freq;
    total_servers += zone.num_servers();
    result.min_level_seen =
        std::min(result.min_level_seen, probe.min_level[z]);
  }
  result.final_mean_frequency =
      freq_sum / static_cast<double>(total_servers);
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  DOPE_REQUIRE(config.duration > 0, "scenario duration must be positive");
  DOPE_REQUIRE(config.num_zones >= 1, "scenario needs at least one zone");
  if (config.num_zones > 1) return run_site_scenario(config);

  sim::Engine engine;
  engine.set_obs(config.obs);  // before any component construction
  if (config.obs != nullptr && config.trace_cap > 0) {
    config.obs->trace().set_max_events(config.trace_cap);
  }
  configure_obs_run(config);
  const auto catalog = workload::Catalog::standard();

  cluster::ClusterConfig cc;
  cc.num_servers = config.num_servers;
  cc.budget_level = config.budget;
  cc.budget_override = config.budget_override;
  cc.battery_runtime = config.battery_runtime;
  cc.firewall = config.firewall;
  cc.breaker = config.breaker;
  cc.slot = config.slot;
  cluster::Cluster cluster(engine, catalog, cc);
  cluster.install_scheme(make_scheme(config.scheme, config.antidope));

  if (config.obs != nullptr && config.default_alert_rules) {
    auto& dog = config.obs->watchdog();
    dog.add_rule({.name = "budget-violated",
                  .signal = cluster::Cluster::kSignalSlotDemand,
                  .cmp = obs::AlertCmp::kAbove,
                  .threshold = cluster.budget().value(),
                  .consecutive = 5,
                  .clear_after = 5});
    dog.add_rule({.name = "utility-over-budget",
                  .signal = cluster::Cluster::kSignalUtility,
                  .cmp = obs::AlertCmp::kAbove,
                  .threshold = cluster.budget().value(),
                  .consecutive = 3,
                  .clear_after = 3});
    if (cluster.battery() != nullptr) {
      dog.add_rule({.name = "battery-low",
                    .signal = cluster::Cluster::kSignalBatterySoc,
                    .cmp = obs::AlertCmp::kBelow,
                    .threshold = 0.25,
                    .consecutive = 1,
                    .clear_after = 3});
    }
    if (config.attack_rps > 0.0) {
      // Fires while the observed flood runs at a meaningful fraction of
      // its configured rate; the raise/clear pair lands in the trace, so
      // attack onset is visible next to the power events it causes.
      dog.add_rule({.name = "attack-rate",
                    .signal = kSignalAttackRate,
                    .cmp = obs::AlertCmp::kAbove,
                    .threshold = 0.5 * config.attack_rps,
                    .consecutive = 3,
                    .clear_after = 3});
    }
  }

  // Scripted chaos: single-node power losses. The guards make the pair
  // robust against a facility-wide breaker trip racing a scripted
  // recovery (whichever path powered the node first wins).
  for (const auto& outage : config.node_outages) {
    DOPE_REQUIRE(outage.server < cluster.num_servers(),
                 "node outage names a server outside the cluster");
    DOPE_REQUIRE(outage.at >= 0 && outage.down > 0,
                 "node outage needs a non-negative start and a positive "
                 "downtime");
    cluster::Cluster* cl = &cluster;
    const std::size_t idx = outage.server;
    engine.schedule_at(outage.at, [cl, idx] {
      cl->server(idx).power_off();
    });
    const Duration reboot = cc.reboot_time;
    engine.schedule_at(outage.at + outage.down, [cl, idx, reboot] {
      if (!cl->in_outage()) cl->server(idx).power_on(reboot);
    });
  }

  // Normal background traffic.
  std::unique_ptr<workload::TrafficGenerator> normal;
  if (config.normal_rps > 0.0 || !config.normal_rate_plan.empty()) {
    workload::GeneratorConfig gen;
    gen.name = "normal";
    gen.mixture = config.normal_mixture.value_or(
        workload::Mixture::alios_normal());
    gen.rate_rps = config.normal_rps;
    gen.num_sources = config.normal_sources;
    gen.source_base = 0;
    gen.seed = config.seed * 2 + 1;
    normal = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen, cluster.edge_sink());
    if (!config.normal_rate_plan.empty()) {
      apply_rate_plan(engine, *normal, config.normal_rate_plan);
    }
  }

  // Attack traffic.
  std::unique_ptr<workload::TrafficGenerator> attack;
  if (config.attack_rps > 0.0) {
    workload::GeneratorConfig gen;
    gen.name = "attack";
    gen.mixture = config.attack_mixture.value_or(
        workload::Mixture::single(workload::Catalog::kKMeans));
    gen.rate_rps = config.attack_rps;
    gen.num_sources = config.attack_agents;
    gen.source_base = 1'000'000;
    gen.start = config.attack_start;
    gen.stop = config.attack_stop;
    gen.ground_truth_attack = true;
    gen.seed = config.seed * 2 + 2;
    attack = std::make_unique<workload::TrafficGenerator>(
        engine, catalog, gen, cluster.edge_sink());
    if (!config.attack_rate_plan.empty()) {
      apply_rate_plan(engine, *attack, config.attack_rate_plan);
    }
  }

  // Probes.
  metrics::TimelineRecorder power_probe(
      engine, config.power_sample_interval,
      [&cluster] { return cluster.total_power().value(); });
  std::unique_ptr<metrics::TimelineRecorder> soc_probe;
  if (cluster.battery() != nullptr) {
    soc_probe = std::make_unique<metrics::TimelineRecorder>(
        engine, config.power_sample_interval,
        [&cluster] { return cluster.battery()->soc(); });
  }

  // Track the deepest throttling any server experiences, and feed the
  // offered attack rate to the watchdog once per slot. Bundled into one
  // struct so the periodic's captures stay within the inline budget.
  struct SlotProbe {
    std::size_t min_level_seen = 0;
    workload::TrafficGenerator* attack_gen = nullptr;
    obs::Watchdog* dog = nullptr;
    obs::Series* attack_series = nullptr;
    obs::FlightRecorder* flight = nullptr;
    Time dump_at = -1;
    bool dumped = false;
    double slot_seconds = 1.0;
    std::uint64_t prev_generated = 0;
  } probe;
  probe.min_level_seen = cluster.ladder().max_level();
  if (config.obs != nullptr && attack != nullptr) {
    probe.attack_gen = attack.get();
    probe.dog = &config.obs->watchdog();
    probe.slot_seconds = to_seconds(config.slot);
    if (auto* ts = config.obs->timeseries()) {
      probe.attack_series = &ts->series(kSignalAttackRate);
    }
  }
  if (config.obs != nullptr && config.dump_incident_at >= 0) {
    probe.flight = config.obs->flight();
    probe.dump_at = config.dump_incident_at;
  }
  auto level_probe = engine.every(config.slot, [&cluster, &probe, &engine] {
    for (auto* n : cluster.servers()) {
      probe.min_level_seen = std::min(probe.min_level_seen, n->level());
    }
    if (probe.attack_gen != nullptr) {
      const std::uint64_t generated = probe.attack_gen->generated();
      const double rate =
          static_cast<double>(generated - probe.prev_generated) /
          probe.slot_seconds;
      probe.dog->observe(kSignalAttackRate, engine.now(), rate);
      if (probe.attack_series != nullptr) {
        probe.attack_series->sample(engine.now(), rate);
      }
      probe.prev_generated = generated;
    }
    if (probe.flight != nullptr && !probe.dumped &&
        engine.now() >= probe.dump_at) {
      probe.dumped = true;
      probe.flight->dump_now(engine.now(), "manual");
    }
  });

  engine.run_until(config.duration);
  level_probe.stop();

  // --- summarise ---
  ScenarioResult result;
  result.scheme = scheme_name(config.scheme);
  result.budget = cluster.budget();

  const auto& metrics = cluster.request_metrics();
  const auto& latency = metrics.normal_latency_ms();
  result.mean_ms = latency.mean();
  result.p50_ms = latency.percentile(50);
  result.p90_ms = latency.percentile(90);
  result.p95_ms = latency.percentile(95);
  result.p99_ms = latency.percentile(99);
  result.min_ms = latency.min();
  result.max_ms = latency.max();
  result.availability = metrics.availability();
  result.drop_fraction = metrics.drop_fraction();
  result.normal_counts = metrics.normal_counts();
  result.attack_counts = metrics.attack_counts();
  result.attack_mean_ms = metrics.attack_latency_ms().mean();

  result.mean_power = Watts{power_probe.stats().mean()};
  result.peak_power = Watts{power_probe.stats().max()};
  result.power_timeline = power_probe.samples();
  result.power_samples_normalized.reserve(power_probe.samples().size());
  const Watts nameplate = cluster.total_nameplate();
  for (const auto& s : power_probe.samples()) {
    result.power_samples_normalized.push_back(Watts{s.value} / nameplate);
  }

  if (soc_probe) {
    result.battery_soc_timeline = soc_probe->samples();
  }
  if (cluster.battery() != nullptr) {
    result.battery_discharged = cluster.battery()->total_discharged();
  }

  result.energy = cluster.energy_account();
  result.slot_stats = cluster.slot_stats();

  GHz freq_sum{0.0};
  for (auto* n : cluster.servers()) {
    freq_sum += cluster.ladder().frequency(n->level());
  }
  result.final_mean_frequency =
      freq_sum / static_cast<double>(cluster.num_servers());
  result.min_level_seen = probe.min_level_seen;
  return result;
}

std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioConfig>& configs, std::size_t threads) {
  std::vector<ScenarioResult> results(configs.size());
  parallel_for(
      configs.size(),
      [&](std::size_t i) { results[i] = run_scenario(configs[i]); },
      threads);
  return results;
}

void write_results_csv(std::ostream& out,
                       const std::vector<ScenarioResult>& results) {
  CsvWriter writer(out);
  writer.write_row({"scheme", "budget_w", "mean_ms", "p50_ms", "p90_ms",
                    "p95_ms", "p99_ms", "availability", "drop_fraction",
                    "mean_power_w", "peak_power_w", "utility_j",
                    "battery_j", "violation_slots", "outages"});
  for (const auto& r : results) {
    writer.row(r.scheme, r.budget.value(), r.mean_ms, r.p50_ms, r.p90_ms,
               r.p95_ms, r.p99_ms, r.availability, r.drop_fraction,
               r.mean_power.value(), r.peak_power.value(),
               r.energy.utility_total().value(), r.energy.battery.value(),
               r.slot_stats.violation_slots, r.slot_stats.outages);
  }
}

void write_timeline_csv(std::ostream& out,
                        const std::vector<metrics::Sample>& samples) {
  CsvWriter writer(out);
  writer.write_row({"time_s", "value"});
  for (const auto& s : samples) {
    writer.row(to_seconds(s.t), s.value);
  }
}

}  // namespace dope::scenario
