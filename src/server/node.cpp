#include "server/node.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/expect.hpp"
#include "obs/hub.hpp"

namespace dope::server {

ServerNode::ServerNode(sim::Engine& engine, int id,
                       const workload::Catalog& catalog,
                       power::ServerPowerModel model, ServerConfig config,
                       workload::RecordSink sink, int zone)
    : engine_(engine),
      id_(id),
      zone_(zone),
      catalog_(catalog),
      model_(std::move(model)),
      config_(config),
      sink_(std::move(sink)),
      slots_(model_.spec().cores),
      free_mask_((slots_.size() + 63) / 64, 0),
      level_(model_.ladder().max_level()),
      target_level_(level_),
      last_energy_update_(engine.now()) {
  DOPE_REQUIRE(sink_ != nullptr, "server needs a record sink");
  DOPE_REQUIRE(config_.queue_capacity > 0, "queue capacity must be positive");
  if (engine_.obs() != nullptr) spans_ = engine_.obs()->spans();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    free_mask_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  refresh_power();
}

std::size_t ServerNode::claim_free_slot() {
  // Callers only reach here with active_count_ < cores, so some word
  // always has a set bit and the scan needs no not-found path.
  std::size_t word = 0;
  while (free_mask_[word] == 0) ++word;
  const auto bit =
      static_cast<std::size_t>(std::countr_zero(free_mask_[word]));
  free_mask_[word] &= ~(std::uint64_t{1} << bit);
  return word * 64 + bit;
}

void ServerNode::release_slot(std::size_t slot_index) {
  free_mask_[slot_index / 64] |= std::uint64_t{1} << (slot_index % 64);
}

double ServerNode::slowdown_at(const workload::RequestTypeProfile& profile,
                               power::DvfsLevel level) const {
  const double rel = model_.ladder().relative(level);
  return profile.cpu_bound_fraction / rel +
         (1.0 - profile.cpu_bound_fraction);
}

void ServerNode::span_queue_begin(const workload::Request& request) {
  if (spans_ == nullptr) return;
  obs::Span span;
  span.id = obs::span_id_for(request.id, obs::SpanKind::kQueue);
  span.parent = obs::span_id_for(request.id, obs::SpanKind::kRequest);
  span.kind = obs::SpanKind::kQueue;
  span.begin = engine_.now();
  span.source_id = request.source;
  span.url_class = request.type;
  span.server = id_;
  span.zone = zone_;
  spans_->begin(std::move(span));
}

void ServerNode::span_queue_end(const workload::Request& request,
                                const char* outcome) {
  if (spans_ == nullptr) return;
  spans_->end(obs::span_id_for(request.id, obs::SpanKind::kQueue),
              engine_.now(), outcome);
}

void ServerNode::span_service_begin(const workload::Request& request,
                                    std::size_t slot_index,
                                    Watts request_power) {
  if (spans_ == nullptr) return;
  obs::Span span;
  span.id = obs::span_id_for(request.id, obs::SpanKind::kService);
  span.parent = obs::span_id_for(request.id, obs::SpanKind::kRequest);
  span.kind = obs::SpanKind::kService;
  span.begin = engine_.now();
  span.source_id = request.source;
  span.url_class = request.type;
  span.power_w = request_power;
  span.server = id_;
  span.slot = static_cast<int>(slot_index);
  span.zone = zone_;
  spans_->begin(std::move(span));
}

void ServerNode::span_service_end(const workload::Request& request,
                                  const char* outcome) {
  if (spans_ == nullptr) return;
  spans_->end(obs::span_id_for(request.id, obs::SpanKind::kService),
              engine_.now(), outcome);
}

void ServerNode::submit(workload::Request&& request) {
  DOPE_REQUIRE(accepting_, "submit on a non-accepting server");
  // Claim a free slot; otherwise queue (or reject when full).
  if (active_count_ < slots_.size()) {
    begin_service(claim_free_slot(), std::move(request));
    return;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++counters_.rejected_queue_full;
    emit(request, workload::RequestOutcome::kRejectedQueueFull, 0);
    return;
  }
  span_queue_begin(request);
  queue_.push_back(std::move(request));
}

void ServerNode::begin_service(std::size_t slot_index,
                               workload::Request&& request) {
  Slot& slot = slots_[slot_index];
  DOPE_ASSERT(!slot.busy);
  const auto& profile = catalog_.type(request.type);
  slot.busy = true;
  slot.request = std::move(request);
  slot.remaining_work =
      static_cast<double>(profile.base_service_time) *
      slot.request.size_factor;
  slot.segment_start = engine_.now();
  slot.segment_slowdown = slowdown_at(profile, level_);
  const auto duration = static_cast<Duration>(
      std::ceil(slot.remaining_work * slot.segment_slowdown));
  slot.completion = engine_.schedule_after(
      std::max<Duration>(duration, 1),
      [this, slot_index] { finish_service(slot_index); });
  ++active_count_;
  span_service_begin(slot.request, slot_index,
                     model_.request_power(profile.power, level_));
  refresh_power();
}

void ServerNode::finish_service(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  DOPE_ASSERT(slot.busy);
  slot.busy = false;
  release_slot(slot_index);
  --active_count_;
  const Duration latency = engine_.now() - slot.request.arrival;
  ++counters_.completed;
  span_service_end(slot.request, "completed");
  emit(slot.request, workload::RequestOutcome::kCompleted, latency);
  refresh_power();
  drain_queue();
}

void ServerNode::drain_queue() {
  while (active_count_ < slots_.size() && !queue_.empty()) {
    workload::Request next = std::move(queue_.front());
    queue_.pop_front();
    if (config_.queue_deadline > 0 &&
        engine_.now() - next.arrival > config_.queue_deadline) {
      ++counters_.timed_out;
      span_queue_end(next, "timeout");
      emit(next, workload::RequestOutcome::kTimedOut,
           engine_.now() - next.arrival);
      continue;
    }
    span_queue_end(next, "served");
    begin_service(claim_free_slot(), std::move(next));
  }
}

void ServerNode::request_level(power::DvfsLevel level) {
  DOPE_REQUIRE(level < model_.ladder().levels(), "DVFS level out of range");
  target_level_ = level;
  if (level == level_ && !actuation_pending_) return;
  if (actuation_pending_) {
    // Supersede the in-flight actuation with the newest request.
    engine_.cancel(actuation_event_);
  }
  actuation_pending_ = true;
  actuation_event_ = engine_.schedule_after(
      std::max<Duration>(config_.dvfs_latency, 0), [this] {
        actuation_pending_ = false;
        apply_level(target_level_);
      });
}

void ServerNode::force_level(power::DvfsLevel level) {
  DOPE_REQUIRE(level < model_.ladder().levels(), "DVFS level out of range");
  if (actuation_pending_) {
    engine_.cancel(actuation_event_);
    actuation_pending_ = false;
  }
  target_level_ = level;
  apply_level(level);
}

void ServerNode::apply_level(power::DvfsLevel level) {
  if (level == level_) {
    refresh_power();
    return;
  }
  const Time now = engine_.now();
  // Re-time every in-flight request: bank the work done in the finished
  // segment, then reschedule the remainder at the new speed.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.busy) continue;
    const double elapsed = static_cast<double>(now - slot.segment_start);
    const double work_done = elapsed / slot.segment_slowdown;
    slot.remaining_work = std::max(0.0, slot.remaining_work - work_done);
    engine_.cancel(slot.completion);
    const auto& profile = catalog_.type(slot.request.type);
    slot.segment_start = now;
    slot.segment_slowdown = slowdown_at(profile, level);
    const auto duration = static_cast<Duration>(
        std::ceil(slot.remaining_work * slot.segment_slowdown));
    slot.completion = engine_.schedule_after(
        std::max<Duration>(duration, 1),
        [this, i] { finish_service(i); });
  }
  level_ = level;
  refresh_power();
}

void ServerNode::visit_active(
    common::FunctionRef<void(workload::RequestTypeId)> visitor) const {
  for (const Slot& slot : slots_) {
    if (slot.busy) visitor(slot.request.type);
  }
}

void ServerNode::park() {
  DOPE_REQUIRE(load() == 0, "cannot park a node with in-flight work");
  if (parked_) return;
  if (waking_) {
    engine_.cancel(wake_event_);
    waking_ = false;
  }
  integrate_energy();
  parked_ = true;
  current_power_ = model_.spec().sleep_power;
}

void ServerNode::unpark() {
  if (!parked_ || waking_) return;
  // Waking burns boot power (modelled as idle at the current level) for
  // the wake latency before the node can serve again.
  integrate_energy();
  parked_ = false;
  waking_ = true;
  current_power_ = model_.idle_power(level_);
  wake_event_ = engine_.schedule_after(
      std::max<Duration>(config_.wake_latency, 0), [this] {
        waking_ = false;
        refresh_power();
      });
}

void ServerNode::power_off() {
  if (powered_off_) return;
  integrate_energy();
  if (waking_) {
    engine_.cancel(wake_event_);
    waking_ = false;
  }
  // Everything in flight is lost.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.busy) continue;
    engine_.cancel(slot.completion);
    slot.busy = false;
    release_slot(i);
    --active_count_;
    span_service_end(slot.request, "outage");
    emit(slot.request, workload::RequestOutcome::kFailedOutage,
         engine_.now() - slot.request.arrival);
  }
  while (!queue_.empty()) {
    span_queue_end(queue_.front(), "outage");
    emit(queue_.front(), workload::RequestOutcome::kFailedOutage,
         engine_.now() - queue_.front().arrival);
    queue_.pop_front();
  }
  DOPE_ASSERT(active_count_ == 0);
  powered_off_ = true;
  parked_ = false;
  current_power_ = Watts{0.0};
}

void ServerNode::power_on(Duration boot_time) {
  DOPE_REQUIRE(boot_time >= 0, "boot time must be non-negative");
  if (!powered_off_) return;
  integrate_energy();
  powered_off_ = false;
  waking_ = true;
  current_power_ = model_.idle_power(level_);  // boot draw
  wake_event_ = engine_.schedule_after(boot_time, [this] {
    waking_ = false;
    refresh_power();
  });
}

Watts ServerNode::estimate_power_at(power::DvfsLevel level) const {
  if (powered_off_) return Watts{0.0};
  if (parked_) return model_.spec().sleep_power;
  Watts p = model_.idle_power(level);
  for (const Slot& slot : slots_) {
    if (!slot.busy) continue;
    p += model_.request_power(catalog_.type(slot.request.type).power, level);
  }
  return model_.clamp(p);
}

void ServerNode::refresh_power() {
  integrate_energy();
  current_power_ = estimate_power_at(level_);
}

void ServerNode::integrate_energy() const {
  const Time now = engine_.now();
  if (now > last_energy_update_) {
    energy_ += energy_of(current_power_, now - last_energy_update_);
    last_energy_update_ = now;
  }
}

Joules ServerNode::energy() const {
  integrate_energy();
  return energy_;
}

void ServerNode::emit(const workload::Request& request,
                      workload::RequestOutcome outcome, Duration latency) {
  workload::RequestRecord record;
  record.request = request;
  record.outcome = outcome;
  record.finish = engine_.now();
  record.latency = latency;
  record.server = workload::ServerRef{zone_, id_};
  sink_(record);
}

}  // namespace dope::server
