// RAPL-style per-node power capping.
//
// Intel's Running Average Power Limit exposes a wattage knob per socket;
// the paper's Anti-DOPE prototype actuates it through perf_event. This
// interface reproduces those semantics on top of the node's DVFS ladder:
// you set a cap in watts, and the interface picks the highest operating
// point whose estimated power (for the node's *current* active set) stays
// under the cap. Because power depends on what is running, `enforce()`
// should be re-invoked each management slot.
#pragma once

#include <optional>

#include "common/units.hpp"
#include "server/node.hpp"

namespace dope::server {

/// Wattage-cap actuator for one node.
class RaplInterface {
 public:
  explicit RaplInterface(ServerNode& node) : node_(&node) {}

  /// Sets (or replaces) the cap and actuates immediately.
  void set_cap(Watts cap);

  /// Removes the cap and restores the maximum operating point.
  void clear_cap();

  /// Active cap, if any.
  std::optional<Watts> cap() const { return cap_; }

  /// Re-evaluates the operating point against the current active set.
  /// Picks the highest level whose estimate fits; when even the floor
  /// does not fit (the cap is below idle power), the floor is applied —
  /// like hardware, RAPL cannot turn the machine off.
  void enforce();

  ServerNode& node() const { return *node_; }

 private:
  ServerNode* node_;
  std::optional<Watts> cap_;
};

}  // namespace dope::server
