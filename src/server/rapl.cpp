#include "server/rapl.hpp"

#include "common/expect.hpp"

namespace dope::server {

void RaplInterface::set_cap(Watts cap) {
  DOPE_REQUIRE(cap > Watts{0.0}, "power cap must be positive");
  cap_ = cap;
  enforce();
}

void RaplInterface::clear_cap() {
  cap_.reset();
  node_->request_level(node_->power_model().ladder().max_level());
}

void RaplInterface::enforce() {
  if (!cap_.has_value()) return;
  const auto& ladder = node_->power_model().ladder();
  // Highest level fitting the cap; the estimate is monotone in level.
  for (std::ptrdiff_t l = static_cast<std::ptrdiff_t>(ladder.max_level());
       l >= 0; --l) {
    const auto level = static_cast<power::DvfsLevel>(l);
    if (node_->estimate_power_at(level) <= *cap_ ||
        level == ladder.min_level()) {
      if (node_->target_level() != level) node_->request_level(level);
      return;
    }
  }
}

}  // namespace dope::server
