// Compute node (leaf server) model.
//
// A node serves up to `cores` requests concurrently from a bounded FCFS
// queue. Service progress is *work-based*: a request carries its remaining
// work in "microseconds at f_max" and progresses at a speed set by the
// current DVFS level, so frequency changes mid-service stretch or shrink
// the remaining time exactly (work-conserving DVFS).
//
// Electrical power is piecewise constant between events; the node
// integrates energy exactly at every power transition, so per-run joules
// are event-accurate rather than sampled.
//
// DVFS changes go through `request_level`, which applies after the
// configured actuation latency — the "booting delay of DVFS" the paper
// blames for battery draw at attack transitions (Fig. 18).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/inline_function.hpp"
#include "common/units.hpp"
#include "net/backend.hpp"
#include "power/power_model.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::obs {
class SpanTracer;
}  // namespace dope::obs

namespace dope::server {

/// Node-level tunables.
struct ServerConfig {
  /// Maximum queued (not yet serving) requests; beyond this, reject.
  std::size_t queue_capacity = 512;
  /// Requests that waited longer than this in the queue are abandoned
  /// (clients give up); 0 disables timeouts.
  Duration queue_deadline = 4 * kSecond;
  /// Delay between a DVFS level request and it taking effect.
  Duration dvfs_latency = millis(20.0);
  /// Time to wake from the parked (deep sleep) state to serving.
  Duration wake_latency = 2 * kSecond;
};

/// Running counters exposed for tests and metrics.
struct ServerCounters {
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t timed_out = 0;
};

/// A simulated leaf server; implements the NLB's Backend interface.
class ServerNode final : public net::Backend {
 public:
  /// `zone` stamps every record and span the node emits; -1 (standalone
  /// cluster) suppresses the field entirely.
  ServerNode(sim::Engine& engine, int id, const workload::Catalog& catalog,
             power::ServerPowerModel model, ServerConfig config,
             workload::RecordSink sink, int zone = -1);

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  // --- net::Backend ---
  int backend_id() const override { return id_; }
  std::size_t load() const override {
    return queue_.size() + active_count_;
  }
  bool accepting() const override {
    return accepting_ && !parked_ && !waking_ && !powered_off_;
  }
  void submit(workload::Request&& request) override;

  // --- DVFS control ---
  /// Currently applied level.
  power::DvfsLevel level() const { return level_; }
  /// Level that will be in force once any pending actuation lands.
  power::DvfsLevel target_level() const { return target_level_; }
  /// Requests a level change; takes effect after `dvfs_latency`.
  void request_level(power::DvfsLevel level);
  /// Applies a level immediately (initialisation and tests).
  void force_level(power::DvfsLevel level);

  // --- power/energy introspection ---
  /// Instantaneous electrical power right now.
  Watts current_power() const { return current_power_; }
  /// Power this node would draw at `level` with its current active set
  /// (the estimator schemes use to search throttling configurations).
  Watts estimate_power_at(power::DvfsLevel level) const;
  /// Exact integrated energy consumed so far.
  Joules energy() const;
  /// Nameplate rating of this node.
  Watts nameplate() const { return model_.spec().nameplate; }
  const power::ServerPowerModel& power_model() const { return model_; }

  /// Visits the URL class of every request currently in service — the
  /// telemetry a node-local agent legitimately has (it knows what it is
  /// executing). Used by online power classification. Visits slots in
  /// index order (deterministic).
  void visit_active(
      common::FunctionRef<void(workload::RequestTypeId)> visitor) const;

  // --- state ---
  std::size_t queue_length() const { return queue_.size(); }
  unsigned active_count() const { return active_count_; }
  unsigned cores() const { return model_.spec().cores; }
  const ServerCounters& counters() const { return counters_; }
  void set_accepting(bool accepting) { accepting_ = accepting; }

  // --- sleep states (PowerNap-style; used by the auto-scaler) ---
  /// Puts an *idle* node into deep sleep: power drops to the spec's
  /// sleep_power and the node stops accepting. Requires load() == 0.
  void park();
  /// Starts waking a parked node; it accepts traffic again after the
  /// configured wake latency. No-op when not parked.
  void unpark();
  bool parked() const { return parked_; }
  bool waking() const { return waking_; }

  /// Hard power loss (breaker trip): every in-flight and queued request
  /// is lost (recorded as kFailedOutage), power drops to zero, and the
  /// node refuses traffic until `power_on` completes a reboot.
  void power_off();
  /// Begins recovery from an outage; serving resumes after `boot_time`.
  void power_on(Duration boot_time);
  bool powered_off() const { return powered_off_; }

 private:
  struct Slot {
    bool busy = false;
    workload::Request request;
    /// Remaining work in microseconds-at-f_max.
    double remaining_work = 0.0;
    Time segment_start = 0;
    /// Slowdown factor of the current segment (duration = work * slowdown).
    double segment_slowdown = 1.0;
    sim::EventId completion = 0;
  };

  void begin_service(std::size_t slot_index, workload::Request&& request);
  void finish_service(std::size_t slot_index);
  void drain_queue();
  /// Claims the lowest free slot index in O(cores/64) via the free-slot
  /// bitmask. Lowest-first (not LIFO) keeps slot occupancy — and with it
  /// retiming/visit order — byte-identical to the historical scan.
  std::size_t claim_free_slot();
  void release_slot(std::size_t slot_index);
  void apply_level(power::DvfsLevel level);
  double slowdown_at(const workload::RequestTypeProfile& profile,
                     power::DvfsLevel level) const;
  void refresh_power();
  void integrate_energy() const;
  void emit(const workload::Request& request,
            workload::RequestOutcome outcome, Duration latency);
  void span_queue_begin(const workload::Request& request);
  void span_queue_end(const workload::Request& request,
                      const char* outcome);
  void span_service_begin(const workload::Request& request,
                          std::size_t slot_index, Watts request_power);
  void span_service_end(const workload::Request& request,
                        const char* outcome);

  sim::Engine& engine_;
  int id_;
  int zone_;
  const workload::Catalog& catalog_;
  power::ServerPowerModel model_;
  ServerConfig config_;
  workload::RecordSink sink_;
  /// Cached from the engine's hub at construction; null disables queue /
  /// service span recording entirely (guard-on-null).
  obs::SpanTracer* spans_ = nullptr;

  std::vector<Slot> slots_;
  /// Bit i set => slots_[i] is free (one word per 64 cores).
  std::vector<std::uint64_t> free_mask_;
  unsigned active_count_ = 0;
  std::deque<workload::Request> queue_;
  bool accepting_ = true;
  bool parked_ = false;
  bool waking_ = false;
  bool powered_off_ = false;
  sim::EventId wake_event_ = 0;

  power::DvfsLevel level_;
  power::DvfsLevel target_level_;
  bool actuation_pending_ = false;
  sim::EventId actuation_event_ = 0;

  Watts current_power_{0.0};
  mutable Joules energy_{0.0};
  mutable Time last_energy_update_ = 0;

  ServerCounters counters_;
};

}  // namespace dope::server
