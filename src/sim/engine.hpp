// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events fire in (time,
// insertion-order) order, so two runs with identical inputs produce
// identical traces (the determinism contract — see docs/ENGINE.md).
//
// The core is allocation-free in steady state:
//   * callbacks are `EventFn` — move-only inline functions whose target
//     lives in a fixed buffer inside the pool slot, never on the heap;
//   * scheduled events live in a slab pool of recycled slots; an
//     `EventId` encodes {slot index, generation}, making `cancel` an
//     O(1) array access that is ABA-safe against slot reuse;
//   * the ready queue is a 4-ary min-heap of plain {time, seq, slot}
//     entries keyed on the same (time, insertion-seq) order as ever;
//   * periodic tasks are first-class: one pool slot per task that the
//     loop re-arms in place, with no per-tick allocation or closure
//     chaining.
//
// All simulator components (servers, generators, power managers,
// batteries) schedule callbacks on one shared `Engine`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.hpp"
#include "common/units.hpp"

namespace dope::obs {
class Counter;
class Gauge;
class Hub;
}  // namespace dope::obs

namespace dope::sim {

/// Identifier for a scheduled event; usable with `Engine::cancel`.
/// Encodes {generation (high 32 bits), pool slot index (low 32 bits)};
/// 0 is never a valid id (generations start at 1).
using EventId = std::uint64_t;

/// The engine's callback type: fixed small-buffer storage, move-only,
/// never heap-allocates. Callables above the capacity fail to compile.
using EventFn = common::InlineFunction<void()>;

class Engine;

/// Handle to a repeating task; stops it via `Engine::stop`. Copyable —
/// all copies refer to the same task. Must not outlive the engine.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// True while the periodic task is still rescheduling itself.
  bool active() const;

  /// Stops future firings (the current in-flight callback still
  /// finishes). The already-queued occurrence drains as a counted no-op.
  void stop();

 private:
  friend class Engine;
  PeriodicHandle(Engine* engine, std::uint64_t id)
      : engine_(engine), id_(id) {}

  Engine* engine_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event loop.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time in microseconds.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, EventFn fn);

  /// Schedules `fn` after `delay` microseconds (must be >= 0).
  EventId schedule_after(Duration delay, EventFn fn);

  /// Cancels a pending event in O(1). Returns false if it already fired
  /// or was previously cancelled — stale ids are generation-checked, so
  /// cancelling after the slot was recycled can never kill the new event.
  bool cancel(EventId id);

  /// Schedules `fn` to run every `period`, first firing at now() + `phase`
  /// (default: one full period from now). The task stops when the returned
  /// handle is stopped or the engine is destroyed.
  PeriodicHandle every(Duration period, EventFn fn, Duration phase = -1);

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Processes every event with firing time <= `t`, then advances the
  /// clock to exactly `t` (even if no event fires at `t`).
  void run_until(Time t);

  /// Drains the queue completely. Periodic tasks must be stopped first or
  /// this never returns; prefer `run_until` for simulations.
  void run_all();

  /// Number of pending (non-cancelled) events: live one-shots plus the
  /// queued occurrence of every periodic task (the pool's live count).
  std::size_t pending() const { return live_; }

  /// Total events executed so far (for engine introspection/tests).
  std::uint64_t executed() const { return executed_; }

  /// Pool capacities (slots ever allocated) — introspection for tests
  /// and capacity planning; live slots recycle without allocation.
  std::size_t event_pool_size() const { return pool_.size(); }
  std::size_t periodic_pool_size() const { return periodics_.size(); }

  /// Attaches the run's observability hub. The engine is the ambient
  /// carrier: every component holding an `Engine&` reaches metrics and
  /// tracing through `obs()`. Attach *before* constructing components —
  /// they cache their instruments at construction. Null detaches
  /// (tracing becomes a no-op; determinism is unaffected either way).
  void set_obs(obs::Hub* hub);
  obs::Hub* obs() const { return obs_; }

 private:
  friend class PeriodicHandle;

  static constexpr std::uint32_t kNil = 0xffff'ffffu;
  /// Heap entries with this bit set in `index` reference the periodic
  /// pool; public EventIds never carry it.
  static constexpr std::uint32_t kPeriodicBit = 0x8000'0000u;

  struct EventSlot {
    EventFn fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNil;
  };

  struct PeriodicSlot {
    EventFn fn;
    Duration period = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNil;
    bool active = false;
  };

  struct HeapEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t index;  // pool slot; kPeriodicBit selects the pool
    std::uint32_t generation;
  };

  static EventId make_id(std::uint32_t generation, std::uint32_t index) {
    return (static_cast<EventId>(generation) << 32) | index;
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::uint32_t alloc_event_slot();
  void free_event_slot(std::uint32_t index);
  std::uint32_t alloc_periodic_slot();
  void free_periodic_slot(std::uint32_t index);
  EventId schedule_impl(Time t, EventFn&& fn);
  void heap_push(HeapEntry entry);
  void heap_pop_min();
  /// Drops cancelled one-shot entries off the heap top. Stopped-periodic
  /// occurrences are NOT skimmed: they drain through step() as counted
  /// no-ops (preserving executed()/pending() semantics).
  void skim_stale();
  bool periodic_active(std::uint64_t id) const;
  void stop_periodic(std::uint64_t id);
  void note_executed();

  obs::Hub* obs_ = nullptr;
  obs::Counter* executed_counter_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;

  std::vector<EventSlot> pool_;
  std::uint32_t free_events_ = kNil;
  std::vector<PeriodicSlot> periodics_;
  std::uint32_t free_periodics_ = kNil;
  std::vector<HeapEntry> heap_;
};

}  // namespace dope::sim
