// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events fire in (time,
// insertion-order) order, so two runs with identical inputs produce
// identical traces. Cancellation is O(1) amortised (lazy deletion on pop).
//
// All simulator components (servers, generators, power managers, batteries)
// schedule callbacks on one shared `Engine`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace dope::obs {
class Counter;
class Gauge;
class Hub;
}  // namespace dope::obs

namespace dope::sim {

/// Identifier for a scheduled event; usable with `Engine::cancel`.
using EventId = std::uint64_t;

/// Handle to a repeating task; destroys/cancels via `Engine::stop`.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// True while the periodic task is still rescheduling itself.
  bool active() const { return alive_ && *alive_; }

  /// Stops future firings (the current in-flight callback still finishes).
  void stop() {
    if (alive_) *alive_ = false;
  }

 private:
  friend class Engine;
  explicit PeriodicHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}

  std::shared_ptr<bool> alive_;
};

/// Deterministic discrete-event loop.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time in microseconds.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after `delay` microseconds (must be >= 0).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// previously cancelled.
  bool cancel(EventId id);

  /// Schedules `fn` to run every `period`, first firing at now() + `phase`
  /// (default: one full period from now). The task stops when the returned
  /// handle is stopped or the engine is destroyed.
  PeriodicHandle every(Duration period, std::function<void()> fn,
                       Duration phase = -1);

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Processes every event with firing time <= `t`, then advances the
  /// clock to exactly `t` (even if no event fires at `t`).
  void run_until(Time t);

  /// Drains the queue completely. Periodic tasks must be stopped first or
  /// this never returns; prefer `run_until` for simulations.
  void run_all();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return handlers_.size(); }

  /// Total events executed so far (for engine introspection/tests).
  std::uint64_t executed() const { return executed_; }

  /// Attaches the run's observability hub. The engine is the ambient
  /// carrier: every component holding an `Engine&` reaches metrics and
  /// tracing through `obs()`. Attach *before* constructing components —
  /// they cache their instruments at construction. Null detaches
  /// (tracing becomes a no-op; determinism is unaffected either way).
  void set_obs(obs::Hub* hub);
  obs::Hub* obs() const { return obs_; }

 private:
  struct QueueEntry {
    Time t;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  obs::Hub* obs_ = nullptr;
  obs::Counter* executed_counter_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace dope::sim
