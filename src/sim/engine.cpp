#include "sim/engine.hpp"

#include <utility>

#include "common/audit.hpp"
#include "common/expect.hpp"
#include "obs/hub.hpp"

namespace dope::sim {

void Engine::set_obs(obs::Hub* hub) {
  obs_ = hub;
  if (hub != nullptr) {
    executed_counter_ = &hub->registry().counter("sim.events_executed");
    queue_gauge_ = &hub->registry().gauge("sim.queue_depth");
  } else {
    executed_counter_ = nullptr;
    queue_gauge_ = nullptr;
  }
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  DOPE_REQUIRE(t >= now_, "cannot schedule events in the past");
  DOPE_REQUIRE(fn != nullptr, "event handler must be callable");
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule_after(Duration delay, std::function<void()> fn) {
  DOPE_REQUIRE(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) { return handlers_.erase(id) > 0; }

PeriodicHandle Engine::every(Duration period, std::function<void()> fn,
                             Duration phase) {
  DOPE_REQUIRE(period > 0, "period must be positive");
  DOPE_REQUIRE(fn != nullptr, "periodic handler must be callable");
  auto alive = std::make_shared<bool>(true);
  // The tick closure owns the user callback and reschedules itself while
  // the handle is alive. It must hold itself only weakly — the scheduled
  // queue entries carry the strong references — or the self-capture forms
  // an unbreakable shared_ptr cycle that outlives the engine.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, alive,
           weak = std::weak_ptr<std::function<void()>>(tick),
           fn = std::move(fn)]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    if (auto self = weak.lock()) {
      schedule_after(period, [self] { (*self)(); });
    }
  };
  const Duration first = (phase < 0) ? period : phase;
  schedule_after(first, [tick] { (*tick)(); });
  return PeriodicHandle(alive);
}

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // lazily dropped cancellation
    // Move the handler out before invoking so the handler may schedule or
    // cancel freely without invalidating our iterator.
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    DOPE_ASSERT(entry.t >= now_);
    if constexpr (audit::kEnabled) {
      audit::check_monotonic_time(obs_, now_, entry.t);
    }
    now_ = entry.t;
    ++executed_;
    fn();
    if (executed_counter_ != nullptr) {
      executed_counter_->inc();
      queue_gauge_->set(static_cast<double>(handlers_.size()));
    }
    return true;
  }
  return false;
}

void Engine::run_until(Time t) {
  DOPE_REQUIRE(t >= now_, "cannot run backwards in time");
  for (;;) {
    // Find the next live event without executing it.
    while (!queue_.empty() &&
           handlers_.find(queue_.top().id) == handlers_.end()) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().t > t) break;
    step();
  }
  now_ = t;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace dope::sim
