#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/audit.hpp"
#include "common/expect.hpp"
#include "obs/hub.hpp"

namespace dope::sim {

bool PeriodicHandle::active() const {
  return engine_ != nullptr && engine_->periodic_active(id_);
}

void PeriodicHandle::stop() {
  if (engine_ != nullptr) engine_->stop_periodic(id_);
}

void Engine::set_obs(obs::Hub* hub) {
  obs_ = hub;
  if (hub != nullptr) {
    executed_counter_ = &hub->registry().counter("sim.events_executed");
    queue_gauge_ = &hub->registry().gauge("sim.queue_depth");
  } else {
    executed_counter_ = nullptr;
    queue_gauge_ = nullptr;
  }
}

std::uint32_t Engine::alloc_event_slot() {
  if (free_events_ != kNil) {
    const std::uint32_t index = free_events_;
    free_events_ = pool_[index].next_free;
    pool_[index].next_free = kNil;
    return index;
  }
  DOPE_ASSERT(pool_.size() < kPeriodicBit);
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Engine::free_event_slot(std::uint32_t index) {
  EventSlot& slot = pool_[index];
  slot.fn.reset();
  // Bump the generation so every outstanding id for this slot goes
  // stale; skip 0 on wrap so valid EventIds are never 0.
  if (++slot.generation == 0) slot.generation = 1;
  slot.next_free = free_events_;
  free_events_ = index;
  --live_;
}

std::uint32_t Engine::alloc_periodic_slot() {
  if (free_periodics_ != kNil) {
    const std::uint32_t index = free_periodics_;
    free_periodics_ = periodics_[index].next_free;
    periodics_[index].next_free = kNil;
    return index;
  }
  DOPE_ASSERT(periodics_.size() < kPeriodicBit);
  periodics_.emplace_back();
  return static_cast<std::uint32_t>(periodics_.size() - 1);
}

void Engine::free_periodic_slot(std::uint32_t index) {
  PeriodicSlot& slot = periodics_[index];
  slot.fn.reset();
  slot.active = false;
  if (++slot.generation == 0) slot.generation = 1;
  slot.next_free = free_periodics_;
  free_periodics_ = index;
  --live_;
}

// Both sifts move the displaced entry through a "hole" instead of
// swapping at every level (half the writes). The internal array layout
// can differ from a swap-based sift, but pops always yield the strict
// (time, seq) minimum — a total order, since seq is unique — so the
// replay contract is unaffected by the sift strategy.

void Engine::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Engine::heap_pop_min() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t limit = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t child = first + 1; child < limit; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Engine::skim_stale() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if ((top.index & kPeriodicBit) != 0) {
      const std::uint32_t index = top.index & ~kPeriodicBit;
      if (periodics_[index].generation == top.generation) return;
    } else if (pool_[top.index].generation == top.generation) {
      return;
    }
    heap_pop_min();
  }
}

EventId Engine::schedule_impl(Time t, EventFn&& fn) {
  DOPE_REQUIRE(t >= now_, "cannot schedule events in the past");
  DOPE_REQUIRE(fn != nullptr, "event handler must be callable");
  const std::uint32_t index = alloc_event_slot();
  EventSlot& slot = pool_[index];
  slot.fn = std::move(fn);
  heap_push(HeapEntry{t, next_seq_++, index, slot.generation});
  ++live_;
  return make_id(slot.generation, index);
}

EventId Engine::schedule_at(Time t, EventFn fn) {
  return schedule_impl(t, std::move(fn));
}

EventId Engine::schedule_after(Duration delay, EventFn fn) {
  DOPE_REQUIRE(delay >= 0, "delay must be non-negative");
  return schedule_impl(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if ((index & kPeriodicBit) != 0 || index >= pool_.size()) return false;
  if (pool_[index].generation != generation) return false;
  free_event_slot(index);  // the heap entry goes stale and is skimmed
  return true;
}

PeriodicHandle Engine::every(Duration period, EventFn fn, Duration phase) {
  DOPE_REQUIRE(period > 0, "period must be positive");
  DOPE_REQUIRE(fn != nullptr, "periodic handler must be callable");
  const std::uint32_t index = alloc_periodic_slot();
  PeriodicSlot& slot = periodics_[index];
  slot.fn = std::move(fn);
  slot.period = period;
  slot.active = true;
  const Duration first = (phase < 0) ? period : phase;
  heap_push(HeapEntry{now_ + first, next_seq_++, index | kPeriodicBit,
                      slot.generation});
  ++live_;
  return PeriodicHandle(this, make_id(slot.generation, index));
}

bool Engine::periodic_active(std::uint64_t id) const {
  const auto index = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= periodics_.size()) return false;
  const PeriodicSlot& slot = periodics_[index];
  return slot.generation == generation && slot.active;
}

void Engine::stop_periodic(std::uint64_t id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= periodics_.size()) return;
  PeriodicSlot& slot = periodics_[index];
  if (slot.generation != generation) return;
  // Lazy stop: the queued occurrence still drains through step() as a
  // counted no-op, then the slot is recycled.
  slot.active = false;
}

void Engine::note_executed() {
  if (executed_counter_ != nullptr) {
    executed_counter_->inc();
    queue_gauge_->set(static_cast<double>(live_));
  }
}

bool Engine::step() {
  skim_stale();
  if (heap_.empty()) return false;
  const HeapEntry entry = heap_.front();
  heap_pop_min();
  DOPE_ASSERT(entry.t >= now_);
  if constexpr (audit::kEnabled) {
    audit::check_monotonic_time(obs_, now_, entry.t);
  }
  now_ = entry.t;
  ++executed_;

  if ((entry.index & kPeriodicBit) != 0) {
    const std::uint32_t index = entry.index & ~kPeriodicBit;
    if (!periodics_[index].active) {
      // Stopped between scheduling and firing: drain as a counted no-op.
      free_periodic_slot(index);
      note_executed();
      return true;
    }
    // Invoke without moving the callback out — re-arming in place is
    // what makes periodics allocation-free. The callback may schedule,
    // cancel, or stop its own handle; it must not be assumed to keep
    // `periodics_` references valid (it can grow the pool), so re-index
    // after the call.
    periodics_[index].fn();
    PeriodicSlot& slot = periodics_[index];
    if (slot.active) {
      heap_push(HeapEntry{now_ + slot.period, next_seq_++,
                          index | kPeriodicBit, entry.generation});
    } else {
      free_periodic_slot(index);
    }
    note_executed();
    return true;
  }

  // One-shot: move the callback out and recycle the slot *before*
  // invoking, so the handler may schedule or cancel freely (cancelling
  // the running event's own id returns false, as it already fired).
  EventFn fn = std::move(pool_[entry.index].fn);
  free_event_slot(entry.index);
  fn();
  note_executed();
  return true;
}

void Engine::run_until(Time t) {
  DOPE_REQUIRE(t >= now_, "cannot run backwards in time");
  for (;;) {
    skim_stale();
    if (heap_.empty() || heap_.front().t > t) break;
    step();
  }
  now_ = t;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace dope::sim
