// dopesweep — declarative parameter-sweep driver.
//
// Takes a grid spec (scheme × attack × budget × seed axes over one base
// scenario), shards the cross-product onto a thread pool, and merges the
// results deterministically in grid order — the same bytes come out of
// --json for any --threads value.
//
//   $ ./dopesweep --schemes capping,antidope --budgets normal,low
//         --attacks none,dope:400 --seeds 42,43 --threads 8
//         --json sweep.json --csv sweep.csv
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "obs/hub.hpp"
#include "obs/live.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace dope;

void print_help() {
  std::cout <<
      R"(dopesweep — parallel parameter sweeps over the DOPE simulator

usage: dopesweep [options]

grid axes (comma-separated; an omitted axis inherits the base scenario)
  --schemes LIST       none | capping | shaving | token | antidope
  --budgets LIST       normal | high | medium | low
  --attacks LIST       none | dope:RPS | pulse:RPS:PERIOD_S
  --seeds LIST         RNG seeds, e.g. 42,43,44

base scenario
  --servers N          leaf nodes (default 8)
  --normal-rps R       normal user rate (default 300)
  --duration-s S       observation window (default 600)

execution
  --threads N          worker threads; 0 = hardware concurrency (default)
  --json FILE          write the merged sweep report (deterministic bytes)
  --csv FILE           write one CSV row per run
  --incidents-out FILE record every run's flight-recorder incidents
                       (per-run hub: spans, per-slot series, default
                       alert rules) and write the merged bundle report
                       in grid order — deterministic for any --threads
  --progress           print sweep progress metrics after the run
  --live FILE          while the sweep runs, atomically refresh FILE with
                       a JSON progress snapshot (plus a Prometheus text
                       sibling, FILE with a .prom extension) and print
                       progress lines to stderr
  --live-interval-ms N live refresh period (default 1000)
  --help               this text

A run that throws is recorded as a failure (reported per run, exit code
1) without aborting the rest of the grid. See docs/SWEEP.md.
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "dopesweep: " << message << " (see --help)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sweep::GridSpec grid;
  grid.base.scheme = scenario::SchemeKind::kAntiDope;
  grid.base.budget = power::BudgetLevel::kLow;
  grid.base.seed = 42;

  std::size_t threads = 0;
  std::string json_path, csv_path, incidents_path;
  std::string schemes_csv, budgets_csv, attacks_csv, seeds_csv;
  bool progress = false;
  std::string live_path;
  long live_interval_ms = 1000;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) fail("missing value for " + flag);
      return args[++i];
    };
    const auto number = [&](const std::string& value) {
      try {
        return std::stod(value);
      } catch (...) {
        fail("bad numeric value for " + flag + ": " + value);
      }
    };
    if (flag == "--help" || flag == "-h") {
      print_help();
      return 0;
    } else if (flag == "--schemes") {
      schemes_csv = next();
    } else if (flag == "--budgets") {
      budgets_csv = next();
    } else if (flag == "--attacks") {
      attacks_csv = next();
    } else if (flag == "--seeds") {
      seeds_csv = next();
    } else if (flag == "--servers") {
      grid.base.num_servers = static_cast<std::size_t>(number(next()));
    } else if (flag == "--normal-rps") {
      grid.base.normal_rps = number(next());
    } else if (flag == "--duration-s") {
      grid.base.duration = seconds(number(next()));
    } else if (flag == "--threads") {
      threads = static_cast<std::size_t>(number(next()));
    } else if (flag == "--json") {
      json_path = next();
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--incidents-out") {
      incidents_path = next();
    } else if (flag == "--progress") {
      progress = true;
    } else if (flag == "--live") {
      live_path = next();
    } else if (flag == "--live-interval-ms") {
      live_interval_ms = static_cast<long>(number(next()));
      if (live_interval_ms <= 0) fail("--live-interval-ms must be positive");
    } else {
      fail("unknown flag: " + flag);
    }
  }

  try {
    if (!schemes_csv.empty()) {
      grid.schemes = sweep::parse_scheme_list(schemes_csv);
    }
    if (!budgets_csv.empty()) {
      grid.budgets = sweep::parse_budget_list(budgets_csv);
    }
    if (!attacks_csv.empty()) {
      grid.attacks =
          sweep::parse_attack_list(attacks_csv, grid.base.duration);
    }
    if (!seeds_csv.empty()) grid.seeds = sweep::parse_seed_list(seeds_csv);
  } catch (const std::exception& e) {
    fail(e.what());
  }

  obs::Hub hub;
  obs::LiveTap live;
  sweep::SweepRunner runner({.threads = threads,
                             .obs = &hub,
                             .live = live_path.empty() ? nullptr : &live,
                             .capture_incidents = !incidents_path.empty()});

  // Live drainer: a host-side thread that periodically snapshots the tap
  // and refreshes the progress artifacts while `run` blocks below. Reads
  // are wait-free for the sweep workers; the files are replaced via
  // rename so a concurrent `cat`/scrape never sees a partial write.
  std::thread drainer;
  std::atomic<bool> drain_stop{false};
  if (!live_path.empty()) {
    std::string prom_path = live_path;
    if (prom_path.size() > 5 &&
        prom_path.compare(prom_path.size() - 5, 5, ".json") == 0) {
      prom_path.resize(prom_path.size() - 5);
    }
    prom_path += ".prom";
    drainer = std::thread([&live, &drain_stop, live_path, prom_path,
                           live_interval_ms] {
      obs::LiveSnapshot snap;
      std::uint64_t last_seen = 0;
      const auto emit = [&] {
        if (!live.latest(snap) || snap.seq == last_seen) return;
        last_seen = snap.seq;
        obs::replace_live_json(live_path, snap);
        obs::replace_live_prometheus(prom_path, snap);
        std::cerr << "dopesweep: " << snap.runs_completed << "/"
                  << snap.runs_total << " runs";
        if (snap.runs_failed > 0) {
          std::cerr << " (" << snap.runs_failed << " failed)";
        }
        if (snap.wall_ms_count > 0) {
          std::cerr << ", mean "
                    << snap.wall_ms_sum /
                           static_cast<double>(snap.wall_ms_count)
                    << " ms/run";
        }
        std::cerr << "\n";
      };
      long slept_ms = live_interval_ms;  // emit immediately on start
      while (!drain_stop.load(std::memory_order_acquire)) {
        if (slept_ms >= live_interval_ms) {
          slept_ms = 0;
          emit();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        slept_ms += 50;
      }
      emit();  // final state, including done=true
    });
  }

  const auto sweep_result = runner.run(grid);
  if (drainer.joinable()) {
    drain_stop.store(true, std::memory_order_release);
    drainer.join();
  }

  std::cout << "== dopesweep: " << sweep_result.runs.size() << " runs ("
            << sweep_result.failures << " failed) ==\n\n";
  TextTable table({"run", "mean (ms)", "p90 (ms)", "availability",
                   "peak (W)", "status"});
  for (const auto& run : sweep_result.runs) {
    if (run.ok) {
      table.row(run.point.label(), run.result.mean_ms, run.result.p90_ms,
                run.result.availability, run.result.peak_power.value(),
                "ok");
    } else {
      table.row(run.point.label(), "-", "-", "-", "-",
                "FAILED: " + run.error);
    }
  }
  table.print(std::cout);

  if (progress) {
    const auto* wall =
        hub.registry().find_histo("sweep.run_wall_ms");
    const auto* completed =
        hub.registry().find_counter("sweep.runs_completed");
    if (wall != nullptr && completed != nullptr) {
      std::cout << "\nprogress: " << completed->value()
                << " runs completed; wall time per run mean "
                << wall->mean() << " ms (min " << wall->min() << ", max "
                << wall->max() << ")\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) fail("cannot write " + json_path);
    sweep::write_json(out, grid, sweep_result);
    std::cout << "\nwrote " << json_path << "\n";
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) fail("cannot write " + csv_path);
    sweep::write_csv(out, sweep_result);
    std::cout << "wrote " << csv_path << "\n";
  }
  if (!incidents_path.empty()) {
    std::ofstream out(incidents_path);
    if (!out) fail("cannot write " + incidents_path);
    sweep::write_incidents_json(out, sweep_result);
    std::cout << "wrote " << incidents_path << "\n";
  }
  return sweep_result.failures == 0 ? 0 : 1;
}
