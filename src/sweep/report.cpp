#include "sweep/report.hpp"

#include <ostream>

#include "common/csv.hpp"
#include "obs/json.hpp"

namespace dope::sweep {

namespace {

void write_string_array(std::ostream& out,
                        const std::vector<std::string>& values) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ", ";
    obs::write_json_string(out, values[i]);
  }
  out << "]";
}

void write_run(std::ostream& out, const RunRecord& run) {
  out << "    {\"index\": " << run.point.index << ", \"budget\": ";
  obs::write_json_string(out, power::budget_name(run.point.budget));
  out << ", \"scheme\": ";
  obs::write_json_string(out, scenario::scheme_name(run.point.scheme));
  out << ", \"attack\": ";
  obs::write_json_string(out, run.point.attack);
  out << ", \"variant\": ";
  obs::write_json_string(out, run.point.variant);
  out << ", \"seed\": " << run.point.seed;
  if (!run.ok) {
    out << ",\n     \"ok\": false, \"error\": ";
    obs::write_json_string(out, run.error);
    out << "}";
    return;
  }
  const auto& r = run.result;
  const auto field = [&out](const char* key, double value) {
    out << ", \"" << key << "\": ";
    obs::write_json_number(out, value);
  };
  out << ",\n     \"ok\": true";
  field("budget_w", r.budget.value());
  field("mean_ms", r.mean_ms);
  field("p50_ms", r.p50_ms);
  field("p90_ms", r.p90_ms);
  field("p95_ms", r.p95_ms);
  field("p99_ms", r.p99_ms);
  field("availability", r.availability);
  field("drop_fraction", r.drop_fraction);
  field("mean_power_w", r.mean_power.value());
  field("peak_power_w", r.peak_power.value());
  field("utility_j", r.energy.utility_total().value());
  field("battery_j", r.energy.battery.value());
  out << ", \"violation_slots\": " << r.slot_stats.violation_slots
      << ", \"outages\": " << r.slot_stats.outages << "}";
}

}  // namespace

void write_json(std::ostream& out, const GridSpec& grid,
                const SweepResult& sweep) {
  std::vector<std::string> budgets, schemes, attacks, variants;
  for (const auto b : grid.budgets) budgets.push_back(power::budget_name(b));
  for (const auto s : grid.schemes) {
    schemes.push_back(scenario::scheme_name(s));
  }
  for (const auto& a : grid.attacks) attacks.push_back(a.name);
  for (const auto& v : grid.variants) variants.push_back(v.name);

  out << "{\n  \"grid\": {\n    \"budgets\": ";
  write_string_array(out, budgets);
  out << ",\n    \"schemes\": ";
  write_string_array(out, schemes);
  out << ",\n    \"attacks\": ";
  write_string_array(out, attacks);
  out << ",\n    \"variants\": ";
  write_string_array(out, variants);
  out << ",\n    \"seeds\": [";
  for (std::size_t i = 0; i < grid.seeds.size(); ++i) {
    out << (i ? ", " : "") << grid.seeds[i];
  }
  out << "]\n  },\n  \"failures\": " << sweep.failures
      << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
    if (i) out << ",\n";
    write_run(out, sweep.runs[i]);
  }
  out << "\n  ]\n}\n";
}

void write_incidents_json(std::ostream& out, const SweepResult& sweep) {
  out << "{\n  \"dope_incident_sweep\": 1,\n  \"runs\": [";
  for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
    const RunRecord& run = sweep.runs[i];
    if (i) out << ',';
    out << "\n    {\"index\": " << run.point.index << ", \"label\": ";
    obs::write_json_string(out, run.point.label());
    out << ", \"ok\": " << (run.ok ? "true" : "false")
        << ",\n     \"bundle\": ";
    if (run.incident_bundle.empty()) {
      out << "null";
    } else {
      // Splice the run's bundle verbatim, minus its trailing newline.
      std::string bundle = run.incident_bundle;
      while (!bundle.empty() &&
             (bundle.back() == '\n' || bundle.back() == ' ')) {
        bundle.pop_back();
      }
      out << bundle;
    }
    out << '}';
  }
  if (!sweep.runs.empty()) out << "\n  ";
  out << "]\n}\n";
}

void write_csv(std::ostream& out, const SweepResult& sweep) {
  CsvWriter writer(out);
  writer.write_row({"index", "budget", "scheme", "attack", "variant",
                    "seed", "ok", "error", "budget_w", "mean_ms", "p50_ms",
                    "p90_ms", "p95_ms", "p99_ms", "availability",
                    "drop_fraction", "mean_power_w", "peak_power_w",
                    "utility_j", "battery_j", "violation_slots",
                    "outages"});
  for (const auto& run : sweep.runs) {
    const auto& p = run.point;
    if (!run.ok) {
      writer.row(p.index, power::budget_name(p.budget),
                 scenario::scheme_name(p.scheme), p.attack, p.variant,
                 p.seed, 0, run.error, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0);
      continue;
    }
    const auto& r = run.result;
    writer.row(p.index, power::budget_name(p.budget),
               scenario::scheme_name(p.scheme), p.attack, p.variant,
               p.seed, 1, std::string(), r.budget.value(), r.mean_ms,
               r.p50_ms, r.p90_ms, r.p95_ms, r.p99_ms, r.availability,
               r.drop_fraction, r.mean_power.value(),
               r.peak_power.value(), r.energy.utility_total().value(),
               r.energy.battery.value(),
               r.slot_stats.violation_slots, r.slot_stats.outages);
  }
}

}  // namespace dope::sweep
