// Parallel parameter-sweep runner.
//
// Every figure and ablation in the paper is a cross-product over a small
// set of axes — power scheme × attack profile × budget level × config
// variant × seed — evaluated with `scenario::run_scenario`. This module
// makes that grid a first-class object: a `GridSpec` declares the axes, a
// `SweepRunner` shards the cross-product onto a `dope::ThreadPool` (one
// isolated `sim::Engine` and RNG stream per run), and the merged
// `SweepResult` is always in *grid order* — byte-identical regardless of
// the thread count or the order in which runs finish.
//
// Failure isolation: a run that throws is captured as a per-run failure
// record (`RunRecord::ok == false`, `error` holds the exception message)
// instead of aborting the process; the rest of the grid still completes.
//
// Progress is observable through an optional `obs::Hub`:
//   sweep.runs_total        counter — grid size, set before sharding
//   sweep.runs_completed    counter — incremented as runs finish
//   sweep.runs_failed       counter — runs whose scenario threw
//   sweep.run_wall_ms       histo   — per-run wall-clock time
// Wall-clock telemetry is inherently non-deterministic; it never feeds
// into `SweepResult` or the JSON/CSV reports, which stay reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/hub.hpp"
#include "obs/live.hpp"
#include "scenario/scenario.hpp"

namespace dope::sweep {

/// One attack axis entry: a named traffic profile applied on top of the
/// base config. `rps == 0` with an empty plan means "no attack".
struct AttackProfile {
  std::string name = "none";
  double rps = 0.0;
  std::optional<workload::Mixture> mixture;
  std::vector<workload::RateStep> rate_plan;
  Time start = 0;
  Time stop = -1;

  /// The paper's standard DOPE flood (heavy blend at `rps`).
  static AttackProfile dope(double rps);
  /// No attack traffic at all.
  static AttackProfile none();
};

/// One variant axis entry: a named config mutation (pool fraction, slot
/// length, per-node DPM, ...). Applied after the other axes, so it may
/// override them. Variants are code, not data — the `dopesweep` CLI only
/// builds grids over the declarative axes.
struct Variant {
  std::string name = "base";
  std::function<void(scenario::ScenarioConfig&)> apply;
};

/// A declarative sweep grid. The cross-product is enumerated in *grid
/// order*: budgets (outermost) × schemes × attacks × variants × seeds
/// (innermost) — the budget-major order the paper's tables use. An empty
/// axis means "inherit the base config" and contributes one point.
struct GridSpec {
  /// Prototype config; axis values override its corresponding fields.
  scenario::ScenarioConfig base;

  std::vector<power::BudgetLevel> budgets;
  std::vector<scenario::SchemeKind> schemes;
  std::vector<AttackProfile> attacks;
  std::vector<Variant> variants;
  std::vector<std::uint64_t> seeds;

  std::size_t size() const;
};

/// Coordinates of one run inside the grid.
struct RunPoint {
  std::size_t index = 0;  // flat grid-order index
  std::size_t budget_i = 0, scheme_i = 0, attack_i = 0, variant_i = 0,
              seed_i = 0;

  power::BudgetLevel budget = power::BudgetLevel::kNormal;
  scenario::SchemeKind scheme = scenario::SchemeKind::kNone;
  /// "base" when the axis is empty (the base config's traffic applies).
  std::string attack = "base";
  std::string variant = "base";
  std::uint64_t seed = 0;

  /// "Normal-PB/Anti-DOPE/dope-400/base/seed-42" — stable run label for
  /// reports and failure messages.
  std::string label() const;
};

/// Enumerates the grid in grid order.
std::vector<RunPoint> expand(const GridSpec& grid);

/// Builds the concrete scenario for one point: base config + axis
/// overrides + variant mutation. The result never carries the caller's
/// obs hub (hubs must not be shared across concurrent runs).
scenario::ScenarioConfig materialize(const GridSpec& grid,
                                     const RunPoint& point);

/// Outcome of one grid point.
struct RunRecord {
  RunPoint point;
  bool ok = false;
  std::string error;  // exception message when !ok
  scenario::ScenarioResult result;  // valid only when ok
  /// The run's flight-recorder incident bundle (a dope_incident_bundle
  /// JSON document), captured only under
  /// `SweepOptions::capture_incidents`. Deterministic: sim time and
  /// seeds only, so the merged report's bytes stay thread-count
  /// independent.
  std::string incident_bundle;
};

/// Merged sweep outcome, runs in grid order.
struct SweepResult {
  std::vector<RunRecord> runs;
  std::size_t failures = 0;

  const RunRecord& at(std::size_t index) const { return runs.at(index); }
  /// Throws std::runtime_error naming the first failed run, if any.
  void require_all_ok() const;
};

struct SweepOptions {
  /// Worker threads; 0 selects the hardware concurrency.
  std::size_t threads = 0;
  /// Optional progress hub (see file comment). Caller owns; updates
  /// are serialised internally, so one hub may watch one sweep at a
  /// time from another thread.
  obs::Hub* obs = nullptr;
  /// Optional live telemetry tap: the runner publishes a snapshot when
  /// the sweep starts, after every finished run, and once more (with
  /// `done = true`) when the grid has drained. Any other thread may
  /// `latest()` concurrently — publication is lock-free. Caller owns.
  obs::LiveTap* live = nullptr;
  /// Give every run its own private hub (spans + per-slot series +
  /// flight recorder, default alert rules installed) and store the
  /// resulting incident bundle in `RunRecord::incident_bundle`. The
  /// per-run hubs are invisible to `SweepOptions::obs` and do not
  /// change the runs' results.
  bool capture_incidents = false;
};

/// Shards a grid onto a thread pool and merges deterministically.
class SweepRunner {
 public:
  using Options = SweepOptions;

  explicit SweepRunner(Options options = {});

  /// Runs the whole grid. The returned runs are in grid order for any
  /// thread count; a throwing run becomes a failure record.
  SweepResult run(const GridSpec& grid) const;

 private:
  Options options_;
};

/// Convenience: run `grid` on `threads` workers and throw on any failure.
std::vector<scenario::ScenarioResult> run_grid(const GridSpec& grid,
                                               std::size_t threads = 0);

// ---- declarative grid-spec parsing (CLI front-ends) ----
//
// Axis lists are comma-separated names; unknown names throw
// std::invalid_argument naming the offender. The grammar is what
// `dopesweep --help` documents.

/// Splits "a,b,c" into trimmed non-empty elements.
std::vector<std::string> split_list(const std::string& csv);

/// "none" | "capping" | "shaving" | "token" | "antidope".
scenario::SchemeKind parse_scheme(const std::string& name);

/// "normal" | "high" | "medium" | "low".
power::BudgetLevel parse_budget(const std::string& name);

/// "none" | "dope:RPS" (steady heavy-blend flood) |
/// "pulse:RPS:PERIOD_S" (heavy blend, half-period on / half-period off
/// repeated across `duration`).
AttackProfile parse_attack(const std::string& spec, Duration duration);

std::vector<scenario::SchemeKind> parse_scheme_list(const std::string& csv);
std::vector<power::BudgetLevel> parse_budget_list(const std::string& csv);
std::vector<std::uint64_t> parse_seed_list(const std::string& csv);
std::vector<AttackProfile> parse_attack_list(const std::string& csv,
                                             Duration duration);

}  // namespace dope::sweep
