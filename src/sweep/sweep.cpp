#include "sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/thread_annotations.hpp"
#include "obs/flight.hpp"

namespace dope::sweep {

namespace {

// Progress instruments shared by the worker tasks. Registry instruments
// and the live tally are not thread-safe, so every post-spawn touch
// happens under `mu`; the clang -Wthread-safety lane proves it. The
// pointers themselves are set once before the pool spawns.
struct ProgressBoard {
  std::mutex mu;
  obs::Counter* completed PT_GUARDED_BY(mu) = nullptr;
  obs::Counter* failed PT_GUARDED_BY(mu) = nullptr;
  obs::Histo* wall_ms PT_GUARDED_BY(mu) = nullptr;
  obs::LiveSnapshot tally GUARDED_BY(mu);
};

}  // namespace

AttackProfile AttackProfile::dope(double rps) {
  AttackProfile p;
  p.name = "dope-" + std::to_string(static_cast<long long>(rps));
  p.rps = rps;
  p.mixture = workload::Mixture(
      {workload::Catalog::kCollaFilt, workload::Catalog::kKMeans,
       workload::Catalog::kWordCount},
      {1.0, 1.0, 1.0});
  return p;
}

AttackProfile AttackProfile::none() { return AttackProfile{}; }

std::size_t GridSpec::size() const {
  const auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
  return dim(budgets.size()) * dim(schemes.size()) * dim(attacks.size()) *
         dim(variants.size()) * dim(seeds.size());
}

std::string RunPoint::label() const {
  return power::budget_name(budget) + "/" + scenario::scheme_name(scheme) +
         "/" + attack + "/" + variant + "/seed-" + std::to_string(seed);
}

std::vector<RunPoint> expand(const GridSpec& grid) {
  const auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
  const std::size_t nb = dim(grid.budgets.size());
  const std::size_t ns = dim(grid.schemes.size());
  const std::size_t na = dim(grid.attacks.size());
  const std::size_t nv = dim(grid.variants.size());
  const std::size_t nk = dim(grid.seeds.size());

  std::vector<RunPoint> points;
  points.reserve(nb * ns * na * nv * nk);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t s = 0; s < ns; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        for (std::size_t v = 0; v < nv; ++v) {
          for (std::size_t k = 0; k < nk; ++k) {
            RunPoint p;
            p.index = points.size();
            p.budget_i = b;
            p.scheme_i = s;
            p.attack_i = a;
            p.variant_i = v;
            p.seed_i = k;
            p.budget = grid.budgets.empty() ? grid.base.budget
                                            : grid.budgets[b];
            p.scheme = grid.schemes.empty() ? grid.base.scheme
                                            : grid.schemes[s];
            if (!grid.attacks.empty()) p.attack = grid.attacks[a].name;
            if (!grid.variants.empty()) p.variant = grid.variants[v].name;
            p.seed = grid.seeds.empty() ? grid.base.seed : grid.seeds[k];
            points.push_back(std::move(p));
          }
        }
      }
    }
  }
  return points;
}

scenario::ScenarioConfig materialize(const GridSpec& grid,
                                     const RunPoint& point) {
  scenario::ScenarioConfig config = grid.base;
  // A hub attached to the base prototype must not leak into (possibly
  // concurrent) grid runs; progress goes through SweepRunner's own hub.
  config.obs = nullptr;
  config.default_alert_rules = false;

  if (!grid.budgets.empty()) config.budget = point.budget;
  if (!grid.schemes.empty()) config.scheme = point.scheme;
  if (!grid.attacks.empty()) {
    const AttackProfile& attack = grid.attacks[point.attack_i];
    config.attack_rps = attack.rps;
    config.attack_mixture = attack.mixture;
    config.attack_rate_plan = attack.rate_plan;
    config.attack_start = attack.start;
    config.attack_stop = attack.stop;
  }
  if (!grid.seeds.empty()) config.seed = point.seed;
  if (!grid.variants.empty() && grid.variants[point.variant_i].apply) {
    grid.variants[point.variant_i].apply(config);
  }
  return config;
}

void SweepResult::require_all_ok() const {
  for (const auto& run : runs) {
    if (!run.ok) {
      throw std::runtime_error("sweep run " + run.point.label() +
                               " failed: " + run.error);
    }
  }
}

SweepRunner::SweepRunner(Options options) : options_(options) {}

SweepResult SweepRunner::run(const GridSpec& grid) const {
  const auto points = expand(grid);

  SweepResult merged;
  merged.runs.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    merged.runs[i].point = points[i];
  }

  // Progress instruments. The registry is not thread-safe, so create
  // them up front on this thread and serialise updates below.
  ProgressBoard board;
  if (options_.obs != nullptr) {
    auto& registry = options_.obs->registry();
    registry.counter("sweep.runs_total").inc(
        static_cast<double>(points.size()));
    board.completed = &registry.counter("sweep.runs_completed");
    board.failed = &registry.counter("sweep.runs_failed");
    board.wall_ms = &registry.histo("sweep.run_wall_ms");
  }
  // Live-tap tally, mutated only under board.mu; each update publishes
  // a complete snapshot so concurrent readers always see consistent
  // totals. Published once up front so "0 of N" is visible immediately.
  {
    std::lock_guard<std::mutex> lock(board.mu);
    board.tally.runs_total = points.size();
    if (options_.live != nullptr) options_.live->publish(board.tally);
  }

  ThreadPool pool(options_.threads);
  for (std::size_t i = 0; i < points.size(); ++i) {
    pool.submit([&, i] {
      RunRecord& record = merged.runs[i];  // slot i: merge is by index
      // dope-lint: allow(wall-clock) — host-side progress telemetry
      // (sweep.run_wall_ms); never reaches the merged report bytes.
      const auto start = std::chrono::steady_clock::now();
      try {
        auto config = materialize(grid, record.point);
        // Per-run hub: hubs are single-threaded, so incident capture
        // builds one inside each worker task rather than sharing the
        // runner's progress hub.
        std::unique_ptr<obs::Hub> run_hub;
        if (options_.capture_incidents) {
          obs::HubConfig hub_config;
          hub_config.enable_spans = true;
          hub_config.enable_timeseries = true;
          hub_config.enable_flight = true;
          run_hub = std::make_unique<obs::Hub>(hub_config);
          config.obs = run_hub.get();
          config.default_alert_rules = true;
          config.run_label = record.point.label();
        }
        record.result = scenario::run_scenario(config);
        if (run_hub != nullptr) {
          std::ostringstream bundle;
          run_hub->flight()->write_json(bundle);
          record.incident_bundle = bundle.str();
        }
        record.ok = true;
      } catch (const std::exception& e) {
        record.error = e.what();
      } catch (...) {
        record.error = "unknown exception";
      }
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              // dope-lint: allow(wall-clock) — same telemetry read.
              std::chrono::steady_clock::now() - start)
              .count();
      if (options_.obs != nullptr || options_.live != nullptr) {
        std::lock_guard<std::mutex> lock(board.mu);
        if (options_.obs != nullptr) {
          board.completed->inc();
          if (!record.ok) board.failed->inc();
          board.wall_ms->observe(elapsed_ms);
        }
        if (options_.live != nullptr) {
          obs::LiveSnapshot& tally = board.tally;
          ++tally.runs_completed;
          if (!record.ok) ++tally.runs_failed;
          tally.wall_ms_sum += elapsed_ms;
          tally.wall_ms_min = tally.wall_ms_count == 0
                                  ? elapsed_ms
                                  : std::min(tally.wall_ms_min, elapsed_ms);
          tally.wall_ms_max = std::max(tally.wall_ms_max, elapsed_ms);
          ++tally.wall_ms_count;
          options_.live->publish(tally);
        }
      }
    });
  }
  pool.wait_idle();
  if (options_.live != nullptr) {
    std::lock_guard<std::mutex> lock(board.mu);
    board.tally.done = true;
    options_.live->publish(board.tally);
  }

  for (const auto& run : merged.runs) {
    if (!run.ok) ++merged.failures;
  }
  return merged;
}

std::vector<scenario::ScenarioResult> run_grid(const GridSpec& grid,
                                               std::size_t threads) {
  auto sweep = SweepRunner({.threads = threads}).run(grid);
  sweep.require_all_ok();
  std::vector<scenario::ScenarioResult> results;
  results.reserve(sweep.runs.size());
  for (auto& run : sweep.runs) results.push_back(std::move(run.result));
  return results;
}

// ---- grid-spec parsing ----

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  const auto flush = [&] {
    const auto first = item.find_first_not_of(" \t");
    if (first != std::string::npos) {
      const auto last = item.find_last_not_of(" \t");
      out.push_back(item.substr(first, last - first + 1));
    }
    item.clear();
  };
  for (const char c : csv) {
    if (c == ',') {
      flush();
    } else {
      item += c;
    }
  }
  flush();
  return out;
}

scenario::SchemeKind parse_scheme(const std::string& name) {
  if (name == "none") return scenario::SchemeKind::kNone;
  if (name == "capping") return scenario::SchemeKind::kCapping;
  if (name == "shaving") return scenario::SchemeKind::kShaving;
  if (name == "token") return scenario::SchemeKind::kToken;
  if (name == "antidope") return scenario::SchemeKind::kAntiDope;
  throw std::invalid_argument("unknown scheme: " + name);
}

power::BudgetLevel parse_budget(const std::string& name) {
  if (name == "normal") return power::BudgetLevel::kNormal;
  if (name == "high") return power::BudgetLevel::kHigh;
  if (name == "medium") return power::BudgetLevel::kMedium;
  if (name == "low") return power::BudgetLevel::kLow;
  throw std::invalid_argument("unknown budget level: " + name);
}

AttackProfile parse_attack(const std::string& spec, Duration duration) {
  if (spec == "none") return AttackProfile::none();
  const auto parse_number = [&spec](const std::string& field) {
    try {
      return std::stod(field);
    } catch (...) {
      throw std::invalid_argument("bad attack spec: " + spec);
    }
  };
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "dope" && colon != std::string::npos) {
    return AttackProfile::dope(parse_number(spec.substr(colon + 1)));
  }
  if (kind == "pulse" && colon != std::string::npos) {
    const auto rest = spec.substr(colon + 1);
    const auto colon2 = rest.find(':');
    if (colon2 == std::string::npos) {
      throw std::invalid_argument("bad attack spec: " + spec +
                                  " (want pulse:RPS:PERIOD_S)");
    }
    const double rps = parse_number(rest.substr(0, colon2));
    const Duration period = seconds(parse_number(rest.substr(colon2 + 1)));
    if (period <= 0) {
      throw std::invalid_argument("bad attack spec: " + spec +
                                  " (period must be positive)");
    }
    auto profile = AttackProfile::dope(rps);
    profile.name = "pulse-" + rest.substr(0, colon2) + "-" +
                   rest.substr(colon2 + 1) + "s";
    for (Time t = 0; t < duration; t += period) {
      profile.rate_plan.push_back({t, rps});
      profile.rate_plan.push_back({t + period / 2, 0.0});
    }
    return profile;
  }
  throw std::invalid_argument("unknown attack spec: " + spec);
}

std::vector<scenario::SchemeKind> parse_scheme_list(const std::string& csv) {
  std::vector<scenario::SchemeKind> out;
  for (const auto& name : split_list(csv)) out.push_back(parse_scheme(name));
  return out;
}

std::vector<power::BudgetLevel> parse_budget_list(const std::string& csv) {
  std::vector<power::BudgetLevel> out;
  for (const auto& name : split_list(csv)) out.push_back(parse_budget(name));
  return out;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& csv) {
  std::vector<std::uint64_t> out;
  for (const auto& field : split_list(csv)) {
    try {
      out.push_back(std::stoull(field));
    } catch (...) {
      throw std::invalid_argument("bad seed: " + field);
    }
  }
  return out;
}

std::vector<AttackProfile> parse_attack_list(const std::string& csv,
                                             Duration duration) {
  std::vector<AttackProfile> out;
  for (const auto& spec : split_list(csv)) {
    out.push_back(parse_attack(spec, duration));
  }
  return out;
}

}  // namespace dope::sweep
