// Deterministic sweep reports.
//
// Both exports walk `SweepResult::runs` in grid order and contain no
// wall-clock or host-dependent data, so the bytes written are identical
// for any worker-thread count — `tests/sweep_test.cpp` pins that down.
//
// The JSON mirrors the bench binaries' `BENCH_<figure>.json` spirit: a
// self-describing header (the grid axes), one record per run with the
// headline metrics the paper's tables report, and an explicit failure
// record (`"ok": false` + `"error"`) for runs whose scenario threw.
#pragma once

#include <iosfwd>

#include "sweep/sweep.hpp"

namespace dope::sweep {

/// Writes the merged sweep as one JSON object:
/// {"grid": {axes}, "failures": N, "runs": [{...}, ...]}.
void write_json(std::ostream& out, const GridSpec& grid,
                const SweepResult& sweep);

/// Writes one CSV row per run: grid coordinates, ok/error, then the
/// headline metric columns of `scenario::write_results_csv`.
void write_csv(std::ostream& out, const SweepResult& sweep);

/// Writes the merged incident report — one entry per run, in grid
/// order, each embedding the run's flight-recorder bundle verbatim:
/// {"dope_incident_sweep": 1, "runs": [{"label": ..., "bundle": {...}},
/// ...]}. Requires a sweep executed with
/// `SweepOptions::capture_incidents`; runs without a bundle (failures)
/// carry "bundle": null. Byte-identical for any thread count.
void write_incidents_json(std::ostream& out, const SweepResult& sweep);

}  // namespace dope::sweep
