// Power plane: provisioning, breaker, battery, and energy accounting.
//
// Owns everything electrical about one cluster (zone): the facility
// budget, the optional UPS battery, the branch-circuit breaker on the
// utility feed, and the per-slot energy books (utility vs. battery from
// exact integrals). Once per management slot, `run_slot` measures the
// finished slot's average demand, settles the energy accounts, applies
// breaker protection (a trip blacks the fleet out through the data
// plane), and feeds the watchdog — after which the control plane's
// stages enforce policy on what it measured.
//
// The budget is mutable at runtime (`set_budget`): inside a `site::Site`
// a facility-level divider reapportions one shared budget across zones
// every slot, so a zone's supply is a policy output rather than a
// constant.
#pragma once

#include <optional>
#include <string>

#include "battery/battery.hpp"
#include "common/units.hpp"
#include "metrics/energy.hpp"
#include "power/breaker.hpp"
#include "power/provisioning.hpp"

namespace dope::obs {
class Counter;
class Gauge;
class Histo;
class Hub;
class Series;
}  // namespace dope::obs

namespace dope::cluster {

class Cluster;
class DataPlane;
struct ClusterConfig;

/// Per-slot management telemetry.
struct SlotStats {
  std::uint64_t slots = 0;
  /// Slots whose *average* demand exceeded the budget (power violations
  /// that made it past the management plane).
  std::uint64_t violation_slots = 0;
  /// Slots where the *utility feed* (demand minus battery discharge)
  /// exceeded the budget — the violations that actually trip breakers.
  std::uint64_t utility_violation_slots = 0;
  /// Worst single-slot overshoot above the budget (watts).
  Watts worst_overshoot{0.0};
  /// Unplanned outages (breaker trips).
  std::uint64_t outages = 0;
  /// Total time the cluster spent dark.
  Duration downtime = 0;
};

/// Electrical side of one cluster.
class PowerPlane {
 public:
  /// `owner` provides the engine and the fleet (through `data`); both
  /// outlive the plane.
  PowerPlane(Cluster& owner, DataPlane& data, const ClusterConfig& config);

  PowerPlane(const PowerPlane&) = delete;
  PowerPlane& operator=(const PowerPlane&) = delete;

  // --- provisioning ---
  /// Facility power budget (watts).
  Watts budget() const { return budget_.supply; }
  /// Re-provisions the budget (site-level dividers; tests). Takes effect
  /// from the next slot's enforcement.
  void set_budget(Watts supply);
  /// Aggregate nameplate rating of the fleet (watts).
  Watts total_nameplate() const;

  /// Average aggregate power over the last completed slot.
  Watts last_slot_demand() const { return last_slot_demand_; }

  // --- electrical components ---
  battery::Battery* battery() { return battery_ ? &*battery_ : nullptr; }
  const battery::Battery* battery() const {
    return battery_ ? &*battery_ : nullptr;
  }
  power::CircuitBreaker* breaker() {
    return breaker_ ? &*breaker_ : nullptr;
  }
  /// True while a breaker trip has the cluster dark.
  bool in_outage() const { return in_outage_; }

  // --- accounting ---
  const metrics::EnergyAccount& energy_account() const {
    return energy_account_;
  }
  const SlotStats& slot_stats() const { return slot_stats_; }

  // --- wiring (Cluster construction / slot loop only) ---
  /// Settles one finished management slot (see file comment).
  void run_slot(Time now);
  /// Binds the electrical metrics/gauges into `hub`'s registry.
  void bind_obs(obs::Hub* hub);

 private:
  Cluster& owner_;
  DataPlane& data_;
  const ClusterConfig& config_;
  int zone_;
  power::PowerBudget budget_;

  std::optional<battery::Battery> battery_;
  std::optional<power::CircuitBreaker> breaker_;
  bool in_outage_ = false;
  Time outage_started_ = 0;

  metrics::EnergyAccount energy_account_;
  SlotStats slot_stats_;
  Joules prev_load_energy_{0.0};
  Joules prev_battery_discharged_{0.0};
  Joules prev_battery_charge_drawn_{0.0};
  Watts last_slot_demand_{0.0};

  // Watchdog signal names (zone-suffixed inside a Site).
  std::string signal_slot_demand_;
  std::string signal_utility_;
  std::string signal_battery_soc_;
  std::string signal_breaker_heat_;

  obs::Hub* hub_ = nullptr;
  obs::Counter* obs_violation_slots_ = nullptr;
  obs::Counter* obs_utility_violation_slots_ = nullptr;
  obs::Counter* obs_battery_discharge_slots_ = nullptr;
  obs::Counter* obs_outage_count_ = nullptr;
  obs::Gauge* obs_slot_demand_ = nullptr;
  obs::Gauge* obs_utility_ = nullptr;
  obs::Gauge* obs_battery_soc_ = nullptr;
  obs::Gauge* obs_breaker_heat_ = nullptr;
  obs::Histo* obs_overshoot_ = nullptr;

  // Per-slot time series (null unless the hub has a TimeSeriesStore).
  obs::Series* ts_demand_ = nullptr;
  obs::Series* ts_budget_ = nullptr;
  obs::Series* ts_headroom_ = nullptr;
  obs::Series* ts_utility_ = nullptr;
  obs::Series* ts_load_energy_ = nullptr;
  obs::Series* ts_battery_soc_ = nullptr;
  obs::Series* ts_battery_discharge_ = nullptr;
  obs::Series* ts_breaker_heat_ = nullptr;
};

}  // namespace dope::cluster
