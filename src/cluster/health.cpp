#include "cluster/health.hpp"

#include "cluster/cluster.hpp"
#include "common/expect.hpp"

namespace dope::cluster {

std::size_t HealthReport::count(NodeHealth health) const {
  std::size_t n = 0;
  for (const auto& node : nodes) {
    if (node.health == health) ++n;
  }
  return n;
}

bool HealthReport::any_critical() const {
  return count(NodeHealth::kCritical) > 0;
}

HealthChecker::HealthChecker(Cluster& cluster, HealthCheckerConfig config)
    : cluster_(&cluster), config_(config) {
  DOPE_REQUIRE(config_.power_saturation_fraction > 0.0 &&
                   config_.power_saturation_fraction <= 1.0,
               "saturation fraction must be in (0, 1]");
  DOPE_REQUIRE(config_.queue_pressure > 0,
               "queue pressure threshold must be positive");
}

HealthReport HealthChecker::inspect() const {
  HealthReport report;
  report.at = cluster_->engine().now();
  report.budget = cluster_->budget();
  for (auto* node : cluster_->servers()) {
    NodeReport nr;
    nr.server = node->backend_id();
    nr.power = node->current_power();
    nr.queue_length = node->queue_length();
    nr.active = node->active_count();
    nr.dvfs_level = node->level();
    const bool hot =
        nr.power >= config_.power_saturation_fraction * node->nameplate();
    const bool pressed = nr.queue_length >= config_.queue_pressure;
    if (hot && pressed) {
      nr.health = NodeHealth::kCritical;
    } else if (hot) {
      nr.health = NodeHealth::kPowerSaturated;
    } else if (pressed) {
      nr.health = NodeHealth::kOverloaded;
    }
    report.total_power += nr.power;
    report.nodes.push_back(nr);
  }
  report.headroom = report.budget - report.total_power;
  if (const auto* battery = cluster_->battery()) {
    report.battery_soc = battery->soc();
  }
  return report;
}

}  // namespace dope::cluster
