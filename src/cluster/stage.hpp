// Control-stage interface: one element of a cluster's control plane.
//
// The control plane is an *ordered, deterministic pipeline* of stages.
// Each stage plugs into the cluster at three points:
//   - `admit`: chainable pre-routing admission filter — every stage must
//     admit a request, in installation order; the first refusal drops it
//     (the Token baseline sheds packets here);
//   - `route`: chainable request-to-server routing — stages are asked in
//     installation order and the first non-null backend wins (Anti-DOPE's
//     power-driven forwarding overrides this); when every stage declines,
//     the data plane's default load balancer picks;
//   - `on_slot`: the per-slot enforcement step, invoked for every stage
//     in installation order after the power plane has settled the slot's
//     accounts — compare demand against the budget and actuate DVFS
//     and/or the battery.
//
// Stages see only what a real power manager sees: the cluster's plane
// interfaces (`data()`, `power()`, `control()`) plus read-only context
// (`engine()`, `catalog()`, `config()`, `ladder()`, `zone()`). They must
// never reach around the planes into cluster internals (enforced by the
// `stage-plane` dope_lint rule) and must never read
// `Request::ground_truth_attack`.
//
// Lifecycle: `attach` binds a stage to exactly one cluster; `detach`
// releases it. Re-attaching an attached stage to a *different* cluster
// throws — a stage handed from one cluster to another (as a sweep reusing
// scheme objects could) must be detached first, so stale `Cluster*`
// pointers cannot dangle. The owning control plane detaches every stage
// on destruction and on replacement.
#pragma once

#include <string>

#include "common/units.hpp"
#include "net/backend.hpp"
#include "workload/request.hpp"

namespace dope::cluster {

class Cluster;

/// Abstract control-plane stage (peak-power management policy, admission
/// filter, router, autoscaler, health monitor, ...).
class ControlStage {
 public:
  virtual ~ControlStage();

  /// Display name ("Capping", "Shaving", "Token", "Anti-DOPE", ...).
  virtual std::string name() const = 0;

  /// Called once when installed into a cluster; the cluster outlives the
  /// stage's use of it (the control plane detaches on teardown).
  /// Overrides must call the base first. Throws when the stage is still
  /// attached to a different cluster.
  virtual void attach(Cluster& cluster);

  /// Called when the stage is removed, replaced, or its cluster is torn
  /// down. Overrides must drop every cached cluster-derived pointer
  /// (node lists, routers, hubs) and call the base.
  virtual void detach();

  /// True while bound to a cluster.
  bool attached() const { return cluster_ != nullptr; }

  /// Admission control before routing; false drops the request.
  virtual bool admit(const workload::Request& request) {
    (void)request;
    return true;
  }

  /// Custom routing; nullptr passes to the next stage (then the default
  /// load balancer).
  virtual net::Backend* route(const workload::Request& request) {
    (void)request;
    return nullptr;
  }

  /// Per-slot budget enforcement. `now` is the slot boundary time.
  virtual void on_slot(Time now, Duration slot) = 0;

 protected:
  Cluster* cluster_ = nullptr;
};

/// Historical name: the paper's power-management schemes (Table 2) are
/// control stages that actuate DVFS/battery in `on_slot`.
using PowerScheme = ControlStage;

}  // namespace dope::cluster
