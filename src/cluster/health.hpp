// Server health checker (the RPM feedback link of Fig. 13/14).
//
// Periodically inspects every node and classifies it by the two signals
// the power manager cares about: electrical pressure (power near
// nameplate) and service pressure (queue depth vs. capacity). The
// aggregated report also carries the supply-side state (budget headroom,
// battery charge), giving schemes and operators one structured snapshot
// per slot.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace dope::cluster {

class Cluster;

/// Health classification of one node.
enum class NodeHealth {
  kHealthy,
  kPowerSaturated,  ///< power within a few percent of nameplate
  kOverloaded,      ///< queue depth beyond the pressure threshold
  kCritical,        ///< both at once
};

/// Snapshot of one node.
struct NodeReport {
  int server = -1;
  NodeHealth health = NodeHealth::kHealthy;
  Watts power{0.0};
  std::size_t queue_length = 0;
  unsigned active = 0;
  std::size_t dvfs_level = 0;
};

/// Snapshot of the whole cluster.
struct HealthReport {
  Time at = 0;
  std::vector<NodeReport> nodes;
  Watts total_power{0.0};
  Watts budget{0.0};
  /// Negative when the cluster is over budget.
  Watts headroom{0.0};
  /// Battery state of charge; 1.0 when no battery is installed.
  double battery_soc = 1.0;

  std::size_t count(NodeHealth health) const;
  bool any_critical() const;
};

/// Health-checker thresholds.
struct HealthCheckerConfig {
  /// Power above this fraction of nameplate flags kPowerSaturated.
  double power_saturation_fraction = 0.95;
  /// Queue length beyond this many requests flags kOverloaded.
  std::size_t queue_pressure = 64;
};

/// Produces HealthReports on demand (schemes call it per slot; tests and
/// operators call it ad hoc).
class HealthChecker {
 public:
  HealthChecker(Cluster& cluster, HealthCheckerConfig config = {});

  HealthReport inspect() const;

 private:
  Cluster* cluster_;
  HealthCheckerConfig config_;
};

}  // namespace dope::cluster
