// Cluster assembly: three composable planes wired onto one simulation
// engine.
//
//   data plane     (cluster/data_plane.hpp)   switch -> firewall -> LB ->
//                                             server pool; the request path
//   power plane    (cluster/power_plane.hpp)  provisioning, breaker,
//                                             battery, energy accounting
//   control plane  (cluster/control_plane.hpp) ordered pipeline of
//                                             ControlStages (schemes,
//                                             autoscaler, health checks)
//
// The Cluster itself is the composition root: it owns the three planes,
// the request metrics, and the management-slot periodic that drives
// `power.run_slot` followed by `control.on_slot`. Schemes and tests reach
// the planes through `data()` / `power()` / `control()`; the legacy
// accessors (`servers()`, `budget()`, `battery()`, ...) delegate and are
// kept so the narrow-interface refactor stays source-compatible.
//
// Inside a `site::Site` each zone is one Cluster with `config.zone >= 0`;
// zone-labelled metrics, trace fields, and watchdog signal suffixes are
// emitted only then, so a standalone cluster's exports are byte-identical
// to the pre-plane layout.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "battery/battery.hpp"
#include "cluster/control_plane.hpp"
#include "cluster/data_plane.hpp"
#include "cluster/power_plane.hpp"
#include "cluster/stage.hpp"
#include "common/units.hpp"
#include "metrics/energy.hpp"
#include "metrics/request_metrics.hpp"
#include "net/firewall.hpp"
#include "net/load_balancer.hpp"
#include "net/switch.hpp"
#include "obs/hub.hpp"
#include "power/breaker.hpp"
#include "power/provisioning.hpp"
#include "server/node.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"

namespace dope::cluster {

/// Everything needed to stand up a cluster.
struct ClusterConfig {
  /// Leaf-node count (the paper's mini rack has 4; evaluation scales up).
  std::size_t num_servers = 8;
  power::ServerPowerSpec server_spec{};
  server::ServerConfig server_config{};
  /// DVFS operating points shared by every node.
  power::DvfsLadder ladder = power::DvfsLadder::make();
  /// Facility supply as a fraction of aggregate nameplate.
  power::BudgetLevel budget_level = power::BudgetLevel::kNormal;
  /// Explicit supply in watts; overrides `budget_level` when positive
  /// (used for "aggressively power-insufficient" scenarios like Fig. 7).
  Watts budget_override{0.0};
  /// Power-manager decision interval.
  Duration slot = 1 * kSecond;
  /// Battery sized to sustain the full cluster for this long; 0 = none.
  Duration battery_runtime = 0;
  /// Fraction of battery capacity reserved for outage ride-through;
  /// peak shaving never discharges below it.
  double battery_reserve_fraction = 0.0;
  /// Ingress switch capacity; disabled (infinite wire) when nullopt.
  std::optional<net::SwitchConfig> network_switch;
  /// Perimeter firewall; disabled when nullopt.
  std::optional<net::FirewallConfig> firewall;
  /// Branch-circuit breaker protecting the utility feed; when the feed's
  /// draw trips it, the whole cluster suffers an unplanned outage.
  std::optional<power::BreakerSpec> breaker;
  /// How long the facility stays dark after a trip before the breaker is
  /// reset and servers begin rebooting.
  Duration outage_recovery = 30 * kSecond;
  /// Per-server reboot time after power returns.
  Duration reboot_time = 10 * kSecond;
  /// Default NLB policy when no control stage routes.
  net::LbPolicy lb_policy = net::LbPolicy::kLeastLoaded;
  /// Zone index inside a `site::Site`; -1 for a standalone cluster.
  /// When >= 0 every metric, trace event, span, and watchdog signal the
  /// cluster emits carries the zone.
  int zone = -1;
};

/// Stable label for a terminal outcome (metrics label / trace payload).
const char* outcome_label(workload::RequestOutcome outcome);

/// A power-constrained server cluster under test.
class Cluster {
 public:
  Cluster(sim::Engine& engine, const workload::Catalog& catalog,
          ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- planes ---
  DataPlane& data() { return data_; }
  const DataPlane& data() const { return data_; }
  PowerPlane& power() { return power_; }
  const PowerPlane& power() const { return power_; }
  ControlPlane& control() { return control_; }
  const ControlPlane& control() const { return control_; }

  /// Installs `scheme` as the *only* control stage (replacing any
  /// existing stack). Equivalent to `control().install(...)`.
  void install_scheme(std::unique_ptr<PowerScheme> scheme);
  /// First stage of the control pipeline (nullptr when empty); kept for
  /// single-scheme callers. Multi-stage users go through `control()`.
  PowerScheme* scheme() { return control_.front(); }

  // --- request path ---
  /// Edge entry point for generated traffic.
  void ingest(workload::Request&& request) {
    data_.ingest(std::move(request));
  }
  /// Sink adapter for TrafficGenerator (cluster must outlive it).
  workload::RequestSink edge_sink();

  // --- topology / control surface (for schemes and tests) ---
  sim::Engine& engine() { return engine_; }
  const workload::Catalog& catalog() const { return catalog_; }
  const ClusterConfig& config() const { return config_; }
  const power::DvfsLadder& ladder() const { return config_.ladder; }
  /// Zone index inside a Site; -1 standalone.
  int zone() const { return config_.zone; }
  std::vector<server::ServerNode*> servers() { return data_.servers(); }
  server::ServerNode& server(std::size_t i) { return data_.server(i); }
  std::size_t num_servers() const { return data_.num_servers(); }

  /// Aggregate nameplate rating (watts).
  Watts total_nameplate() const { return power_.total_nameplate(); }
  /// Facility power budget (watts).
  Watts budget() const { return power_.budget(); }
  /// Instantaneous aggregate power right now.
  Watts total_power() const { return data_.total_power(); }
  /// Average aggregate power over the last completed slot.
  Watts last_slot_demand() const { return power_.last_slot_demand(); }
  /// Exact aggregate energy consumed by all servers so far.
  Joules total_energy() const { return data_.total_energy(); }

  battery::Battery* battery() { return power_.battery(); }
  net::Firewall* firewall() { return data_.firewall(); }
  net::Switch* network_switch() { return data_.network_switch(); }
  power::CircuitBreaker* breaker() { return power_.breaker(); }
  /// True while a breaker trip has the cluster dark.
  bool in_outage() const { return power_.in_outage(); }
  net::LoadBalancer& default_balancer() {
    return data_.default_balancer();
  }

  // --- metrics ---
  metrics::RequestMetrics& request_metrics() { return request_metrics_; }
  const metrics::EnergyAccount& energy_account() const {
    return power_.energy_account();
  }
  const SlotStats& slot_stats() const { return power_.slot_stats(); }

  /// Registers an extra observer of terminal request records (e.g. the
  /// adaptive attacker's feedback probe).
  void add_record_listener(workload::RecordSink listener);

  /// Terminal-record sink: closes the root span, bumps outcome counters,
  /// folds the record into the metrics, and fans out to listeners. The
  /// data plane and server nodes call this; it is public so a Site's
  /// per-zone sinks can chain through it.
  void on_record(const workload::RequestRecord& record);

  /// Convenience: advances the shared engine by `d`.
  void run_for(Duration d);

  /// Signal names the cluster feeds to an attached watchdog, one sample
  /// per management slot (see docs/OBSERVABILITY.md). Inside a Site each
  /// zone suffixes these with ".zone<N>".
  static constexpr const char* kSignalSlotDemand = "cluster.slot_demand_w";
  static constexpr const char* kSignalUtility = "cluster.utility_w";
  static constexpr const char* kSignalBatterySoc = "battery.soc";
  static constexpr const char* kSignalBreakerHeat = "breaker.heat";

 private:
  /// Config-validation gate; throws std::invalid_argument before any
  /// plane is built (num_servers == 0, non-positive slot, ...).
  static void validate(const ClusterConfig& config);
  void management_slot();
  void bind_obs();

  sim::Engine& engine_;
  const workload::Catalog& catalog_;
  ClusterConfig config_;

  // Plane construction order is load-bearing: the data plane builds the
  // fleet and edge first (nodes, switch, firewall, balancer), then the
  // power plane sizes its battery/breaker against the fleet, then the
  // control plane starts empty. Golden exports depend on this order.
  DataPlane data_;
  PowerPlane power_;
  ControlPlane control_;

  metrics::RequestMetrics request_metrics_;
  std::vector<workload::RecordSink> listeners_;

  // Observability (all null when no hub is attached to the engine).
  obs::Hub* hub_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  obs::Counter* obs_outcome_[7] = {};

  sim::PeriodicHandle slot_task_;
};

}  // namespace dope::cluster
