// Cluster assembly: servers + edge (firewall, NLB) + battery + power
// manager, wired onto one simulation engine.
//
// The request path is
//
//   generator -> ingest() -> firewall -> scheme.admit() -> scheme.route()
//             -> (default LB if the scheme declines) -> server queue
//
// and the management path is a periodic slot loop that measures demand,
// invokes the installed `PowerScheme`, and accounts energy by source
// (utility vs. battery) from exact integrals.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "battery/battery.hpp"
#include "cluster/scheme.hpp"
#include "common/units.hpp"
#include "metrics/energy.hpp"
#include "metrics/request_metrics.hpp"
#include "net/firewall.hpp"
#include "net/load_balancer.hpp"
#include "net/switch.hpp"
#include "obs/hub.hpp"
#include "power/breaker.hpp"
#include "power/provisioning.hpp"
#include "server/node.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"

namespace dope::cluster {

/// Everything needed to stand up a cluster.
struct ClusterConfig {
  /// Leaf-node count (the paper's mini rack has 4; evaluation scales up).
  std::size_t num_servers = 8;
  power::ServerPowerSpec server_spec{};
  server::ServerConfig server_config{};
  /// DVFS operating points shared by every node.
  power::DvfsLadder ladder = power::DvfsLadder::make();
  /// Facility supply as a fraction of aggregate nameplate.
  power::BudgetLevel budget_level = power::BudgetLevel::kNormal;
  /// Explicit supply in watts; overrides `budget_level` when positive
  /// (used for "aggressively power-insufficient" scenarios like Fig. 7).
  Watts budget_override{0.0};
  /// Power-manager decision interval.
  Duration slot = 1 * kSecond;
  /// Battery sized to sustain the full cluster for this long; 0 = none.
  Duration battery_runtime = 0;
  /// Fraction of battery capacity reserved for outage ride-through;
  /// peak shaving never discharges below it.
  double battery_reserve_fraction = 0.0;
  /// Ingress switch capacity; disabled (infinite wire) when nullopt.
  std::optional<net::SwitchConfig> network_switch;
  /// Perimeter firewall; disabled when nullopt.
  std::optional<net::FirewallConfig> firewall;
  /// Branch-circuit breaker protecting the utility feed; when the feed's
  /// draw trips it, the whole cluster suffers an unplanned outage.
  std::optional<power::BreakerSpec> breaker;
  /// How long the facility stays dark after a trip before the breaker is
  /// reset and servers begin rebooting.
  Duration outage_recovery = 30 * kSecond;
  /// Per-server reboot time after power returns.
  Duration reboot_time = 10 * kSecond;
  /// Default NLB policy when the scheme does not route.
  net::LbPolicy lb_policy = net::LbPolicy::kLeastLoaded;
};

/// Per-slot management telemetry.
struct SlotStats {
  std::uint64_t slots = 0;
  /// Slots whose *average* demand exceeded the budget (power violations
  /// that made it past the management plane).
  std::uint64_t violation_slots = 0;
  /// Slots where the *utility feed* (demand minus battery discharge)
  /// exceeded the budget — the violations that actually trip breakers.
  std::uint64_t utility_violation_slots = 0;
  /// Worst single-slot overshoot above the budget (watts).
  Watts worst_overshoot{0.0};
  /// Unplanned outages (breaker trips).
  std::uint64_t outages = 0;
  /// Total time the cluster spent dark.
  Duration downtime = 0;
};

/// A power-constrained server cluster under test.
class Cluster {
 public:
  Cluster(sim::Engine& engine, const workload::Catalog& catalog,
          ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Installs the power-management scheme (replacing any previous one).
  void install_scheme(std::unique_ptr<PowerScheme> scheme);
  PowerScheme* scheme() { return scheme_.get(); }

  // --- request path ---
  /// Edge entry point for generated traffic.
  void ingest(workload::Request&& request);
  /// Sink adapter for TrafficGenerator (cluster must outlive it).
  workload::RequestSink edge_sink();

  // --- topology / control surface (for schemes and tests) ---
  sim::Engine& engine() { return engine_; }
  const workload::Catalog& catalog() const { return catalog_; }
  const ClusterConfig& config() const { return config_; }
  const power::DvfsLadder& ladder() const { return config_.ladder; }
  std::vector<server::ServerNode*> servers();
  server::ServerNode& server(std::size_t i);
  std::size_t num_servers() const { return nodes_.size(); }

  /// Aggregate nameplate rating (watts).
  Watts total_nameplate() const;
  /// Facility power budget (watts).
  Watts budget() const { return budget_.supply; }
  /// Instantaneous aggregate power right now.
  Watts total_power() const;
  /// Average aggregate power over the last completed slot.
  Watts last_slot_demand() const { return last_slot_demand_; }
  /// Exact aggregate energy consumed by all servers so far.
  Joules total_energy() const;

  battery::Battery* battery() { return battery_ ? &*battery_ : nullptr; }
  net::Firewall* firewall() { return firewall_ ? &*firewall_ : nullptr; }
  net::Switch* network_switch() {
    return switch_ ? &*switch_ : nullptr;
  }
  power::CircuitBreaker* breaker() {
    return breaker_ ? &*breaker_ : nullptr;
  }
  /// True while a breaker trip has the cluster dark.
  bool in_outage() const { return in_outage_; }
  net::LoadBalancer& default_balancer() { return *balancer_; }

  // --- metrics ---
  metrics::RequestMetrics& request_metrics() { return request_metrics_; }
  const metrics::EnergyAccount& energy_account() const {
    return energy_account_;
  }
  const SlotStats& slot_stats() const { return slot_stats_; }

  /// Registers an extra observer of terminal request records (e.g. the
  /// adaptive attacker's feedback probe).
  void add_record_listener(workload::RecordSink listener);

  /// Convenience: advances the shared engine by `d`.
  void run_for(Duration d);

  /// Signal names the cluster feeds to an attached watchdog, one sample
  /// per management slot (see docs/OBSERVABILITY.md).
  static constexpr const char* kSignalSlotDemand = "cluster.slot_demand_w";
  static constexpr const char* kSignalUtility = "cluster.utility_w";
  static constexpr const char* kSignalBatterySoc = "battery.soc";
  static constexpr const char* kSignalBreakerHeat = "breaker.heat";

 private:
  void on_record(const workload::RequestRecord& record);
  void management_slot();
  void drop(workload::Request&& request, workload::RequestOutcome outcome);
  void bind_obs();
  void trace_forwarded(const workload::Request& request, int server,
                       const char* pool);
  void trace_dropped(const workload::Request& request, const char* reason);

  sim::Engine& engine_;
  const workload::Catalog& catalog_;
  ClusterConfig config_;
  power::PowerBudget budget_;

  std::vector<std::unique_ptr<server::ServerNode>> nodes_;
  std::optional<net::Switch> switch_;
  std::optional<net::Firewall> firewall_;
  std::unique_ptr<net::LoadBalancer> balancer_;
  std::optional<battery::Battery> battery_;
  std::optional<power::CircuitBreaker> breaker_;
  bool in_outage_ = false;
  Time outage_started_ = 0;
  std::unique_ptr<PowerScheme> scheme_;

  metrics::RequestMetrics request_metrics_;
  std::vector<workload::RecordSink> listeners_;

  // Observability (all null when no hub is attached to the engine).
  obs::Hub* hub_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  obs::Counter* obs_outcome_[7] = {};
  obs::Counter* obs_forwarded_scheme_ = nullptr;
  obs::Counter* obs_forwarded_default_ = nullptr;
  obs::Counter* obs_violation_slots_ = nullptr;
  obs::Counter* obs_utility_violation_slots_ = nullptr;
  obs::Counter* obs_battery_discharge_slots_ = nullptr;
  obs::Counter* obs_outage_count_ = nullptr;
  obs::Gauge* obs_slot_demand_ = nullptr;
  obs::Gauge* obs_utility_ = nullptr;
  obs::Gauge* obs_battery_soc_ = nullptr;
  obs::Gauge* obs_breaker_heat_ = nullptr;
  obs::Histo* obs_overshoot_ = nullptr;

  sim::PeriodicHandle slot_task_;
  metrics::EnergyAccount energy_account_;
  SlotStats slot_stats_;
  Joules prev_load_energy_{0.0};
  Joules prev_battery_discharged_{0.0};
  Joules prev_battery_charge_drawn_{0.0};
  Watts last_slot_demand_{0.0};
};

}  // namespace dope::cluster
