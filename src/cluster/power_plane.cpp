#include "cluster/power_plane.hpp"

#include <algorithm>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/data_plane.hpp"
#include "common/audit.hpp"
#include "common/expect.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"

namespace dope::cluster {

namespace {

/// Watchdog signal name for one zone: the standalone constant as-is, or
/// zone-suffixed inside a Site ("cluster.slot_demand_w.zone2") so zones
/// sharing one hub keep distinct breach streaks.
std::string zone_signal(const char* base, int zone) {
  if (zone < 0) return base;
  return std::string(base) + ".zone" + std::to_string(zone);
}

}  // namespace

PowerPlane::PowerPlane(Cluster& owner, DataPlane& data,
                       const ClusterConfig& config)
    : owner_(owner),
      data_(data),
      config_(config),
      zone_(config.zone),
      budget_(config.budget_override > Watts{0.0}
                  ? power::PowerBudget{config.budget_override}
                  : power::PowerBudget::for_level(
                        config.budget_level,
                        config.server_spec.nameplate *
                            static_cast<double>(config.num_servers))),
      signal_slot_demand_(
          zone_signal(Cluster::kSignalSlotDemand, config.zone)),
      signal_utility_(zone_signal(Cluster::kSignalUtility, config.zone)),
      signal_battery_soc_(
          zone_signal(Cluster::kSignalBatterySoc, config.zone)),
      signal_breaker_heat_(
          zone_signal(Cluster::kSignalBreakerHeat, config.zone)) {
  if (config.battery_runtime > 0) {
    auto spec = battery::BatterySpec::sized_for(total_nameplate(),
                                                config.battery_runtime);
    spec.reserve_fraction = config.battery_reserve_fraction;
    battery_.emplace(spec);
  }
  if (config.breaker.has_value()) {
    breaker_.emplace(*config.breaker);
  }
}

void PowerPlane::set_budget(Watts supply) {
  DOPE_REQUIRE(supply > Watts{0.0}, "budget must be positive");
  budget_.supply = supply;
}

Watts PowerPlane::total_nameplate() const {
  return config_.server_spec.nameplate *
         static_cast<double>(config_.num_servers);
}

void PowerPlane::bind_obs(obs::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) return;
  auto& reg = hub_->registry();
  obs::Labels labels;
  if (zone_ >= 0) labels.emplace_back("zone", std::to_string(zone_));
  obs_violation_slots_ = &reg.counter("cluster.violation_slots", labels);
  obs_utility_violation_slots_ =
      &reg.counter("cluster.utility_violation_slots", labels);
  obs_battery_discharge_slots_ =
      &reg.counter("battery.discharge_slots", labels);
  obs_outage_count_ = &reg.counter("cluster.outages", labels);
  obs_slot_demand_ = &reg.gauge("cluster.slot_demand_w", labels);
  obs_utility_ = &reg.gauge("cluster.utility_w", labels);
  if (battery_) obs_battery_soc_ = &reg.gauge("battery.soc", labels);
  if (breaker_) obs_breaker_heat_ = &reg.gauge("breaker.heat", labels);
  obs_overshoot_ = &reg.histo("cluster.overshoot_w", labels);
  if (obs::TimeSeriesStore* ts = hub_->timeseries(); ts != nullptr) {
    ts_demand_ = &ts->series(signal_slot_demand_);
    ts_budget_ = &ts->series(zone_signal("cluster.budget_w", zone_));
    ts_headroom_ = &ts->series(zone_signal("cluster.headroom_w", zone_));
    ts_utility_ = &ts->series(signal_utility_);
    ts_load_energy_ =
        &ts->series(zone_signal("cluster.load_energy_j", zone_));
    if (battery_) {
      ts_battery_soc_ = &ts->series(signal_battery_soc_);
      ts_battery_discharge_ =
          &ts->series(zone_signal("battery.discharge_w", zone_));
    }
    if (breaker_) ts_breaker_heat_ = &ts->series(signal_breaker_heat_);
  }
}

void PowerPlane::run_slot(Time now) {
  sim::Engine& engine = owner_.engine();
  const Duration slot = config_.slot;

  // Average demand over the slot that just finished, from exact energy.
  const Joules load_energy = data_.total_energy();
  const Joules slot_energy = load_energy - prev_load_energy_;
  prev_load_energy_ = load_energy;
  last_slot_demand_ = slot_energy / slot;

  // Sample the demand-side series before any trigger event fires so an
  // incident captured this slot already includes the slot that caused
  // it. `load_energy` is cumulative: post-mortems reconcile the demand
  // series against it (sum of demand x slot == last load_energy).
  if (ts_demand_ != nullptr) {
    ts_demand_->sample(now, last_slot_demand_.value());
    ts_budget_->sample(now, budget_.supply.value());
    ts_headroom_->sample(now,
                         (budget_.supply - last_slot_demand_).value());
    ts_load_energy_->sample(now, load_energy.value());
  }

  ++slot_stats_.slots;
  const Watts overshoot = last_slot_demand_ - budget_.supply;
  if (overshoot > Watts{1e-9}) {
    ++slot_stats_.violation_slots;
    slot_stats_.worst_overshoot =
        std::max(slot_stats_.worst_overshoot, overshoot);
  }
  if (hub_ != nullptr) {
    obs_slot_demand_->set(last_slot_demand_.value());
    if (overshoot > Watts{1e-9}) {
      obs_violation_slots_->inc();
      obs_overshoot_->observe(overshoot.value());
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBudgetViolation;
      e.source = "cluster";
      e.num.emplace_back("demand_w", last_slot_demand_.value());
      e.num.emplace_back("budget_w", budget_.supply.value());
      e.num.emplace_back("overshoot_w", overshoot.value());
      if (zone_ >= 0) e.num.emplace_back("zone", zone_);
      hub_->event(std::move(e));
    }
  }

  // Energy source attribution for the finished slot: whatever the battery
  // delivered (or drew for recharge) since the previous boundary shifts
  // between the utility and battery columns. This must happen *before*
  // the control stages act so that a discharge reserved at the start of a
  // slot is credited to that slot, not the one before it.
  Joules battery_delta{0.0};
  Joules recharge_delta{0.0};
  if (battery_) {
    battery_delta = battery_->total_discharged() - prev_battery_discharged_;
    prev_battery_discharged_ = battery_->total_discharged();
    recharge_delta =
        battery_->total_charge_drawn() - prev_battery_charge_drawn_;
    prev_battery_charge_drawn_ = battery_->total_charge_drawn();
  }
  const Joules utility_j =
      std::max(Joules{0.0}, slot_energy - battery_delta);
  if constexpr (audit::kEnabled) {
    // Per-slot power conservation: what the servers drew is covered by
    // the utility feed plus the battery, and nothing went negative.
    audit::check_power_conservation(hub_, now, slot_energy, utility_j,
                                    battery_delta);
    audit::check_non_negative(hub_, now, "battery.recharge_j",
                              recharge_delta.value());
    if (battery_) {
      audit::check_battery_soc(hub_, now, battery_->stored(),
                               battery_->spec().capacity);
    }
  }
  energy_account_.add_joules(utility_j, battery_delta, recharge_delta);
  const Watts utility_power = (utility_j + recharge_delta) / slot;
  // Utility-side series, again ahead of the breaker so a trip capture
  // sees this slot's feed. Breaker heat is the value entering the slot
  // boundary (observe() below adds this slot's heating).
  if (ts_utility_ != nullptr) {
    ts_utility_->sample(now, utility_power.value());
    if (battery_) {
      ts_battery_soc_->sample(now, battery_->soc());
      ts_battery_discharge_->sample(now, (battery_delta / slot).value());
    }
    if (breaker_) ts_breaker_heat_->sample(now, breaker_->heat());
  }
  if (utility_power > budget_.supply + Watts{1e-9}) {
    ++slot_stats_.utility_violation_slots;
    if (hub_ != nullptr) obs_utility_violation_slots_->inc();
  }
  if (hub_ != nullptr) {
    obs_utility_->set(utility_power.value());
    if (battery_delta > Joules{0.0}) {
      obs_battery_discharge_slots_->inc();
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBatteryDischarge;
      e.source = "battery";
      e.num.emplace_back("joules", battery_delta.value());
      e.num.emplace_back("watts", (battery_delta / slot).value());
      e.num.emplace_back("soc", battery_->soc());
      if (zone_ >= 0) e.num.emplace_back("zone", zone_);
      hub_->event(std::move(e));
    }
    if (recharge_delta > Joules{0.0}) {
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBatteryCharge;
      e.source = "battery";
      e.num.emplace_back("joules", recharge_delta.value());
      e.num.emplace_back("soc", battery_->soc());
      if (zone_ >= 0) e.num.emplace_back("zone", zone_);
      hub_->event(std::move(e));
    }
    if (battery_) obs_battery_soc_->set(battery_->soc());
  }

  // Breaker protection on the utility feed. A trip blacks out the whole
  // cluster (the paper's Fig. 1 unplanned-outage scenario); power returns
  // after the recovery delay and servers reboot.
  if (breaker_ && !in_outage_ &&
      breaker_->observe(utility_power, slot)) {
    in_outage_ = true;
    outage_started_ = now;
    ++slot_stats_.outages;
    if (hub_ != nullptr) {
      obs_outage_count_->inc();
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBreakerTrip;
      e.source = "breaker";
      e.num.emplace_back("utility_w", utility_power.value());
      e.num.emplace_back("rated_w", breaker_->spec().rated.value());
      e.num.emplace_back("trips", breaker_->trips());
      if (zone_ >= 0) e.num.emplace_back("zone", zone_);
      hub_->event(std::move(e));
    }
    data_.power_off_all();
    engine.schedule_after(config_.outage_recovery, [this] {
      breaker_->reset();
      in_outage_ = false;
      sim::Engine& eng = owner_.engine();
      slot_stats_.downtime += eng.now() - outage_started_;
      if (hub_ != nullptr) {
        obs::TraceEvent e;
        e.t = eng.now();
        e.type = obs::EventType::kOutageEnd;
        e.source = "breaker";
        e.num.emplace_back("downtime_s",
                           to_seconds(eng.now() - outage_started_));
        if (zone_ >= 0) e.num.emplace_back("zone", zone_);
        hub_->event(std::move(e));
      }
      data_.power_on_all(config_.reboot_time);
    });
  }
  if (hub_ != nullptr && breaker_) obs_breaker_heat_->set(breaker_->heat());

  // Feed the watchdog one windowed sample of each cluster signal; rules
  // installed on the hub (e.g. "budget violated K slots in a row") fire
  // from these.
  if (hub_ != nullptr) {
    auto& dog = hub_->watchdog();
    dog.observe(signal_slot_demand_, now, last_slot_demand_.value());
    dog.observe(signal_utility_, now, utility_power.value());
    if (battery_) dog.observe(signal_battery_soc_, now, battery_->soc());
    if (breaker_) dog.observe(signal_breaker_heat_, now, breaker_->heat());
  }
}

}  // namespace dope::cluster
