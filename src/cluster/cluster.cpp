#include "cluster/cluster.hpp"

#include <string>
#include <utility>

#include "common/audit.hpp"
#include "common/expect.hpp"

namespace dope::cluster {

const char* outcome_label(workload::RequestOutcome outcome) {
  switch (outcome) {
    case workload::RequestOutcome::kCompleted: return "completed";
    case workload::RequestOutcome::kDroppedByLimit: return "limit";
    case workload::RequestOutcome::kBlockedByFirewall: return "firewall";
    case workload::RequestOutcome::kRejectedQueueFull: return "queue_full";
    case workload::RequestOutcome::kTimedOut: return "timeout";
    case workload::RequestOutcome::kFailedOutage: return "outage";
    case workload::RequestOutcome::kDroppedNetwork: return "network";
  }
  return "?";
}

Cluster::Cluster(sim::Engine& engine, const workload::Catalog& catalog,
                 ClusterConfig config)
    : engine_(engine),
      catalog_(catalog),
      config_((validate(config), std::move(config))),
      data_(*this, config_),
      power_(*this, data_, config_),
      control_(*this) {
  bind_obs();

  slot_task_ =
      engine_.every(config_.slot, [this] { management_slot(); });
}

void Cluster::validate(const ClusterConfig& config) {
  DOPE_REQUIRE(config.num_servers > 0, "cluster needs at least one server");
  DOPE_REQUIRE(config.slot > 0, "management slot must be positive");
}

void Cluster::bind_obs() {
  hub_ = engine_.obs();
  if (hub_ == nullptr) return;
  auto& reg = hub_->registry();
  for (int i = 0; i < 7; ++i) {
    obs::Labels labels{
        {"outcome", outcome_label(static_cast<workload::RequestOutcome>(i))}};
    if (config_.zone >= 0) {
      labels.emplace_back("zone", std::to_string(config_.zone));
    }
    obs_outcome_[i] = &reg.counter("requests.outcome", labels);
  }
  // Registration order mirrors the pre-plane monolith so the metrics
  // JSON (creation-ordered) stays byte-identical: outcome counters, edge
  // forwarding counters, electrical instruments, then the balancer.
  data_.bind_obs(hub_);
  power_.bind_obs(hub_);
  data_.bind_balancer_obs(hub_);
  spans_ = hub_->spans();
}

Cluster::~Cluster() { slot_task_.stop(); }

void Cluster::install_scheme(std::unique_ptr<PowerScheme> scheme) {
  DOPE_REQUIRE(scheme != nullptr, "scheme must not be null");
  control_.install(std::move(scheme));
}

workload::RequestSink Cluster::edge_sink() {
  return [this](workload::Request&& r) { ingest(std::move(r)); };
}

void Cluster::add_record_listener(workload::RecordSink listener) {
  DOPE_REQUIRE(listener != nullptr, "listener must be callable");
  listeners_.push_back(std::move(listener));
}

void Cluster::run_for(Duration d) {
  DOPE_REQUIRE(d >= 0, "duration must be non-negative");
  engine_.run_until(engine_.now() + d);
}

void Cluster::on_record(const workload::RequestRecord& record) {
  if constexpr (audit::kEnabled) {
    audit::check_non_negative(hub_, record.finish, "request.latency_us",
                              static_cast<double>(record.latency));
  }
  if (hub_ != nullptr) {
    obs_outcome_[static_cast<int>(record.outcome)]->inc();
  }
  if (spans_ != nullptr) {
    spans_->end(
        obs::span_id_for(record.request.id, obs::SpanKind::kRequest),
        record.finish, outcome_label(record.outcome));
  }
  request_metrics_.record(record);
  for (auto& l : listeners_) l(record);
}

void Cluster::management_slot() {
  const Time now = engine_.now();
  // Measurement before policy: the data plane samples the serving-side
  // series, the power plane settles the finished slot's books (and may
  // trip the breaker — the samples must land first so an incident
  // capture sees this slot), then every control stage acts on what it
  // measured, in installation order.
  data_.sample_timeseries(now);
  power_.run_slot(now);
  control_.on_slot(now, config_.slot);
}

}  // namespace dope::cluster
