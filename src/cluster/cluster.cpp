#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/audit.hpp"
#include "common/expect.hpp"

namespace dope::cluster {

namespace {

/// Stable label for a terminal outcome (metrics label / trace payload).
const char* outcome_label(workload::RequestOutcome outcome) {
  switch (outcome) {
    case workload::RequestOutcome::kCompleted: return "completed";
    case workload::RequestOutcome::kDroppedByLimit: return "limit";
    case workload::RequestOutcome::kBlockedByFirewall: return "firewall";
    case workload::RequestOutcome::kRejectedQueueFull: return "queue_full";
    case workload::RequestOutcome::kTimedOut: return "timeout";
    case workload::RequestOutcome::kFailedOutage: return "outage";
    case workload::RequestOutcome::kDroppedNetwork: return "network";
  }
  return "?";
}

}  // namespace

Cluster::Cluster(sim::Engine& engine, const workload::Catalog& catalog,
                 ClusterConfig config)
    : engine_(engine),
      catalog_(catalog),
      config_(std::move(config)),
      budget_(config_.budget_override > Watts{0.0}
                  ? power::PowerBudget{config_.budget_override}
                  : power::PowerBudget::for_level(
                        config_.budget_level,
                        config_.server_spec.nameplate *
                            static_cast<double>(config_.num_servers))) {
  DOPE_REQUIRE(config_.num_servers > 0, "cluster needs at least one server");
  DOPE_REQUIRE(config_.slot > 0, "management slot must be positive");

  auto sink = [this](const workload::RequestRecord& r) { on_record(r); };
  nodes_.reserve(config_.num_servers);
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    nodes_.push_back(std::make_unique<server::ServerNode>(
        engine_, static_cast<int>(i), catalog_,
        power::ServerPowerModel(config_.server_spec, config_.ladder),
        config_.server_config, sink));
  }

  if (config_.network_switch.has_value()) {
    switch_.emplace(*config_.network_switch);
  }
  if (config_.firewall.has_value()) {
    firewall_.emplace(engine_, *config_.firewall);
  }

  std::vector<net::Backend*> pool;
  pool.reserve(nodes_.size());
  for (auto& n : nodes_) pool.push_back(n.get());
  balancer_ =
      std::make_unique<net::LoadBalancer>(config_.lb_policy, std::move(pool));

  if (config_.battery_runtime > 0) {
    auto spec = battery::BatterySpec::sized_for(total_nameplate(),
                                                config_.battery_runtime);
    spec.reserve_fraction = config_.battery_reserve_fraction;
    battery_.emplace(spec);
  }

  if (config_.breaker.has_value()) {
    breaker_.emplace(*config_.breaker);
  }

  bind_obs();

  slot_task_ =
      engine_.every(config_.slot, [this] { management_slot(); });
}

void Cluster::bind_obs() {
  hub_ = engine_.obs();
  if (hub_ == nullptr) return;
  auto& reg = hub_->registry();
  for (int i = 0; i < 7; ++i) {
    obs_outcome_[i] = &reg.counter(
        "requests.outcome",
        {{"outcome",
          outcome_label(static_cast<workload::RequestOutcome>(i))}});
  }
  obs_forwarded_scheme_ =
      &reg.counter("net.forwarded", {{"pool", "scheme"}});
  obs_forwarded_default_ =
      &reg.counter("net.forwarded", {{"pool", "default"}});
  obs_violation_slots_ = &reg.counter("cluster.violation_slots");
  obs_utility_violation_slots_ =
      &reg.counter("cluster.utility_violation_slots");
  obs_battery_discharge_slots_ = &reg.counter("battery.discharge_slots");
  obs_outage_count_ = &reg.counter("cluster.outages");
  obs_slot_demand_ = &reg.gauge("cluster.slot_demand_w");
  obs_utility_ = &reg.gauge("cluster.utility_w");
  if (battery_) obs_battery_soc_ = &reg.gauge("battery.soc");
  if (breaker_) obs_breaker_heat_ = &reg.gauge("breaker.heat");
  obs_overshoot_ = &reg.histo("cluster.overshoot_w");
  balancer_->bind_obs(hub_, "default");
  spans_ = hub_->spans();
  balancer_->bind_spans(&engine_, spans_, "default");
}

void Cluster::trace_forwarded(const workload::Request& request, int server,
                              const char* pool) {
  obs::TraceEvent e;
  e.t = engine_.now();
  e.type = obs::EventType::kRequestForwarded;
  e.source = "edge";
  e.num.emplace_back("server", server);
  e.num.emplace_back("url_class", request.type);
  e.num.emplace_back("source_id", request.source);
  e.str.emplace_back("pool", pool);
  hub_->event(std::move(e));
}

void Cluster::trace_dropped(const workload::Request& request,
                            const char* reason) {
  obs::TraceEvent e;
  e.t = engine_.now();
  e.type = obs::EventType::kRequestDropped;
  e.source = "edge";
  e.num.emplace_back("url_class", request.type);
  e.num.emplace_back("source_id", request.source);
  e.str.emplace_back("reason", reason);
  hub_->event(std::move(e));
}

Cluster::~Cluster() { slot_task_.stop(); }

void Cluster::install_scheme(std::unique_ptr<PowerScheme> scheme) {
  DOPE_REQUIRE(scheme != nullptr, "scheme must not be null");
  scheme_ = std::move(scheme);
  scheme_->attach(*this);
}

void Cluster::ingest(workload::Request&& request) {
  if (spans_ != nullptr) {
    // Root span: opens at edge arrival, closes in on_record with the
    // terminal outcome. Child spans (firewall, LB, queue, service) all
    // point back at this id.
    obs::Span span;
    span.id = obs::span_id_for(request.id, obs::SpanKind::kRequest);
    span.kind = obs::SpanKind::kRequest;
    span.begin = engine_.now();
    span.source_id = request.source;
    span.url_class = request.type;
    span.label = request.ground_truth_attack ? "attack" : "normal";
    spans_->begin(std::move(span));
  }
  // The wire comes first: a saturated switch drops packets before any
  // defense or server sees them (network-layer DoS).
  if (switch_ && !switch_->forward(engine_.now())) {
    drop(std::move(request), workload::RequestOutcome::kDroppedNetwork);
    return;
  }
  if (firewall_ && !firewall_->admit(request)) {
    drop(std::move(request), workload::RequestOutcome::kBlockedByFirewall);
    return;
  }
  if (scheme_ && !scheme_->admit(request)) {
    drop(std::move(request), workload::RequestOutcome::kDroppedByLimit);
    return;
  }
  net::Backend* target = scheme_ ? scheme_->route(request) : nullptr;
  if (target != nullptr) {
    if (hub_ != nullptr) {
      obs_forwarded_scheme_->inc();
      trace_forwarded(request, target->backend_id(), "scheme");
    }
    target->submit(std::move(request));
    return;
  }
  net::Backend* backend = balancer_->select(request);
  if (backend == nullptr) {
    // No backend accepted; surfaces as a queue-full rejection at the edge.
    drop(std::move(request), workload::RequestOutcome::kRejectedQueueFull);
    return;
  }
  if (hub_ != nullptr) {
    obs_forwarded_default_->inc();
    trace_forwarded(request, backend->backend_id(), "default");
  }
  backend->submit(std::move(request));
}

workload::RequestSink Cluster::edge_sink() {
  return [this](workload::Request&& r) { ingest(std::move(r)); };
}

std::vector<server::ServerNode*> Cluster::servers() {
  std::vector<server::ServerNode*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

server::ServerNode& Cluster::server(std::size_t i) {
  DOPE_REQUIRE(i < nodes_.size(), "server index out of range");
  return *nodes_[i];
}

Watts Cluster::total_nameplate() const {
  return config_.server_spec.nameplate *
         static_cast<double>(config_.num_servers);
}

Watts Cluster::total_power() const {
  Watts p{0.0};
  for (const auto& n : nodes_) p += n->current_power();
  return p;
}

Joules Cluster::total_energy() const {
  Joules e{0.0};
  for (const auto& n : nodes_) e += n->energy();
  return e;
}

void Cluster::add_record_listener(workload::RecordSink listener) {
  DOPE_REQUIRE(listener != nullptr, "listener must be callable");
  listeners_.push_back(std::move(listener));
}

void Cluster::run_for(Duration d) {
  DOPE_REQUIRE(d >= 0, "duration must be non-negative");
  engine_.run_until(engine_.now() + d);
}

void Cluster::on_record(const workload::RequestRecord& record) {
  if constexpr (audit::kEnabled) {
    audit::check_non_negative(hub_, record.finish, "request.latency_us",
                              static_cast<double>(record.latency));
  }
  if (hub_ != nullptr) {
    obs_outcome_[static_cast<int>(record.outcome)]->inc();
  }
  if (spans_ != nullptr) {
    spans_->end(
        obs::span_id_for(record.request.id, obs::SpanKind::kRequest),
        record.finish, outcome_label(record.outcome));
  }
  request_metrics_.record(record);
  for (auto& l : listeners_) l(record);
}

void Cluster::drop(workload::Request&& request,
                   workload::RequestOutcome outcome) {
  if (hub_ != nullptr) trace_dropped(request, outcome_label(outcome));
  workload::RequestRecord record;
  record.request = std::move(request);
  record.outcome = outcome;
  record.finish = engine_.now();
  record.latency = 0;
  record.server = -1;
  on_record(record);
}

void Cluster::management_slot() {
  const Time now = engine_.now();
  const Duration slot = config_.slot;

  // Average demand over the slot that just finished, from exact energy.
  const Joules load_energy = total_energy();
  const Joules slot_energy = load_energy - prev_load_energy_;
  prev_load_energy_ = load_energy;
  last_slot_demand_ = slot_energy / slot;

  ++slot_stats_.slots;
  const Watts overshoot = last_slot_demand_ - budget_.supply;
  if (overshoot > Watts{1e-9}) {
    ++slot_stats_.violation_slots;
    slot_stats_.worst_overshoot =
        std::max(slot_stats_.worst_overshoot, overshoot);
  }
  if (hub_ != nullptr) {
    obs_slot_demand_->set(last_slot_demand_.value());
    if (overshoot > Watts{1e-9}) {
      obs_violation_slots_->inc();
      obs_overshoot_->observe(overshoot.value());
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBudgetViolation;
      e.source = "cluster";
      e.num.emplace_back("demand_w", last_slot_demand_.value());
      e.num.emplace_back("budget_w", budget_.supply.value());
      e.num.emplace_back("overshoot_w", overshoot.value());
      hub_->event(std::move(e));
    }
  }

  // Energy source attribution for the finished slot: whatever the battery
  // delivered (or drew for recharge) since the previous boundary shifts
  // between the utility and battery columns. This must happen *before*
  // the scheme acts so that a discharge reserved at the start of a slot
  // is credited to that slot, not the one before it.
  Joules battery_delta{0.0};
  Joules recharge_delta{0.0};
  if (battery_) {
    battery_delta = battery_->total_discharged() - prev_battery_discharged_;
    prev_battery_discharged_ = battery_->total_discharged();
    recharge_delta =
        battery_->total_charge_drawn() - prev_battery_charge_drawn_;
    prev_battery_charge_drawn_ = battery_->total_charge_drawn();
  }
  const Joules utility_j =
      std::max(Joules{0.0}, slot_energy - battery_delta);
  if constexpr (audit::kEnabled) {
    // Per-slot power conservation: what the servers drew is covered by
    // the utility feed plus the battery, and nothing went negative.
    audit::check_power_conservation(hub_, now, slot_energy, utility_j,
                                    battery_delta);
    audit::check_non_negative(hub_, now, "battery.recharge_j",
                              recharge_delta.value());
    if (battery_) {
      audit::check_battery_soc(hub_, now, battery_->stored(),
                               battery_->spec().capacity);
    }
  }
  energy_account_.add_joules(utility_j, battery_delta, recharge_delta);
  const Watts utility_power = (utility_j + recharge_delta) / slot;
  if (utility_power > budget_.supply + Watts{1e-9}) {
    ++slot_stats_.utility_violation_slots;
    if (hub_ != nullptr) obs_utility_violation_slots_->inc();
  }
  if (hub_ != nullptr) {
    obs_utility_->set(utility_power.value());
    if (battery_delta > Joules{0.0}) {
      obs_battery_discharge_slots_->inc();
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBatteryDischarge;
      e.source = "battery";
      e.num.emplace_back("joules", battery_delta.value());
      e.num.emplace_back("watts", (battery_delta / slot).value());
      e.num.emplace_back("soc", battery_->soc());
      hub_->event(std::move(e));
    }
    if (recharge_delta > Joules{0.0}) {
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBatteryCharge;
      e.source = "battery";
      e.num.emplace_back("joules", recharge_delta.value());
      e.num.emplace_back("soc", battery_->soc());
      hub_->event(std::move(e));
    }
    if (battery_) obs_battery_soc_->set(battery_->soc());
  }

  // Breaker protection on the utility feed. A trip blacks out the whole
  // cluster (the paper's Fig. 1 unplanned-outage scenario); power returns
  // after the recovery delay and servers reboot.
  if (breaker_ && !in_outage_ &&
      breaker_->observe(utility_power, slot)) {
    in_outage_ = true;
    outage_started_ = now;
    ++slot_stats_.outages;
    if (hub_ != nullptr) {
      obs_outage_count_->inc();
      obs::TraceEvent e;
      e.t = now;
      e.type = obs::EventType::kBreakerTrip;
      e.source = "breaker";
      e.num.emplace_back("utility_w", utility_power.value());
      e.num.emplace_back("rated_w", breaker_->spec().rated.value());
      e.num.emplace_back("trips", breaker_->trips());
      hub_->event(std::move(e));
    }
    for (auto& node : nodes_) node->power_off();
    engine_.schedule_after(config_.outage_recovery, [this] {
      breaker_->reset();
      in_outage_ = false;
      slot_stats_.downtime += engine_.now() - outage_started_;
      if (hub_ != nullptr) {
        obs::TraceEvent e;
        e.t = engine_.now();
        e.type = obs::EventType::kOutageEnd;
        e.source = "breaker";
        e.num.emplace_back(
            "downtime_s", to_seconds(engine_.now() - outage_started_));
        hub_->event(std::move(e));
      }
      for (auto& node : nodes_) node->power_on(config_.reboot_time);
    });
  }
  if (hub_ != nullptr && breaker_) obs_breaker_heat_->set(breaker_->heat());

  // Feed the watchdog one windowed sample of each cluster signal; rules
  // installed on the hub (e.g. "budget violated K slots in a row") fire
  // from these.
  if (hub_ != nullptr) {
    auto& dog = hub_->watchdog();
    dog.observe(kSignalSlotDemand, now, last_slot_demand_.value());
    dog.observe(kSignalUtility, now, utility_power.value());
    if (battery_) dog.observe(kSignalBatterySoc, now, battery_->soc());
    if (breaker_) dog.observe(kSignalBreakerHeat, now, breaker_->heat());
  }

  if (scheme_) scheme_->on_slot(now, slot);
}

}  // namespace dope::cluster
