// Power-management scheme interface (Table 2).
//
// A scheme plugs into the cluster at three points:
//   - `admit`: pre-routing admission control (the Token baseline sheds
//     packets here);
//   - `route`: custom request-to-server routing (Anti-DOPE's power-driven
//     forwarding overrides this); returning nullptr falls back to the
//     cluster's default load balancer;
//   - `on_slot`: the per-slot enforcement step — compare demand against
//     the budget and actuate DVFS and/or the battery.
//
// Schemes see only what a real power manager sees: aggregate and per-node
// power, DVFS controls, battery state, and request *types* (URL classes).
// They must never read `Request::ground_truth_attack`.
#pragma once

#include <string>

#include "common/units.hpp"
#include "net/backend.hpp"
#include "workload/request.hpp"

namespace dope::cluster {

class Cluster;

/// Abstract peak-power management policy.
class PowerScheme {
 public:
  virtual ~PowerScheme() = default;

  /// Display name ("Capping", "Shaving", "Token", "Anti-DOPE").
  virtual std::string name() const = 0;

  /// Called once when installed into a cluster; the cluster outlives the
  /// scheme's use of it.
  virtual void attach(Cluster& cluster) { cluster_ = &cluster; }

  /// Admission control before routing; false drops the request.
  virtual bool admit(const workload::Request& request) {
    (void)request;
    return true;
  }

  /// Custom routing; nullptr delegates to the default load balancer.
  virtual net::Backend* route(const workload::Request& request) {
    (void)request;
    return nullptr;
  }

  /// Per-slot budget enforcement. `now` is the slot boundary time.
  virtual void on_slot(Time now, Duration slot) = 0;

 protected:
  Cluster* cluster_ = nullptr;
};

}  // namespace dope::cluster
