// Power-management scheme interface — now an alias for the control-plane
// stage interface (see cluster/stage.hpp). Kept so historical includes
// and the `PowerScheme` spelling keep compiling.
#pragma once

#include "cluster/stage.hpp"
