#include "cluster/control_plane.hpp"

#include <utility>

#include "common/expect.hpp"

namespace dope::cluster {

ControlStage::~ControlStage() = default;

void ControlStage::attach(Cluster& cluster) {
  DOPE_REQUIRE(cluster_ == nullptr || cluster_ == &cluster,
               "control stage is already attached to another cluster — "
               "detach() it first (stale Cluster* pointers would dangle)");
  cluster_ = &cluster;
}

void ControlStage::detach() { cluster_ = nullptr; }

ControlPlane::ControlPlane(Cluster& cluster) : cluster_(cluster) {}

ControlPlane::~ControlPlane() { clear(); }

void ControlPlane::install(std::unique_ptr<ControlStage> stage) {
  DOPE_REQUIRE(stage != nullptr, "stage must not be null");
  clear();
  push_stage(std::move(stage));
}

ControlStage& ControlPlane::push_stage(std::unique_ptr<ControlStage> stage) {
  DOPE_REQUIRE(stage != nullptr, "stage must not be null");
  stages_.push_back(std::move(stage));
  stages_.back()->attach(cluster_);
  return *stages_.back();
}

std::unique_ptr<ControlStage> ControlPlane::release_stage(std::size_t i) {
  DOPE_REQUIRE(i < stages_.size(), "stage index out of range");
  std::unique_ptr<ControlStage> out = std::move(stages_[i]);
  stages_.erase(stages_.begin() + static_cast<long>(i));
  out->detach();
  return out;
}

void ControlPlane::clear() {
  // Detach in reverse installation order (mirror of construction).
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    (*it)->detach();
  }
  stages_.clear();
}

ControlStage* ControlPlane::stage(std::size_t i) {
  DOPE_REQUIRE(i < stages_.size(), "stage index out of range");
  return stages_[i].get();
}

ControlStage* ControlPlane::front() {
  return stages_.empty() ? nullptr : stages_.front().get();
}

bool ControlPlane::admit(const workload::Request& request) {
  for (auto& stage : stages_) {
    if (!stage->admit(request)) return false;
  }
  return true;
}

net::Backend* ControlPlane::route(const workload::Request& request) {
  for (auto& stage : stages_) {
    net::Backend* backend = stage->route(request);
    if (backend != nullptr) return backend;
  }
  return nullptr;
}

void ControlPlane::on_slot(Time now, Duration slot) {
  for (auto& stage : stages_) stage->on_slot(now, slot);
}

}  // namespace dope::cluster
