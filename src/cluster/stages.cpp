#include "cluster/stages.hpp"

#include <string>

#include "cluster/cluster.hpp"
#include "obs/hub.hpp"

namespace dope::cluster {

// ------------------------------------------------------- AutoScalerStage

AutoScalerStage::AutoScalerStage(AutoScalerConfig config)
    : config_(config) {}

void AutoScalerStage::attach(Cluster& cluster) {
  ControlStage::attach(cluster);
  scaler_ = std::make_unique<AutoScaler>(cluster, config_,
                                         AutoScaler::ManualTick{});
  next_tick_ = cluster.engine().now() + config_.period;
}

void AutoScalerStage::detach() {
  scaler_.reset();
  ControlStage::detach();
}

void AutoScalerStage::on_slot(Time now, Duration slot) {
  (void)slot;
  while (now >= next_tick_) {
    scaler_->tick();
    next_tick_ += config_.period;
  }
}

// ------------------------------------------------------ HealthCheckStage

HealthCheckStage::HealthCheckStage(HealthCheckerConfig config)
    : config_(config) {}

void HealthCheckStage::attach(Cluster& cluster) {
  ControlStage::attach(cluster);
  checker_.emplace(cluster, config_);
  if (obs::Hub* hub = cluster.engine().obs(); hub != nullptr) {
    auto& reg = hub->registry();
    obs::Labels labels;
    if (cluster.zone() >= 0) {
      labels.emplace_back("zone", std::to_string(cluster.zone()));
    }
    obs_critical_ = &reg.gauge("health.critical_nodes", labels);
    obs_overloaded_ = &reg.gauge("health.overloaded_nodes", labels);
    obs_saturated_ = &reg.gauge("health.power_saturated_nodes", labels);
  }
}

void HealthCheckStage::detach() {
  checker_.reset();
  last_ = HealthReport{};
  obs_critical_ = nullptr;
  obs_overloaded_ = nullptr;
  obs_saturated_ = nullptr;
  ControlStage::detach();
}

void HealthCheckStage::on_slot(Time now, Duration slot) {
  (void)now;
  (void)slot;
  last_ = checker_->inspect();
  if (obs_critical_ != nullptr) {
    obs_critical_->set(
        static_cast<double>(last_.count(NodeHealth::kCritical)));
    obs_overloaded_->set(
        static_cast<double>(last_.count(NodeHealth::kOverloaded)));
    obs_saturated_->set(
        static_cast<double>(last_.count(NodeHealth::kPowerSaturated)));
  }
}

}  // namespace dope::cluster
