// Data plane: the cluster's edge and serving fleet.
//
// Owns the request path —
//
//   generator -> ingest() -> switch -> firewall -> control.admit chain
//             -> control.route chain -> (default NLB when every stage
//             declines) -> server queue
//
// — plus the objects on it: the ingress switch, the perimeter firewall,
// the default load balancer, and the server pool. Control stages filter
// and steer traffic *through* this plane (cluster/stage.hpp); they never
// own edge objects themselves.
//
// The data plane is deliberately ignorant of power provisioning: budget,
// battery, breaker, and energy accounting live in the power plane, which
// observes the fleet through `total_power()` / `total_energy()` and
// actuates outages through `power_off_all()` / `power_on_all()`.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/firewall.hpp"
#include "net/load_balancer.hpp"
#include "net/switch.hpp"
#include "server/node.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::obs {
class Counter;
class Hub;
class Series;
class SpanTracer;
}  // namespace dope::obs

namespace dope::cluster {

class Cluster;
class ControlPlane;
struct ClusterConfig;

/// Edge + fleet of one cluster (zone).
class DataPlane {
 public:
  /// Builds the fleet and edge from `config`. `owner` provides the
  /// engine, catalog, and the terminal-record path; it outlives the
  /// plane.
  DataPlane(Cluster& owner, const ClusterConfig& config);

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  // --- server pool ---
  std::vector<server::ServerNode*> servers();
  server::ServerNode& server(std::size_t i);
  std::size_t num_servers() const { return nodes_.size(); }

  /// Instantaneous aggregate power right now.
  Watts total_power() const;
  /// Exact aggregate energy consumed by all servers so far.
  Joules total_energy() const;

  /// Hard power loss of the whole fleet (facility breaker trip).
  void power_off_all();
  /// Begins fleet-wide recovery; serving resumes after `reboot`.
  void power_on_all(Duration reboot);

  // --- edge objects ---
  net::Firewall* firewall() { return firewall_ ? &*firewall_ : nullptr; }
  net::Switch* network_switch() { return switch_ ? &*switch_ : nullptr; }
  net::LoadBalancer& default_balancer() { return *balancer_; }

  // --- request path ---
  /// Edge entry point: runs the full pipeline above.
  void ingest(workload::Request&& request);
  /// Drops a request at the edge with `outcome` (trace + terminal
  /// record through the owner).
  void drop(workload::Request&& request, workload::RequestOutcome outcome);

  // --- wiring (Cluster construction only) ---
  /// Binds the edge forwarding counters (`net.forwarded`).
  void bind_obs(obs::Hub* hub);
  /// Binds the default balancer's counters and the span tracer (kept
  /// separate from `bind_obs` so the Cluster preserves the historical
  /// registration order).
  void bind_balancer_obs(obs::Hub* hub);
  /// Samples the serving-side per-slot series (queue depth, active
  /// execution slots, firewall bans) into the hub's TimeSeriesStore.
  /// No-op unless one is attached.
  void sample_timeseries(Time now);

 private:
  void trace_forwarded(const workload::Request& request, int server,
                       const char* pool);
  void trace_dropped(const workload::Request& request, const char* reason);

  Cluster& owner_;
  int zone_;
  std::vector<std::unique_ptr<server::ServerNode>> nodes_;
  std::optional<net::Switch> switch_;
  std::optional<net::Firewall> firewall_;
  std::unique_ptr<net::LoadBalancer> balancer_;

  obs::Hub* hub_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  obs::Counter* obs_forwarded_scheme_ = nullptr;
  obs::Counter* obs_forwarded_default_ = nullptr;

  // Per-slot time series (null unless the hub has a TimeSeriesStore).
  obs::Series* ts_queue_depth_ = nullptr;
  obs::Series* ts_active_slots_ = nullptr;
  obs::Series* ts_firewall_bans_ = nullptr;
};

}  // namespace dope::cluster
