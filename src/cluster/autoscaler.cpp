#include "cluster/autoscaler.hpp"

#include <algorithm>

#include "cluster/cluster.hpp"
#include "common/expect.hpp"

namespace dope::cluster {

AutoScaler::AutoScaler(Cluster& cluster, AutoScalerConfig config,
                       ManualTick)
    : cluster_(&cluster), config_(config) {
  DOPE_REQUIRE(config_.min_active >= 1, "need at least one active node");
  DOPE_REQUIRE(config_.scale_down_utilization >= 0.0 &&
                   config_.scale_down_utilization <
                       config_.scale_up_utilization &&
                   config_.scale_up_utilization <= 1.0,
               "utilisation thresholds must form a band within [0, 1]");
  DOPE_REQUIRE(config_.period > 0, "period must be positive");
  DOPE_REQUIRE(config_.step >= 1, "step must be at least one node");
}

AutoScaler::AutoScaler(Cluster& cluster, AutoScalerConfig config)
    : AutoScaler(cluster, config, ManualTick{}) {
  task_ = cluster.engine().every(config_.period, [this] { tick(); });
}

AutoScaler::~AutoScaler() { task_.stop(); }

std::size_t AutoScaler::serving_count() const {
  std::size_t n = 0;
  for (auto* node : cluster_->servers()) {
    if (node->accepting()) ++n;
  }
  return n;
}

std::size_t AutoScaler::parked_count() const {
  std::size_t n = 0;
  for (auto* node : cluster_->servers()) {
    if (node->parked()) ++n;
  }
  return n;
}

double AutoScaler::utilization() const {
  unsigned busy = 0;
  unsigned capacity = 0;
  for (auto* node : cluster_->servers()) {
    if (node->parked()) continue;
    busy += node->active_count();
    capacity += node->cores();
  }
  // dope-lint: allow(float-eq) — `capacity` is an unsigned core count.
  return capacity == 0
             ? 0.0
             : static_cast<double>(busy) / static_cast<double>(capacity);
}

void AutoScaler::tick() {
  auto nodes = cluster_->servers();

  // Finish pending drains: park nodes whose work has run out.
  for (auto it = draining_.begin(); it != draining_.end();) {
    auto* node = nodes[static_cast<std::size_t>(*it)];
    if (node->load() == 0) {
      node->park();
      // Restore the manual flag now; `parked()` keeps the node out of
      // rotation, and a later unpark must find it willing to serve.
      node->set_accepting(true);
      it = draining_.erase(it);
    } else {
      ++it;
    }
  }

  const double util = utilization();
  if (util > config_.scale_up_utilization) {
    // Cheapest capacity first: cancel in-progress drains...
    unsigned woken = 0;
    while (!draining_.empty() && woken < config_.step) {
      auto* node = nodes[static_cast<std::size_t>(draining_.back())];
      node->set_accepting(true);
      draining_.pop_back();
      ++woken;
      ++scale_ups_;
    }
    // ...then wake parked nodes.
    for (auto* node : nodes) {
      if (woken >= config_.step) break;
      if (node->parked()) {
        node->unpark();
        ++woken;
        ++scale_ups_;
      }
    }
    return;
  }

  if (util < config_.scale_down_utilization) {
    // Drain the highest-index serving nodes, keeping the minimum fleet.
    const std::size_t serving = serving_count();
    if (serving <= config_.min_active) return;
    const std::size_t can_drain =
        std::min<std::size_t>(config_.step, serving - config_.min_active);
    std::size_t drained = 0;
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
      if (drained >= can_drain) break;
      auto* node = *it;
      if (!node->accepting() || node->parked() || node->waking()) continue;
      node->set_accepting(false);
      draining_.push_back(node->backend_id());
      ++drained;
      ++scale_downs_;
    }
  }
}

}  // namespace dope::cluster
