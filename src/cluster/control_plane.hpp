// Control plane: an ordered, deterministic pipeline of ControlStages.
//
// Replaces the historical single-`PowerScheme` slot hook. Stages are
// invoked strictly in installation order at each plug point (admit /
// route / on_slot), so two stacks that differ only in order are two
// *different* — but each individually deterministic — control policies.
// With exactly one stage the pipeline is behaviourally identical to the
// old single-scheme cluster.
//
// Ownership and lifecycle: the plane owns its stages, attaches them on
// installation, and detaches them on replacement, release, clear, and
// teardown — a stage can therefore never hold a dangling `Cluster*`
// (see cluster/stage.hpp).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/stage.hpp"

namespace dope::cluster {

class Cluster;

/// Stage pipeline of one cluster.
class ControlPlane {
 public:
  explicit ControlPlane(Cluster& cluster);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // --- stack management ---
  /// Replaces the whole stack with this single stage (the historical
  /// `install_scheme` semantics). Every previous stage is detached.
  void install(std::unique_ptr<ControlStage> stage);

  /// Appends a stage to the pipeline and attaches it. Returns the stage
  /// for convenient further configuration.
  ControlStage& push_stage(std::unique_ptr<ControlStage> stage);

  /// Detaches and hands back stage `i` (ownership transfers to the
  /// caller; remaining stages keep their relative order). The returned
  /// stage can be re-attached to another cluster.
  std::unique_ptr<ControlStage> release_stage(std::size_t i);

  /// Detaches and destroys every stage.
  void clear();

  std::size_t size() const { return stages_.size(); }
  bool empty() const { return stages_.empty(); }
  ControlStage* stage(std::size_t i);
  /// First stage, or nullptr when the pipeline is empty (legacy
  /// `Cluster::scheme()` accessor).
  ControlStage* front();

  // --- pipeline plug points (called by the data plane / slot loop) ---
  /// True when every stage admits, asked in order; the first refusal
  /// short-circuits.
  bool admit(const workload::Request& request);

  /// First non-null backend across stages in order; nullptr when every
  /// stage declines.
  net::Backend* route(const workload::Request& request);

  /// Runs every stage's slot hook in order.
  void on_slot(Time now, Duration slot);

 private:
  Cluster& cluster_;
  std::vector<std::unique_ptr<ControlStage>> stages_;
};

}  // namespace dope::cluster
