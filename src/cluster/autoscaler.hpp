// Auto-scaling resource allocation.
//
// The paper (Section 1) observes that data centers "excessively rely on
// network load balancers and auto-scaling resource allocation" — which
// gives DOPE its leverage: hostile requests look like legitimate demand,
// so the auto-scaler wakes *more* servers for them and the aggregate
// power climbs with the attack. This module implements that substrate: a
// utilisation-targeting controller that parks idle nodes into deep sleep
// and wakes them as offered load grows.
//
// Scale-down is graceful: a node is first drained (stops accepting) and
// only parked once its in-flight work finishes.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace dope::cluster {

class Cluster;

/// Auto-scaler tuning.
struct AutoScalerConfig {
  /// Never park below this many serving nodes.
  std::size_t min_active = 1;
  /// Wake nodes when busy-core utilisation of the serving set exceeds
  /// this...
  double scale_up_utilization = 0.75;
  /// ...and drain nodes when it falls below this (hysteresis band).
  double scale_down_utilization = 0.35;
  /// Controller period.
  Duration period = 5 * kSecond;
  /// Nodes woken/drained per decision.
  unsigned step = 1;
};

/// Utilisation-driven park/unpark controller over a cluster's nodes.
class AutoScaler {
 public:
  /// Tag: construct without self-scheduling the periodic; the owner
  /// drives `tick()` itself (used by AutoScalerStage, which ticks from
  /// the control plane's ordered slot pipeline instead).
  struct ManualTick {};

  AutoScaler(Cluster& cluster, AutoScalerConfig config = {});
  AutoScaler(Cluster& cluster, AutoScalerConfig config, ManualTick);
  ~AutoScaler();

  AutoScaler(const AutoScaler&) = delete;
  AutoScaler& operator=(const AutoScaler&) = delete;

  /// Nodes currently serving (not parked/waking/draining).
  std::size_t serving_count() const;
  /// Nodes currently parked.
  std::size_t parked_count() const;

  /// Busy-core utilisation of the serving set (0 when none serve).
  double utilization() const;

  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }

  /// One controller step (also invoked periodically).
  void tick();

 private:
  Cluster* cluster_;
  AutoScalerConfig config_;
  sim::PeriodicHandle task_;
  /// Nodes draining toward a park (accepting off, work finishing).
  std::vector<int> draining_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace dope::cluster
