#include "cluster/data_plane.hpp"

#include <string>
#include <utility>

#include "cluster/cluster.hpp"
#include "cluster/control_plane.hpp"
#include "common/expect.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"

namespace dope::cluster {

namespace {

/// Series name for one zone: the base name as-is, or zone-suffixed
/// inside a Site (matches the watchdog signal convention).
std::string series_name(const char* base, int zone) {
  if (zone < 0) return base;
  return std::string(base) + ".zone" + std::to_string(zone);
}

}  // namespace

DataPlane::DataPlane(Cluster& owner, const ClusterConfig& config)
    : owner_(owner), zone_(config.zone) {
  DOPE_REQUIRE(config.num_servers > 0, "cluster needs at least one server");

  sim::Engine& engine = owner_.engine();
  auto sink = [this](const workload::RequestRecord& r) {
    owner_.on_record(r);
  };
  nodes_.reserve(config.num_servers);
  for (std::size_t i = 0; i < config.num_servers; ++i) {
    nodes_.push_back(std::make_unique<server::ServerNode>(
        engine, static_cast<int>(i), owner_.catalog(),
        power::ServerPowerModel(config.server_spec, config.ladder),
        config.server_config, sink, zone_));
  }

  if (config.network_switch.has_value()) {
    switch_.emplace(*config.network_switch);
  }
  if (config.firewall.has_value()) {
    firewall_.emplace(engine, *config.firewall, zone_);
  }

  std::vector<net::Backend*> pool;
  pool.reserve(nodes_.size());
  for (auto& n : nodes_) pool.push_back(n.get());
  balancer_ =
      std::make_unique<net::LoadBalancer>(config.lb_policy, std::move(pool));
}

void DataPlane::bind_obs(obs::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) return;
  auto& reg = hub_->registry();
  obs::Labels scheme_labels{{"pool", "scheme"}};
  obs::Labels default_labels{{"pool", "default"}};
  if (zone_ >= 0) {
    scheme_labels.emplace_back("zone", std::to_string(zone_));
    default_labels.emplace_back("zone", std::to_string(zone_));
  }
  obs_forwarded_scheme_ = &reg.counter("net.forwarded", scheme_labels);
  obs_forwarded_default_ = &reg.counter("net.forwarded", default_labels);
  if (obs::TimeSeriesStore* ts = hub_->timeseries(); ts != nullptr) {
    ts_queue_depth_ = &ts->series(series_name("fleet.queue_depth", zone_));
    ts_active_slots_ =
        &ts->series(series_name("fleet.active_slots", zone_));
    if (firewall_) {
      ts_firewall_bans_ =
          &ts->series(series_name("firewall.bans", zone_));
    }
  }
}

void DataPlane::bind_balancer_obs(obs::Hub* hub) {
  if (hub == nullptr) return;
  balancer_->bind_obs(hub, "default", zone_);
  spans_ = hub->spans();
  balancer_->bind_spans(&owner_.engine(), spans_, "default", zone_);
}

void DataPlane::sample_timeseries(Time now) {
  if (ts_queue_depth_ == nullptr) return;
  std::size_t queued = 0;
  std::size_t active = 0;
  for (const auto& n : nodes_) {
    queued += n->queue_length();
    active += n->active_count();
  }
  ts_queue_depth_->sample(now, static_cast<double>(queued));
  ts_active_slots_->sample(now, static_cast<double>(active));
  if (ts_firewall_bans_ != nullptr) {
    ts_firewall_bans_->sample(
        now, static_cast<double>(firewall_->total_bans()));
  }
}

std::vector<server::ServerNode*> DataPlane::servers() {
  std::vector<server::ServerNode*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

server::ServerNode& DataPlane::server(std::size_t i) {
  DOPE_REQUIRE(i < nodes_.size(), "server index out of range");
  return *nodes_[i];
}

Watts DataPlane::total_power() const {
  Watts p{0.0};
  for (const auto& n : nodes_) p += n->current_power();
  return p;
}

Joules DataPlane::total_energy() const {
  Joules e{0.0};
  for (const auto& n : nodes_) e += n->energy();
  return e;
}

void DataPlane::power_off_all() {
  for (auto& node : nodes_) node->power_off();
}

void DataPlane::power_on_all(Duration reboot) {
  for (auto& node : nodes_) node->power_on(reboot);
}

void DataPlane::trace_forwarded(const workload::Request& request, int server,
                                const char* pool) {
  obs::TraceEvent e;
  e.t = owner_.engine().now();
  e.type = obs::EventType::kRequestForwarded;
  e.source = "edge";
  e.num.emplace_back("server", server);
  e.num.emplace_back("url_class", request.type);
  e.num.emplace_back("source_id", request.source);
  if (zone_ >= 0) e.num.emplace_back("zone", zone_);
  e.str.emplace_back("pool", pool);
  hub_->event(std::move(e));
}

void DataPlane::trace_dropped(const workload::Request& request,
                              const char* reason) {
  obs::TraceEvent e;
  e.t = owner_.engine().now();
  e.type = obs::EventType::kRequestDropped;
  e.source = "edge";
  e.num.emplace_back("url_class", request.type);
  e.num.emplace_back("source_id", request.source);
  if (zone_ >= 0) e.num.emplace_back("zone", zone_);
  e.str.emplace_back("reason", reason);
  hub_->event(std::move(e));
}

void DataPlane::ingest(workload::Request&& request) {
  sim::Engine& engine = owner_.engine();
  if (spans_ != nullptr) {
    // Root span: opens at edge arrival, closes in the owner's on_record
    // with the terminal outcome. Child spans (firewall, LB, queue,
    // service) all point back at this id.
    obs::Span span;
    span.id = obs::span_id_for(request.id, obs::SpanKind::kRequest);
    span.kind = obs::SpanKind::kRequest;
    span.begin = engine.now();
    span.source_id = request.source;
    span.url_class = request.type;
    span.zone = zone_;
    span.label = request.ground_truth_attack ? "attack" : "normal";
    spans_->begin(std::move(span));
  }
  // The wire comes first: a saturated switch drops packets before any
  // defense or server sees them (network-layer DoS).
  if (switch_ && !switch_->forward(engine.now())) {
    drop(std::move(request), workload::RequestOutcome::kDroppedNetwork);
    return;
  }
  if (firewall_ && !firewall_->admit(request)) {
    drop(std::move(request), workload::RequestOutcome::kBlockedByFirewall);
    return;
  }
  ControlPlane& control = owner_.control();
  if (!control.admit(request)) {
    drop(std::move(request), workload::RequestOutcome::kDroppedByLimit);
    return;
  }
  net::Backend* target = control.route(request);
  if (target != nullptr) {
    if (hub_ != nullptr) {
      obs_forwarded_scheme_->inc();
      trace_forwarded(request, target->backend_id(), "scheme");
    }
    target->submit(std::move(request));
    return;
  }
  net::Backend* backend = balancer_->select(request);
  if (backend == nullptr) {
    // No backend accepted; surfaces as a queue-full rejection at the edge.
    drop(std::move(request), workload::RequestOutcome::kRejectedQueueFull);
    return;
  }
  if (hub_ != nullptr) {
    obs_forwarded_default_->inc();
    trace_forwarded(request, backend->backend_id(), "default");
  }
  backend->submit(std::move(request));
}

void DataPlane::drop(workload::Request&& request,
                     workload::RequestOutcome outcome) {
  if (hub_ != nullptr) trace_dropped(request, outcome_label(outcome));
  workload::RequestRecord record;
  record.request = std::move(request);
  record.outcome = outcome;
  record.finish = owner_.engine().now();
  record.latency = 0;
  owner_.on_record(record);
}

}  // namespace dope::cluster
