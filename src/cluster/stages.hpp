// Stage adapters: the auto-scaler and health checker as control stages.
//
// Both controllers predate the control plane and can still be used
// standalone (AutoScaler self-schedules a periodic; HealthChecker is
// called ad hoc). These adapters let them ride the ordered slot pipeline
// instead, so a stack like
//
//   control.push_stage(AutoScalerStage{...});
//   control.push_stage(AntiDopeScheme{...});
//
// runs scaling decisions strictly *before* power enforcement at every
// slot boundary — deterministic relative ordering that two independent
// engine periodics cannot guarantee across refactors.
#pragma once

#include <memory>
#include <optional>

#include "cluster/autoscaler.hpp"
#include "cluster/health.hpp"
#include "cluster/stage.hpp"

namespace dope::obs {
class Gauge;
}  // namespace dope::obs

namespace dope::cluster {

/// AutoScaler driven from the control plane's slot pipeline. Ticks at
/// the configured period, aligned to slot boundaries (a period that is
/// not a slot multiple ticks on the first boundary at or after it).
class AutoScalerStage final : public ControlStage {
 public:
  explicit AutoScalerStage(AutoScalerConfig config = {});

  std::string name() const override { return "AutoScaler"; }
  void attach(Cluster& cluster) override;
  void detach() override;
  void on_slot(Time now, Duration slot) override;

  /// The wrapped controller; valid only while attached.
  AutoScaler& scaler() { return *scaler_; }

 private:
  AutoScalerConfig config_;
  std::unique_ptr<AutoScaler> scaler_;
  Time next_tick_ = 0;
};

/// Per-slot health inspection; keeps the latest report available to the
/// stages after it in the pipeline (and to tests/operators).
class HealthCheckStage final : public ControlStage {
 public:
  explicit HealthCheckStage(HealthCheckerConfig config = {});

  std::string name() const override { return "HealthCheck"; }
  void attach(Cluster& cluster) override;
  void detach() override;
  void on_slot(Time now, Duration slot) override;

  /// Most recent per-slot report (empty nodes vector before first slot).
  const HealthReport& last_report() const { return last_; }

 private:
  HealthCheckerConfig config_;
  std::optional<HealthChecker> checker_;
  HealthReport last_;
  obs::Gauge* obs_critical_ = nullptr;
  obs::Gauge* obs_overloaded_ = nullptr;
  obs::Gauge* obs_saturated_ = nullptr;
};

}  // namespace dope::cluster
