#include "site/site.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"

namespace dope::site {

const char* glb_policy_name(GlobalLbPolicy policy) {
  switch (policy) {
    case GlobalLbPolicy::kWeighted: return "weighted";
    case GlobalLbPolicy::kLeastLoaded: return "least_loaded";
    case GlobalLbPolicy::kZoneAffinity: return "zone_affinity";
  }
  return "?";
}

const char* divider_name(DividerKind kind) {
  switch (kind) {
    case DividerKind::kStatic: return "static";
    case DividerKind::kDemandProportional: return "demand";
    case DividerKind::kHeadroomAware: return "headroom";
  }
  return "?";
}

namespace {

/// `facility * part_i / sum(parts)`, with `fallback` taking over when
/// the parts sum to nothing (e.g. no demand measured yet).
std::vector<Watts> proportional(Watts facility,
                                const std::vector<double>& parts,
                                const std::vector<double>* fallback) {
  double total = 0.0;
  for (double p : parts) total += p;
  if (!(total > 0.0) && fallback != nullptr) {
    return proportional(facility, *fallback, nullptr);
  }
  std::vector<Watts> shares(parts.size(), Watts{0.0});
  if (!(total > 0.0)) return shares;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    shares[i] = facility * (parts[i] / total);
  }
  return shares;
}

void apply_floor(std::vector<Watts>& shares) {
  for (Watts& s : shares) s = std::max(s, kMinZoneBudget);
}

}  // namespace

std::vector<Watts> divide_budget(DividerKind kind, Watts facility,
                                 const std::vector<ZoneSignal>& zones) {
  DOPE_REQUIRE(!zones.empty(), "divider needs at least one zone");
  DOPE_REQUIRE(facility > Watts{0.0}, "facility budget must be positive");

  std::vector<double> weights(zones.size());
  for (std::size_t i = 0; i < zones.size(); ++i) {
    weights[i] = zones[i].weight;
  }

  std::vector<Watts> shares;
  switch (kind) {
    case DividerKind::kStatic: {
      shares = proportional(facility, weights, nullptr);
      break;
    }
    case DividerKind::kDemandProportional: {
      std::vector<double> demand(zones.size());
      for (std::size_t i = 0; i < zones.size(); ++i) {
        demand[i] = std::max(zones[i].demand.value(), 0.0);
      }
      shares = proportional(facility, demand, &weights);
      break;
    }
    case DividerKind::kHeadroomAware: {
      // Demand first (a zone never asks for more than its nameplate)...
      std::vector<double> demand(zones.size());
      double total_demand = 0.0;
      for (std::size_t i = 0; i < zones.size(); ++i) {
        demand[i] = std::clamp(zones[i].demand.value(), 0.0,
                               std::max(zones[i].nameplate.value(), 0.0));
        total_demand += demand[i];
      }
      if (total_demand >= facility.value()) {
        // Facility cannot cover the sum: scale demands proportionally.
        shares = proportional(facility, demand, &weights);
        break;
      }
      // ...then slack goes where there is capacity to use it.
      shares.assign(zones.size(), Watts{0.0});
      std::vector<double> headroom(zones.size());
      double total_headroom = 0.0;
      for (std::size_t i = 0; i < zones.size(); ++i) {
        shares[i] = Watts{demand[i]};
        headroom[i] =
            std::max(zones[i].nameplate.value() - demand[i], 0.0);
        total_headroom += headroom[i];
      }
      const Watts slack = facility - Watts{total_demand};
      const std::vector<Watts> extra = proportional(
          slack, total_headroom > 0.0 ? headroom : weights, nullptr);
      for (std::size_t i = 0; i < zones.size(); ++i) {
        shares[i] += extra[i];
      }
      break;
    }
  }
  apply_floor(shares);
  return shares;
}

// ------------------------------------------------------------------ Site

void Site::validate(const SiteConfig& config) {
  if (config.zones.empty()) {
    throw std::invalid_argument("site needs at least one zone");
  }
  for (const ZoneConfig& zone : config.zones) {
    if (!(zone.weight > 0.0)) {
      throw std::invalid_argument("zone weight must be positive");
    }
  }
  if (config.facility_budget < Watts{0.0}) {
    throw std::invalid_argument("facility budget must be non-negative");
  }
  if (config.reapportion_period <= 0) {
    throw std::invalid_argument("reapportion period must be positive");
  }
}

Site::Site(sim::Engine& engine, const workload::Catalog& catalog,
           SiteConfig config)
    : engine_(engine), config_((validate(config), std::move(config))) {
  const std::size_t n = config_.zones.size();
  zones_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cluster::ClusterConfig zone_config = config_.zones[i].cluster;
    zone_config.zone = static_cast<int>(i);
    zones_.push_back(std::make_unique<cluster::Cluster>(
        engine_, catalog, std::move(zone_config)));
    zones_.back()->add_record_listener(request_metrics_.sink());
  }

  facility_budget_ = config_.facility_budget;
  if (!(facility_budget_ > Watts{0.0})) {
    for (const auto& zone : zones_) {
      facility_budget_ += zone->power().budget();
    }
  }

  wrr_current_.assign(n, 0.0);

  if (obs::Hub* hub = engine_.obs(); hub != nullptr) {
    auto& reg = hub->registry();
    obs_routed_.reserve(n);
    obs_zone_budget_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const obs::Labels labels{{"zone", std::to_string(i)}};
      obs_routed_.push_back(&reg.counter("site.glb_routed", labels));
      obs_zone_budget_.push_back(&reg.gauge("site.zone_budget_w", labels));
    }
    if (obs::TimeSeriesStore* ts = hub->timeseries(); ts != nullptr) {
      ts_zone_budget_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        ts_zone_budget_.push_back(&ts->series(
            "site.zone_budget_w.zone" + std::to_string(i)));
      }
    }
  }

  // First apportioning happens before any traffic; with no demand
  // measured yet the demand-aware dividers fall back to weights.
  reapportion();

  // Registered after every zone's management-slot periodic, so when both
  // fire at the same instant each zone settles its books and runs its
  // control stages before the site moves budgets.
  divider_task_ = engine_.every(config_.reapportion_period,
                                [this] { reapportion(); });
}

Site::~Site() { divider_task_.stop(); }

std::vector<ZoneSignal> Site::signals() const {
  std::vector<ZoneSignal> out(zones_.size());
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    const cluster::Cluster& zone = *zones_[i];
    out[i].weight = config_.zones[i].weight;
    out[i].demand = zone.power().last_slot_demand();
    out[i].nameplate = zone.power().total_nameplate();
    out[i].in_outage = zone.power().in_outage();
  }
  return out;
}

void Site::reapportion() {
  apply_budgets(divide_budget(config_.divider, facility_budget_, signals()));
}

void Site::apply_budgets(const std::vector<Watts>& shares) {
  zone_budgets_ = shares;
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    zones_[i]->power().set_budget(shares[i]);
    if (!obs_zone_budget_.empty()) {
      obs_zone_budget_[i]->set(shares[i].value());
    }
    if (!ts_zone_budget_.empty()) {
      ts_zone_budget_[i]->sample(engine_.now(), shares[i].value());
    }
  }
  ++reapportions_;
}

std::size_t Site::weighted_pick(bool commit) {
  // Smooth weighted round-robin: every zone's accumulator grows by its
  // weight, the largest wins and pays back the total — deterministic
  // and drift-free. Zones in outage sit the round out (unless all are).
  const std::size_t n = zones_.size();
  bool any_up = false;
  for (const auto& zone : zones_) {
    if (!zone->power().in_outage()) any_up = true;
  }
  double total = 0.0;
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (any_up && zones_[i]->power().in_outage()) continue;
    const double w = config_.zones[i].weight;
    total += w;
    const double score = wrr_current_[i] + w;
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  if (commit) {
    for (std::size_t i = 0; i < n; ++i) {
      if (any_up && zones_[i]->power().in_outage()) continue;
      wrr_current_[i] += config_.zones[i].weight;
    }
    wrr_current_[best] -= total;
  }
  return best;
}

std::size_t Site::least_loaded_pick() const {
  bool any_up = false;
  for (const auto& zone : zones_) {
    if (!zone->power().in_outage()) any_up = true;
  }
  std::size_t best = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (any_up && zones_[i]->power().in_outage()) continue;
    std::size_t load = 0;
    for (const auto* node : zones_[i]->data().servers()) {
      load += node->load();
    }
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

std::size_t Site::affinity_pick(workload::SourceId source) const {
  const std::size_t n = zones_.size();
  std::uint64_t h = source;
  const std::size_t start =
      static_cast<std::size_t>(splitmix64(h) % n);
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (start + probe) % n;
    if (!zones_[i]->power().in_outage()) return i;
  }
  return start;  // every zone dark: keep the stable assignment
}

std::size_t Site::select_zone(const workload::Request& request) {
  switch (config_.policy) {
    case GlobalLbPolicy::kWeighted: return weighted_pick(/*commit=*/true);
    case GlobalLbPolicy::kLeastLoaded: return least_loaded_pick();
    case GlobalLbPolicy::kZoneAffinity:
      return affinity_pick(request.source);
  }
  return 0;
}

std::size_t Site::peek_zone(const workload::Request& request) const {
  Site& self = const_cast<Site&>(*this);
  switch (config_.policy) {
    case GlobalLbPolicy::kWeighted:
      return self.weighted_pick(/*commit=*/false);
    case GlobalLbPolicy::kLeastLoaded: return least_loaded_pick();
    case GlobalLbPolicy::kZoneAffinity:
      return affinity_pick(request.source);
  }
  return 0;
}

void Site::ingest(workload::Request&& request) {
  const std::size_t z = select_zone(request);
  if (!obs_routed_.empty()) obs_routed_[z]->inc();
  zones_[z]->ingest(std::move(request));
}

workload::RequestSink Site::edge_sink() {
  return [this](workload::Request&& request) {
    this->ingest(std::move(request));
  };
}

workload::RequestSink Site::zone_sink(std::size_t zone) {
  DOPE_REQUIRE(zone < zones_.size(), "zone_sink: zone out of range");
  cluster::Cluster* target = zones_[zone].get();
  return [target](workload::Request&& request) {
    target->ingest(std::move(request));
  };
}

metrics::EnergyAccount Site::aggregate_energy() const {
  metrics::EnergyAccount total;
  for (const auto& zone : zones_) {
    const metrics::EnergyAccount& account = zone->energy_account();
    total.add_joules(account.utility, account.battery, account.recharge);
  }
  return total;
}

Joules Site::total_energy() const {
  Joules total{0.0};
  for (const auto& zone : zones_) {
    total += zone->data().total_energy();
  }
  return total;
}

void Site::run_for(Duration d) { engine_.run_until(engine_.now() + d); }

}  // namespace dope::site
