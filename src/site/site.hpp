// Multi-zone site: N zones (clusters) behind one global front end.
//
// The paper studies a single power-constrained cluster; real deployments
// spread the fleet across availability zones that share one facility
// feed. A `Site` composes N `cluster::Cluster`s (each tagged with its
// zone index so every metric, span, and trace event it emits carries a
// `zone` label) behind two site-wide policies:
//
//   global load balancer  picks the zone for each arriving request
//                         (weighted, least-loaded, or source-affinity)
//   budget divider        apportions one facility budget across zones
//                         (static, demand-proportional, headroom-aware)
//                         and re-applies it periodically through
//                         `PowerPlane::set_budget`
//
// The division matters under attack: a zone-concentrated DOPE flood
// inflates one zone's demand past its share, so a per-zone capping stage
// throttles the victim zone while the rest of the site keeps serving at
// full frequency (see docs/SITE.md).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "metrics/energy.hpp"
#include "metrics/request_metrics.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/request.hpp"

namespace dope::site {

/// Front-end policy choosing the zone for each arriving request.
enum class GlobalLbPolicy {
  /// Smooth weighted round-robin over `ZoneConfig::weight` (nginx's
  /// algorithm: deterministic, drift-free interleaving).
  kWeighted,
  /// Zone with the fewest in-flight requests; ties break to the lower
  /// zone index.
  kLeastLoaded,
  /// Consistent per-source assignment (splitmix64 of the source id);
  /// a source keeps hitting "its" zone — which is exactly what lets a
  /// concentrated botnet pile onto one victim zone.
  kZoneAffinity,
};

/// How the facility budget is split across zones at each reapportioning.
enum class DividerKind {
  /// Fixed shares proportional to `ZoneConfig::weight`.
  kStatic,
  /// Shares proportional to each zone's last-slot demand (weights used
  /// as the fallback while no demand has been measured). Follows load —
  /// including hostile load, which is the failure mode the headroom
  /// divider exists to avoid.
  kDemandProportional,
  /// Demand-first with headroom-proportional slack: each zone is granted
  /// its measured demand (scaled down proportionally when the facility
  /// cannot cover the sum), then the remaining budget is divided in
  /// proportion to remaining nameplate headroom.
  kHeadroomAware,
};

const char* glb_policy_name(GlobalLbPolicy policy);
const char* divider_name(DividerKind kind);

/// One zone: a full cluster plus its site-level weight.
struct ZoneConfig {
  cluster::ClusterConfig cluster;
  /// GLB weight (kWeighted) and static-divider share. Must be positive.
  double weight = 1.0;
};

/// Everything needed to stand up a site.
struct SiteConfig {
  std::vector<ZoneConfig> zones;
  /// Shared facility supply divided across zones. When zero, defaults to
  /// the sum of the zones' own provisioned budgets.
  Watts facility_budget{0.0};
  DividerKind divider = DividerKind::kStatic;
  GlobalLbPolicy policy = GlobalLbPolicy::kWeighted;
  /// How often the divider re-applies zone budgets. The reapportion
  /// periodic is registered after every zone's management slot, so at a
  /// shared boundary zones settle their books before budgets move.
  Duration reapportion_period = 5 * kSecond;
};

/// Divider input: one zone's live electrical signals.
struct ZoneSignal {
  double weight = 1.0;
  /// Average demand over the zone's last completed slot.
  Watts demand{0.0};
  /// Aggregate nameplate of the zone's fleet.
  Watts nameplate{0.0};
  bool in_outage = false;
};

/// Floor applied to every zone's share: a zone is never starved below
/// this, keeping `PowerPlane::set_budget` valid even when a divider
/// would assign it nothing (e.g. zero measured demand).
inline constexpr Watts kMinZoneBudget{1.0};

/// Pure division function: returns one share per zone, each at least
/// `kMinZoneBudget`, summing to `facility` up to the applied floors.
/// Exposed for tests and for sweep axes over divider kinds.
std::vector<Watts> divide_budget(DividerKind kind, Watts facility,
                                 const std::vector<ZoneSignal>& zones);

/// N zones behind a global load balancer sharing one facility budget.
class Site {
 public:
  Site(sim::Engine& engine, const workload::Catalog& catalog,
       SiteConfig config);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // --- topology ---
  std::size_t num_zones() const { return zones_.size(); }
  cluster::Cluster& zone(std::size_t i) { return *zones_[i]; }
  const cluster::Cluster& zone(std::size_t i) const { return *zones_[i]; }
  sim::Engine& engine() { return engine_; }
  const SiteConfig& config() const { return config_; }

  // --- request path ---
  /// Edge entry point: the global load balancer picks a zone and hands
  /// the request to that zone's data plane.
  void ingest(workload::Request&& request);
  /// Sink adapter for TrafficGenerator (site must outlive it).
  workload::RequestSink edge_sink();
  /// Pinned sink bypassing the GLB — models traffic that enters through
  /// one zone's regional front door (zone-concentrated DOPE floods).
  workload::RequestSink zone_sink(std::size_t zone);

  /// The zone the GLB would pick for `request` right now (does not
  /// mutate balancer state; exposed for tests).
  std::size_t peek_zone(const workload::Request& request) const;

  // --- power ---
  Watts facility_budget() const { return facility_budget_; }
  /// Last applied per-zone shares (config order).
  const std::vector<Watts>& zone_budgets() const { return zone_budgets_; }
  /// Recomputes shares from live zone signals and applies them through
  /// each zone's power plane. Also runs on the reapportion periodic.
  void reapportion();
  /// Times the divider has run (including the constructor's first pass).
  std::uint64_t reapportion_count() const { return reapportions_; }

  // --- metrics ---
  /// Site-wide request metrics (every zone's terminal records fold in).
  metrics::RequestMetrics& request_metrics() { return request_metrics_; }
  /// Sum of the zones' energy accounts — site-level conservation holds
  /// exactly: aggregate load energy == sum of zone load energies.
  metrics::EnergyAccount aggregate_energy() const;
  /// Exact aggregate energy consumed by every server in every zone.
  Joules total_energy() const;

  /// Convenience: advances the shared engine by `d`.
  void run_for(Duration d);

 private:
  static void validate(const SiteConfig& config);
  std::vector<ZoneSignal> signals() const;
  std::size_t select_zone(const workload::Request& request);
  std::size_t weighted_pick(bool commit);
  std::size_t least_loaded_pick() const;
  std::size_t affinity_pick(workload::SourceId source) const;
  void apply_budgets(const std::vector<Watts>& shares);

  sim::Engine& engine_;
  SiteConfig config_;
  std::vector<std::unique_ptr<cluster::Cluster>> zones_;

  Watts facility_budget_{0.0};
  std::vector<Watts> zone_budgets_;
  std::uint64_t reapportions_ = 0;

  metrics::RequestMetrics request_metrics_;

  /// Smooth weighted round-robin accumulators (kWeighted).
  mutable std::vector<double> wrr_current_;

  // Observability (null when no hub is attached to the engine).
  std::vector<obs::Counter*> obs_routed_;
  std::vector<obs::Gauge*> obs_zone_budget_;
  /// Per-zone budget-share series (empty unless the hub has a
  /// TimeSeriesStore); sampled on every divider pass.
  std::vector<obs::Series*> ts_zone_budget_;

  sim::PeriodicHandle divider_task_;
};

}  // namespace dope::site
