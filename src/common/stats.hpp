// Streaming and batch statistics used throughout metrics and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace dope {

/// Numerically stable streaming mean/variance/min/max (Welford's method).
class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-reduction friendly).
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile computation over a retained sample vector.
///
/// Retains every sample; intended for per-run metric collection where the
/// sample count is bounded by the number of simulated requests. Percentiles
/// use linear interpolation between closest ranks (the "inclusive" method).
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p in [0, 100]. Returns 0 for an empty sample set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  double cdf_at(double x) const;

  /// The sorted sample vector (useful for exporting full CDFs).
  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double x = 0.0;
  double f = 0.0;
};

/// Downsamples an empirical distribution to `points` evenly spaced CDF
/// points, suitable for plotting paper-style CDF figures.
std::vector<CdfPoint> make_cdf(const Percentiles& dist, std::size_t points);

}  // namespace dope
