// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, so logging is
// intentionally simple: a global level, stderr output, printf-free
// stream-style formatting. Parallel sweep runners serialise via a mutex.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace dope {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logging controls.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emits one line at `level` (thread-safe).
  static void write(LogLevel level, const std::string& msg);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

}  // namespace dope

#define DOPE_LOG(level)                                 \
  if (!::dope::Log::enabled(level)) {                   \
  } else                                                \
    ::dope::detail::LogLine(level)

#define DOPE_LOG_DEBUG DOPE_LOG(::dope::LogLevel::kDebug)
#define DOPE_LOG_INFO DOPE_LOG(::dope::LogLevel::kInfo)
#define DOPE_LOG_WARN DOPE_LOG(::dope::LogLevel::kWarn)
#define DOPE_LOG_ERROR DOPE_LOG(::dope::LogLevel::kError)
