// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, so logging is
// intentionally simple: a global level, a pluggable sink (default:
// stderr), printf-free stream-style formatting. Parallel sweep runners
// serialise via a mutex.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dope {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Receives each emitted line (already time-prefixed, level attached).
/// Invoked under the logging mutex, so sinks need no extra locking.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Global logging controls.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replaces the output sink. Lines stop going to stderr and go to
  /// `sink` instead — tests capture log output this way rather than
  /// scraping stderr. Pass nullptr to restore the stderr default.
  static void set_sink(LogSink sink);

  /// Installs a simulation-clock source; when set, every line is
  /// prefixed with the current sim time ("[t=12.345s] ..."). Pass
  /// nullptr to remove. Tools driving a single engine (CLIs, tests)
  /// use this; parallel sweeps should leave it unset.
  static void set_time_source(std::function<Time()> source);

  /// Emits one line at `level` (thread-safe).
  static void write(LogLevel level, const std::string& msg);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

/// RAII helper: redirects the sink for a scope (tests), restoring the
/// previous default on destruction.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  struct Line {
    LogLevel level;
    std::string text;
  };
  const std::vector<Line>& lines() const { return lines_; }
  bool contains(const std::string& needle) const;

 private:
  std::vector<Line> lines_;
  LogSink prev_;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

}  // namespace dope

#define DOPE_LOG(level)                                 \
  if (!::dope::Log::enabled(level)) {                   \
  } else                                                \
    ::dope::detail::LogLine(level)

#define DOPE_LOG_DEBUG DOPE_LOG(::dope::LogLevel::kDebug)
#define DOPE_LOG_INFO DOPE_LOG(::dope::LogLevel::kInfo)
#define DOPE_LOG_WARN DOPE_LOG(::dope::LogLevel::kWarn)
#define DOPE_LOG_ERROR DOPE_LOG(::dope::LogLevel::kError)
