// Clang thread-safety analysis annotations (no-ops elsewhere).
//
// These macros attach lock/capability contracts to classes so that
// `clang++ -Wthread-safety` proves, at compile time, that every access
// to a guarded member happens under its mutex. GCC and MSVC define the
// macros away, so annotated headers stay portable; the clang CI lane
// (THREAD_SAFETY_ANALYSIS in CMakeLists.txt) is what enforces them.
//
// Usage sketch:
//
//   class Account {
//     std::mutex mu_;
//     double balance_ GUARDED_BY(mu_);
//     void deposit(double amount) {
//       std::lock_guard<std::mutex> lock(mu_);
//       balance_ += amount;              // OK: mu_ is held
//     }
//   };
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define DOPE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DOPE_THREAD_ANNOTATION(x)  // no-op
#endif

// Data members: which lock protects them.
#define GUARDED_BY(x) DOPE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) DOPE_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock types and ordering.
#define CAPABILITY(x) DOPE_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY DOPE_THREAD_ANNOTATION(scoped_lockable)
#define ACQUIRED_BEFORE(...) \
  DOPE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DOPE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function contracts: what must (not) be held on entry, what is
// acquired/released by the call.
#define REQUIRES(...) \
  DOPE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DOPE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  DOPE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  DOPE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXCLUDES(...) DOPE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) DOPE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model (e.g. handing a
// locked region to a condition variable's wait).
#define NO_THREAD_SAFETY_ANALYSIS \
  DOPE_THREAD_ANNOTATION(no_thread_safety_analysis)
