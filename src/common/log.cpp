#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace dope {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }

LogLevel Log::level() { return g_level.load(); }

void Log::write(LogLevel level, const std::string& msg) {
  if (level < Log::level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace dope
