#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <utility>

namespace dope {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
LogSink g_sink;                          // empty => stderr default
std::function<Time()> g_time_source;     // empty => no time prefix

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }

LogLevel Log::level() { return g_level.load(); }

void Log::set_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::set_time_source(std::function<Time()> source) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_time_source = std::move(source);
}

void Log::write(LogLevel level, const std::string& msg) {
  if (level < Log::level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string line;
  if (g_time_source) {
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "[t=%.3fs] ",
                  to_seconds(g_time_source()));
    line = prefix;
  }
  line += msg;
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::cerr << "[" << level_name(level) << "] " << line << '\n';
}

LogCapture::LogCapture() {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    prev_ = g_sink;
  }
  Log::set_sink([this](LogLevel level, const std::string& line) {
    lines_.push_back(Line{level, line});
  });
}

LogCapture::~LogCapture() { Log::set_sink(std::move(prev_)); }

bool LogCapture::contains(const std::string& needle) const {
  for (const auto& line : lines_) {
    if (line.text.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace dope
