#include "common/minijson.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dope::minijson {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("json: " + message);
}

/// Recursive-descent parser for the JSON subset our writers emit (see
/// header).
class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Value parse() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at offset " +
           std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value value;
    value.kind = Value::Kind::kObject;
    if (consume('}')) return value;
    while (true) {
      Value key = parse_string();
      expect(':');
      value.fields.emplace_back(std::move(key.text), parse_value());
      if (consume('}')) return value;
      expect(',');
    }
  }

  Value parse_array() {
    expect('[');
    Value value;
    value.kind = Value::Kind::kArray;
    if (consume(']')) return value;
    while (true) {
      value.items.push_back(parse_value());
      if (consume(']')) return value;
      expect(',');
    }
  }

  Value parse_string() {
    expect('"');
    Value value;
    value.kind = Value::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.text.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': value.text.push_back('"'); break;
        case '\\': value.text.push_back('\\'); break;
        case '/': value.text.push_back('/'); break;
        case 'n': value.text.push_back('\n'); break;
        case 'r': value.text.push_back('\r'); break;
        case 't': value.text.push_back('\t'); break;
        default: fail("unsupported string escape");
      }
    }
  }

  Value parse_bool() {
    Value value;
    value.kind = Value::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
    } else {
      fail("malformed literal");
    }
    return value;
  }

  Value parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("malformed literal");
    pos_ += 4;
    Value value;
    value.kind = Value::Kind::kNull;
    return value;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    auto at_number_char = [&] {
      if (pos_ >= text_.size()) return false;
      const char c = text_[pos_];
      return (std::isdigit(static_cast<unsigned char>(c)) != 0) ||
             c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E';
    };
    while (at_number_char()) ++pos_;
    if (pos_ == start) fail("malformed value");
    Value value;
    value.kind = Value::Kind::kNumber;
    value.text = text_.substr(start, pos_ - start);
    return value;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string text) { return Parser(std::move(text)).parse(); }

const Value& require(const Value& obj, const std::string& key) {
  if (obj.kind != Value::Kind::kObject) {
    fail("expected an object around \"" + key + "\"");
  }
  const Value* value = obj.find(key);
  if (value == nullptr) fail("missing field \"" + key + "\"");
  return *value;
}

double as_double(const Value& value, const std::string& key) {
  if (value.kind != Value::Kind::kNumber) {
    fail("field \"" + key + "\" must be a number");
  }
  return std::strtod(value.text.c_str(), nullptr);
}

std::int64_t as_i64(const Value& value, const std::string& key) {
  if (value.kind != Value::Kind::kNumber) {
    fail("field \"" + key + "\" must be an integer");
  }
  return std::strtoll(value.text.c_str(), nullptr, 10);
}

std::uint64_t as_u64_string(const Value& value, const std::string& key) {
  if (value.kind != Value::Kind::kString) {
    fail("field \"" + key + "\" must be a decimal string");
  }
  return std::strtoull(value.text.c_str(), nullptr, 10);
}

std::string as_string(const Value& value, const std::string& key) {
  if (value.kind != Value::Kind::kString) {
    fail("field \"" + key + "\" must be a string");
  }
  return value.text;
}

bool as_bool(const Value& value, const std::string& key) {
  if (value.kind != Value::Kind::kBool) {
    fail("field \"" + key + "\" must be a boolean");
  }
  return value.boolean;
}

}  // namespace dope::minijson
