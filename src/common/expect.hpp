// Lightweight runtime contract checks.
//
// `DOPE_REQUIRE` guards public API preconditions and configuration errors:
// it is always on and throws `std::invalid_argument` so misuse is loud in
// both tests and production binaries. `DOPE_ASSERT` guards internal
// invariants and compiles to the standard assert semantics.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dope::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream out;
  out << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) out << " — " << msg;
  throw std::invalid_argument(out.str());
}

}  // namespace dope::detail

#define DOPE_REQUIRE(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dope::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)

#define DOPE_ASSERT(cond) assert(cond)
