#include "common/csv.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <istream>
#include <ostream>

namespace dope {

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF input.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

CsvReader::CsvReader(std::istream& in, bool has_header) : in_(in) {
  if (has_header) {
    std::string line;
    if (read_record(line)) {
      header_ = parse_csv_line(line);
    }
  }
}

std::optional<std::size_t> CsvReader::column(std::string_view name) const {
  const auto it = std::find(header_.begin(), header_.end(), name);
  if (it == header_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - header_.begin());
}

bool CsvReader::read_record(std::string& out) {
  out.clear();
  std::string line;
  bool have_any = false;
  while (std::getline(in_, line)) {
    if (!have_any && line.empty()) continue;  // skip blank lines
    if (have_any) out.push_back('\n');
    out += line;
    have_any = true;
    // A record is complete when it contains an even number of quotes.
    const auto quotes = std::count(out.begin(), out.end(), '"');
    if (quotes % 2 == 0) return true;
  }
  return have_any;
}

bool CsvReader::next(std::vector<std::string>& fields) {
  std::string record;
  if (!read_record(record)) return false;
  fields = parse_csv_line(record);
  ++records_;
  return true;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find_first_of(",\"\n") != std::string::npos;
    if (needs_quotes) {
      out_ << '"';
      for (char c : f) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << f;
    }
  }
  out_ << '\n';
}

std::optional<double> parse_double(std::string_view s) {
  // Trim surrounding whitespace; from_chars rejects it.
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, value);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, value);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return value;
}

}  // namespace dope
