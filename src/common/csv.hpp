// Minimal CSV reading and writing (RFC-4180 subset: quoted fields with
// embedded commas/quotes/newlines are supported on input; output quotes
// only when needed).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dope {

/// Splits one CSV record into fields. Handles quoted fields ("" escapes).
std::vector<std::string> parse_csv_line(std::string_view line);

/// Streaming CSV reader over an istream. Does not own the stream.
class CsvReader {
 public:
  /// If `has_header` is true the first row is consumed as column names.
  explicit CsvReader(std::istream& in, bool has_header = true);

  /// Column names (empty when constructed with has_header == false).
  const std::vector<std::string>& header() const { return header_; }

  /// Index of a named column, or nullopt if absent.
  std::optional<std::size_t> column(std::string_view name) const;

  /// Reads the next record; returns false at end of input. Blank lines are
  /// skipped. Multi-line quoted fields are reassembled.
  bool next(std::vector<std::string>& fields);

  /// Number of data records returned so far.
  std::size_t records_read() const { return records_; }

 private:
  bool read_record(std::string& out);

  std::istream& in_;
  std::vector<std::string> header_;
  std::size_t records_ = 0;
};

/// Streaming CSV writer. Quotes fields only when required.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Variadic convenience: accepts strings and arithmetic values.
  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(to_field(vals)), ...);
    write_row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  template <typename T>
  static std::string to_field(const T& v) {
    return std::to_string(v);
  }

  std::ostream& out_;
};

/// Parses a double, returning nullopt on malformed input.
std::optional<double> parse_double(std::string_view s);

/// Parses a signed 64-bit integer, returning nullopt on malformed input.
std::optional<std::int64_t> parse_int(std::string_view s);

}  // namespace dope
