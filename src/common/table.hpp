// Console table formatting for bench output.
//
// Every bench binary prints the rows/series of a paper figure; this helper
// keeps that output aligned and uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dope {

/// Builds an aligned text table and streams it.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a fully materialised row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Variadic convenience accepting strings and arithmetic values; doubles
  /// are formatted with 3 significant decimals.
  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(format_cell(vals)), ...);
    add_row(std::move(cells));
  }

  /// Renders the table with a header underline.
  void print(std::ostream& out) const;

  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(int v) { return std::to_string(v); }
  static std::string format_cell(long v) { return std::to_string(v); }
  static std::string format_cell(long long v) { return std::to_string(v); }
  static std::string format_cell(unsigned v) { return std::to_string(v); }
  static std::string format_cell(unsigned long v) { return std::to_string(v); }
  static std::string format_cell(unsigned long long v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by bench binaries ("=== Figure 7 ... ===").
void print_banner(std::ostream& out, const std::string& title);

}  // namespace dope
