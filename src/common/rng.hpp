// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component of the simulator takes an explicit `Rng&` (or a
// seed) so that runs are exactly reproducible; nothing reads global entropy.
// The generator is xoshiro256**, seeded through splitmix64, which is both
// fast and statistically strong enough for workload modelling.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace dope {

/// splitmix64 step; used for seeding and cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) { reseed(seed); }

  /// Re-initialises the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Exponentially distributed sample with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0); uniform() < 1 already, but u may be 0.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (single value; discards pair partner).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
  }

  /// Lognormal sample parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bounded Pareto sample (heavy tail), shape > 0, lo < hi.
  double pareto(double shape, double lo, double hi) {
    const double la = std::pow(lo, shape);
    const double ha = std::pow(hi, shape);
    const double u = uniform();
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dope
