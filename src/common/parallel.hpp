// Shared-memory parallel execution helpers for parameter sweeps.
//
// Simulation runs are independent, so benches and sweep harnesses use a
// plain work-stealing-free thread pool: each worker pops the next index
// from an atomic counter. This scales linearly for the coarse-grained
// (whole-simulation) tasks we schedule on it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dope {

/// Fixed-size thread pool executing enqueued void() tasks.
class ThreadPool {
 public:
  /// `threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; throws std::runtime_error after shutdown.
  void submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing. Tasks may
  /// themselves submit follow-up work; wait_idle returns only once the
  /// whole transitive closure has drained.
  void wait_idle() EXCLUDES(mutex_);

  /// Drains already-queued tasks, joins the workers, and makes further
  /// `submit` calls throw. Idempotent; the destructor calls it. Must not
  /// be called from inside a pool task.
  void shutdown() EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

/// Runs `fn(i)` for i in [0, n) across `threads` workers (0 = hardware
/// concurrency). Every iteration is attempted even when some throw;
/// after the join, the exception from the *lowest-index* failing
/// iteration is rethrown, so a failing sweep always reports the same
/// culprit run regardless of scheduling order or thread count.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace dope
