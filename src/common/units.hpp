// Core physical and temporal units used across the simulator.
//
// Simulation time is an integer count of microseconds (`Time`). Power is
// expressed in watts, energy in joules, and CPU frequency in GHz. Keeping
// these as plain arithmetic types (with strongly named helpers) keeps the
// hot event-processing paths allocation- and indirection-free.
#pragma once

#include <cstdint>

namespace dope {

/// Simulation time in microseconds since the start of the run.
using Time = std::int64_t;

/// Duration in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1'000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Converts a duration in (fractional) seconds to microseconds.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Converts a duration in (fractional) milliseconds to microseconds.
constexpr Duration millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a microsecond duration to fractional seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a microsecond duration to fractional milliseconds.
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Electrical power in watts.
using Watts = double;

/// Energy in joules (watt-seconds).
using Joules = double;

/// CPU core frequency in GHz.
using GHz = double;

/// Integrates constant power over a microsecond duration into joules.
constexpr Joules energy_of(Watts p, Duration d) { return p * to_seconds(d); }

}  // namespace dope
