// Core physical and temporal units used across the simulator.
//
// Simulation time is an integer count of microseconds (`Time`). Every
// continuous physical quantity — power, energy, CPU frequency — is a
// `Quantity<Dim>`: a single `double` payload tagged with a compile-time
// dimension, so the compiler rejects watts-vs-joules mix-ups that used
// to be found only by the runtime audits and the fuzzer (Tier 0 of the
// correctness stack, docs/ANALYSIS.md). Arithmetic derives dimensions:
//
//   Watts + Watts      -> Watts        Watts + Joules   -> ill-formed
//   Watts * Duration   -> Joules       Joules / Duration -> Watts
//   Watts / Watts      -> double       Watts * double   -> Watts
//
// A `Quantity` is trivial and exactly `sizeof(double)` (static_asserts
// below), so hot event-processing paths stay allocation- and
// indirection-free: passing `Watts` by value is passing a double.
//
// Boundary convention: raw doubles enter via the explicit constructor
// (`Watts{120.0}`) and leave via `.value()` — the only escape hatch —
// at export/JSON/CSV/metrics boundaries. Dimensionless ratios (SoC,
// f/f_max, budget fractions) are plain `double` by design.
#pragma once

#include <cstdint>
#include <type_traits>

namespace dope {

/// Simulation time in microseconds since the start of the run.
using Time = std::int64_t;

/// Duration in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1'000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Converts a duration in (fractional) seconds to microseconds.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Converts a duration in (fractional) milliseconds to microseconds.
constexpr Duration millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a microsecond duration to fractional seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a microsecond duration to fractional milliseconds.
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

namespace units {

/// Integer exponents over the simulator's unit axes. The axes are
/// *units*, not SI base dimensions: joules and watt-hours get distinct
/// axes precisely so that same-dimension-different-scale values cannot
/// be added without an explicit conversion, and frequency is carried in
/// GHz rather than derived from the time axis for the same reason.
/// Adding a new quantity = adding an axis here plus an alias below.
template <int JouleExp, int PerSecondExp, int GigahertzExp, int WattHourExp>
struct Dim {
  static constexpr int kJoule = JouleExp;
  static constexpr int kPerSecond = PerSecondExp;
  static constexpr int kGigahertz = GigahertzExp;
  static constexpr int kWattHour = WattHourExp;
};

template <class A, class B>
using DimProduct = Dim<A::kJoule + B::kJoule, A::kPerSecond + B::kPerSecond,
                       A::kGigahertz + B::kGigahertz,
                       A::kWattHour + B::kWattHour>;

template <class A, class B>
using DimQuotient = Dim<A::kJoule - B::kJoule, A::kPerSecond - B::kPerSecond,
                        A::kGigahertz - B::kGigahertz,
                        A::kWattHour - B::kWattHour>;

template <class D>
inline constexpr bool kIsDimensionless =
    D::kJoule == 0 && D::kPerSecond == 0 && D::kGigahertz == 0 &&
    D::kWattHour == 0;

}  // namespace units

/// A physical quantity: one double tagged with a compile-time dimension.
///
/// Same-dimension quantities add, subtract, and compare; any quantity
/// scales by a raw double; products and quotients derive the result
/// dimension (collapsing to plain `double` when all exponents cancel,
/// e.g. `Watts / Watts`). Construction from a raw double is explicit,
/// and `.value()` is the explicit way back out.
template <class D>
class Quantity {
 public:
  using Dimension = D;

  /// Default construction leaves the payload uninitialized, exactly like
  /// a raw double — keeping the type trivial. Use `Quantity{}` (value
  /// initialization) or the explicit constructor for a definite zero.
  Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The only escape hatch back to a raw double; reserve it for
  /// export/JSON/CSV/metrics boundaries and genuinely scalar math.
  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity operator+() const { return *this; }
  constexpr Quantity operator-() const { return Quantity{-v_}; }

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.v_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.v_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.v_ / s};
  }

  // Exact comparison mirrors raw-double semantics; the dope_lint
  // float-eq rule still polices ==/!= at power/energy call sites.
  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.v_ >= b.v_;
  }

 private:
  double v_;
};

/// Product of two quantities; the result dimension is the exponent sum,
/// collapsing to a raw double when everything cancels.
template <class Da, class Db>
constexpr auto operator*(Quantity<Da> a, Quantity<Db> b) {
  using Result = units::DimProduct<Da, Db>;
  if constexpr (units::kIsDimensionless<Result>) {
    return a.value() * b.value();
  } else {
    return Quantity<Result>{a.value() * b.value()};
  }
}

/// Quotient of two quantities; `Watts / Watts` and every other same-
/// dimension ratio is a plain double.
template <class Da, class Db>
constexpr auto operator/(Quantity<Da> a, Quantity<Db> b) {
  using Result = units::DimQuotient<Da, Db>;
  if constexpr (units::kIsDimensionless<Result>) {
    return a.value() / b.value();
  } else {
    return Quantity<Result>{a.value() / b.value()};
  }
}

/// Magnitude of a quantity (std::abs does not accept class types).
template <class D>
constexpr Quantity<D> abs(Quantity<D> q) {
  return q.value() < 0.0 ? Quantity<D>{-q.value()} : q;
}

/// Electrical power in watts.
using Watts = Quantity<units::Dim<1, 1, 0, 0>>;

/// Energy in joules (watt-seconds).
using Joules = Quantity<units::Dim<1, 0, 0, 0>>;

/// CPU core frequency in GHz.
using GHz = Quantity<units::Dim<0, 0, 1, 0>>;

/// Energy in watt-hours: the unit battery capacities are quoted in.
/// A distinct axis from `Joules` so the 3600x scale cannot silently
/// leak into joule accounting; convert explicitly at the boundary.
using WattHours = Quantity<units::Dim<0, 0, 0, 1>>;

// The whole point of the wrapper is costing nothing: a Quantity is one
// double — trivially copyable, trivially default-constructible, and
// standard-layout — so ABI and codegen match the old raw aliases.
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Joules) == sizeof(double));
static_assert(sizeof(GHz) == sizeof(double));
static_assert(sizeof(WattHours) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Watts> &&
              std::is_trivially_default_constructible_v<Watts> &&
              std::is_standard_layout_v<Watts>);
static_assert(std::is_trivially_copyable_v<Joules> &&
              std::is_trivially_default_constructible_v<Joules> &&
              std::is_standard_layout_v<Joules>);
static_assert(std::is_trivially_copyable_v<GHz> &&
              std::is_trivially_default_constructible_v<GHz> &&
              std::is_standard_layout_v<GHz>);
static_assert(std::is_trivially_copyable_v<WattHours> &&
              std::is_trivially_default_constructible_v<WattHours> &&
              std::is_standard_layout_v<WattHours>);

/// Integrates constant power over a microsecond duration into joules.
constexpr Joules energy_of(Watts p, Duration d) {
  return Joules{p.value() * to_seconds(d)};
}

/// Power × time is energy: `p * slot` reads as the physics does.
constexpr Joules operator*(Watts p, Duration d) { return energy_of(p, d); }
constexpr Joules operator*(Duration d, Watts p) { return energy_of(p, d); }

/// Energy spread over a duration is average power.
constexpr Watts operator/(Joules e, Duration d) {
  return Watts{e.value() / to_seconds(d)};
}

inline constexpr double kSecondsPerHour = 3600.0;

/// Converts joules to watt-hours (export/spec boundary).
constexpr WattHours to_watt_hours(Joules e) {
  return WattHours{e.value() / kSecondsPerHour};
}

/// Converts watt-hours to joules (import/spec boundary).
constexpr Joules to_joules(WattHours wh) {
  return Joules{wh.value() * kSecondsPerHour};
}

}  // namespace dope
