#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/expect.hpp"

namespace dope {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DOPE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  DOPE_REQUIRE(row.size() == headers_.size(),
               "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::format_cell(double v) {
  char buf[64];
  // dope-lint: allow(float-eq) — exact-zero test picks the format of a
  // pretty-printed cell; 0.0 must render as "0", not "0e+00".
  if (v != 0.0 && (std::fabs(v) >= 1e6 || std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n=== " << title << " ===\n";
}

}  // namespace dope
