#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace dope {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return count_ ? min_ : 0.0; }

double OnlineStats::max() const { return count_ ? max_ : 0.0; }

void Percentiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double p) const {
  DOPE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile rank out of range");
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Percentiles::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

const std::vector<double>& Percentiles::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::vector<CdfPoint> make_cdf(const Percentiles& dist, std::size_t points) {
  DOPE_REQUIRE(points >= 2, "a CDF needs at least two points");
  std::vector<CdfPoint> out;
  if (dist.empty()) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({dist.percentile(p), p / 100.0});
  }
  return out;
}

}  // namespace dope
