// Fixed-width binned histogram for bounded-memory distribution tracking.
#pragma once

#include <cstddef>
#include <vector>

namespace dope {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus underflow
/// and overflow counters. Useful where `Percentiles` would retain too many
/// samples (e.g. fine-grained power sampling over long runs).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t count() const { return count_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Midpoint value of bin `i`.
  double bin_center(std::size_t i) const;

  /// Approximate percentile (p in [0,100]) by linear interpolation inside
  /// the containing bin. Underflow maps to `lo`, overflow to `hi`.
  double percentile(double p) const;

  /// Fraction of samples <= x (bin-resolution approximation).
  double cdf_at(double x) const;

  /// Merges a histogram with identical bounds and bin count.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dope
