// Heap-free callable wrappers for the simulator's hot paths.
//
// `InlineFunction<Sig, Capacity>` is a move-only, owning alternative to
// `std::function` whose target always lives in a fixed small buffer
// inside the object: construction never allocates, and a callable that
// does not fit is a compile error (static_assert) instead of a silent
// heap fallback. Every per-event callback in the discrete-event engine —
// millions per simulated minute — flows through one of these, which is
// why the no-allocation property is a hard contract (docs/ENGINE.md)
// enforced both here and by the `hot-path-std-function` lint rule.
//
// `FunctionRef<Sig>` is the matching non-owning view for visitor and
// sink *parameters* that are only invoked during the call (e.g.
// `ServerNode::visit_active`): two words, trivially copyable, binds to
// any callable including mutable lambdas and temporaries. Never store
// one beyond the call that received it.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dope::common {

/// Default inline-buffer size. Large enough for a `this` pointer plus a
/// few captured words or references — every simulator callback today
/// captures at most three pointers — while keeping event-pool slots
/// compact: at steady state the pool is the engine's working set, so
/// every buffer byte multiplies by the number of in-flight events.
inline constexpr std::size_t kInlineFunctionCapacity = 32;

/// Maximum supported target alignment. Pointer-aligned covers every
/// capture the simulator uses (pointers, integers, doubles) without
/// padding pool slots to max_align_t.
inline constexpr std::size_t kInlineFunctionAlign = alignof(void*);

template <typename Signature,
          std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable that fits the buffer. Intentionally implicit so
  /// call sites keep passing plain lambdas to engine/sink APIs.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Target = std::remove_cvref_t<F>;
    static_assert(sizeof(Target) <= Capacity,
                  "callable exceeds the InlineFunction buffer — capture "
                  "less (e.g. a reference to shared state) or raise the "
                  "Capacity parameter at the declaration site");
    static_assert(alignof(Target) <= kInlineFunctionAlign,
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Target>,
                  "callables must be nothrow-move-constructible so the "
                  "event pool can relocate slots without risk");
    ::new (static_cast<void*>(storage_)) Target(std::forward<F>(f));
    invoke_ = [](void* target, Args... args) -> R {
      return (*static_cast<Target*>(target))(
          std::forward<Args>(args)...);
    };
    if constexpr (std::is_trivially_copyable_v<Target> &&
                  std::is_trivially_destructible_v<Target>) {
      // Most simulator callbacks capture only pointers/ints; tag them so
      // moves become a fixed-size copy and destroys a no-op, with no
      // indirect call on the per-event path.
      relocate_or_destroy_ = kTrivialTarget;
    } else {
      relocate_or_destroy_ = [](void* dst, void* src) noexcept {
        if (src != nullptr) {
          ::new (dst) Target(std::move(*static_cast<Target*>(src)));
          static_cast<Target*>(src)->~Target();
        } else {
          static_cast<Target*>(dst)->~Target();
        }
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the target, returning to the empty state.
  void reset() noexcept {
    if (relocate_or_destroy_ != nullptr) {
      if (relocate_or_destroy_ != kTrivialTarget) {
        relocate_or_destroy_(storage_, nullptr);
      }
      relocate_or_destroy_ = nullptr;
      invoke_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  friend bool operator==(const InlineFunction& f, std::nullptr_t) noexcept {
    return !static_cast<bool>(f);
  }

  /// Invokes the target; undefined when empty (checked in debug builds
  /// by the null-function dereference itself).
  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  /// Sentinel manager for trivially copyable + destructible targets:
  /// never called — steal() copies the buffer inline and reset() skips
  /// the destroy, avoiding an indirect call per event.
  static void trivial_target_manager(void*, void*) noexcept {}
  static constexpr void (*kTrivialTarget)(void*, void*) noexcept =
      &trivial_target_manager;

  void steal(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    relocate_or_destroy_ = other.relocate_or_destroy_;
    if (relocate_or_destroy_ == kTrivialTarget) {
      std::memcpy(storage_, other.storage_, Capacity);
    } else if (relocate_or_destroy_ != nullptr) {
      relocate_or_destroy_(storage_, other.storage_);
    }
    other.invoke_ = nullptr;
    other.relocate_or_destroy_ = nullptr;
  }

  alignas(kInlineFunctionAlign) unsigned char storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  /// One manager covers both lifetime operations: (dst, src) moves the
  /// target from src to dst and destroys src; (dst, nullptr) destroys
  /// dst. `kTrivialTarget` marks targets needing neither.
  void (*relocate_or_destroy_)(void*, void*) noexcept = nullptr;
};

template <typename Signature>
class FunctionRef;

/// Non-owning view of a callable, for visitor/sink parameters invoked
/// only for the duration of the call. Two words; pass by value.
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : target_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* target, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<
                      std::remove_reference_t<F>>>(target))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(target_, std::forward<Args>(args)...);
  }

 private:
  void* target_;
  R (*invoke_)(void*, Args...);
};

}  // namespace dope::common
