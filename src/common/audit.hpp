// Runtime physics-invariant auditing (tier 3 of the correctness stack;
// see docs/ANALYSIS.md).
//
// Debug builds (or any build configured with -DDOPE_AUDIT=ON) compile
// invariant checks into the simulator's accounting paths: battery state
// of charge and rated charge/discharge power, per-slot cluster power
// conservation, DPM post-solve budget feasibility (paper Eq. 1),
// non-negative latency/queue metrics, and monotonic engine time. Release
// builds compile every instrumented call site out: call sites are
// guarded with `if constexpr (audit::kEnabled)`, so when the option is
// off neither the check nor its argument computation exists in the
// binary.
//
// Checks are read-only and report-only: a violation is logged, counted
// in a process-wide atomic, and — when the component runs under an
// attached obs::Hub — raised through the alert watchdog (which mirrors
// it into the trace as kAlertRaised). A healthy run therefore produces
// byte-identical simulation output with auditing on or off; only a
// *violating* run differs, and then only by the alert/log it emits.
//
// The check functions themselves are *not* gated on kEnabled, so tests
// can drive every invariant class with deliberately corrupted values in
// any build configuration. Hub-aware reporting is a template: common/
// stays free of a hard obs dependency, and only call sites that pass a
// real obs::Hub* (which already include obs/hub.hpp and link dope_obs)
// instantiate the watchdog path. Pass `nullptr` where no hub exists
// (battery, DPM solver): the violation is still logged and counted.
//
// Hard-fail modes (fuzz oracle / test assertions):
//   * `ScopedCollector` — a thread-local RAII scope that additionally
//     *returns* every violation to the caller as structured `Violation`
//     records. One collector per thread at a time (scopes nest; the
//     innermost wins), so parallel fuzz workers each observe only their
//     own run's violations.
//   * `DOPE_AUDIT=FATAL` in the environment (or `set_mode(Mode::kFatal)`)
//     — a violation throws `AuditFailure` after being logged and counted,
//     turning any audited binary into a hard gate. A collector scope
//     suppresses the throw: collecting *is* the caller's failure
//     handling.
// Neither mode changes the bytes a healthy run produces, and the
// default (no env var, no collector) remains log-and-count only.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"

namespace dope::audit {

#ifdef DOPE_AUDIT_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Tolerances for power/energy comparisons: doubles integrated over many
/// slots accumulate rounding, so checks use abs + rel slack.
inline constexpr double kAbsEps = 1e-6;
inline constexpr double kRelEps = 1e-9;

/// One recorded invariant violation, as returned to collectors.
struct Violation {
  Time t = -1;
  std::string check;
  std::string message;
};

/// Thrown on violation in `Mode::kFatal` (outside any collector scope).
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(Violation violation)
      : std::runtime_error("audit violation [" + violation.check +
                           "]: " + violation.message),
        violation_(std::move(violation)) {}

  const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

/// How a violation propagates beyond the log line and the counter.
enum class Mode { kReport, kFatal };

class ScopedCollector;

namespace detail {
inline std::atomic<std::uint64_t> g_violations{0};
/// -1 = not yet resolved from the environment; else a Mode value.
inline std::atomic<int> g_mode{-1};
inline thread_local ScopedCollector* t_collector = nullptr;
}  // namespace detail

/// Process-wide violation count (all runs, all threads).
inline std::uint64_t violation_count() {
  return detail::g_violations.load(std::memory_order_relaxed);
}

inline void reset_violations() {
  detail::g_violations.store(0, std::memory_order_relaxed);
}

/// Overrides the reporting mode (tests); wins over the environment.
inline void set_mode(Mode mode) {
  detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

/// Active mode: `set_mode` override, else `DOPE_AUDIT=FATAL` in the
/// environment, else report-only. Resolved once and cached.
inline Mode mode() {
  int m = detail::g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    const char* env = std::getenv("DOPE_AUDIT");
    m = static_cast<int>(env != nullptr && std::string_view(env) == "FATAL"
                             ? Mode::kFatal
                             : Mode::kReport);
    detail::g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

/// RAII scope that captures this thread's violations as records the
/// caller can assert on. Scopes nest; the innermost collects. While a
/// collector is active, `Mode::kFatal` does not throw on this thread —
/// the caller is explicitly handling failures.
class ScopedCollector {
 public:
  ScopedCollector() : prev_(detail::t_collector) {
    detail::t_collector = this;
  }
  ~ScopedCollector() { detail::t_collector = prev_; }

  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

  const std::vector<Violation>& violations() const { return violations_; }
  bool empty() const { return violations_.empty(); }
  std::size_t size() const { return violations_.size(); }

  void add(Violation violation) {
    violations_.push_back(std::move(violation));
  }

 private:
  ScopedCollector* prev_;
  std::vector<Violation> violations_;
};

/// a <= b up to mixed absolute/relative tolerance at magnitude `scale`.
inline bool approx_le(double a, double b, double scale = 1.0) {
  return a <= b + kAbsEps + kRelEps * (scale < 0 ? -scale : scale);
}

inline bool approx_eq(double a, double b, double scale = 1.0) {
  return approx_le(a, b, scale) && approx_le(b, a, scale);
}

/// Counts and logs one violation. `t` is sim time (-1 when unknown).
/// Hands the record to this thread's collector when one is in scope;
/// otherwise throws in `Mode::kFatal`.
inline void report_logged(Time t, std::string_view check,
                          const std::string& message) {
  detail::g_violations.fetch_add(1, std::memory_order_relaxed);
  DOPE_LOG_ERROR << "audit violation [" << check << "] t=" << t << "us: "
                 << message;
  Violation violation{t, std::string(check), message};
  if (detail::t_collector != nullptr) {
    detail::t_collector->add(std::move(violation));
    return;
  }
  if (mode() == Mode::kFatal) throw AuditFailure(std::move(violation));
}

/// Reports a violation, additionally raising it through the run's alert
/// watchdog when a hub is attached. `Hub` is always `obs::Hub*` (or
/// std::nullptr_t); it is a template parameter only so common/ need not
/// include obs headers — instantiating TUs already do.
template <typename Hub>
void report(Hub hub, Time t, std::string_view check,
            const std::string& message) {
  if constexpr (!std::is_same_v<Hub, std::nullptr_t>) {
    // Flight-recorder snapshot *before* report_logged: in Mode::kFatal
    // (no collector) report_logged throws, and the incident bundle must
    // exist by then. The hook is a no-op without a flight recorder.
    if (hub != nullptr && mode() == Mode::kFatal &&
        detail::t_collector == nullptr) {
      hub->audit_failure(t, check, message);
    }
  }
  report_logged(t, check, message);
  if constexpr (!std::is_same_v<Hub, std::nullptr_t>) {
    if (hub != nullptr) {
      auto& dog = hub->watchdog();
      const std::string signal = "audit." + std::string(check);
      bool have_rule = false;
      for (const auto& rule : dog.rules()) {
        if (rule.name == signal) {
          have_rule = true;
          break;
        }
      }
      if (!have_rule) {
        // Lazily installed on first violation only, so a clean run's
        // watchdog state (and trace bytes) are untouched by auditing.
        using Rule = std::remove_cv_t<
            std::remove_reference_t<decltype(dog.rules().front())>>;
        Rule rule;
        rule.name = signal;
        rule.signal = signal;
        rule.threshold = 0.5;
        rule.consecutive = 1;
        rule.clear_after = 1;
        dog.add_rule(rule);
      }
      dog.observe(signal, t < 0 ? 0 : t, 1.0);
    }
  }
}

// --- invariant classes ------------------------------------------------
// Each returns true when the invariant holds. All are usable directly
// from tests with corrupted inputs; instrumented call sites wrap them in
// `if constexpr (audit::kEnabled)`.

/// Battery stored energy must stay within [0, capacity].
template <typename Hub>
bool check_battery_soc(Hub hub, Time t, Joules stored, Joules capacity) {
  if (stored.value() >= -kAbsEps &&
      approx_le(stored.value(), capacity.value(), capacity.value())) {
    return true;
  }
  std::ostringstream msg;
  msg << "battery stored energy " << stored.value() << " J outside [0, "
      << capacity.value() << "] J";
  report(hub, t, "battery_soc", msg.str());
  return false;
}

/// Delivered/drawn battery power must respect the rated limit
/// (`rated <= 0` means unlimited).
template <typename Hub>
bool check_battery_rate(Hub hub, Time t, Watts actual, Watts rated,
                        std::string_view which) {
  if (actual.value() >= -kAbsEps &&
      (rated.value() <= 0.0 ||
       approx_le(actual.value(), rated.value(), rated.value()))) {
    return true;
  }
  std::ostringstream msg;
  msg << which << " power " << actual.value() << " W outside rated limit "
      << rated.value() << " W";
  report(hub, t, "battery_rate", msg.str());
  return false;
}

/// Slot energy books must balance: utility + battery covers the load,
/// no component negative, and utility never exceeds the load drawn.
template <typename Hub>
bool check_power_conservation(Hub hub, Time t, Joules slot_energy,
                              Joules utility, Joules battery_delta) {
  const double scale =
      slot_energy.value() < 1.0 ? 1.0 : slot_energy.value();
  if (slot_energy.value() >= -kAbsEps && utility.value() >= -kAbsEps &&
      battery_delta.value() >= -kAbsEps &&
      approx_le(slot_energy.value(),
                utility.value() + battery_delta.value(), scale) &&
      approx_le(utility.value(), slot_energy.value(), scale)) {
    return true;
  }
  std::ostringstream msg;
  msg << "slot energy books do not balance: load=" << slot_energy.value()
      << " J, utility=" << utility.value()
      << " J, battery=" << battery_delta.value() << " J";
  report(hub, t, "power_conservation", msg.str());
  return false;
}

/// DPM post-solve feasibility (paper Eq. 1): the solved assignment's
/// estimated power fits the allowance, unless every node already sits
/// at the ladder floor (budget infeasible even fully throttled).
template <typename Hub>
bool check_budget_feasible(Hub hub, Time t, Watts estimated,
                           Watts allowance, bool all_at_floor) {
  if (all_at_floor ||
      approx_le(estimated.value(), allowance.value(),
                allowance.value() < 1.0 ? 1.0 : allowance.value())) {
    return true;
  }
  std::ostringstream msg;
  msg << "post-solve assignment power " << estimated.value()
      << " W exceeds allowance " << allowance.value()
      << " W with headroom left on the ladder";
  report(hub, t, "dpm_budget", msg.str());
  return false;
}

/// Queue depths, latencies, demands, ... must be non-negative.
template <typename Hub>
bool check_non_negative(Hub hub, Time t, std::string_view what,
                        double value) {
  if (value >= -kAbsEps) return true;
  std::ostringstream msg;
  msg << what << " is negative: " << value;
  report(hub, t, "negative_metric", msg.str());
  return false;
}

/// Engine time must never move backwards.
template <typename Hub>
bool check_monotonic_time(Hub hub, Time now, Time next) {
  if (next >= now) return true;
  std::ostringstream msg;
  msg << "event time " << next << "us precedes engine clock " << now
      << "us";
  report(hub, now, "engine_time", msg.str());
  return false;
}

}  // namespace dope::audit
